# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test race lint bench fuzz cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/storage/ ./internal/service/ ./internal/datalake/ ./internal/table/ .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# bench runs the seeker/service/ingest benchmarks with -benchmem and
# emits BENCH.json (self-describing: commit + date metadata inside; native
# fast path vs SQL baseline, bulk-ingest batch vs sequential, result-cache
# and end-to-end service numbers). Tune with BENCHTIME=2000x /
# BENCH_OUT=path. Compare two reports with scripts/benchdelta.sh.
bench:
	./scripts/bench.sh

# fuzz smoke-runs every native fuzz target (seed corpora live under each
# package's testdata/fuzz/). Targets are discovered with `go test -list`,
# so a new Fuzz* function joins the smoke run without touching this file.
# Tune with FUZZTIME=5m for a real session; CI runs the 15s default on
# every push as a regression tripwire.
FUZZTIME ?= 15s
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		list=$$($(GO) test -list '^Fuzz' $$pkg); \
		targets=$$(printf '%s\n' "$$list" | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "== fuzz $$pkg $$t ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$t\$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

# cover writes the aggregate coverage profile and prints the per-function
# summary; CI uploads the profile and posts the total as a non-blocking
# delta next to the bench delta.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
