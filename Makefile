# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test race lint bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/storage/ ./internal/service/ ./internal/datalake/ ./internal/table/ .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# bench runs the seeker/service/ingest benchmarks with -benchmem and
# emits BENCH.json (self-describing: commit + date metadata inside; native
# fast path vs SQL baseline, bulk-ingest batch vs sequential, result-cache
# and end-to-end service numbers). Tune with BENCHTIME=2000x /
# BENCH_OUT=path. Compare two reports with scripts/benchdelta.sh.
bench:
	./scripts/bench.sh
