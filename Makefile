# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test race lint lint-fix bench fuzz cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the full module. Skip-list: currently empty — every package
# (including the lint suite's go-list-driven integration tests) passes
# under the race detector; if a package ever legitimately can't, exclude
# it here with `go list ./... | grep -v <pkg>` and document why.
race:
	$(GO) test -race ./...

# lint is the blocking static-analysis gate: gofmt, go vet, the
# repo-specific blendlint invariant suite (typed errors, context flow,
# lock/pool/mmap discipline — see internal/lint), and staticcheck when
# installed (CI always installs it, so it blocks there; staticcheck.conf
# is the checked-in config).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o bin/blendlint ./cmd/blendlint
	./bin/blendlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not on PATH; skipping locally (CI runs it as a blocking step)"; fi

# lint-fix applies blendlint's suggested fixes in place (currently the
# berrcheck fmt.Errorf -> berr.New rewrite), then reformats.
lint-fix:
	$(GO) build -o bin/blendlint ./cmd/blendlint
	./bin/blendlint -fix ./...
	gofmt -w .

# bench runs the seeker/service/ingest benchmarks with -benchmem and
# emits BENCH.json (self-describing: commit + date metadata inside; native
# fast path vs SQL baseline, bulk-ingest batch vs sequential, result-cache
# and end-to-end service numbers). Tune with BENCHTIME=2000x /
# BENCH_OUT=path. Compare two reports with scripts/benchdelta.sh.
bench:
	./scripts/bench.sh

# fuzz smoke-runs every native fuzz target (seed corpora live under each
# package's testdata/fuzz/). Targets are discovered with `go test -list`,
# so a new Fuzz* function joins the smoke run without touching this file.
# Tune with FUZZTIME=5m for a real session; CI runs the 15s default on
# every push as a regression tripwire.
FUZZTIME ?= 15s
fuzz:
	@set -e; for pkg in $$($(GO) list ./...); do \
		list=$$($(GO) test -list '^Fuzz' $$pkg); \
		targets=$$(printf '%s\n' "$$list" | grep '^Fuzz' || true); \
		for t in $$targets; do \
			echo "== fuzz $$pkg $$t ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$t\$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

# cover writes the aggregate coverage profile and prints the per-function
# summary; CI uploads the profile and posts the total as a non-blocking
# delta next to the bench delta.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
