# Developer entry points. CI runs the same targets.

GO ?= go

.PHONY: build test race lint bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/storage/ ./internal/service/ .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# bench runs the seeker/service benchmarks with -benchmem and emits
# BENCH_PR3.json (native fast path vs SQL-interpreter baseline, plus the
# result-cache and end-to-end service numbers). Tune with
# BENCHTIME=2000x / BENCH_OUT=path.
bench:
	./scripts/bench.sh
