package blend

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTypedErrorCodes pins the public error contract of API v2: every
// failure class matches its sentinel under errors.Is.
func TestTypedErrorCodes(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())

	// Empty plan -> ErrBadPlan.
	if _, err := d.Run(context.Background(), NewPlan()); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("empty plan: %v", err)
	}
	// Unknown combiner input -> ErrUnknownNode.
	p := NewPlan()
	p.MustAddSeeker("kw", KW(deps, 5))
	p.MustAddCombiner("out", Union(5), "kw", "ghost")
	if _, err := d.Run(context.Background(), p); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown input: %v", err)
	}
	// Unknown output node -> ErrUnknownNode.
	if err := NewPlan().SetOutput("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown output: %v", err)
	}
	// Untrained cost models -> ErrNoCostModel.
	if err := d.SaveCostModels(filepath.Join(t.TempDir(), "m.json")); !errors.Is(err, ErrNoCostModel) {
		t.Fatalf("untrained models: %v", err)
	}
	// Corrupt index file -> ErrBadIndex.
	if _, err := OpenIndex(filepath.Join(t.TempDir(), "missing.blend")); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("missing index: %v", err)
	}
	// Bad raw SQL -> ErrBadQuery.
	if _, err := d.Engine().ExecRawSQL(context.Background(), "SELEKT nope"); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("bad sql: %v", err)
	}
	// Malformed plan JSON -> ErrBadPlan.
	if _, err := ParsePlanJSON(strings.NewReader("{")); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("malformed json: %v", err)
	}
	// Codes are extractable.
	_, err := d.Run(context.Background(), NewPlan())
	if ErrorCodeOf(err) != CodeBadPlan {
		t.Fatalf("ErrorCodeOf = %v", ErrorCodeOf(err))
	}
}

// TestSeekCanceled pins the acceptance criterion: errors.Is(err,
// blend.ErrCanceled) for a canceled context in the library API.
func TestSeekCanceled(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Seek(ctx, SC(deps, 5)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled seek: %v", err)
	}
}

// TestWithDeadline verifies the deadline option surfaces the typed code.
func TestWithDeadline(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	p := NewPlan()
	p.MustAddSeeker("kw", KW(deps, 5))
	// An already-expired deadline must fail fast with the typed code.
	_, err := d.Run(context.Background(), p, WithDeadline(time.Nanosecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: %v", err)
	}
	// A generous deadline must not interfere.
	res, err := d.Run(context.Background(), p, WithDeadline(time.Minute))
	if err != nil || len(res.Tables) == 0 {
		t.Fatalf("live deadline run: %v %v", res, err)
	}
}

// TestWithExplain verifies executed SQL is captured per seeker node,
// rewrites included.
func TestWithExplain(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	p := NegativeExamplesPlan(
		[][]string{{"HR", "Firenze"}},
		[][]string{{"IT", "Tom Riddle"}}, 10)
	res, err := d.Run(context.Background(), p, WithExplain())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SQLByNode) != 2 {
		t.Fatalf("SQLByNode = %v", res.SQLByNode)
	}
	if sql := res.SQLByNode["P_examples"]; !strings.Contains(sql, "AllTables") {
		t.Fatalf("P_examples SQL = %q", sql)
	}
	// The optimizer rewrites the minuend with a NOT IN predicate; the
	// recorded SQL must show it.
	if sql := res.SQLByNode["P_examples"]; !strings.Contains(sql, "NOT IN") {
		t.Fatalf("rewrite not captured: %q", sql)
	}
	// Without the option nothing is recorded.
	res, err = d.Run(context.Background(), p)
	if err != nil || res.SQLByNode != nil {
		t.Fatalf("explain leaked: %v %v", res.SQLByNode, err)
	}
}

// TestOptionsCompose verifies the functional options produce the same
// hits as the plain run.
func TestOptionsCompose(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables(), WithShards(2))
	p := NegativeExamplesPlan(
		[][]string{{"HR", "Firenze"}},
		[][]string{{"IT", "Tom Riddle"}}, 10)
	p.MustAddSeeker("dep", SC(deps, 10))
	p.MustAddCombiner("intersect", Intersect(10), "exclude", "dep")
	ref, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]RunOption{
		{WithMaxWorkers(4)},
		{WithMaxWorkers(0), WithExplain()},
		{WithDeadline(time.Minute), WithMaxWorkers(2)},
	} {
		res, err := d.Run(context.Background(), p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Tables, res.Tables) {
			t.Fatalf("options changed the answer: %v vs %v", res.Tables, ref.Tables)
		}
	}
	// WithoutOptimizer is set-equivalent, not order-equivalent.
	noOpt, err := d.Run(context.Background(), p, WithoutOptimizer())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableSet(ref.Tables), tableSet(noOpt.Tables)) {
		t.Fatalf("B-NO differs as a set: %v vs %v", noOpt.Tables, ref.Tables)
	}
}

// TestConcurrentAddTableAndQueries is the race test for the engine-level
// RWMutex: incremental indexing must be safe concurrently with queries
// (run with -race in CI).
func TestConcurrentAddTableAndQueries(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	const writers, readers, rounds = 2, 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				nt := NewTable(fmt.Sprintf("W%d_%d", w, i), "Team", "Head")
				nt.MustAppendRow("Quidditch"+strconv.Itoa(i), "Head"+strconv.Itoa(w))
				d.AddTable(nt)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if r%2 == 0 {
					if _, err := d.Seek(context.Background(), KW(deps, 5)); err != nil {
						errs <- err
						return
					}
					continue
				}
				p := NewPlan()
				p.MustAddSeeker("sc", SC(deps, 5))
				p.MustAddSeeker("kw", KW([]string{"Firenze"}, 5))
				p.MustAddCombiner("u", Union(5), "sc", "kw")
				if _, err := d.Run(context.Background(), p, WithMaxWorkers(2)); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := d.NumTables(); got != 3+writers*rounds {
		t.Fatalf("tables after concurrent adds = %d, want %d", got, 3+writers*rounds)
	}
	// Everything added concurrently must now be discoverable.
	hits, err := d.Seek(context.Background(), KW([]string{"Quidditch0"}, writers))
	if err != nil || len(hits) != writers {
		t.Fatalf("added tables not discoverable: %v %v", hits, err)
	}
}
