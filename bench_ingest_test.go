package blend

// Bulk-ingestion benchmarks: the batched, shard-parallel write path
// (Discovery.AddTables) against the sequential AddTable loop it replaces,
// plus the end-to-end CSV pipeline. scripts/bench.sh pairs Sequential and
// Batch into BENCH.json's bulk_ingest_speedup so CI tracks the write-path
// trajectory the way native_vs_sql_speedup tracks the read path.

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"blend/internal/datalake"
)

// benchIngestWorkers bounds the batch path's parallelism: per-shard
// inserts during commits. The acceptance bar (batched ingest ≥ 2x a
// sequential AddTable loop) is measured at this width.
const benchIngestWorkers = 8

// benchIngestShards partitions the target index; tables hash across the
// shards, so batch commits parallelize up to min(workers, shards).
const benchIngestShards = 8

var benchIngest struct {
	once sync.Once
	seed []*Table
	add  []*Table
}

func benchIngestSetup(b *testing.B) {
	b.Helper()
	benchIngest.once.Do(func() {
		benchIngest.seed = datalake.GenJoinLake(datalake.JoinLakeConfig{
			Name: "ingest-seed", NumTables: 8, ColsPerTable: 4, RowsPerTable: 60,
			VocabSize: 4000, Seed: 91,
		}).Tables
		benchIngest.add = datalake.GenJoinLake(datalake.JoinLakeConfig{
			Name: "ingest-add", NumTables: 64, ColsPerTable: 4, RowsPerTable: 60,
			VocabSize: 4000, Seed: 92,
		}).Tables
	})
}

// benchIngestTarget builds a fresh seeded index outside the timer, so each
// iteration measures only the ingest of the 64-table batch.
func benchIngestTarget(b *testing.B) *Discovery {
	b.Helper()
	b.StopTimer()
	d := IndexTables(ColumnStore, benchIngest.seed, WithShards(benchIngestShards))
	b.StartTimer()
	return d
}

// BenchmarkBulkIngestSequential is the pre-batching baseline: one engine
// write-lock acquisition, generation bump, and cache purge per table, and
// strictly serial index appends.
func BenchmarkBulkIngestSequential(b *testing.B) {
	benchIngestSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := benchIngestTarget(b)
		for _, t := range benchIngest.add {
			d.AddTable(t)
		}
		if d.NumTables() != len(benchIngest.seed)+len(benchIngest.add) {
			b.Fatal("sequential ingest lost tables")
		}
	}
}

// BenchmarkBulkIngestBatch is the bulk path: the whole 64-table batch
// commits as one maintenance operation with per-shard inserts running on
// benchIngestWorkers workers.
func BenchmarkBulkIngestBatch(b *testing.B) {
	benchIngestSetup(b)
	b.ReportAllocs()
	// The effective parallelism is bounded by the flag, the shard count
	// (one goroutine per shard), and GOMAXPROCS; report the real value so
	// BENCH.json does not claim 8-way parallelism on a 1-core runner.
	workers := benchIngestWorkers
	if benchIngestShards < workers {
		workers = benchIngestShards
	}
	if p := runtime.GOMAXPROCS(0); p < workers {
		workers = p
	}
	b.ReportMetric(float64(workers), "workers")
	for i := 0; i < b.N; i++ {
		d := benchIngestTarget(b)
		ids, err := d.AddTables(context.Background(), benchIngest.add,
			WithIngestWorkers(benchIngestWorkers))
		if err != nil {
			b.Fatal(err)
		}
		if len(ids) != len(benchIngest.add) {
			b.Fatal("batch ingest lost tables")
		}
	}
}

// BenchmarkBulkIngestCSVDir measures the full pipeline — directory walk,
// parallel CSV parse, batched commits — over a lake written to disk once.
func BenchmarkBulkIngestCSVDir(b *testing.B) {
	benchIngestSetup(b)
	dir := b.TempDir()
	for _, t := range benchIngest.add {
		if err := t.WriteCSVFile(dir + "/" + t.Name + ".csv"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := benchIngestTarget(b)
		report, err := d.IngestCSVDir(context.Background(), dir,
			WithIngestWorkers(benchIngestWorkers))
		if err != nil {
			b.Fatal(err)
		}
		if report.TablesAdded != len(benchIngest.add) {
			b.Fatalf("csv ingest added %d tables, want %d", report.TablesAdded, len(benchIngest.add))
		}
	}
}

// Read-under-ingest pairing: BenchmarkReadQuiescent measures seek latency
// on an idle index, BenchmarkConcurrentReadDuringIngest the same seeks
// while a writer continuously publishes generations (AddTables +
// RemoveTable per cycle). scripts/bench.sh pairs them into BENCH.json's
// read_under_ingest_speedup; a ratio near 1.0 means snapshot-pinned reads
// do not stall behind the write path.

// benchReadQuery derives a stable seek input from the seed lake.
func benchReadQuery() []string {
	t := benchIngest.seed[0]
	q := make([]string, 0, 8)
	for r := 0; r < t.NumRows() && len(q) < 8; r++ {
		q = append(q, t.Cell(r, 0))
	}
	return q
}

func BenchmarkReadQuiescent(b *testing.B) {
	benchIngestSetup(b)
	d := IndexTables(ColumnStore, benchIngest.seed, WithShards(benchIngestShards))
	q := benchReadQuery()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := d.Seek(ctx, SC(q, 10)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkConcurrentReadDuringIngest(b *testing.B) {
	benchIngestSetup(b)
	d := IndexTables(ColumnStore, benchIngest.seed, WithShards(benchIngestShards))
	q := benchReadQuery()
	ctx := context.Background()

	// Writer: one add + one remove per cycle keeps the lake size stable
	// while generations churn for the whole measurement window. The cycle
	// is paced so the benchmark measures reader stall under a steady
	// ingest rate, not raw CPU/GC contention from an unthrottled loop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := benchIngest.add
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			t := src[i%len(src)].Clone()
			t.Name = "churn"
			ids, err := d.AddTables(ctx, []*Table{t})
			if err != nil {
				b.Error(err)
				return
			}
			if err := d.RemoveTable(ids[0]); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := d.Seek(ctx, SC(q, 10)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
