package blend

// A/B benchmarks for the native posting-list fast path: the joinability /
// overlap workloads (SC, KW, union plans) and the multi-column candidate
// join (MC) executed on the native executor and on the SQL-interpreter
// baseline it replaced, plus the result cache under repeated serve-style
// traffic. scripts/bench.sh runs these with -benchmem and records the
// pairings into BENCH.json.

import (
	"context"
	"sync"
	"testing"
)

var benchPath = struct {
	once        sync.Once
	colNative   *Discovery
	colSQL      *Discovery
	shardNative *Discovery
	shardSQL    *Discovery
	cached      *Discovery
	corrSQL     *Discovery
}{}

func benchPathSetup(b *testing.B) {
	b.Helper()
	benchSetup(b)
	benchPath.once.Do(func() {
		tables := benchLake.join.Tables
		benchPath.colNative = IndexTables(ColumnStore, tables)
		benchPath.colSQL = IndexTables(ColumnStore, tables, WithoutNativeExec())
		benchPath.shardNative = IndexTables(ColumnStore, tables, WithShards(4))
		benchPath.shardSQL = IndexTables(ColumnStore, tables, WithShards(4), WithoutNativeExec())
		benchPath.cached = IndexTables(ColumnStore, tables, WithResultCache(64))
		benchPath.corrSQL = IndexTables(ColumnStore, benchLake.corr.Tables, WithoutNativeExec())
	})
}

func benchSeekSC(b *testing.B, d *Discovery) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.queries[i%len(benchLake.queries)]
		if _, err := d.Seek(context.Background(), SC(q, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeekKW(b *testing.B, d *Discovery) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.queries[i%len(benchLake.queries)]
		if _, err := d.Seek(context.Background(), KW(q, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// Single-column joinability: native posting-list executor vs the SQL
// interpreter over the same monolithic column store.
func BenchmarkSCSeekerNativePath(b *testing.B) {
	benchPathSetup(b)
	benchSeekSC(b, benchPath.colNative)
}
func BenchmarkSCSeekerSQLPath(b *testing.B) { benchPathSetup(b); benchSeekSC(b, benchPath.colSQL) }

// Keyword / union-compatibility overlap: same A/B.
func BenchmarkKWSeekerNativePath(b *testing.B) {
	benchPathSetup(b)
	benchSeekKW(b, benchPath.colNative)
}
func BenchmarkKWSeekerSQLPath(b *testing.B) { benchPathSetup(b); benchSeekKW(b, benchPath.colSQL) }

// The same pairing over a 4-shard store: per-shard scans + bounded-heap
// merge vs per-shard SQL fan-out + merged re-sort.
func BenchmarkSCSeekerShardedNativePath(b *testing.B) {
	benchPathSetup(b)
	benchSeekSC(b, benchPath.shardNative)
}

func BenchmarkSCSeekerShardedSQLPath(b *testing.B) {
	benchPathSetup(b)
	benchSeekSC(b, benchPath.shardSQL)
}

func benchSeekMC(b *testing.B, d *Discovery) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchLake.tuples[i%len(benchLake.tuples)]
		if _, err := d.Seek(context.Background(), MC(t, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// Multi-column joinability: the native candidate join + XASH pruning +
// exact validation pipeline vs the interpreted Listing 2 join it replaced.
// scripts/bench.sh records this pairing as mc_native_speedup in BENCH.json.
func BenchmarkMCNative(b *testing.B) { benchPathSetup(b); benchSeekMC(b, benchPath.colNative) }
func BenchmarkMCSQL(b *testing.B)    { benchPathSetup(b); benchSeekMC(b, benchPath.colSQL) }

// The same MC pairing over a 4-shard store: concurrent per-shard candidate
// joins vs the per-shard SQL fan-out.
func BenchmarkMCNativeSharded(b *testing.B) {
	benchPathSetup(b)
	benchSeekMC(b, benchPath.shardNative)
}

func BenchmarkMCSQLSharded(b *testing.B) {
	benchPathSetup(b)
	benchSeekMC(b, benchPath.shardSQL)
}

func benchSeekCorr(b *testing.B, d *Discovery) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.corr.Queries[i%len(benchLake.corr.Queries)]
		if _, err := d.Seek(context.Background(), Correlation(q.Keys, q.Targets, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// Correlation (QCR) seeking: the native two-pass posting scan — fold the
// key→quadrant map, scan each distinct key value once, heap the per-table
// agreement scores — vs the interpreted two-way IN-join + grouped
// aggregation it replaced. scripts/bench.sh records this pairing as
// corr_native_speedup in BENCH.json.
func BenchmarkCorrSeekerNativePath(b *testing.B) {
	benchPathSetup(b)
	benchSeekCorr(b, benchLake.corrCol)
}

func BenchmarkCorrSeekerSQLPath(b *testing.B) {
	benchPathSetup(b)
	benchSeekCorr(b, benchPath.corrSQL)
}

// Serve-style repeated traffic with the result cache on: after the first
// rotation through the query set every Seek is a cache hit.
func BenchmarkSeekerResultCache(b *testing.B) {
	benchPathSetup(b)
	benchSeekSC(b, benchPath.cached)
}

// Union-search on both paths: the KW-seeker fan-out + Counter plan of
// Table VI, dominated by seeker execution.
func benchUnionPlan(b *testing.B, d *Discovery) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.union.Queries[i%len(benchLake.union.Queries)]
		if _, err := d.Run(context.Background(), UnionSearchPlan(q.Query, 100, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionPlanNativePath(b *testing.B) {
	benchPathSetup(b)
	d := IndexTables(ColumnStore, benchLake.union.Tables)
	benchUnionPlan(b, d)
}

func BenchmarkUnionPlanSQLPath(b *testing.B) {
	benchPathSetup(b)
	d := IndexTables(ColumnStore, benchLake.union.Tables, WithoutNativeExec())
	benchUnionPlan(b, d)
}
