package blend

// Cold-open benchmarks: how fast an on-disk index becomes queryable.
// The v3 path decodes every shard's dictionary and postings before
// OpenIndex returns; the v4 path memory-maps the segment file and only
// parses the footer directory, deferring shard decode to first touch.
// scripts/bench.sh pairs V3Eager and V4Mmap into BENCH.json's
// open_speedup, and the disk_bytes metrics into index_bytes_on_disk.

import (
	"os"
	"sync"
	"testing"

	"blend/internal/datalake"
	"blend/internal/storage"
)

const benchOpenShards = 8

var benchOpen struct {
	once   sync.Once
	v3Path string
	v4Path string
	v3Size int64
	v4Size int64
}

// benchOpenSetup builds one moderately sized lake and persists it twice:
// in the legacy v3 format and in the current segmented v4 format.
func benchOpenSetup(b *testing.B) {
	b.Helper()
	benchOpen.once.Do(func() {
		lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
			Name: "open-bench", NumTables: 64, ColsPerTable: 5, RowsPerTable: 80,
			VocabSize: 6000, Seed: 73,
		})
		d := IndexTables(ColumnStore, lake.Tables, WithShards(benchOpenShards))
		dir, err := os.MkdirTemp("", "blend-open-bench")
		if err != nil {
			panic(err)
		}
		benchOpen.v3Path = dir + "/lake.v3.blend"
		benchOpen.v4Path = dir + "/lake.v4.blend"
		sh := d.Engine().Store().(*storage.ShardedStore)
		f, err := os.Create(benchOpen.v3Path)
		if err != nil {
			panic(err)
		}
		if err := sh.SaveLegacy(f, 3); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if err := d.SaveIndex(benchOpen.v4Path); err != nil {
			panic(err)
		}
		benchOpen.v3Size = fileSize(benchOpen.v3Path)
		benchOpen.v4Size = fileSize(benchOpen.v4Path)
	})
	if benchOpen.v3Size == 0 || benchOpen.v4Size == 0 {
		b.Fatal("cold-open fixture files missing")
	}
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

// BenchmarkOpenIndexCold measures time-to-queryable for a cold open of
// the same lake in each persisted format. Each sub-benchmark also
// reports its file's on-disk size so bench.sh can track the compression
// ratio alongside the open latency.
func BenchmarkOpenIndexCold(b *testing.B) {
	benchOpenSetup(b)
	b.Run("V3Eager", func(b *testing.B) {
		b.ReportMetric(float64(benchOpen.v3Size), "disk_bytes")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := OpenIndex(benchOpen.v3Path)
			if err != nil {
				b.Fatal(err)
			}
			if d.NumTables() == 0 {
				b.Fatal("empty index")
			}
			d.Close()
		}
	})
	b.Run("V4Mmap", func(b *testing.B) {
		b.ReportMetric(float64(benchOpen.v4Size), "disk_bytes")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := OpenIndex(benchOpen.v4Path)
			if err != nil {
				b.Fatal(err)
			}
			if d.NumTables() == 0 {
				b.Fatal("empty index")
			}
			d.Close()
		}
	})
	b.Run("V4Eager", func(b *testing.B) {
		b.ReportMetric(float64(benchOpen.v4Size), "disk_bytes")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := OpenIndex(benchOpen.v4Path, WithMmap(false))
			if err != nil {
				b.Fatal(err)
			}
			if d.NumTables() == 0 {
				b.Fatal("empty index")
			}
			d.Close()
		}
	})
}
