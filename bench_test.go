package blend

// Benchmarks regenerating the runtime dimension of every table and figure
// in the paper's evaluation (§VIII). Each bench maps to one artifact; the
// full sweeps with formatted output live in cmd/blend-experiments, these
// provide the `go test -bench` entry points and -benchmem accounting.
//
//	Table II   BenchmarkIndexBuild (offline phase)
//	Table III  BenchmarkComplexTask*
//	Table IV   BenchmarkOptimizedPlan vs BenchmarkUnoptimizedPlan
//	Table V    BenchmarkMCSeeker vs BenchmarkMATE
//	Fig. 5     BenchmarkSCSeekerColumn/Row vs BenchmarkJosie
//	Fig. 6     BenchmarkDeepJoin (plus the SC benches above)
//	Table VI / Fig. 7  BenchmarkUnionPlan vs BenchmarkStarmie
//	Table VII  BenchmarkCorrelationSeeker vs BenchmarkQCRSketch
//	Table VIII BenchmarkIndexPersist (serialized footprint path)
//	Table IX   BenchmarkUserStudyAggregate

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"blend/internal/baselines/deepjoin"
	"blend/internal/baselines/josie"
	"blend/internal/baselines/mate"
	"blend/internal/baselines/qcrsketch"
	"blend/internal/baselines/starmie"
	"blend/internal/datalake"
	"blend/internal/userstudy"
)

// benchLake caches the shared benchmark fixtures so each bench pays setup
// once per process.
var benchLake = struct {
	once    sync.Once
	join    *datalake.JoinLake
	queries [][]string
	tuples  [][][]string
	union   *datalake.UnionBenchmark
	corr    *datalake.CorrBenchmark
	col     *Discovery
	row     *Discovery
	sharded *Discovery
	josie   *josie.Index
	mate    *mate.Index
	starmie *starmie.Index
	dj      *deepjoin.Index
	sketch  *qcrsketch.Index
	corrCol *Discovery
}{}

func benchSetup(b *testing.B) {
	b.Helper()
	benchLake.once.Do(func() {
		benchLake.join = datalake.GenJoinLake(datalake.JoinLakeConfig{
			Name: "bench", NumTables: 60, ColsPerTable: 4, RowsPerTable: 80,
			VocabSize: 5000, Seed: 90,
		})
		for i := 0; i < 8; i++ {
			benchLake.queries = append(benchLake.queries, benchLake.join.QueryColumn(50))
			t, _ := benchLake.join.QueryTuples(5, 2)
			benchLake.tuples = append(benchLake.tuples, t)
		}
		benchLake.col = IndexTables(ColumnStore, benchLake.join.Tables)
		benchLake.row = IndexTables(RowStore, benchLake.join.Tables)
		benchLake.sharded = IndexTables(ColumnStore, benchLake.join.Tables, WithShards(4))
		benchLake.josie = josie.Build(benchLake.join.Tables)
		benchLake.mate = mate.Build(benchLake.join.Tables)
		benchLake.starmie = starmie.Build(benchLake.join.Tables)
		benchLake.dj = deepjoin.Build(benchLake.join.Tables)
		benchLake.sketch = qcrsketch.Build(benchLake.join.Tables, 256)
		benchLake.union = datalake.GenUnionBenchmark(datalake.UnionConfig{
			Name: "bu", NumGroups: 4, TablesPerGroup: 8, RowsPerTable: 30,
			ColsPerTable: 3, DomainSize: 100, Queries: 4, Seed: 91,
		})
		benchLake.corr = datalake.GenCorrBenchmark(datalake.CorrConfig{
			Name: "bc", NumTables: 20, Rows: 300, CorrelatedShare: 0.4,
			Queries: 2, Seed: 92,
		})
		benchLake.corrCol = IndexTables(ColumnStore, benchLake.corr.Tables)
	})
}

// BenchmarkIndexBuild measures the offline phase (Table II / Fig. 2e):
// building the unified index over the benchmark lake.
func BenchmarkIndexBuild(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := IndexTables(ColumnStore, benchLake.join.Tables)
		if d.NumTables() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkIndexPersist measures index serialization + reload, the path
// behind the storage numbers of Table VIII.
func BenchmarkIndexPersist(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := benchLake.col.Engine().Store().Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSCSeekerColumn / BenchmarkSCSeekerRow / BenchmarkJosie cover
// Fig. 5 (and the runtime bar of Fig. 6).
func BenchmarkSCSeekerColumn(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.queries[i%len(benchLake.queries)]
		if _, err := benchLake.col.Seek(context.Background(), SC(q, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCSeekerRow(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.queries[i%len(benchLake.queries)]
		if _, err := benchLake.row.Seek(context.Background(), SC(q, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJosie(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.queries[i%len(benchLake.queries)]
		benchLake.josie.SearchTables(q, 10)
	}
}

// BenchmarkDeepJoin covers the semantic join baseline of Fig. 6.
func BenchmarkDeepJoin(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.queries[i%len(benchLake.queries)]
		benchLake.dj.SearchTables(q, 10)
	}
}

// BenchmarkMCSeeker / BenchmarkMATE cover Table V.
func BenchmarkMCSeeker(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchLake.tuples[i%len(benchLake.tuples)]
		if _, err := benchLake.col.Seek(context.Background(), MC(t, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMATE(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchLake.tuples[i%len(benchLake.tuples)]
		benchLake.mate.Search(t, 10)
	}
}

// BenchmarkUnionPlan / BenchmarkStarmie cover Table VI and Fig. 7.
func BenchmarkUnionPlan(b *testing.B) {
	benchSetup(b)
	d := IndexTables(ColumnStore, benchLake.union.Tables)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := benchLake.union.Queries[i%len(benchLake.union.Queries)]
		if _, err := d.Run(context.Background(), UnionSearchPlan(q.Query, 100, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStarmie(b *testing.B) {
	benchSetup(b)
	st := starmie.Build(benchLake.union.Tables)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := benchLake.union.Queries[i%len(benchLake.union.Queries)]
		st.Search(q.Query, 10)
	}
}

// BenchmarkCorrelationSeeker / BenchmarkQCRSketch cover Table VII.
func BenchmarkCorrelationSeeker(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.corr.Queries[i%len(benchLake.corr.Queries)]
		if _, err := benchLake.corrCol.Seek(context.Background(), Correlation(q.Keys, q.Targets, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQCRSketch(b *testing.B) {
	benchSetup(b)
	sk := qcrsketch.Build(benchLake.corr.Tables, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := benchLake.corr.Queries[i%len(benchLake.corr.Queries)]
		sk.Search(q.Keys, q.Targets, 10)
	}
}

// BenchmarkOptimizedPlan / BenchmarkUnoptimizedPlan cover Table IV and the
// BLEND vs B-NO columns of Table III: a mixed two-seeker intersection plan
// with and without the optimizer.
func BenchmarkOptimizedPlan(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchComplexPlan(i)
		if _, err := benchLake.col.Run(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnoptimizedPlan(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := benchComplexPlan(i)
		if _, err := benchLake.col.Run(context.Background(), p, WithoutOptimizer()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchComplexPlan(i int) *Plan {
	p := NewPlan()
	p.MustAddSeeker("kw", KW(benchLake.queries[i%len(benchLake.queries)][:5], 10))
	p.MustAddSeeker("mc", MC(benchLake.tuples[i%len(benchLake.tuples)], 10))
	p.MustAddCombiner("both", Intersect(10), "kw", "mc")
	return p
}

// BenchmarkComplexTaskNegative covers the first Table III column.
func BenchmarkComplexTaskNegative(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pos := benchLake.tuples[i%len(benchLake.tuples)]
		neg := benchLake.tuples[(i+1)%len(benchLake.tuples)]
		if _, err := benchLake.col.Run(context.Background(), NegativeExamplesPlan(pos, neg, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComplexTaskImputation covers the second Table III column.
func BenchmarkComplexTaskImputation(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex := benchLake.tuples[i%len(benchLake.tuples)]
		q := benchLake.queries[i%len(benchLake.queries)][:12]
		if _, err := benchLake.col.Run(context.Background(), ImputationPlan(ex, q, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComplexTaskMultiObjective covers the last Table III column.
func BenchmarkComplexTaskMultiObjective(b *testing.B) {
	benchSetup(b)
	src := benchLake.join.Tables[0]
	query := NewTable("q")
	query.Columns = append(query.Columns, src.Columns...)
	for r := 0; r < 8 && r < src.NumRows(); r++ {
		query.Rows = append(query.Rows, src.Rows[r])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kw := benchLake.queries[i%len(benchLake.queries)][:3]
		p, err := MultiObjectivePlan(kw, query, "col0", "col3", 10)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := benchLake.col.Run(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUserStudyAggregate covers Table IX's aggregation path.
func BenchmarkUserStudyAggregate(b *testing.B) {
	rs := userstudy.Responses()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if userstudy.Aggregate(rs) == nil {
			b.Fatal("nil summary")
		}
	}
}

// BenchmarkSCSeekerSharded contrasts BenchmarkSCSeekerColumn with the same
// workload on a 4-shard index scanned concurrently.
func BenchmarkSCSeekerSharded(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := benchLake.queries[i%len(benchLake.queries)]
		if _, err := benchLake.sharded.Seek(context.Background(), SC(q, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCSeekerSharded is the sharded counterpart of BenchmarkMCSeeker.
func BenchmarkMCSeekerSharded(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := benchLake.tuples[i%len(benchLake.tuples)]
		if _, err := benchLake.sharded.Seek(context.Background(), MC(t, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuildSharded measures the offline phase into 4 shards.
func BenchmarkIndexBuildSharded(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := IndexTables(ColumnStore, benchLake.join.Tables, WithShards(4))
		if d.NumTables() == 0 {
			b.Fatal("empty index")
		}
	}
}

// benchFanOutPlan builds a 4-independent-seeker Union plan, the shape the
// DAG scheduler parallelizes fully.
func benchFanOutPlan(i int) *Plan {
	p := NewPlan()
	for j := 0; j < 4; j++ {
		q := benchLake.queries[(i+j)%len(benchLake.queries)]
		p.MustAddSeeker(seekerName(j), SC(q, 10))
	}
	p.MustAddCombiner("any", Union(10), seekerName(0), seekerName(1), seekerName(2), seekerName(3))
	return p
}

func seekerName(j int) string { return string(rune('a' + j)) }

// benchmarkPlanWorkers measures the scheduler at a fixed pool size —
// worker-scaling for the concurrent plan scheduler (sequential engine as
// the w=0 baseline).
func benchmarkPlanWorkers(b *testing.B, workers int, parallel bool) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var opts []RunOption
		if parallel {
			opts = append(opts, WithMaxWorkers(workers))
		}
		if _, err := benchLake.sharded.Run(context.Background(), benchFanOutPlan(i), opts...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanSequential(b *testing.B)        { benchmarkPlanWorkers(b, 0, false) }
func BenchmarkPlanSchedulerWorkers1(b *testing.B) { benchmarkPlanWorkers(b, 1, true) }
func BenchmarkPlanSchedulerWorkers2(b *testing.B) { benchmarkPlanWorkers(b, 2, true) }
func BenchmarkPlanSchedulerWorkers4(b *testing.B) { benchmarkPlanWorkers(b, 4, true) }

// BenchmarkIndexPersistSharded measures v2 serialization.
func BenchmarkIndexPersistSharded(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := benchLake.sharded.Engine().Store().Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
