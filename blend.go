// Package blend is a unified data discovery system for tabular data lakes,
// reproducing "BLEND: A Unified Data Discovery System" (ICDE 2025).
//
// BLEND answers discovery queries — keyword search, single- and
// multi-column join discovery, union search, and correlation discovery —
// over a lake of tables through one declarative Plan API. All operators
// execute as SQL over a single unified index (the AllTables fact table),
// and a two-phase optimizer reorders operators and rewrites their SQL with
// intermediate results before execution.
//
// Basic usage:
//
//	d := blend.IndexTables(blend.ColumnStore, tables)
//	plan := blend.NewPlan()
//	plan.MustAddSeeker("rows", blend.MC(examples, 10))
//	plan.MustAddSeeker("col", blend.SC(values, 10))
//	plan.MustAddCombiner("both", blend.Intersect(10), "rows", "col")
//	res, err := d.Run(ctx, plan)
//	// res.Tables lists the top tables, best first.
package blend

import (
	"context"
	"fmt"
	"io"
	"os"

	"blend/internal/berr"
	"blend/internal/core"
	"blend/internal/costmodel"
	"blend/internal/storage"
	"blend/internal/table"
)

// Re-exported substrate types. Table is the relational table model; Layout
// selects the physical representation of the index.
type (
	// Table is an in-memory relational table (see NewTable, ReadCSVFile).
	Table = table.Table
	// Column is one table attribute.
	Column = table.Column
	// Layout selects the index's physical layout.
	Layout = storage.Layout
	// Plan is a declarative discovery task: a DAG of seekers and
	// combiners.
	Plan = core.Plan
	// Seeker is a low-level search operator.
	Seeker = core.Seeker
	// Combiner merges seeker results with a set operation.
	Combiner = core.Combiner
	// Result is the outcome of running a plan.
	Result = core.PlanResult
	// Hits is an ordered list of scored tables.
	Hits = core.Hits
	// TableHit is one scored table.
	TableHit = core.TableHit
	// RunOptions tunes plan execution.
	RunOptions = core.RunOptions
	// CacheStats summarizes the engine's seeker result cache.
	CacheStats = core.CacheStats
)

// Physical layouts of the AllTables index.
const (
	// ColumnStore stores index attributes in parallel arrays (the paper's
	// commercial-column-store deployment; fastest for seekers).
	ColumnStore = storage.ColumnStore
	// RowStore stores one struct per index entry (the paper's PostgreSQL
	// deployment).
	RowStore = storage.RowStore
)

// NewTable creates an empty table with the given column names.
func NewTable(name string, columns ...string) *Table { return table.New(name, columns...) }

// ReadCSVFile loads one table from a CSV file.
func ReadCSVFile(path string) (*Table, error) { return table.ReadCSVFile(path) }

// ReadCSV parses one table from CSV bytes, naming it explicitly — the
// entry point for ingest sources that are not files (HTTP uploads, object
// stores). The first record is the header; column kinds are inferred.
func ReadCSV(name string, r io.Reader) (*Table, error) { return table.ReadCSV(name, r) }

// ReadCSVDir loads every .csv file in a directory as a table.
func ReadCSVDir(dir string) ([]*Table, error) { return table.ReadCSVDir(dir) }

// NewPlan creates an empty discovery plan.
func NewPlan() *Plan { return core.NewPlan() }

// ParsePlanJSON decodes a declarative JSON plan document (see the format
// documented in internal/core/planjson.go and the `blend plan` CLI).
func ParsePlanJSON(r io.Reader) (*Plan, error) { return core.ParsePlanJSON(r) }

// EncodePlanJSON writes a plan as its JSON document. Plans containing
// user-defined seekers or combiners cannot be encoded.
func EncodePlanJSON(p *Plan, w io.Writer) error { return core.EncodePlanJSON(p, w) }

// ParseSeekerJSON decodes one standalone seeker document — the "seeker"
// object of a plan node, e.g. {"kind": "sc", "values": ["HR"], "k": 10}.
// The HTTP service's /v1/seek endpoint executes these.
func ParseSeekerJSON(r io.Reader) (Seeker, error) { return core.ParseSeekerJSON(r) }

// EncodeSeekerJSON renders a single seeker back to its JSON document.
func EncodeSeekerJSON(s Seeker, w io.Writer) error { return core.EncodeSeekerJSON(s, w) }

// Seeker constructors (§IV-A of the paper).

// SC builds a single-column join seeker: top-k tables with a column
// overlapping the given values the most.
func SC(values []string, k int) Seeker { return core.NewSC(values, k) }

// KW builds a keyword seeker: top-k tables overlapping the keywords
// anywhere in the table.
func KW(keywords []string, k int) Seeker { return core.NewKW(keywords, k) }

// MC builds a multi-column join seeker: top-k tables containing whole query
// tuples in single rows. Each tuple lists the composite-key values of one
// query row.
func MC(tuples [][]string, k int) Seeker { return core.NewMC(tuples, k) }

// Correlation builds a correlation seeker: top-k tables joinable on the
// keys whose numeric column correlates the most (by |QCR|) with the target.
// keys and targets are paired by position.
func Correlation(keys []string, targets []float64, k int) Seeker {
	return core.NewCorrelation(keys, targets, k)
}

// Semantic builds an embedding-based seeker: top-k tables with a column
// semantically similar to the given values, served by an HNSW index over
// column embeddings. This implements the paper's future-work extension
// (§X); results are approximate and the optimizer neither reorders nor
// rewrites the underlying ANN search.
func Semantic(values []string, k int) Seeker { return core.NewSemantic(values, k) }

// Combiner constructors (§IV-B).

// Intersect keeps tables found by every input.
func Intersect(k int) Combiner { return core.NewIntersect(k) }

// Union keeps tables found by any input.
func Union(k int) Combiner { return core.NewUnion(k) }

// Difference keeps tables of the first input absent from the second.
func Difference(k int) Combiner { return core.NewDifference(k) }

// Counter ranks tables by how many inputs found them.
func Counter(k int) Combiner { return core.NewCounter(k) }

// Discovery is the top-level handle on one indexed data lake.
type Discovery struct {
	engine *core.Engine
}

// IndexOption configures IndexTables / IndexCSVDir.
type IndexOption func(*indexConfig)

type indexConfig struct {
	shards    int
	cacheSize int
	noNative  bool
	eager     bool
}

// WithShards hash-partitions the index's tables across n shards, each with
// its own dictionary, inverted index, and table-range index. Seekers then
// scan every shard concurrently and merge top-k results, while the global
// view (table ids, raw SQL, persistence) stays identical to a monolithic
// index. n <= 1 keeps the monolithic store.
func WithShards(n int) IndexOption {
	return func(c *indexConfig) { c.shards = n }
}

// WithResultCache enables the engine's seeker result cache with room for n
// entries: repeated seekers (standalone or inside plans) return their
// memoized top-k list instead of rescanning the index. Entries are keyed
// by (seeker fingerprint, rewrite, store generation) and the cache is
// purged by AddTable, so results are never stale. Off by default, so
// benchmark and experiment timings keep measuring real executions; serving
// deployments (blend-serve) enable it. See Discovery.SetResultCache to
// reconfigure later and Discovery.CacheStats for hit rates.
func WithResultCache(n int) IndexOption {
	return func(c *indexConfig) { c.cacheSize = n }
}

// WithoutNativeExec forces every seeker through SQL generation and the
// embedded interpreter — the pre-fast-path behavior. Results are identical
// to the native posting-list executor (the path-equivalence tests assert
// it); only the runtime differs. Intended for A/B benchmarking and
// debugging with `-explain`.
func WithoutNativeExec() IndexOption {
	return func(c *indexConfig) { c.noNative = true }
}

// WithMmap controls how OpenIndex reads a segmented (v4) index file. On
// (the default), the file is memory-mapped and shards are decoded only
// when a query first touches them, so opening is O(footer) and resident
// memory tracks the working set; query results are identical either way
// (the differential tests assert it). WithMmap(false) restores the eager
// loader, which decodes every shard up front — useful for A/B timing and
// for tools that will scan the whole lake anyway. Pre-v4 files always
// load eagerly; IndexTables ignores the option (a freshly built index is
// already resident).
func WithMmap(on bool) IndexOption {
	return func(c *indexConfig) { c.eager = !on }
}

// IndexTables builds the unified index over the given tables (the offline
// phase, Fig. 2e) and returns a ready-to-query Discovery. Call
// Table.InferKinds (or load via CSV, which infers automatically) before
// indexing so numeric columns gain quadrant bits. Options select the
// physical organisation, e.g. WithShards(8) for a hash-partitioned index.
func IndexTables(layout Layout, tables []*Table, opts ...IndexOption) *Discovery {
	var cfg indexConfig
	for _, o := range opts {
		o(&cfg)
	}
	var idx storage.Index
	if cfg.shards > 1 {
		idx = storage.BuildSharded(layout, tables, cfg.shards)
	} else {
		idx = storage.Build(layout, tables)
	}
	return newDiscovery(idx, cfg)
}

// newDiscovery wires an indexConfig's engine-level options onto a fresh
// engine — the one place IndexTables and OpenIndex share, so an engine
// option added to one construction path cannot silently be a no-op on the
// other. (Build-time options like WithShards act before this point.)
func newDiscovery(idx storage.Index, cfg indexConfig) *Discovery {
	e := core.NewEngine(idx)
	e.NoNativeExec = cfg.noNative
	if cfg.cacheSize > 0 {
		e.SetResultCache(cfg.cacheSize)
	}
	return &Discovery{engine: e}
}

// IndexCSVDir loads every CSV file in dir and indexes the resulting lake.
func IndexCSVDir(layout Layout, dir string, opts ...IndexOption) (*Discovery, error) {
	tables, err := table.ReadCSVDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blend: load lake from %s: %w", dir, err)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("blend: no CSV tables found in %s", dir)
	}
	return IndexTables(layout, tables, opts...), nil
}

// OpenIndex opens a previously saved index file. Segmented (v4) files are
// memory-mapped with lazy shard materialization by default — see WithMmap
// to opt out; older formats load eagerly. The remaining options configure
// the engine the same way they do at build time — WithoutNativeExec and
// WithResultCache apply; WithShards is ignored, because the shard count
// is a property of the persisted file.
func OpenIndex(path string, opts ...IndexOption) (*Discovery, error) {
	var cfg indexConfig
	for _, o := range opts {
		o(&cfg)
	}
	var s storage.Index
	var err error
	if cfg.eager {
		s, err = storage.LoadFile(path)
	} else {
		s, err = storage.MapFile(path)
	}
	if err != nil {
		return nil, fmt.Errorf("blend: open index %s: %w", path, err)
	}
	return newDiscovery(s, cfg), nil
}

// SaveIndex persists the index to a file for later OpenIndex calls. With
// a write-ahead log enabled (EnableWAL), a successful save also
// checkpoints the log at the saved generation, so only mutations after
// the save are ever replayed.
func (d *Discovery) SaveIndex(path string) error {
	if err := d.engine.SaveFile(path); err != nil {
		return fmt.Errorf("blend: save index %s: %w", path, err)
	}
	return nil
}

// EnableWAL attaches an append-only write-ahead log at path to the index:
// every mutation is journaled and synced before its generation publishes,
// so a crash between a publish and the next SaveIndex loses nothing — on
// reopen, EnableWAL replays the mutations recorded since the log's last
// checkpoint and resumes at the generation the crashed process had
// published. Call it right after IndexTables/OpenIndex, before mutations
// begin; SaveIndex checkpoints the log so it stays short. The returned
// close function releases the log file handle (call it after the
// Discovery is done mutating).
func (d *Discovery) EnableWAL(path string) (func() error, error) {
	wal, recs, gen, err := storage.OpenWAL(path)
	if err != nil {
		return nil, fmt.Errorf("blend: open wal %s: %w", path, err)
	}
	// Fast-forward to the checkpointed generation first so replayed
	// mutations continue the pre-crash numbering, then apply the recorded
	// mutations through the engine — journal not yet attached, so replay
	// does not re-append what the log already holds.
	d.engine.SeedGeneration(gen)
	for _, rec := range recs {
		if tables, ok := rec.IsAddTables(); ok {
			if _, err := d.engine.AddTables(tables, 0); err != nil {
				wal.Close()
				return nil, fmt.Errorf("blend: replay wal %s: %w", path, err)
			}
			continue
		}
		if tid, ok := rec.IsRemove(); ok {
			if err := d.engine.RemoveTable(tid); err != nil {
				wal.Close()
				return nil, fmt.Errorf("blend: replay wal %s: %w", path, err)
			}
			continue
		}
		if rec.IsCompact() {
			d.engine.Compact()
		}
	}
	d.engine.SetJournal(wal)
	return wal.Close, nil
}

// Run executes a plan under the given context — the single query entry
// point of API v2. With no options the two-phase optimizer is enabled and
// execution is sequential; functional options tune the call:
//
//	res, err := d.Run(ctx, plan, blend.WithMaxWorkers(8), blend.WithDeadline(time.Second))
//
// Cancellation is honored between scheduler tasks, execution-group
// members, and per-shard index scans; on cancellation the error matches
// blend.ErrCanceled (or blend.ErrDeadlineExceeded) under errors.Is, and
// also wraps the context's own error.
//
// Run pins one generation snapshot at entry and executes lock-free against
// it, so it is safe for concurrent use — including concurrently with
// ingestion, which never blocks it (and is never blocked by it).
// WithAsOf(g) pins retained historical generation g instead (time travel);
// a generation outside the retention window fails with ErrGenerationGone.
func (d *Discovery) Run(ctx context.Context, p *Plan, opts ...RunOption) (*Result, error) {
	cfg, copts := coreOptions(opts)
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	return d.engine.Run(ctx, p, copts)
}

// Seek executes a single seeker outside any plan under the given context
// and returns the scored tables. It accepts the same options as Run
// (WithAsOf included); WithoutOptimizer and WithMaxWorkers are no-ops for
// a single operator.
func (d *Discovery) Seek(ctx context.Context, s Seeker, opts ...RunOption) (Hits, error) {
	cfg, _ := coreOptions(opts)
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	if cfg.asOf > 0 {
		sn, err := d.engine.SnapshotAt(cfg.asOf)
		if err != nil {
			return nil, err
		}
		defer sn.Release()
		hits, _, err := sn.RunSeeker(ctx, s)
		return hits, err
	}
	hits, _, err := d.engine.RunSeeker(ctx, s)
	return hits, err
}

// Snapshot pins the current index generation and returns a handle whose
// queries all see that exact state, no matter how much ingestion happens
// concurrently — the way to run a multi-query analysis against one
// consistent lake. Release the handle when done; a retained generation's
// resources are freed only after both the retention window moves past it
// and the last handle releases it.
func (d *Discovery) Snapshot() (*Snapshot, error) {
	sn, err := d.engine.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{sn: sn, d: d}, nil
}

// SnapshotAt pins retained historical generation gen (0 means current).
// Generations outside the retention window fail with ErrGenerationGone.
func (d *Discovery) SnapshotAt(gen uint64) (*Snapshot, error) {
	sn, err := d.engine.SnapshotAt(gen)
	if err != nil {
		return nil, err
	}
	return &Snapshot{sn: sn, d: d}, nil
}

// Snapshot is a pinned generation of the index: a read-only, immutable
// handle whose Run and Seek execute against the exact state published at
// Generation, regardless of concurrent ingestion. Obtain one with
// Discovery.Snapshot or Discovery.SnapshotAt; Release it exactly once.
type Snapshot struct {
	sn *core.Snapshot
	d  *Discovery
}

// Generation reports the pinned generation number.
func (s *Snapshot) Generation() uint64 { return s.sn.Generation() }

// Run executes a plan against the pinned generation. It accepts the same
// options as Discovery.Run, except WithAsOf, which is ignored — the handle
// already fixes the generation.
func (s *Snapshot) Run(ctx context.Context, p *Plan, opts ...RunOption) (*Result, error) {
	cfg, copts := coreOptions(opts)
	copts.AsOf = 0
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	return s.sn.Run(ctx, p, copts)
}

// Seek executes a single seeker against the pinned generation.
func (s *Snapshot) Seek(ctx context.Context, seeker Seeker, opts ...RunOption) (Hits, error) {
	cfg, _ := coreOptions(opts)
	if cfg.deadline > 0 {
		var cancel context.CancelFunc
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
		defer cancel()
	}
	hits, _, err := s.sn.RunSeeker(ctx, seeker)
	return hits, err
}

// Release unpins the generation. Queries through the handle fail after
// Release; releasing twice is a no-op.
func (s *Snapshot) Release() { s.sn.Release() }

// Generation reports the currently published index generation. Generations
// start at 1 and advance by one per committed mutation (AddTable,
// AddTables, RemoveTable, Compact).
func (d *Discovery) Generation() uint64 { return d.engine.Generation() }

// RetainedGenerations lists the generations currently pinnable for time
// travel, oldest first; the last entry is the current generation.
func (d *Discovery) RetainedGenerations() []uint64 { return d.engine.RetainedGenerations() }

// SetRetention bounds how many generations stay pinnable for WithAsOf /
// SnapshotAt (minimum 1, the current one; default 4). Shrinking the window
// releases the excess immediately.
func (d *Discovery) SetRetention(n int) { d.engine.SetRetention(n) }

// TrainCostModels runs the offline cost-model training of §VII-B:
// samplesPerKind random inputs per seeker type are executed and timed, and
// a linear model per type is fitted and installed for use by the optimizer.
// The context bounds the whole training sweep: cancellation aborts between
// (and inside) sample runs.
func (d *Discovery) TrainCostModels(ctx context.Context, samplesPerKind int, seed int64) error {
	_, err := core.TrainCostModels(ctx, d.engine, samplesPerKind, seed)
	return err
}

// SaveCostModels persists the trained cost models as JSON (the paper
// trains once per lake installation; the models ride alongside the index
// file). It fails if TrainCostModels has not run.
func (d *Discovery) SaveCostModels(path string) error {
	if d.engine.Cost == nil {
		return berr.New(berr.CodeNoCostModel, "blend.cost", "no trained cost models; call TrainCostModels first")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.engine.Cost.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCostModels installs previously saved cost models.
func (d *Discovery) LoadCostModels(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	per, err := costmodel.LoadModels(f)
	if err != nil {
		return err
	}
	d.engine.Cost = per
	return nil
}

// WritePlanDot renders a plan's DAG in Graphviz dot format (Fig. 2b).
func WritePlanDot(p *Plan, w io.Writer) error { return p.WriteDot(w) }

// SetCorrelationSampleSize sets h, the number of leading row ids the
// correlation seeker samples (§V; default 256). Unlike the sketch baseline,
// h can be changed per query without re-indexing the lake.
func (d *Discovery) SetCorrelationSampleSize(h int) { d.engine.SampleH = h }

// TableNames maps hits to table names.
func (d *Discovery) TableNames(h Hits) []string { return d.engine.TableNames(h) }

// AddTable appends one table to the index without rebuilding it — the
// incremental maintenance a single unified index enables (§I). The table
// is immediately discoverable. AddTable is safe concurrently with
// queries: it waits for in-flight plans to drain, and queries issued
// after it returns see the new table.
func (d *Discovery) AddTable(t *Table) { d.engine.AddTable(t) }

// SetResultCache configures the seeker result cache to hold up to n
// entries; n <= 0 disables it. See WithResultCache for semantics.
func (d *Discovery) SetResultCache(n int) { d.engine.SetResultCache(n) }

// CacheStats snapshots the result cache counters (zero value when the
// cache is disabled).
func (d *Discovery) CacheStats() CacheStats { return d.engine.ResultCacheStats() }

// NumTables reports the number of allocated table ids, including tables
// removed but not yet compacted away — the bound for TableByID
// iteration. LiveTables counts only discoverable tables.
func (d *Discovery) NumTables() int { return d.engine.NumTables() }

// LiveTables reports the number of discoverable tables (allocated ids
// minus tombstones); it equals NumTables once Compact has run.
func (d *Discovery) LiveTables() int { return d.engine.LiveTables() }

// NumShards reports how many partitions back the index (1 when
// monolithic).
func (d *Discovery) NumShards() int { return d.engine.Store().NumShards() }

// Stats summarizes the index (shape, dictionary, posting-list skew).
func (d *Discovery) Stats() storage.Stats { return d.engine.ComputeStats() }

// TableByID reconstructs an indexed table from the unified index (BLEND
// never retains source files; cell locations suffice). It returns nil
// when the id is out of range.
func (d *Discovery) TableByID(id int32) *Table { return d.engine.ReconstructTable(id) }

// IndexSizeBytes estimates the resident size of the unified index.
func (d *Discovery) IndexSizeBytes() int64 { return d.engine.SizeBytes() }

// Close releases every retained generation and the resources behind them
// — for an index opened with OpenIndex under the default mmap mode, the
// memory mapping of the index file (released once the last in-flight query
// unpins its snapshot). After Close, new queries fail with a typed
// internal error; closing twice is a no-op.
func (d *Discovery) Close() error { return d.engine.Close() }

// Engine exposes the underlying execution engine for advanced use
// (experiments, benchmarking, raw SQL via Engine.Catalog).
func (d *Discovery) Engine() *core.Engine { return d.engine }
