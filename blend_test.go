package blend

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"blend/internal/core"
)

// fig1Tables builds the paper's Fig. 1 lake through the public API.
func fig1Tables() []*Table {
	t1 := NewTable("T1", "Team", "Size")
	t1.MustAppendRow("Finance", "31")
	t1.MustAppendRow("Marketing", "28")
	t1.MustAppendRow("HR", "33")
	t1.MustAppendRow("IT", "92")
	t1.MustAppendRow("Sales", "80")

	t2 := NewTable("T2", "Lead", "Year", "Team")
	t2.MustAppendRow("Tom Riddle", "2022", "IT")
	t2.MustAppendRow("Draco Malfoy", "2022", "Marketing")
	t2.MustAppendRow("Harry Potter", "2022", "Finance")
	t2.MustAppendRow("Cho Chang", "2022", "R&D")
	t2.MustAppendRow("Luna Lovegood", "2022", "Sales")
	t2.MustAppendRow("Firenze", "2022", "HR")

	t3 := NewTable("T3", "Lead", "Year", "Team")
	t3.MustAppendRow("Ronald Weasley", "2024", "IT")
	t3.MustAppendRow("Draco Malfoy", "2024", "Marketing")
	t3.MustAppendRow("Harry Potter", "2024", "Finance")
	t3.MustAppendRow("Cho Chang", "2024", "R&D")
	t3.MustAppendRow("Luna Lovegood", "2024", "Sales")
	t3.MustAppendRow("Firenze", "2024", "HR")

	for _, t := range []*Table{t1, t2, t3} {
		t.InferKinds()
	}
	return []*Table{t1, t2, t3}
}

var deps = []string{"HR", "Marketing", "Finance", "IT", "R&D", "Sales"}

func TestEndToEndExample1(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	p := NegativeExamplesPlan(
		[][]string{{"HR", "Firenze"}},
		[][]string{{"IT", "Tom Riddle"}},
		10,
	)
	p.MustAddSeeker("dep", SC(deps, 10))
	p.MustAddCombiner("intersect", Intersect(10), "exclude", "dep")
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tables, []string{"T3"}) {
		t.Fatalf("Example 1 result = %v, want [T3]", res.Tables)
	}
}

func TestSeekStandalone(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	hits, err := d.Seek(context.Background(), SC(deps, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	names := d.TableNames(hits)
	if names[0] != "T2" && names[0] != "T3" {
		t.Fatalf("names = %v", names)
	}
}

func TestIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lake.blend")
	d := IndexTables(ColumnStore, fig1Tables())
	if err := d.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := d.Seek(context.Background(), KW([]string{"Firenze"}, 5))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d2.Seek(context.Background(), KW([]string{"Firenze"}, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatal("reloaded index answers differently")
	}
	if _, err := OpenIndex(filepath.Join(dir, "missing.blend")); err == nil {
		t.Fatal("missing index must fail")
	}
}

func TestIndexCSVDir(t *testing.T) {
	dir := t.TempDir()
	for _, tb := range fig1Tables() {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	d, err := IndexCSVDir(ColumnStore, dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTables() != 3 {
		t.Fatalf("tables = %d", d.NumTables())
	}
	if _, err := IndexCSVDir(ColumnStore, t.TempDir()); err == nil {
		t.Fatal("empty dir must fail")
	}
}

func TestUnionSearchPlan(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	// Query table shaped like T2/T3: Lead, Year, Team.
	q := NewTable("q", "Lead", "Year", "Team")
	q.MustAppendRow("Firenze", "2022", "HR")
	q.MustAppendRow("Harry Potter", "2022", "Finance")
	p := UnionSearchPlan(q, 100, 2)
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || res.Tables[0] != "T2" {
		t.Fatalf("union search = %v, want T2 first", res.Tables)
	}
	// T2 matches all three columns; its Counter score must be 3.
	if res.Output[0].Score != 3 {
		t.Fatalf("T2 counter score = %v", res.Output[0].Score)
	}
}

func TestImputationPlan(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	p := ImputationPlan(
		[][]string{{"HR", "Firenze"}},                 // complete example rows
		[]string{"Marketing", "Finance", "IT", "R&D"}, // incomplete rows' known values
		10,
	)
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"T2", "T3"}
	got := append([]string(nil), res.Tables...)
	if len(got) != 2 || !((got[0] == want[0] && got[1] == want[1]) || (got[0] == want[1] && got[1] == want[0])) {
		t.Fatalf("imputation = %v, want T2 and T3", res.Tables)
	}
}

func TestFeatureDiscoveryPlan(t *testing.T) {
	// Lake: table correlating with target, table correlating with an
	// existing feature (multicollinear — must be excluded).
	n := 24
	cities := make([]string, n)
	target := make([]float64, n)
	feature := make([]float64, n)
	for i := 0; i < n; i++ {
		cities[i] = "c" + strconv.Itoa(i)
		target[i] = float64(i + 1)
		// Independent of the target: a fixed pseudo-random pattern.
		feature[i] = float64((i*37+11)%23 + 1)
	}
	targetTab := NewTable("target_side", "City", "Metric")
	featTab := NewTable("collinear_side", "City", "Copy")
	for i := 0; i < n; i++ {
		targetTab.MustAppendRow(cities[i], strconv.Itoa(int(target[i])*3))
		// Perfectly tracks the existing feature — multicollinear.
		featTab.MustAppendRow(cities[i], strconv.Itoa(int(feature[i])*7))
	}
	targetTab.InferKinds()
	featTab.InferKinds()
	d := IndexTables(ColumnStore, []*Table{targetTab, featTab})

	joinTuples := make([][]string, 0, 5)
	for i := 0; i < 5; i++ {
		joinTuples = append(joinTuples, []string{cities[i], strconv.Itoa(int(target[i]) * 3)})
	}
	p := FeatureDiscoveryPlan(cities, target, [][]float64{feature}, joinTuples, 1)
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tables, []string{"target_side"}) {
		t.Fatalf("feature discovery = %v, want [target_side]", res.Tables)
	}
}

func TestMultiObjectivePlan(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	q := NewTable("q", "Team", "Size")
	q.MustAppendRow("HR", "33")
	q.MustAppendRow("IT", "92")
	q.MustAppendRow("Sales", "80")
	q.InferKinds()
	p, err := MultiObjectivePlan([]string{"Firenze"}, q, "Team", "Size", 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatal("multi-objective plan found nothing")
	}
	// T1 holds the exact Size column; it must be present.
	found := false
	for _, n := range res.Tables {
		if n == "T1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("T1 missing from %v", res.Tables)
	}
	if _, err := MultiObjectivePlan(nil, q, "nope", "Size", 5); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestRunUnoptimizedMatchesOptimized(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	p := ImputationPlan([][]string{{"HR", "Firenze"}}, deps, 10)
	a, err := d.Run(context.Background(), p, WithoutOptimizer())
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tableSet(a.Tables), tableSet(b.Tables)) {
		t.Fatalf("B-NO %v vs BLEND %v", a.Tables, b.Tables)
	}
}

func tableSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestTrainCostModelsPublicAPI(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	if err := d.TrainCostModels(context.Background(), 30, 7); err != nil {
		t.Fatal(err)
	}
}

func TestSetCorrelationSampleSize(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	d.SetCorrelationSampleSize(64)
	if d.Engine().SampleH != 64 {
		t.Fatal("sample size not set")
	}
}

func TestIndexSizeBytes(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	if d.IndexSizeBytes() <= 0 {
		t.Fatal("index size must be positive")
	}
}

func TestRowStoreLayoutAnswersIdentically(t *testing.T) {
	row := IndexTables(RowStore, fig1Tables())
	col := IndexTables(ColumnStore, fig1Tables())
	p := NegativeExamplesPlan([][]string{{"HR", "Firenze"}}, [][]string{{"IT", "Tom Riddle"}}, 10)
	r1, err := row.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := col.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Tables, r2.Tables) {
		t.Fatalf("layouts disagree: %v vs %v", r1.Tables, r2.Tables)
	}
}

func TestSemanticSeekerPublicAPI(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	hits, err := d.Seek(context.Background(), Semantic([]string{"Firenze", "Draco Malfoy"}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("semantic seeker found nothing")
	}
	names := d.TableNames(hits)
	if names[0] != "T2" && names[0] != "T3" {
		t.Fatalf("semantic best = %v", names)
	}
}

func TestAddTablePublicAPI(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	nt := NewTable("T4", "Team", "Head")
	nt.MustAppendRow("Quidditch", "Oliver Wood")
	d.AddTable(nt)
	if d.NumTables() != 4 {
		t.Fatalf("tables = %d", d.NumTables())
	}
	hits, err := d.Seek(context.Background(), KW([]string{"Quidditch"}, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || d.TableNames(hits)[0] != "T4" {
		t.Fatalf("incrementally added table not discoverable: %v", hits)
	}
}

func TestParallelPublicAPI(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	q := NewTable("q", "Lead", "Year", "Team")
	q.MustAppendRow("Firenze", "2024", "HR")
	p := UnionSearchPlan(q, 100, 5)
	seq, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.Run(context.Background(), p, WithMaxWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Tables, par.Tables) {
		t.Fatalf("parallel %v != sequential %v", par.Tables, seq.Tables)
	}
}

func TestCostModelPersistencePublicAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")
	d := IndexTables(ColumnStore, fig1Tables())
	if err := d.SaveCostModels(path); err == nil {
		t.Fatal("saving untrained models must fail")
	}
	if err := d.TrainCostModels(context.Background(), 30, 7); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveCostModels(path); err != nil {
		t.Fatal(err)
	}
	d2 := IndexTables(ColumnStore, fig1Tables())
	if err := d2.LoadCostModels(path); err != nil {
		t.Fatal(err)
	}
	if d2.Engine().Cost == nil {
		t.Fatal("models not installed after load")
	}
	if err := d2.LoadCostModels(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestWritePlanDotPublicAPI(t *testing.T) {
	p := ImputationPlan([][]string{{"a", "b"}}, []string{"c"}, 5)
	var buf bytes.Buffer
	if err := WritePlanDot(p, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("digraph plan")) {
		t.Fatal("dot output malformed")
	}
}

// weightedVote is a user-defined combiner (the paper: "the user can
// introduce new combiners to the system"): tables score by the sum of
// their per-input ranks, inverted so earlier ranks count more.
type weightedVote struct{ k int }

func (w *weightedVote) Kind() core.CombinerKind { return core.Counter }
func (w *weightedVote) TopK() int               { return w.k }
func (w *weightedVote) MinInputs() int          { return 1 }
func (w *weightedVote) MaxInputs() int          { return -1 }
func (w *weightedVote) Combine(inputs []Hits) Hits {
	score := map[int32]float64{}
	for _, in := range inputs {
		for rank, h := range in {
			score[h.TableID] += 1 / float64(rank+1)
		}
	}
	var out Hits
	for id, s := range score {
		out = append(out, TableHit{TableID: id, Score: s})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].TableID < out[b].TableID
	})
	if len(out) > w.k {
		out = out[:w.k]
	}
	return out
}

func TestCustomCombinerThroughPublicAPI(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables())
	p := NewPlan()
	p.MustAddSeeker("kw", KW([]string{"Firenze", "2024"}, 10))
	p.MustAddSeeker("sc", SC(deps, 10))
	p.MustAddCombiner("vote", &weightedVote{k: 2}, "kw", "sc")
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("custom combiner result = %v", res.Tables)
	}
	// kw ranks T3 first; sc ties T2/T3 with T2 ahead on the id tie
	// break — so the vote ties at 1.5 and T2 (lower id) wins.
	if !reflect.DeepEqual(res.Tables, []string{"T2", "T3"}) {
		t.Fatalf("vote ranking = %v", res.Tables)
	}
}

func TestShardedIndexPublicAPI(t *testing.T) {
	mono := IndexTables(ColumnStore, fig1Tables())
	shard := IndexTables(ColumnStore, fig1Tables(), WithShards(4))
	if mono.NumShards() != 1 || shard.NumShards() != 4 {
		t.Fatalf("shard counts: mono=%d shard=%d", mono.NumShards(), shard.NumShards())
	}
	p := NegativeExamplesPlan(
		[][]string{{"HR", "Firenze"}},
		[][]string{{"IT", "Tom Riddle"}},
		10,
	)
	p.MustAddSeeker("dep", SC(deps, 10))
	p.MustAddCombiner("intersect", Intersect(10), "exclude", "dep")
	ref, err := mono.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shard.Run(context.Background(), p, WithMaxWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Tables, got.Tables) {
		t.Fatalf("sharded parallel run %v != monolithic %v", got.Tables, ref.Tables)
	}
	if !reflect.DeepEqual(ref.NodeHits, got.NodeHits) {
		t.Fatal("sharded parallel NodeHits differ from monolithic sequential")
	}
}

// TestPersistenceRegressionBothFormats round-trips SaveIndex/OpenIndex for
// both physical layouts and both file formats (v1 monolithic, v2 sharded),
// including incremental AddTable after load.
func TestPersistenceRegressionBothFormats(t *testing.T) {
	dir := t.TempDir()
	for _, layout := range []Layout{ColumnStore, RowStore} {
		for _, shards := range []int{1, 3} {
			name := fmt.Sprintf("l%d-s%d.blend", layout, shards)
			d := IndexTables(layout, fig1Tables(), WithShards(shards))
			path := filepath.Join(dir, name)
			if err := d.SaveIndex(path); err != nil {
				t.Fatal(err)
			}
			back, err := OpenIndex(path)
			if err != nil {
				t.Fatal(err)
			}
			if back.NumShards() != shards {
				t.Fatalf("%s: shards = %d after reload", name, back.NumShards())
			}
			h1, err := d.Seek(context.Background(), KW([]string{"Firenze", "IT"}, 5))
			if err != nil {
				t.Fatal(err)
			}
			h2, err := back.Seek(context.Background(), KW([]string{"Firenze", "IT"}, 5))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(h1, h2) {
				t.Fatalf("%s: reloaded index answers differently", name)
			}
			// Incremental maintenance must keep working on the loaded
			// index, whichever format it came from.
			nt := NewTable("T9", "Team", "Head")
			nt.MustAppendRow("Astronomy", "Aurora Sinistra")
			back.AddTable(nt)
			hits, err := back.Seek(context.Background(), KW([]string{"Astronomy"}, 5))
			if err != nil {
				t.Fatal(err)
			}
			if len(hits) != 1 || back.TableNames(hits)[0] != "T9" {
				t.Fatalf("%s: AddTable after load not discoverable: %v", name, hits)
			}
			// And the grown index must round-trip again.
			if err := back.SaveIndex(path); err != nil {
				t.Fatal(err)
			}
			again, err := OpenIndex(path)
			if err != nil {
				t.Fatal(err)
			}
			if again.NumTables() != back.NumTables() {
				t.Fatalf("%s: second round trip lost tables", name)
			}
		}
	}
}

// TestRunWithContextPublicAPI exercises context cancellation end to end,
// including the typed-error contract: a canceled run matches ErrCanceled
// and still wraps context.Canceled.
func TestRunWithContextPublicAPI(t *testing.T) {
	d := IndexTables(ColumnStore, fig1Tables(), WithShards(2))
	p := NewPlan()
	p.MustAddSeeker("kw", KW(deps, 5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.Run(ctx, p)
	if err == nil {
		t.Fatal("pre-cancelled context must abort the plan")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run must match ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run must wrap context.Canceled, got %v", err)
	}
	res, err := d.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatal("live context run found nothing")
	}
}
