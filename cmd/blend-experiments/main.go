// Command blend-experiments regenerates the tables and figures of the
// paper's evaluation (§VIII) against the synthetic lakes described in
// DESIGN.md. Run without flags it executes every experiment in paper
// order; -exp selects one, -scale full enlarges the workloads.
//
//	blend-experiments                 # run everything at small scale
//	blend-experiments -exp optimizer  # only Table IV
//	blend-experiments -list           # list experiment ids
//	blend-experiments -scale full     # larger lakes / more queries
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"blend/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	scaleFlag := flag.String("scale", "small", "workload scale: small or full")
	shards := flag.Int("shards", experiments.Shards, "shard count for the sharding experiment")
	workers := flag.Int("workers", experiments.Workers, "scheduler worker pool size (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()
	experiments.Shards = *shards
	experiments.Workers = *workers

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	scale := experiments.Small
	if *scaleFlag == "full" {
		scale = experiments.Full
	}

	run := experiments.All()
	if *exp != "" {
		e := experiments.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "blend-experiments: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		run = []experiments.Experiment{*e}
	}
	ctx := context.Background()
	for _, e := range run {
		start := time.Now()
		rep := e.Run(ctx, scale)
		fmt.Print(rep.String())
		fmt.Printf("   [%s in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
