// Command blend-serve exposes one indexed data lake over HTTP: the
// discovery service counterpart of the in-process API. It loads (or
// builds) an AllTables index once, then answers the versioned JSON API
//
//	POST   /v1/query        execute a declarative plan-JSON document
//	POST   /v1/seek         execute one standalone seeker
//	POST   /v1/sql          raw SQL over the AllTables relation
//	GET    /v1/stats        index statistics + ingest/cache counters
//	POST   /v1/tables       ingest: CSV upload (text/csv, ?name=) or
//	                        server-side dir ingest (JSON {"dir": …};
//	                        requires -allow-dir-ingest)
//	GET    /v1/tables/{id}  reconstruct one indexed table
//	DELETE /v1/tables/{id}  remove (tombstone) one table
//	POST   /v1/compact      reclaim removed tables' index space
//	GET    /healthz         liveness probe
//
// with per-request contexts and timeouts, concurrent request handling
// over the (optionally sharded) store, and structured JSON errors
// carrying the library's typed error codes. Ingestion publishes
// copy-on-write generation snapshots, so it is safe while queries are
// being served — readers never block on writers.
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// Usage:
//
//	blend-serve -index lake.blend [-addr :8080] [-timeout 30s] [-workers N] [-cache N] [-mmap=false]
//	blend-serve -lake DIR [-layout column|row] [-shards N] ...
//	blend-serve ... [-allow-dir-ingest] [-ingest-workers N] [-ingest-batch N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blend"
	"blend/internal/berr"
	"blend/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "blend-serve: error[%s]: %v\n", blend.ErrorCodeOf(err), err)
		if errors.Is(err, blend.ErrBadRequest) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("blend-serve", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{})
	index := fs.String("index", "", "index file built by `blend index`")
	lake := fs.String("lake", "", "directory of CSV tables to index at startup (alternative to -index)")
	layout := fs.String("layout", "column", "physical layout for -lake: column or row")
	shards := fs.Int("shards", 1, "hash-partition a -lake index across N shards")
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request execution bound (0 = none)")
	workers := fs.Int("workers", 0, "run every plan on the concurrent scheduler with this worker bound (0 = sequential unless the request opts in)")
	cache := fs.Int("cache", 512, "seeker result cache entries, invalidated on index mutation (0 = disabled)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain period")
	allowDirIngest := fs.Bool("allow-dir-ingest", false, "allow POST /v1/tables to bulk-load CSV directories from the server's filesystem (off by default: it lets any client read server-side CSV files)")
	ingestWorkers := fs.Int("ingest-workers", 0, "parallelism for ingest parsing and per-shard inserts (0 = GOMAXPROCS)")
	ingestBatch := fs.Int("ingest-batch", 0, "tables per atomic ingest commit batch (0 = library default)")
	noNative := fs.Bool("no-native", false, "force the SQL interpreter for every seeker (A/B against path=native in /v1/query explain output)")
	mmap := fs.Bool("mmap", true, "memory-map a v4 -index with lazy shard loading (false = eager load)")
	retain := fs.Int("retain", 0, "generations kept addressable for as_of_generation time travel (0 = library default)")
	wal := fs.String("wal", "", "write-ahead log file: replayed at startup, appended per mutation (crash recovery between saves)")
	if err := fs.Parse(args); err != nil {
		return berr.New(berr.CodeBadRequest, "serve.flags", "%v", err)
	}
	if fs.NArg() > 0 {
		return berr.New(berr.CodeBadRequest, "serve.flags", "unexpected arguments %q", fs.Args())
	}

	d, err := openLake(*index, *lake, *layout, *shards, *noNative, *mmap)
	if err != nil {
		return err
	}
	if *cache > 0 {
		d.SetResultCache(*cache)
	}
	if *retain > 0 {
		d.SetRetention(*retain)
	}
	if *wal != "" {
		closeWAL, err := d.EnableWAL(*wal)
		if err != nil {
			return err
		}
		defer closeWAL()
		log.Printf("write-ahead log at %s (generation %d after replay)", *wal, d.Generation())
	}
	st := d.Stats()
	if st.MappedBytes > 0 {
		log.Printf("serving %d tables across %d shard(s), %d bytes mapped (%d/%d shards resident), result cache %d entries",
			d.LiveTables(), d.NumShards(), st.MappedBytes, st.ResidentShards, st.Shards, *cache)
	} else {
		log.Printf("serving %d tables across %d shard(s), ~%d index bytes, result cache %d entries",
			d.LiveTables(), d.NumShards(), d.IndexSizeBytes(), *cache)
	}

	svc := service.New(d, service.Options{
		DefaultTimeout:  *timeout,
		MaxWorkers:      *workers,
		AllowDirIngest:  *allowDirIngest,
		IngestWorkers:   *ingestWorkers,
		IngestBatchSize: *ingestBatch,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("bye")
	return nil
}

// openLake resolves the serving lake from -index or -lake.
func openLake(index, lake, layout string, shards int, noNative, mmap bool) (*blend.Discovery, error) {
	var opts []blend.IndexOption
	if noNative {
		opts = append(opts, blend.WithoutNativeExec())
	}
	switch {
	case index != "" && lake != "":
		return nil, berr.New(berr.CodeBadRequest, "serve.flags", "-index and -lake are mutually exclusive")
	case index != "":
		return blend.OpenIndex(index, append(opts, blend.WithMmap(mmap))...)
	case lake != "":
		l := blend.ColumnStore
		switch layout {
		case "column":
		case "row":
			l = blend.RowStore
		default:
			return nil, berr.New(berr.CodeBadRequest, "serve.flags", "unknown -layout %q (want column or row)", layout)
		}
		return blend.IndexCSVDir(l, lake, append(opts, blend.WithShards(shards))...)
	default:
		return nil, berr.New(berr.CodeBadRequest, "serve.flags", "one of -index or -lake is required")
	}
}
