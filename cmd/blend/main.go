// Command blend is the BLEND command-line interface: it indexes a CSV data
// lake into the unified AllTables index, runs individual seekers against
// it, executes raw SQL on the index relation, and demonstrates the paper's
// running example.
//
// Usage:
//
//	blend index -lake DIR -out FILE [-layout column|row]
//	blend seek  -index FILE -op sc|kw -values v1,v2,… [-k 10]
//	blend seek  -index FILE -op mc -tuples "a|b,c|d" [-k 10]
//	blend sql   -index FILE -query "SELECT … FROM AllTables …"
//	blend index -out FILE -inspect
//	blend demo
//
// Failures print one structured line — blend: error[<code>]: <detail> —
// and exit non-zero: 2 for usage errors (bad subcommand, bad flags,
// missing required flags), 1 for runtime errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"blend"
	"blend/internal/berr"
	"blend/internal/storage"
)

func main() {
	// A memory-mapped index that fails a section checksum at first touch
	// panics with a typed bad_index error (the Reader surface has no error
	// returns). Contain exactly that case into the standard error line;
	// anything else stays a loud panic.
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && berr.CodeOf(err) == berr.CodeBadIndex {
				fail(err)
			}
			panic(r)
		}
	}()
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "index":
		err = cmdIndex(os.Args[2:])
	case "seek":
		err = cmdSeek(os.Args[2:])
	case "sql":
		err = cmdSQL(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "demo":
		err = cmdDemo()
	case "-h", "--help", "help":
		usage()
	default:
		fail(berr.New(berr.CodeBadRequest, "cli", "unknown command %q", os.Args[1]))
	}
	if err != nil {
		fail(err)
	}
}

// fail prints one structured error line and exits: usage-class errors
// (bad flags, bad requests) exit 2, runtime errors exit 1.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "blend: error[%s]: %s\n", blend.ErrorCodeOf(err), errDetail(err))
	if errors.Is(err, blend.ErrBadRequest) {
		usage()
		os.Exit(2)
	}
	os.Exit(1)
}

// errDetail strips the code prefix a typed error already renders, so the
// structured line shows each fact once.
func errDetail(err error) string {
	var te *blend.Error
	if errors.As(err, &te) {
		msg := te.Error()
		return strings.TrimPrefix(msg, te.Code.String()+": ")
	}
	return err.Error()
}

// parseFlags parses a subcommand flag set, converting flag errors into
// typed bad-request errors so main can exit with a structured message and
// status 2 instead of flag's mixed usage output.
func parseFlags(fs *flag.FlagSet, args []string) error {
	fs.SetOutput(&strings.Builder{}) // suppress flag's own usage dump
	if err := fs.Parse(args); err != nil {
		return berr.New(berr.CodeBadRequest, "cli."+fs.Name(), "%v", err)
	}
	if fs.NArg() > 0 {
		return berr.New(berr.CodeBadRequest, "cli."+fs.Name(), "unexpected arguments %q", fs.Args())
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  blend index -lake DIR -out FILE [-layout column|row] [-shards N]
                                                         build the unified index
  blend index -lake DIR -out FILE -append [-workers N] [-batch N]
                                                         bulk-append DIR to an existing index
  blend index -out FILE -inspect                         print a v4 index's segment directory
  blend seek  -index FILE -op sc|kw -values v1,v2,...    single-column / keyword search
  blend seek  -index FILE -op mc -tuples "a|b,c|d"       multi-column join search
  blend sql   -index FILE -query "SELECT ..."            raw SQL on AllTables
  blend plan  -index FILE -file plan.json [-no-opt] [-parallel] [-workers N] [-timeout D] [-explain] [-no-native]
                                                         run a JSON discovery plan
  blend stats -index FILE                                index statistics
  blend demo                                             run the paper's Example 1
seek, sql, and plan open v4 index files memory-mapped with lazy shard
loading; pass -mmap=false to load eagerly (A/B timing).`)
}

// indexOptions maps the -no-native and -mmap flags to the engine options
// OpenIndex applies: the SQL interpreter serves every seeker (for A/B runs
// against path=native output), and mmap=false forces the eager loader (for
// A/B runs against the default lazy-mapped open).
func indexOptions(noNative, mmap bool) []blend.IndexOption {
	var opts []blend.IndexOption
	if noNative {
		opts = append(opts, blend.WithoutNativeExec())
	}
	opts = append(opts, blend.WithMmap(mmap))
	return opts
}

// queryContext derives the context for one CLI query: Background, bounded
// by -timeout when positive.
func queryContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.Background(), func() {}
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	index := fs.String("index", "", "index file built by `blend index`")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *index == "" {
		return berr.New(berr.CodeBadRequest, "cli.stats", "-index is required")
	}
	// Stats scan the whole index, so a lazy open would materialize
	// everything anyway; load eagerly for exact content figures.
	d, err := blend.OpenIndex(*index, blend.WithMmap(false))
	if err != nil {
		return err
	}
	st := d.Stats()
	fmt.Printf("layout:               %v\n", st.Layout)
	fmt.Printf("shards:               %d\n", st.Shards)
	fmt.Printf("tables:               %d (avg %.1f cols × %.1f rows)\n",
		st.Tables, st.AvgColumnsPerTbl, st.AvgRowsPerTable)
	fmt.Printf("index entries:        %d\n", st.Entries)
	fmt.Printf("distinct values:      %d (%d dictionary bytes)\n", st.DistinctValues, st.DictBytes)
	fmt.Printf("numeric cells:        %d (with quadrant bits)\n", st.NumericCells)
	fmt.Printf("posting lists:        avg %.2f, max %d\n", st.AvgPostingLength, st.MaxPostingLength)
	fmt.Printf("estimated footprint:  %d bytes\n", st.EstimatedBytes)
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	index := fs.String("index", "", "index file built by `blend index`")
	file := fs.String("file", "", "JSON plan document")
	noOpt := fs.Bool("no-opt", false, "disable the optimizer (B-NO)")
	parallel := fs.Bool("parallel", false, "execute the plan on the concurrent DAG scheduler")
	workers := fs.Int("workers", 0, "worker pool size for -parallel (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort the plan after this duration (0 = none)")
	profile := fs.Bool("profile", false, "print a per-node execution profile")
	explain := fs.Bool("explain", false, "print the SQL executed per seeker, rewrites included")
	noNative := fs.Bool("no-native", false, "force the SQL interpreter (A/B against path=native under -explain)")
	mmap := fs.Bool("mmap", true, "memory-map a v4 index with lazy shard loading (false = eager load)")
	asOf := fs.Uint64("as-of", 0, "execute against this retained generation instead of the current one (0 = current)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *index == "" || *file == "" {
		return berr.New(berr.CodeBadRequest, "cli.plan", "-index and -file are required")
	}
	d, err := blend.OpenIndex(*index, indexOptions(*noNative, *mmap)...)
	if err != nil {
		return err
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	p, err := blend.ParsePlanJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	var opts []blend.RunOption
	if *noOpt {
		opts = append(opts, blend.WithoutOptimizer())
	}
	if *parallel || *workers > 0 {
		opts = append(opts, blend.WithMaxWorkers(*workers))
	}
	if *timeout > 0 {
		opts = append(opts, blend.WithDeadline(*timeout))
	}
	if *explain {
		opts = append(opts, blend.WithExplain())
	}
	if *asOf > 0 {
		opts = append(opts, blend.WithAsOf(*asOf))
	}
	res, err := d.Run(context.Background(), p, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("plan: %v\nseeker order: %v\nduration: %v\n", p, res.SeekerOrder, res.Duration)
	if *profile {
		fmt.Print(res.Profile())
	}
	if *explain {
		for _, id := range res.SeekerOrder {
			fmt.Printf("node[%s]: path=%s sql: %s\n", id, res.PathByNode[id], res.SQLByNode[id])
		}
	}
	for i, name := range res.Tables {
		fmt.Printf("%2d. %-30s score=%s\n", i+1, name, strconv.FormatFloat(res.Output[i].Score, 'g', 4, 64))
	}
	if len(res.Tables) == 0 {
		fmt.Println("no matching tables")
	}
	return nil
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ContinueOnError)
	lakeDir := fs.String("lake", "", "directory of CSV tables")
	out := fs.String("out", "lake.blend", "output index file")
	layout := fs.String("layout", "column", "physical layout: column or row")
	shards := fs.Int("shards", 1, "hash-partition the index across N shards")
	appendMode := fs.Bool("append", false, "append -lake to the existing index at -out instead of rebuilding (bulk ingest; -layout/-shards come from the existing index)")
	workers := fs.Int("workers", 0, "ingest parallelism for -append: CSV parsers and per-shard inserts (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "tables per atomic ingest commit batch for -append (0 = library default)")
	timeout := fs.Duration("timeout", 0, "abort an -append ingest after this duration (0 = none)")
	inspect := fs.Bool("inspect", false, "print the segment directory of the v4 index at -out and exit")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *inspect {
		return inspectIndex(*out)
	}
	if *lakeDir == "" {
		return berr.New(berr.CodeBadRequest, "cli.index", "-lake is required")
	}
	if *appendMode {
		d, err := blend.OpenIndex(*out)
		if err != nil {
			return err
		}
		ctx, cancel := queryContext(*timeout)
		defer cancel()
		report, err := d.IngestCSVDir(ctx, *lakeDir,
			blend.WithIngestWorkers(*workers), blend.WithIngestBatchSize(*batch))
		if err != nil {
			return err
		}
		if err := d.SaveIndex(*out); err != nil {
			return err
		}
		fmt.Printf("appended %d tables (%d rows) in %d batch(es) in %v (%.0f tables/s) -> %s now holds %d tables\n",
			report.TablesAdded, report.RowsAdded, report.Batches, report.Duration.Round(time.Millisecond),
			report.Throughput(), *out, d.LiveTables())
		return nil
	}
	l := blend.ColumnStore
	switch *layout {
	case "column":
	case "row":
		l = blend.RowStore
	default:
		return berr.New(berr.CodeBadRequest, "cli.index", "unknown -layout %q (want column or row)", *layout)
	}
	d, err := blend.IndexCSVDir(l, *lakeDir, blend.WithShards(*shards))
	if err != nil {
		return err
	}
	if err := d.SaveIndex(*out); err != nil {
		return err
	}
	fmt.Printf("indexed %d tables into %d shard(s) (%d bytes) -> %s\n",
		d.NumTables(), d.NumShards(), d.IndexSizeBytes(), *out)
	return nil
}

// inspectIndex prints a v4 index file's footer directory: per-shard
// section sizes, tombstone counts, and the postings compression ratio
// against the uncompressed legacy encoding. It reads only the footer and
// the small eager sections, never materializing a shard.
func inspectIndex(path string) error {
	info, err := storage.InspectFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("index:    %s (%d bytes, version 4, %s, layout %v)\n", path, info.FileBytes, info.Kind, info.Layout)
	fmt.Printf("tables:   %d (%d tombstoned)\n", info.Tables, info.Tombstones)
	fmt.Printf("entries:  %d across %d shard(s)\n", info.Entries, len(info.Shards))
	entryBytes := info.EntryBytes()
	if entryBytes > 0 {
		fmt.Printf("postings: %d bytes on disk vs %d raw (%.2fx compression)\n",
			entryBytes, info.RawEntryBytes(), float64(info.RawEntryBytes())/float64(entryBytes))
	}
	fmt.Printf("footer:   offset %d, refs %d bytes\n\n", info.FooterOff, info.RefsBytes)
	fmt.Printf("%5s %8s %6s %9s | %8s %8s %9s %8s %7s %6s\n",
		"shard", "tables", "dead", "entries", "catalog", "dict", "postings", "super", "ranges", "tombs")
	for i, sh := range info.Shards {
		fmt.Printf("%5d %8d %6d %9d |", i, sh.Tables, sh.Tombstones, sh.Entries)
		for _, sec := range sh.Sections {
			switch sec.Name {
			case "catalog", "dict", "super":
				fmt.Printf(" %8d", sec.Bytes)
			case "postings":
				fmt.Printf(" %9d", sec.Bytes)
			case "ranges":
				fmt.Printf(" %7d", sec.Bytes)
			case "tombstones":
				fmt.Printf(" %6d", sec.Bytes)
			}
		}
		fmt.Println()
	}
	return nil
}

func cmdSeek(args []string) error {
	fs := flag.NewFlagSet("seek", flag.ContinueOnError)
	index := fs.String("index", "", "index file built by `blend index`")
	op := fs.String("op", "sc", "seeker: sc, kw, or mc")
	values := fs.String("values", "", "comma-separated input values (sc/kw)")
	tuples := fs.String("tuples", "", "comma-separated tuples of |-separated values (mc)")
	k := fs.Int("k", 10, "top-k result size")
	preview := fs.Int("preview", 0, "print the first N rows of each result table")
	timeout := fs.Duration("timeout", 0, "abort the search after this duration (0 = none)")
	noNative := fs.Bool("no-native", false, "force the SQL interpreter instead of the native fast path")
	mmap := fs.Bool("mmap", true, "memory-map a v4 index with lazy shard loading (false = eager load)")
	asOf := fs.Uint64("as-of", 0, "seek against this retained generation instead of the current one (0 = current)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *index == "" {
		return berr.New(berr.CodeBadRequest, "cli.seek", "-index is required")
	}
	if *k <= 0 {
		return berr.New(berr.CodeBadRequest, "cli.seek", "-k must be positive, got %d", *k)
	}
	d, err := blend.OpenIndex(*index, indexOptions(*noNative, *mmap)...)
	if err != nil {
		return err
	}
	var seeker blend.Seeker
	switch *op {
	case "sc":
		seeker = blend.SC(splitList(*values), *k)
	case "kw":
		seeker = blend.KW(splitList(*values), *k)
	case "mc":
		var rows [][]string
		for _, t := range splitList(*tuples) {
			rows = append(rows, strings.Split(t, "|"))
		}
		if len(rows) == 0 {
			return berr.New(berr.CodeBadRequest, "cli.seek", "-tuples is required for mc")
		}
		seeker = blend.MC(rows, *k)
	default:
		return berr.New(berr.CodeBadRequest, "cli.seek", "unknown op %q", *op)
	}
	ctx, cancel := queryContext(*timeout)
	defer cancel()
	var seekOpts []blend.RunOption
	if *asOf > 0 {
		seekOpts = append(seekOpts, blend.WithAsOf(*asOf))
	}
	hits, err := d.Seek(ctx, seeker, seekOpts...)
	if err != nil {
		return err
	}
	names := d.TableNames(hits)
	for i, h := range hits {
		fmt.Printf("%2d. %-30s score=%s\n", i+1, names[i], strconv.FormatFloat(h.Score, 'g', 4, 64))
		if *preview > 0 {
			if err := d.TableByID(h.TableID).Format(os.Stdout, *preview); err != nil {
				return err
			}
		}
	}
	if len(hits) == 0 {
		fmt.Println("no matching tables")
	}
	return nil
}

func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ContinueOnError)
	index := fs.String("index", "", "index file built by `blend index`")
	query := fs.String("query", "", "SQL over the AllTables relation")
	limit := fs.Int("print", 50, "maximum rows to print")
	explain := fs.Bool("explain", false, "print the execution plan instead of results")
	timeout := fs.Duration("timeout", 0, "abort the query after this duration (0 = none)")
	mmap := fs.Bool("mmap", true, "memory-map a v4 index with lazy shard loading (false = eager load)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *index == "" || *query == "" {
		return berr.New(berr.CodeBadRequest, "cli.sql", "-index and -query are required")
	}
	d, err := blend.OpenIndex(*index, blend.WithMmap(*mmap))
	if err != nil {
		return err
	}
	if *explain {
		out, err := d.Engine().ExplainRawSQL(*query)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	ctx, cancel := queryContext(*timeout)
	defer cancel()
	res, err := d.Engine().ExecRawSQL(ctx, *query)
	if err != nil {
		return err
	}
	fmt.Println(strings.Join(res.Columns(), "\t"))
	for r := 0; r < res.NumRows() && r < *limit; r++ {
		cells := make([]string, len(res.Columns()))
		for c := range cells {
			cells[c] = res.Cell(r, c).String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	if res.NumRows() > *limit {
		fmt.Printf("... (%d rows total)\n", res.NumRows())
	}
	return nil
}

// cmdDemo runs Example 1 of the paper on the Fig. 1 lake.
func cmdDemo() error {
	t1 := blend.NewTable("T1", "Team", "Size")
	for _, r := range [][2]string{{"Finance", "31"}, {"Marketing", "28"}, {"HR", "33"}, {"IT", "92"}, {"Sales", "80"}} {
		t1.MustAppendRow(r[0], r[1])
	}
	mk := func(name, year string, itLead string) *blend.Table {
		t := blend.NewTable(name, "Lead", "Year", "Team")
		rows := [][2]string{
			{itLead, "IT"}, {"Draco Malfoy", "Marketing"}, {"Harry Potter", "Finance"},
			{"Cho Chang", "R&D"}, {"Luna Lovegood", "Sales"}, {"Firenze", "HR"},
		}
		for _, r := range rows {
			t.MustAppendRow(r[0], year, r[1])
		}
		return t
	}
	lake := []*blend.Table{t1, mk("T2", "2022", "Tom Riddle"), mk("T3", "2024", "Ronald Weasley")}
	for _, t := range lake {
		t.InferKinds()
	}
	d := blend.IndexTables(blend.ColumnStore, lake)

	fmt.Println("Example 1: find up-to-date tables to fill the Head column of S")
	fmt.Println(`  positives: ("HR","Firenze")   negatives: ("IT","Tom Riddle")`)
	p := blend.NegativeExamplesPlan(
		[][]string{{"HR", "Firenze"}},
		[][]string{{"IT", "Tom Riddle"}}, 10)
	p.MustAddSeeker("dep", blend.SC([]string{"HR", "Marketing", "Finance", "IT", "R&D", "Sales"}, 10))
	p.MustAddCombiner("intersect", blend.Intersect(10), "exclude", "dep")
	res, err := d.Run(context.Background(), p)
	if err != nil {
		return err
	}
	fmt.Printf("  answer: %v (expected [T3])\n", res.Tables)
	fmt.Printf("  seekers executed in order %v with optimizer rewrites\n", res.SeekerOrder)
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
