// Command blendlint runs BLEND's in-tree invariant suite (see
// internal/lint): berrcheck, ctxflow, lockguard, mmapref, poolcheck.
//
// Standalone (what make lint uses):
//
//	blendlint ./...                 # analyze packages, report findings
//	blendlint -fix ./...            # additionally apply suggested fixes
//	blendlint -only berrcheck ./... # run a subset of the suite
//	blendlint -list                 # describe the analyzers
//
// The binary also speaks the vet unitchecker protocol (-V=full version
// handshake plus JSON .cfg package units), so it works as
//
//	go vet -vettool=$(which blendlint) ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/format"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"blend/internal/lint"
)

func main() {
	// Vet protocol: `blendlint -V=full` prints an identity line keyed to
	// the executable's content so go vet can cache results.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Println(versionLine())
		return
	}
	// Vet protocol: `blendlint -flags` describes tool flags; the suite
	// takes none through vet, so the set is empty.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	var (
		fixFlag  = flag.Bool("fix", false, "apply suggested fixes (berrcheck rewrites)")
		onlyFlag = flag.String("only", "", "comma-separated analyzer subset to run")
		listFlag = flag.Bool("list", false, "list the analyzers and exit")
		pkgsFlag = flag.String("berrcheck.pkgs", "", "comma-separated import-path suffixes berrcheck applies to (default: the typed-error packages)")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	if *pkgsFlag != "" {
		lint.BerrcheckPackages = strings.Split(*pkgsFlag, ",")
	}
	analyzers := lint.All()
	if *onlyFlag != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*onlyFlag, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "blendlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	// Vet protocol: a single *.cfg argument is a unitchecker package unit.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers, *fixFlag))
}

func versionLine() string {
	sum := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum = sha256.Sum256(data)
		}
	}
	return fmt.Sprintf("blendlint version devel buildID=%x", sum[:8])
}

// runStandalone loads patterns with the go tool and runs the suite.
func runStandalone(patterns []string, analyzers []*lint.Analyzer, fix bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "blendlint:", err)
		return 2
	}
	pkgs, fset, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blendlint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, fset, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blendlint:", err)
		return 2
	}
	if fix {
		fixed, err := applyFixes(fset, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blendlint:", err)
			return 2
		}
		for _, f := range fixed {
			fmt.Fprintf(os.Stderr, "blendlint: fixed %s\n", f)
		}
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// applyFixes rewrites source files with the diagnostics' suggested edits
// (first fix per diagnostic), gofmt-ing the result. Returns the touched
// file names.
func applyFixes(fset *token.FileSet, diags []lint.Diagnostic) ([]string, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			pos := fset.Position(e.Pos)
			end := fset.Position(e.End)
			if pos.Filename == "" || pos.Filename != end.Filename {
				continue
			}
			perFile[pos.Filename] = append(perFile[pos.Filename],
				edit{start: pos.Offset, end: end.Offset, text: e.NewText})
		}
	}
	var files []string
	for name, edits := range perFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("fix out of range in %s", name)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
		}
		if formatted, err := format.Source(src); err == nil {
			src = formatted
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return nil, err
		}
		files = append(files, name)
	}
	sort.Strings(files)
	return files, nil
}

// vetConfig is the subset of vet's unitchecker JSON config blendlint
// reads.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// runUnit analyzes one vet package unit described by a .cfg file.
func runUnit(cfgFile string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blendlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "blendlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The suite exports no facts, but vet requires the output file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "blendlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blendlint:", err)
			return 2
		}
		syntax = append(syntax, af)
	}
	info := lint.NewInfo()
	conf := &types.Config{
		Importer: newUnitImporter(fset, &cfg),
		Error:    func(error) {},
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blendlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Name:    tpkg.Name(),
		Dir:     cfg.Dir,
		GoFiles: cfg.GoFiles,
		Syntax:  syntax,
		Types:   tpkg,
		Info:    info,
	}
	diags, err := lint.Run([]*lint.Package{pkg}, fset, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "blendlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// unitImporter resolves imports through the vet config's vendor map and
// per-package export data files. One gc importer instance serves the
// whole unit: the importer's internal cache is what unifies a package
// imported both directly and transitively through another package's
// export data — per-import instances would produce two distinct
// types.Package values for the same path ("context.Context does not
// implement context.Context").
type unitImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newUnitImporter(fset *token.FileSet, cfg *vetConfig) *unitImporter {
	lookup := func(p string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[p]; ok {
			p = mapped
		}
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	}
	return &unitImporter{cfg: cfg, gc: importer.ForCompiler(fset, "gc", lookup)}
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := u.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return u.gc.Import(path)
}
