package blend

import "blend/internal/berr"

// Error is BLEND's typed error: a stable Code for programmatic dispatch,
// the operation that failed, and a human-readable detail. Every failure
// surfaced by the public API — plan validation, seeker execution, raw SQL,
// index persistence, cost models — is (or wraps) an *Error, so callers
// use errors.Is against the sentinels below, or errors.As to inspect the
// fields, instead of matching message strings:
//
//	res, err := d.Run(ctx, plan)
//	switch {
//	case errors.Is(err, blend.ErrCanceled):   // the caller's ctx fired
//	case errors.Is(err, blend.ErrBadPlan):    // the plan never executed
//	}
//
// The HTTP service (cmd/blend-serve) maps these codes onto statuses and
// JSON error bodies mechanically, so library and wire errors agree.
type Error = berr.Error

// ErrorCode classifies an Error. Its String form is the stable wire name
// used by the HTTP service ("bad_plan", "canceled", …).
type ErrorCode = berr.Code

// Error codes.
const (
	// CodeUnknown marks unclassified errors.
	CodeUnknown = berr.CodeUnknown
	// CodeBadPlan reports a structurally invalid plan or plan document.
	CodeBadPlan = berr.CodeBadPlan
	// CodeUnknownNode reports a reference to an undeclared plan node id.
	CodeUnknownNode = berr.CodeUnknownNode
	// CodeCanceled reports execution aborted by context cancellation.
	CodeCanceled = berr.CodeCanceled
	// CodeDeadline reports execution aborted by a context deadline.
	CodeDeadline = berr.CodeDeadline
	// CodeNoCostModel reports cost-model use before training.
	CodeNoCostModel = berr.CodeNoCostModel
	// CodeBadQuery reports a rejected raw SQL statement.
	CodeBadQuery = berr.CodeBadQuery
	// CodeBadIndex reports a corrupt or unreadable index file.
	CodeBadIndex = berr.CodeBadIndex
	// CodeBadRequest reports an invalid service request or CLI call.
	CodeBadRequest = berr.CodeBadRequest
	// CodeNotFound reports a lookup of a missing resource.
	CodeNotFound = berr.CodeNotFound
	// CodeInternal reports an engine invariant violation.
	CodeInternal = berr.CodeInternal
	// CodeDuplicateTable reports an ingest whose table name is already
	// indexed (or repeated within one batch).
	CodeDuplicateTable = berr.CodeDuplicateTable
	// CodeGenerationGone reports a time-travel query (WithAsOf,
	// SnapshotAt) pinned to a generation outside the retention window.
	CodeGenerationGone = berr.CodeGenerationGone
)

// Sentinel errors for errors.Is dispatch, one per code.
var (
	// ErrBadPlan matches structurally invalid plans: empty or cyclic
	// DAGs, duplicate ids, malformed plan JSON, k <= 0 in documents.
	ErrBadPlan = berr.ErrBadPlan
	// ErrUnknownNode matches references to node ids that do not exist.
	ErrUnknownNode = berr.ErrUnknownNode
	// ErrCanceled matches executions aborted by context cancellation;
	// such errors also wrap context.Canceled.
	ErrCanceled = berr.ErrCanceled
	// ErrDeadlineExceeded matches executions aborted by a context
	// deadline (including WithDeadline run options); such errors also
	// wrap context.DeadlineExceeded.
	ErrDeadlineExceeded = berr.ErrDeadlineExceeded
	// ErrNoCostModel matches cost-model operations before training.
	ErrNoCostModel = berr.ErrNoCostModel
	// ErrBadQuery matches raw SQL the embedded engine rejects.
	ErrBadQuery = berr.ErrBadQuery
	// ErrBadIndex matches corrupt or unreadable persisted indexes.
	ErrBadIndex = berr.ErrBadIndex
	// ErrBadRequest matches invalid service requests and CLI usage.
	ErrBadRequest = berr.ErrBadRequest
	// ErrNotFound matches lookups of resources that do not exist.
	ErrNotFound = berr.ErrNotFound
	// ErrInternal matches engine invariant violations.
	ErrInternal = berr.ErrInternal
	// ErrDuplicateTable matches ingests rejected because a table name is
	// already indexed or repeated within the batch.
	ErrDuplicateTable = berr.ErrDuplicateTable
	// ErrGenerationGone matches time-travel queries pinned to a
	// generation that has fallen out of (or never entered) the retention
	// window; the service maps it to HTTP 410 Gone.
	ErrGenerationGone = berr.ErrGenerationGone
)

// ErrorCodeOf extracts the code of the first typed error in err's chain,
// or CodeUnknown when it carries none. Bare context errors classify as
// canceled / deadline-exceeded.
func ErrorCodeOf(err error) ErrorCode { return berr.CodeOf(err) }
