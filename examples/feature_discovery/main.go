// Feature discovery: enrich an ML training table with a new correlated
// feature column from the lake while avoiding multicollinearity with
// features the model already has — the task of §VIII-B4.
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"

	"blend"
)

func main() {
	ctx := context.Background()
	// The lake: a table whose Income column tracks the prediction target,
	// a table duplicating a feature we already own (multicollinear), and
	// an unrelated noise table.
	n := 30
	districts := make([]string, n)
	for i := range districts {
		districts[i] = "district-" + strconv.Itoa(i)
	}
	income := blend.NewTable("census_income", "District", "Income")
	schooling := blend.NewTable("school_years", "District", "Years") // ≈ owned feature
	noise := blend.NewTable("lottery_draws", "District", "Number")
	for i, dst := range districts {
		income.MustAppendRow(dst, strconv.Itoa(1000+i*50))      // grows with target
		schooling.MustAppendRow(dst, strconv.Itoa(8+(i*13%17))) // tracks owned feature
		noise.MustAppendRow(dst, strconv.Itoa((i*7919+31)%997)) // noise
	}
	lake := []*blend.Table{income, schooling, noise}
	for _, t := range lake {
		t.InferKinds()
	}
	d := blend.IndexTables(blend.ColumnStore, lake)

	// The model's target grows linearly across districts; its existing
	// feature is the schooling pattern.
	target := make([]float64, n)
	owned := make([]float64, n)
	for i := range target {
		target[i] = float64(i)
		owned[i] = float64(8 + (i * 13 % 17))
	}
	joinRows := [][]string{{districts[0]}, {districts[1]}, {districts[2]}}

	plan := blend.FeatureDiscoveryPlan(districts, target, [][]float64{owned}, joinRows, 1)
	res, err := d.Run(ctx, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new feature tables (correlated with target, not with owned features): %v\n", res.Tables)
	fmt.Println("per-node results:")
	for _, id := range plan.NodeIDs() {
		fmt.Printf("  %-18s -> %v\n", id, d.TableNames(res.NodeHits[id]))
	}
}
