// Imputation: fill missing values in a table by discovering lake tables
// that contain both the complete example rows and the incomplete rows'
// known values — the example-based data imputation task of §VIII-B3,
// built on functional dependencies between columns.
package main

import (
	"context"
	"fmt"
	"log"

	"blend"
)

func main() {
	ctx := context.Background()
	// The user's table: country ↦ capital, with holes.
	user := blend.NewTable("my_countries", "Country", "Capital")
	user.MustAppendRow("france", "paris")
	user.MustAppendRow("japan", "tokyo")
	user.MustAppendRow("brazil", "") // missing
	user.MustAppendRow("kenya", "")  // missing
	user.MustAppendRow("norway", "") // missing

	// The lake: one complete reference table, one stale/partial table, one
	// unrelated table.
	complete := blend.NewTable("world_capitals", "Nation", "City")
	for _, r := range [][2]string{
		{"france", "paris"}, {"japan", "tokyo"}, {"brazil", "brasilia"},
		{"kenya", "nairobi"}, {"norway", "oslo"}, {"chile", "santiago"},
	} {
		complete.MustAppendRow(r[0], r[1])
	}
	partial := blend.NewTable("europe_only", "Nation", "City")
	partial.MustAppendRow("france", "paris")
	partial.MustAppendRow("norway", "oslo")
	unrelated := blend.NewTable("populations", "Nation", "Pop")
	unrelated.MustAppendRow("france", "68")
	unrelated.MustAppendRow("japan", "124")
	lake := []*blend.Table{complete, partial, unrelated}
	for _, t := range lake {
		t.InferKinds()
	}
	d := blend.IndexTables(blend.ColumnStore, lake)

	// Complete rows become MC examples; the known halves of incomplete
	// rows become the SC query (the data-imputation sub-plan of Fig. 4).
	examples := [][]string{{"france", "paris"}, {"japan", "tokyo"}}
	known := []string{"brazil", "kenya", "norway"}
	plan := blend.ImputationPlan(examples, known, 5)
	res, err := d.Run(ctx, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tables that can impute the missing capitals: %v\n", res.Tables)
	if len(res.Tables) > 0 && res.Tables[0] == "world_capitals" {
		fmt.Println("→ join my_countries with world_capitals to fill brasilia, nairobi, oslo")
	}
}
