// Negative examples: discover tables containing wanted rows while
// excluding tables that carry known-outdated facts — the paper's running
// example (Fig. 1 / Example 1) as a runnable program, including the
// CSV round trip through a lake directory.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"blend"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "blend-lake-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	writeLake(dir)

	// Index the lake straight from the CSV directory.
	d, err := blend.IndexCSVDir(blend.ColumnStore, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d CSV tables from %s\n", d.NumTables(), dir)

	// The user knows ("HR","Firenze") is correct and ("IT","Tom Riddle")
	// is outdated: any table pairing IT with Tom Riddle is stale.
	plan := blend.NegativeExamplesPlan(
		[][]string{{"HR", "Firenze"}},
		[][]string{{"IT", "Tom Riddle"}},
		10,
	)
	// Additionally require joinability on the department column.
	plan.MustAddSeeker("departments",
		blend.SC([]string{"HR", "Marketing", "Finance", "IT", "R&D", "Sales"}, 10))
	plan.MustAddCombiner("answer", blend.Intersect(10), "exclude", "departments")

	res, err := d.Run(ctx, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("up-to-date tables for filling the Head column: %v\n", res.Tables)
}

func writeLake(dir string) {
	t1 := blend.NewTable("T1_team_sizes", "Team", "Size")
	for _, r := range [][2]string{
		{"Finance", "31"}, {"Marketing", "28"}, {"HR", "33"}, {"IT", "92"}, {"Sales", "80"},
	} {
		t1.MustAppendRow(r[0], r[1])
	}
	mk := func(name, year, itLead string) *blend.Table {
		t := blend.NewTable(name, "Lead", "Year", "Team")
		for _, r := range [][2]string{
			{itLead, "IT"}, {"Draco Malfoy", "Marketing"}, {"Harry Potter", "Finance"},
			{"Cho Chang", "R&D"}, {"Luna Lovegood", "Sales"}, {"Firenze", "HR"},
		} {
			t.MustAppendRow(r[0], year, r[1])
		}
		return t
	}
	for _, t := range []*blend.Table{t1, mk("T2_leads_2022", "2022", "Tom Riddle"), mk("T3_leads_2024", "2024", "Ronald Weasley")} {
		if err := t.WriteCSVFile(filepath.Join(dir, t.Name+".csv")); err != nil {
			log.Fatal(err)
		}
	}
}
