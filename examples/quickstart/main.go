// Quickstart: index a small data lake, run a single-column join search,
// then compose a two-seeker discovery plan — the fastest path through
// BLEND's public API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"blend"
)

func main() {
	ctx := context.Background()
	// A tiny lake: three tables about company departments.
	sizes := blend.NewTable("team_sizes", "Team", "Size")
	for _, r := range [][2]string{
		{"Finance", "31"}, {"Marketing", "28"}, {"HR", "33"}, {"IT", "92"}, {"Sales", "80"},
	} {
		sizes.MustAppendRow(r[0], r[1])
	}
	leads2022 := blend.NewTable("leads_2022", "Lead", "Year", "Team")
	leads2024 := blend.NewTable("leads_2024", "Lead", "Year", "Team")
	for _, r := range [][2]string{
		{"Tom Riddle", "IT"}, {"Draco Malfoy", "Marketing"}, {"Harry Potter", "Finance"},
		{"Cho Chang", "R&D"}, {"Luna Lovegood", "Sales"}, {"Firenze", "HR"},
	} {
		leads2022.MustAppendRow(r[0], "2022", r[1])
		leads2024.MustAppendRow(r[0], "2024", r[1])
	}
	lake := []*blend.Table{sizes, leads2022, leads2024}
	for _, t := range lake {
		t.InferKinds() // detect numeric columns so quadrant bits are indexed
	}

	// Offline phase: build the unified AllTables index.
	d := blend.IndexTables(blend.ColumnStore, lake)
	fmt.Printf("indexed %d tables, %d bytes\n", d.NumTables(), d.IndexSizeBytes())

	// A standalone seeker: which tables join with our department column?
	departments := []string{"HR", "Marketing", "Finance", "IT", "Sales"}
	hits, err := d.Seek(ctx, blend.SC(departments, 3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\njoinable on departments:")
	for i, name := range d.TableNames(hits) {
		fmt.Printf("  %d. %s (overlap %.0f)\n", i+1, name, hits[i].Score)
	}

	// A composed plan: tables that contain the row ("HR","Firenze") AND
	// join on the department column. API v2 options bound the call and
	// capture the executed SQL; a canceled or timed-out run would match
	// blend.ErrCanceled / blend.ErrDeadlineExceeded via errors.Is.
	plan := blend.NewPlan()
	plan.MustAddSeeker("row", blend.MC([][]string{{"HR", "Firenze"}}, 10))
	plan.MustAddSeeker("col", blend.SC(departments, 10))
	plan.MustAddCombiner("both", blend.Intersect(5), "row", "col")
	res, err := d.Run(ctx, plan,
		blend.WithDeadline(2*time.Second),
		blend.WithExplain())
	if errors.Is(err, blend.ErrDeadlineExceeded) {
		log.Fatal("the lake is too slow for a 2s budget: ", err)
	} else if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan result: %v\n", res.Tables)
	fmt.Printf("optimizer executed seekers as %v (faster first, later ones rewritten)\n", res.SeekerOrder)
	fmt.Printf("rewritten SQL of %q: %s\n", "row", res.SQLByNode["row"])
}
