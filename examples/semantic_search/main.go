// Semantic search: discover tables whose columns are *about the same
// things* as the query even when exact values barely overlap — the
// embedding-based extension of the paper's §X future work, served by an
// HNSW index over column embeddings and freely composable with the exact
// operators.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"blend"
)

func main() {
	ctx := context.Background()
	// Lake: two tables about German cities with *different* value sets,
	// and one table of unrelated sensor codes.
	cities1 := blend.NewTable("cities_north", "City", "State")
	for _, r := range [][2]string{
		{"hamburg", "hamburg"}, {"bremen", "bremen"}, {"kiel", "schleswig holstein"},
		{"rostock", "mecklenburg"}, {"luebeck", "schleswig holstein"},
	} {
		cities1.MustAppendRow(r[0], r[1])
	}
	cities2 := blend.NewTable("cities_south", "City", "State")
	for _, r := range [][2]string{
		{"munich", "bavaria"}, {"stuttgart", "baden wuerttemberg"},
		{"nuremberg", "bavaria"}, {"augsburg", "bavaria"}, {"ulm", "baden wuerttemberg"},
	} {
		cities2.MustAppendRow(r[0], r[1])
	}
	sensors := blend.NewTable("sensor_codes", "Code", "Reading")
	sensors.MustAppendRow("zx-9981", "20.04")
	sensors.MustAppendRow("qy-1123", "19.78")
	sensors.MustAppendRow("kv-5540", "21.33")
	lake := []*blend.Table{cities1, cities2, sensors}
	for _, t := range lake {
		t.InferKinds()
	}
	d := blend.IndexTables(blend.ColumnStore, lake)

	// The query column overlaps each city table on a single value only;
	// token-level similarity still places both city columns far above the
	// sensor codes.
	query := []string{"hamburg", "bremen", "munich"}
	exact, err := d.Seek(ctx, blend.SC(query, 3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact SC seeker:\n")
	for i, name := range d.TableNames(exact) {
		fmt.Printf("  %d. %-14s overlap=%.0f\n", i+1, name, exact[i].Score)
	}

	semantic, err := d.Seek(ctx, blend.Semantic(query, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantic seeker (cosine similarity):\n")
	for i, name := range d.TableNames(semantic) {
		fmt.Printf("  %d. %-14s sim=%.2f\n", i+1, name, semantic[i].Score)
	}

	// Compose: semantically similar tables that also contain "bavaria".
	p := blend.NewPlan()
	p.MustAddSeeker("similar", blend.Semantic(query, 10))
	p.MustAddSeeker("exactkw", blend.KW([]string{"bavaria"}, 10))
	p.MustAddCombiner("both", blend.Intersect(5), "similar", "exactkw")
	res, err := d.Run(ctx, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantic ∩ keyword:      %v\n", res.Tables)

	// Render the plan DAG for documentation.
	fmt.Println("\nplan DAG (Graphviz):")
	if err := blend.WritePlanDot(p, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
