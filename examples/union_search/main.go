// Union search: find lake tables whose rows can extend a query table —
// BLEND's union-search plan (one SC seeker per column + a Counter
// combiner, §VII-A) over a generated lake with labeled unionable groups.
package main

import (
	"context"
	"fmt"
	"log"

	"blend"
	"blend/internal/datalake"
)

func main() {
	ctx := context.Background()
	// A benchmark lake in the style of the TUS/SANTOS union benchmarks:
	// tables belong to labeled unionable families.
	bench := datalake.GenUnionBenchmark(datalake.UnionConfig{
		Name: "demo", NumGroups: 4, TablesPerGroup: 5, RowsPerTable: 30,
		ColsPerTable: 3, DomainSize: 80, Queries: 1, Seed: 7,
	})
	d := blend.IndexTables(blend.ColumnStore, bench.Tables)
	fmt.Printf("lake: %d tables in %d unionable families\n",
		len(bench.Tables), bench.Config.NumGroups)

	q := bench.Queries[0]
	fmt.Printf("query table: %s (%d rows), unionable family has %d tables\n",
		q.Query.Name, q.Query.NumRows(), len(q.Relevant))

	plan := blend.UnionSearchPlan(q.Query, 100, 10)
	res, err := d.Run(ctx, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top unionable tables (Counter score = #columns matched):")
	correct := 0
	for i, name := range res.Tables {
		mark := " "
		if q.Relevant[name] {
			mark = "✓"
			correct++
		}
		fmt.Printf("  %2d. %s %-22s score=%.0f\n", i+1, mark, name, res.Output[i].Score)
	}
	fmt.Printf("%d/%d results are from the query's unionable family\n", correct, len(res.Tables))
}
