package blend

// Fuzzing for the public ingest surface: ReadCSV feeds every external
// ingest path (HTTP uploads via /v1/tables, directory ingest, the CLI), so
// malformed bytes from the outside world must never panic the process —
// they either parse into a well-formed table or return an error.

import (
	"bytes"
	"testing"
)

// FuzzReadCSV asserts CSV ingest never panics on malformed input, and that
// every accepted table is structurally sound: rectangular rows matching
// the header width, so the indexer downstream can trust cell coordinates.
func FuzzReadCSV(f *testing.F) {
	seeds := [][]byte{
		[]byte("Team,Size\nHR,33\nIT,92\n"),
		[]byte("a,b,c\n1,2\n1,2,3,4\n"), // ragged rows: padded / truncated
		[]byte("solo\n"),
		[]byte(""),
		[]byte("\"unclosed,quote\nx,y\n"),
		[]byte("a;b\x00c,\xff\xfe\n1,2\n"),
		[]byte("h1,h2\n\"it\"\"s\",  spaced  \n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			return // bound work per case
		}
		tb, err := ReadCSV("fuzz", bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if tb.Name != "fuzz" {
			t.Fatalf("table name = %q", tb.Name)
		}
		width := len(tb.Columns)
		for r, row := range tb.Rows {
			if len(row) != width {
				t.Fatalf("row %d has %d cells, header has %d", r, len(row), width)
			}
		}
	})
}
