module blend

go 1.22
