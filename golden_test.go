package blend

// Golden end-to-end regression trace: a small committed CSV corpus
// (testdata/golden/lake) is indexed through the public API and queried
// with one fixed input per seeker kind — SC, KW, MC, C, Semantic — plus a
// union search plan. The named, scored results must match the committed
// trace in testdata/golden/expected.json byte-for-byte, on the native
// executor and on the SQL fallback alike, so any future executor change
// that shifts results (scores, order, tie-breaks) diffs against a
// known-good baseline instead of only against the other path. (The
// semantic trace is deterministic because the HNSW level generator is
// seeded and the embedder is hash-based.)
//
// TestGoldenTracePaths additionally pins the execution-path attribution
// for every kind on both engines, so a silent fall-through to the
// interpreter fails the build rather than just slowing it down.
//
// Regenerate after an intentional semantic change with:
//
//	go test -run TestGoldenTrace -update-golden .

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"blend/internal/core"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/expected.json from the current engine output")

type goldenHit struct {
	Table string  `json:"table"`
	Score float64 `json:"score"`
}

// goldenTrace is one full run of the fixed query set, keyed by seeker
// kind (plus the union plan).
type goldenTrace map[string][]goldenHit

func goldenQueries(t *testing.T, d *Discovery) goldenTrace {
	t.Helper()
	ctx := context.Background()
	trace := goldenTrace{}
	seek := func(key string, s Seeker) {
		hits, err := d.Seek(ctx, s)
		if err != nil {
			t.Fatalf("%s seek: %v", key, err)
		}
		named := []goldenHit{}
		for i, name := range d.TableNames(hits) {
			named = append(named, goldenHit{Table: name, Score: hits[i].Score})
		}
		trace[key] = named
	}
	seek("sc", SC([]string{"HR", "IT", "Sales", "Finance", "Marketing"}, 5))
	seek("kw", KW([]string{"HR", "Firenze", "2024"}, 5))
	seek("mc", MC([][]string{{"HR", "Anna Rossi"}, {"IT", "Jonas Weber"}}, 5))
	seek("c", Correlation(
		[]string{"HR", "IT", "Sales", "Finance", "Marketing"},
		[]float64{33, 92, 80, 31, 28}, 5))
	seek("semantic", Semantic([]string{"Firenze", "Berlin", "Madrid"}, 3))

	// Union search: a two-column probe table through the KW fan-out +
	// Counter plan.
	probe := NewTable("probe", "Team", "City")
	probe.MustAppendRow("HR", "Boston")
	probe.MustAppendRow("Sales", "Madrid")
	res, err := d.Run(ctx, UnionSearchPlan(probe, 3, 5))
	if err != nil {
		t.Fatalf("union run: %v", err)
	}
	named := []goldenHit{}
	for i, name := range res.Tables {
		named = append(named, goldenHit{Table: name, Score: res.Output[i].Score})
	}
	trace["union"] = named
	return trace
}

func TestGoldenTrace(t *testing.T) {
	lakeDir := filepath.Join("testdata", "golden", "lake")
	goldenPath := filepath.Join("testdata", "golden", "expected.json")

	d, err := IndexCSVDir(ColumnStore, lakeDir)
	if err != nil {
		t.Fatal(err)
	}
	trace := goldenQueries(t, d)

	// The SQL fallback must produce the identical trace: the golden file
	// pins both executors at once.
	dSQL, err := IndexCSVDir(ColumnStore, lakeDir, WithoutNativeExec())
	if err != nil {
		t.Fatal(err)
	}
	if sqlTrace := goldenQueries(t, dSQL); !reflect.DeepEqual(trace, sqlTrace) {
		t.Fatalf("native and SQL traces diverge:\n native: %+v\n    sql: %+v", trace, sqlTrace)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(trace); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (run with -update-golden to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverged from %s\n got: %s\nwant: %s\n(re-run with -update-golden if the change is intentional)",
			goldenPath, buf.Bytes(), want)
	}

	// Sanity-pin the headline expectations so a wholesale regeneration of
	// the golden file cannot silently encode nonsense: the MC probe rows
	// live in teams_eu and org_2024, and the correlation probe must find
	// the payroll/budget tables.
	mustContain := func(key, table string) {
		for _, h := range trace[key] {
			if h.Table == table {
				return
			}
		}
		t.Fatalf("%s trace %v misses table %q", key, trace[key], table)
	}
	mustContain("mc", "teams_eu")
	mustContain("mc", "org_2024")
	mustContain("c", "payroll")
	mustContain("sc", "headcount")
	mustContain("union", "teams_us")
	mustContain("semantic", "teams_eu")
}

// TestGoldenTracePaths pins the execution-path attribution of the golden
// query set: on the default engine every relational seeker kind runs on
// the native executor and the semantic seeker on the ANN index; under
// WithoutNativeExec the relational kinds report the minisql interpreter,
// while semantic keeps its ANN path (it has no SQL form to fall back to).
// A silent fall-through to the interpreter therefore fails the build
// rather than just slowing it down.
func TestGoldenTracePaths(t *testing.T) {
	lakeDir := filepath.Join("testdata", "golden", "lake")
	seekers := map[string]Seeker{
		"sc": SC([]string{"HR", "IT", "Sales", "Finance", "Marketing"}, 5),
		"kw": KW([]string{"HR", "Firenze", "2024"}, 5),
		"mc": MC([][]string{{"HR", "Anna Rossi"}, {"IT", "Jonas Weber"}}, 5),
		"c": Correlation(
			[]string{"HR", "IT", "Sales", "Finance", "Marketing"},
			[]float64{33, 92, 80, 31, 28}, 5),
		"semantic": Semantic([]string{"Firenze", "Berlin", "Madrid"}, 3),
	}
	fastPath := map[string]string{
		"sc": core.PathNative, "kw": core.PathNative, "mc": core.PathNative,
		"c": core.PathNative, "semantic": core.PathANN,
	}
	slowPath := map[string]string{
		"sc": core.PathSQL, "kw": core.PathSQL, "mc": core.PathSQL,
		"c": core.PathSQL, "semantic": core.PathANN,
	}

	ctx := context.Background()
	check := func(d *Discovery, want map[string]string, label string) {
		t.Helper()
		for key, s := range seekers {
			_, stats, err := d.Engine().RunSeeker(ctx, s)
			if err != nil {
				t.Fatalf("%s %s: %v", label, key, err)
			}
			if stats.Path != want[key] {
				t.Fatalf("%s %s: path = %q, want %q", label, key, stats.Path, want[key])
			}
		}
	}

	d, err := IndexCSVDir(ColumnStore, lakeDir)
	if err != nil {
		t.Fatal(err)
	}
	check(d, fastPath, "native engine")

	dSQL, err := IndexCSVDir(ColumnStore, lakeDir, WithoutNativeExec())
	if err != nil {
		t.Fatal(err)
	}
	check(dSQL, slowPath, "sql engine")
}
