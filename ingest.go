package blend

import (
	"context"
	"fmt"
	"time"

	"blend/internal/berr"
	"blend/internal/core"
	"blend/internal/datalake"
)

// Bulk ingestion and table lifecycle: the write path of the Discovery API.
// AddTables commits a batch of in-memory tables as one index maintenance
// operation; IngestCSVDir streams a directory of CSV files through a
// concurrent parse pipeline into batched commits; RemoveTable and Compact
// let the lake evolve. All of them are safe concurrently with queries —
// mutations serialize among themselves, build the next generation
// copy-on-write, and publish it atomically; in-flight plans keep reading
// their pinned snapshot and never wait.

// MaintStats counts index maintenance (batches, tables/rows added,
// removals, compactions) since the Discovery was built. See
// Discovery.MaintStats.
type MaintStats = core.MaintStats

// IngestOption tunes AddTables and IngestCSVDir.
type IngestOption func(*ingestConfig)

type ingestConfig struct {
	workers   int
	batchSize int
	skipBad   bool
}

// DefaultIngestBatchSize is the number of tables committed per index batch
// when WithIngestBatchSize is not given.
const DefaultIngestBatchSize = 256

func ingestOptions(opts []IngestOption) ingestConfig {
	cfg := ingestConfig{batchSize: DefaultIngestBatchSize}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.batchSize <= 0 {
		cfg.batchSize = DefaultIngestBatchSize
	}
	return cfg
}

// WithIngestWorkers bounds the pipeline's parallelism: concurrent CSV
// parsers in IngestCSVDir and concurrent per-shard inserts inside each
// committed batch. n <= 0 (the default) means GOMAXPROCS.
func WithIngestWorkers(n int) IngestOption {
	return func(c *ingestConfig) { c.workers = n }
}

// WithIngestBatchSize sets how many tables are committed per index batch.
// Each batch is atomic — it is applied entirely or not at all — and costs
// one generation publish regardless of its size. Larger batches amortize
// better but make each copy-on-write commit larger. n <= 0 restores
// DefaultIngestBatchSize.
func WithIngestBatchSize(n int) IngestOption {
	return func(c *ingestConfig) { c.batchSize = n }
}

// WithSkipBadFiles makes IngestCSVDir skip files that fail to parse
// (recording them in IngestReport.SkippedFiles) instead of aborting the
// ingest on the first corrupt CSV.
func WithSkipBadFiles() IngestOption {
	return func(c *ingestConfig) { c.skipBad = true }
}

// IngestReport summarizes one IngestCSVDir run.
type IngestReport struct {
	// TableIDs are the assigned ids, in committed order.
	TableIDs []int32
	// TablesAdded and RowsAdded count what was committed.
	TablesAdded int
	RowsAdded   int
	// FilesRead counts CSV files discovered and parsed; SkippedFiles
	// lists files skipped under WithSkipBadFiles.
	FilesRead    int
	SkippedFiles []string
	// Batches is the number of committed index batches.
	Batches int
	// Duration is the wall-clock time of the whole ingest.
	Duration time.Duration
}

// Throughput reports tables ingested per second (0 for an empty run).
func (r *IngestReport) Throughput() float64 {
	if r.Duration <= 0 || r.TablesAdded == 0 {
		return 0
	}
	return float64(r.TablesAdded) / r.Duration.Seconds()
}

// AddTables appends a batch of tables to the index as one maintenance
// operation — the bulk counterpart of AddTable. The whole call costs one
// write-lock acquisition, one store-generation bump, and one result-cache
// purge per committed batch (WithIngestBatchSize splits large inputs; by
// default inputs up to DefaultIngestBatchSize commit as a single batch),
// and on a sharded index the per-shard inserts run concurrently, bounded
// by WithIngestWorkers.
//
// Table names must be unique across the lake and within the call; a
// duplicate fails with ErrDuplicateTable and the offending batch is not
// applied (batches already committed by the same call remain — batches,
// not calls, are the atomic unit). Cancellation is honored between
// batches with ErrCanceled / ErrDeadlineExceeded.
func (d *Discovery) AddTables(ctx context.Context, tables []*Table, opts ...IngestOption) ([]int32, error) {
	cfg := ingestOptions(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]struct{}, len(tables))
	for _, t := range tables {
		if _, dup := seen[t.Name]; dup {
			return nil, berr.New(berr.CodeDuplicateTable, "blend.ingest",
				"table %q appears twice in the batch", t.Name)
		}
		seen[t.Name] = struct{}{}
	}
	ids := make([]int32, 0, len(tables))
	for start := 0; start < len(tables); start += cfg.batchSize {
		if err := ctx.Err(); err != nil {
			return ids, berr.FromContext("blend.ingest", err)
		}
		end := start + cfg.batchSize
		if end > len(tables) {
			end = len(tables)
		}
		batch, err := d.engine.AddTables(tables[start:end], cfg.workers)
		if err != nil {
			return ids, err
		}
		ids = append(ids, batch...)
	}
	return ids, nil
}

// IngestCSVDir bulk-loads every *.csv under dir (subdirectories included)
// into the index: a directory walk feeds a bounded pool of concurrent CSV
// parsers, whose output is committed in deterministic path order through
// the same batched maintenance path as AddTables. A parse failure aborts
// the ingest with the current batch unapplied, unless WithSkipBadFiles
// turned skipping on; batches committed before the failure remain
// indexed. Cancellation mid-ingest leaves only whole committed batches
// behind and reports ErrCanceled / ErrDeadlineExceeded.
func (d *Discovery) IngestCSVDir(ctx context.Context, dir string, opts ...IngestOption) (*IngestReport, error) {
	cfg := ingestOptions(opts)
	start := time.Now()
	paths, err := datalake.WalkCSVFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("blend: walk lake %s: %w", dir, err)
	}
	report := &IngestReport{}
	batch := make([]*Table, 0, cfg.batchSize)
	commit := func() error {
		if len(batch) == 0 {
			return nil
		}
		ids, err := d.engine.AddTables(batch, cfg.workers)
		if err != nil {
			return err
		}
		report.TableIDs = append(report.TableIDs, ids...)
		report.TablesAdded += len(ids)
		for _, t := range batch {
			report.RowsAdded += len(t.Rows)
		}
		report.Batches++
		batch = batch[:0]
		return nil
	}
	err = datalake.ParseCSVFiles(ctx, paths, cfg.workers, func(p datalake.ParsedCSV) error {
		if p.Err != nil {
			if cfg.skipBad {
				report.SkippedFiles = append(report.SkippedFiles, p.Path)
				return nil
			}
			return berr.New(berr.CodeBadRequest, "blend.ingest", "parse %s: %v", p.Path, p.Err)
		}
		report.FilesRead++
		batch = append(batch, p.Table)
		if len(batch) >= cfg.batchSize {
			return commit()
		}
		return nil
	})
	if err == nil {
		err = commit()
	}
	report.Duration = time.Since(start)
	if err != nil {
		return report, err
	}
	return report, nil
}

// RemoveTable tombstones one table by id: it immediately stops being
// discoverable by every seeker, raw SQL, and reconstruction, while its
// index entries stay allocated until Compact reclaims them. Unknown or
// already-removed ids report ErrNotFound.
func (d *Discovery) RemoveTable(id int32) error { return d.engine.RemoveTable(id) }

// Compact physically reclaims every removed table's entries and returns
// how many tables were compacted away. Table ids are reassigned
// contiguously — re-resolve held ids with TableIDByName afterwards.
func (d *Discovery) Compact() int { return d.engine.Compact() }

// TableIDByName resolves a live table name to its current id, or -1. Ids
// are stable between compactions; names are stable forever.
func (d *Discovery) TableIDByName(name string) int32 { return d.engine.TableIDByName(name) }

// MaintStats snapshots the maintenance counters: ingest batches, tables
// and rows added, removals, compactions, and last-batch throughput.
func (d *Discovery) MaintStats() MaintStats { return d.engine.MaintStats() }
