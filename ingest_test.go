package blend

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Failure-mode tests for the bulk-ingestion pipeline: corrupt input and
// batch atomicity, cancellation, duplicate names, and the full
// remove→compact→persist→load lifecycle.

// writeLakeDir writes n small CSV tables named <prefix>NN.csv into dir.
func writeLakeDir(t *testing.T, dir, prefix string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		body := "team,size\nHR,31\nFinance,28\n" + fmt.Sprintf("Unit%s%d,%d\n", prefix, i, 40+i)
		path := filepath.Join(dir, fmt.Sprintf("%s%02d.csv", prefix, i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func seedDiscovery(t *testing.T) *Discovery {
	t.Helper()
	seed := NewTable("seed", "team", "size")
	seed.MustAppendRow("HR", "10")
	seed.InferKinds()
	return IndexTables(ColumnStore, []*Table{seed}, WithShards(4))
}

func TestIngestCSVDirRecursive(t *testing.T) {
	dir := t.TempDir()
	writeLakeDir(t, dir, "top", 3)
	sub := filepath.Join(dir, "nested")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeLakeDir(t, sub, "deep", 2)

	d := seedDiscovery(t)
	report, err := d.IngestCSVDir(context.Background(), dir, WithIngestWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if report.TablesAdded != 5 || report.FilesRead != 5 {
		t.Fatalf("report = %+v", report)
	}
	if d.NumTables() != 6 {
		t.Fatalf("NumTables = %d", d.NumTables())
	}
	// Parallel parse must not perturb deterministic id order (paths are
	// sorted; "nested/" sorts before the top-level "top*" files).
	if d.TableByID(report.TableIDs[0]).Name != "deep00" {
		t.Fatalf("first ingested table = %q", d.TableByID(report.TableIDs[0]).Name)
	}
	// Ingested content is discoverable.
	hits, err := d.Seek(context.Background(), SC([]string{"Unitdeep0", "HR"}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("ingested tables not discoverable")
	}
	if got := d.MaintStats().TablesAdded; got != 5 {
		t.Fatalf("maint counter TablesAdded = %d", got)
	}
}

func TestIngestCorruptCSVAbortsBatchAtomically(t *testing.T) {
	dir := t.TempDir()
	writeLakeDir(t, dir, "ok", 4)
	// "mid00.csv" sorts between ok-files? Name it so it lands mid-stream.
	if err := os.WriteFile(filepath.Join(dir, "ok01x-corrupt.csv"),
		[]byte("team,size\n\"unclosed,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Single batch covering everything: the corrupt file must leave the
	// index completely untouched.
	d := seedDiscovery(t)
	before := d.NumTables()
	_, err := d.IngestCSVDir(context.Background(), dir)
	if err == nil {
		t.Fatal("corrupt CSV must fail the ingest")
	}
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("error = %v, want bad_request", err)
	}
	if d.NumTables() != before {
		t.Fatalf("failed single-batch ingest mutated the index: %d tables", d.NumTables())
	}

	// Small batches: whole batches before the corrupt file commit, the
	// in-flight batch is discarded entirely — never a partial batch.
	d2 := seedDiscovery(t)
	report, err := d2.IngestCSVDir(context.Background(), dir, WithIngestBatchSize(2))
	if err == nil {
		t.Fatal("corrupt CSV must fail the ingest")
	}
	// Files sort ok00, ok01, ok01x-corrupt, …: exactly one 2-table batch
	// (ok00, ok01) commits before the failure.
	if report.TablesAdded != 2 || report.Batches != 1 {
		t.Fatalf("committed %d tables in %d batches, want one whole batch of 2",
			report.TablesAdded, report.Batches)
	}
	if d2.NumTables() != before+2 {
		t.Fatalf("index holds %d tables, want %d", d2.NumTables(), before+2)
	}

	// Empty file (no header): same classification.
	d3 := seedDiscovery(t)
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, "empty.csv"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d3.IngestCSVDir(context.Background(), dir3); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty CSV error = %v, want bad_request", err)
	}

	// WithSkipBadFiles turns both into skips.
	d4 := seedDiscovery(t)
	report, err = d4.IngestCSVDir(context.Background(), dir, WithSkipBadFiles())
	if err != nil {
		t.Fatal(err)
	}
	if report.TablesAdded != 4 || len(report.SkippedFiles) != 1 {
		t.Fatalf("skip-bad report = %+v", report)
	}
}

func TestIngestCancellation(t *testing.T) {
	dir := t.TempDir()
	writeLakeDir(t, dir, "c", 6)

	// Canceled before the ingest starts: typed error, untouched index.
	d := seedDiscovery(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.IngestCSVDir(ctx, dir)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error = %v, want canceled", err)
	}
	if d.NumTables() != 1 {
		t.Fatal("canceled ingest mutated the index")
	}

	// AddTables honors cancellation between batches with the same typed
	// error and whole-batch granularity.
	tables := make([]*Table, 4)
	for i := range tables {
		tables[i] = NewTable(fmt.Sprintf("ct%d", i), "a")
		tables[i].MustAppendRow("x")
	}
	d2 := seedDiscovery(t)
	ids, err := d2.AddTables(ctx, tables, WithIngestBatchSize(2))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("AddTables error = %v, want canceled", err)
	}
	if len(ids) != 0 {
		t.Fatal("canceled AddTables committed tables")
	}

	// Whatever the cancellation timing, only whole batches may land.
	for trial := 0; trial < 5; trial++ {
		d3 := seedDiscovery(t)
		tctx, tcancel := context.WithCancel(context.Background())
		go tcancel() // races the ingest
		report, _ := d3.IngestCSVDir(tctx, dir, WithIngestBatchSize(2))
		if report != nil && report.TablesAdded%2 != 0 {
			t.Fatalf("partial batch committed: %d tables", report.TablesAdded)
		}
	}
}

func TestIngestDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	writeLakeDir(t, dir, "dup", 3)
	d := seedDiscovery(t)
	if _, err := d.IngestCSVDir(context.Background(), dir); err != nil {
		t.Fatal(err)
	}
	before := d.NumTables()

	// Re-ingesting the same directory collides with the indexed names.
	_, err := d.IngestCSVDir(context.Background(), dir)
	if !errors.Is(err, ErrDuplicateTable) {
		t.Fatalf("error = %v, want duplicate_table", err)
	}
	if d.NumTables() != before {
		t.Fatal("duplicate ingest mutated the index")
	}

	// Same base filename in two subdirectories duplicates within one call.
	dir2 := t.TempDir()
	for _, sub := range []string{"a", "b"} {
		p := filepath.Join(dir2, sub)
		if err := os.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
		writeLakeDir(t, p, "same", 1)
	}
	d2 := seedDiscovery(t)
	if _, err := d2.IngestCSVDir(context.Background(), dir2); !errors.Is(err, ErrDuplicateTable) {
		t.Fatalf("intra-call duplicate error = %v, want duplicate_table", err)
	}

	// AddTables rejects intra-batch duplicates before committing anything.
	x := NewTable("twin", "a")
	x.MustAppendRow("1")
	y := NewTable("twin", "b")
	y.MustAppendRow("2")
	if _, err := d2.AddTables(context.Background(), []*Table{x, y}); !errors.Is(err, ErrDuplicateTable) {
		t.Fatalf("AddTables duplicate error = %v", err)
	}
}

func TestRemoveCompactPersistLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeLakeDir(t, dir, "life", 6)
	d := seedDiscovery(t)
	if _, err := d.IngestCSVDir(context.Background(), dir); err != nil {
		t.Fatal(err)
	}

	victim := d.TableIDByName("life02")
	if victim < 0 {
		t.Fatal("ingested table not resolvable by name")
	}
	if err := d.RemoveTable(victim); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveTable(victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove error = %v, want not_found", err)
	}
	// Persist with the tombstone in place, reload, verify it survived.
	withTomb := filepath.Join(t.TempDir(), "tomb.blend")
	if err := d.SaveIndex(withTomb); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenIndex(withTomb)
	if err != nil {
		t.Fatal(err)
	}
	if rd.TableIDByName("life02") != -1 {
		t.Fatal("tombstone lost across persistence")
	}
	if rd.Stats().Tombstones != 1 {
		t.Fatalf("reloaded tombstones = %d", rd.Stats().Tombstones)
	}

	// Compact, persist, reload: space reclaimed, queries unchanged.
	queries := [][]string{{"HR", "Finance"}, {"Unitlife4", "HR"}}
	wantHits := make([][]string, len(queries))
	for i, q := range queries {
		hits, err := d.Seek(context.Background(), SC(q, 10))
		if err != nil {
			t.Fatal(err)
		}
		wantHits[i] = d.TableNames(hits)
	}
	if got := d.Compact(); got != 1 {
		t.Fatalf("Compact = %d", got)
	}
	compacted := filepath.Join(t.TempDir(), "compacted.blend")
	if err := d.SaveIndex(compacted); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenIndex(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Stats().Tombstones != 0 {
		t.Fatal("compacted index carries tombstones")
	}
	if d2.NumTables() != 6 { // 1 seed + 6 ingested - 1 removed
		t.Fatalf("NumTables = %d after compact+reload", d2.NumTables())
	}
	for i, q := range queries {
		hits, err := d2.Seek(context.Background(), SC(q, 10))
		if err != nil {
			t.Fatal(err)
		}
		if got := d2.TableNames(hits); !reflect.DeepEqual(got, wantHits[i]) {
			t.Fatalf("query %d differs after compact+persist+load:\n got %v\nwant %v", i, got, wantHits[i])
		}
	}
	if d2.TableIDByName("life02") != -1 {
		t.Fatal("removed table resurrected by compaction round trip")
	}
}
