// Package alltables bridges the storage engine and the SQL engine: it
// exposes a storage.Store as the AllTables relation of Fig. 3 so that the
// seekers' generated SQL (Listings 1–3 of the paper) can run against it,
// with the inverted index on CellValue and the range index on TableId
// served as minisql index access paths.
package alltables

import (
	"sort"

	"blend/internal/minisql"
	"blend/internal/storage"
)

// Column positions of the AllTables relation.
const (
	ColCellValue = iota
	ColTableID
	ColColumnID
	ColRowID
	ColSuperLo
	ColSuperHi
	ColQuadrant
	numCols
)

// Name is the relation name the seekers' SQL refers to.
const Name = "AllTables"

var columns = []string{
	"CellValue", "TableId", "ColumnId", "RowId", "SuperKeyLo", "SuperKeyHi", "Quadrant",
}

// Relation adapts a storage.Reader to minisql.IndexedRelation. The reader
// may be a monolithic store, a full sharded store (the unified global view
// used for raw SQL), or a single shard view (the partition-local relations
// the engine fans seeker SQL out across).
type Relation struct {
	store storage.Reader
}

// New wraps an index reader.
func New(s storage.Reader) *Relation { return &Relation{store: s} }

// Store returns the wrapped reader.
func (r *Relation) Store() storage.Reader { return r.store }

// Columns implements minisql.Relation.
func (r *Relation) Columns() []string { return columns }

// NumRows implements minisql.Relation.
func (r *Relation) NumRows() int { return r.store.NumEntries() }

// Cell implements minisql.Relation.
func (r *Relation) Cell(row, col int) minisql.Value {
	i := int32(row)
	switch col {
	case ColCellValue:
		return minisql.Str(r.store.Value(i))
	case ColTableID:
		return minisql.Int(int64(r.store.TableID(i)))
	case ColColumnID:
		return minisql.Int(int64(r.store.ColumnID(i)))
	case ColRowID:
		return minisql.Int(int64(r.store.RowID(i)))
	case ColSuperLo:
		return minisql.Int(int64(r.store.SuperKey(i).Lo))
	case ColSuperHi:
		return minisql.Int(int64(r.store.SuperKey(i).Hi))
	case ColQuadrant:
		q := r.store.Quadrant(i)
		if q == storage.QuadrantNull {
			return minisql.Null
		}
		return minisql.Int(int64(q))
	default:
		return minisql.Null
	}
}

// HasTombstones implements minisql.Tombstoned: scans pay the per-row
// visibility check only while removed tables await compaction.
func (r *Relation) HasTombstones() bool { return r.store.Tombstones() > 0 }

// RowVisible implements minisql.Tombstoned: an entry is live iff its
// owning table has not been removed.
func (r *Relation) RowVisible(row int) bool {
	return r.store.TableAlive(r.store.TableID(int32(row)))
}

// LookupIn implements minisql.IndexedRelation: CellValue lookups use the
// inverted index; TableId lookups use the table range index.
func (r *Relation) LookupIn(col int, vals []minisql.Value) ([]int, bool) {
	switch col {
	case ColCellValue:
		var out []int
		for _, v := range vals {
			if v.K != minisql.KStr {
				v = minisql.Str(v.String())
			}
			for _, p := range r.store.Postings(v.S) {
				out = append(out, int(p))
			}
		}
		return dedupPositions(out), true
	case ColTableID:
		var out []int
		for _, v := range vals {
			tid, ok := v.AsInt()
			if !ok || tid < 0 || int(tid) >= r.store.NumTables() {
				continue
			}
			start, end := r.store.TableEntries(int32(tid))
			for p := start; p < end; p++ {
				out = append(out, int(p))
			}
		}
		return dedupPositions(out), true
	default:
		return nil, false
	}
}

// dedupPositions sorts and deduplicates entry positions. Values in an IN
// list are usually distinct, so duplicates are rare but must not reach the
// executor (a row may not match twice).
func dedupPositions(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
