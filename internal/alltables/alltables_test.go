package alltables

import (
	"fmt"
	"reflect"
	"testing"

	"blend/internal/minisql"
	"blend/internal/storage"
	"blend/internal/table"
)

func fixtureStore(t *testing.T, layout storage.Layout) *storage.Store {
	t.Helper()
	t1 := table.New("T1", "Team", "Size")
	t1.MustAppendRow("Finance", "31")
	t1.MustAppendRow("Marketing", "28")
	t1.MustAppendRow("HR", "33")
	t1.MustAppendRow("IT", "92")
	t2 := table.New("T2", "Lead", "Year", "Team")
	t2.MustAppendRow("Tom Riddle", "2022", "IT")
	t2.MustAppendRow("Firenze", "2022", "HR")
	t3 := table.New("T3", "Lead", "Year", "Team")
	t3.MustAppendRow("Ronald Weasley", "2024", "IT")
	t3.MustAppendRow("Firenze", "2024", "HR")
	for _, tb := range []*table.Table{t1, t2, t3} {
		tb.InferKinds()
	}
	return storage.Build(layout, []*table.Table{t1, t2, t3})
}

func catalogFor(s *storage.Store) *minisql.Catalog {
	cat := minisql.NewCatalog()
	cat.Register(Name, New(s))
	return cat
}

func TestListing1SCSeekerSQL(t *testing.T) {
	for _, layout := range []storage.Layout{storage.ColumnStore, storage.RowStore} {
		cat := catalogFor(fixtureStore(t, layout))
		res, err := minisql.ExecSQL(cat, `SELECT TableId FROM AllTables
			WHERE CellValue IN ('HR', 'Marketing', 'Finance', 'IT')
			GROUP BY TableId, ColumnId
			ORDER BY COUNT(DISTINCT CellValue) DESC, TableId ASC
			LIMIT 10`)
		if err != nil {
			t.Fatal(err)
		}
		// T1.Team matches 4 values; T2.Team and T3.Team match 2 each.
		if res.NumRows() != 3 {
			t.Fatalf("layout %v: rows = %d", layout, res.NumRows())
		}
		if got, _ := res.Cell(0, 0).AsInt(); got != 0 {
			t.Fatalf("layout %v: best table = %v, want T1 (id 0)", layout, res.Cell(0, 0))
		}
	}
}

func TestQuadrantNullSurfacesAsSQLNull(t *testing.T) {
	cat := catalogFor(fixtureStore(t, storage.ColumnStore))
	res, err := minisql.ExecSQL(cat, "SELECT COUNT(*) FROM AllTables WHERE Quadrant IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	// Numeric cells: T1.Size (4) + T2.Year (2) + T3.Year (2).
	if got, _ := res.Cell(0, 0).AsInt(); got != 8 {
		t.Fatalf("numeric cells = %d, want 8", got)
	}
}

func TestLookupInTableID(t *testing.T) {
	r := New(fixtureStore(t, storage.ColumnStore))
	rows, ok := r.LookupIn(ColTableID, []minisql.Value{minisql.Int(1)})
	if !ok {
		t.Fatal("TableId should be indexed")
	}
	for _, p := range rows {
		if v, _ := r.Cell(p, ColTableID).AsInt(); v != 1 {
			t.Fatalf("entry %d has table %v", p, v)
		}
	}
	if len(rows) != 6 { // T2 has 6 cells
		t.Fatalf("T2 entries = %d, want 6", len(rows))
	}
	// Out-of-range ids are ignored, not an error.
	rows, _ = r.LookupIn(ColTableID, []minisql.Value{minisql.Int(99), minisql.Int(-1)})
	if len(rows) != 0 {
		t.Fatal("bogus table ids must match nothing")
	}
}

func TestLookupInCellValueDedups(t *testing.T) {
	r := New(fixtureStore(t, storage.ColumnStore))
	once, _ := r.LookupIn(ColCellValue, []minisql.Value{minisql.Str("HR")})
	twice, _ := r.LookupIn(ColCellValue, []minisql.Value{minisql.Str("HR"), minisql.Str("HR")})
	if !reflect.DeepEqual(once, twice) {
		t.Fatal("duplicate IN values must not duplicate rows")
	}
}

func TestUnindexedColumnFallsBack(t *testing.T) {
	r := New(fixtureStore(t, storage.ColumnStore))
	if _, ok := r.LookupIn(ColRowID, []minisql.Value{minisql.Int(0)}); ok {
		t.Fatal("RowId is not indexed; must report ok=false")
	}
	// The executor must still answer the query by scanning.
	cat := catalogFor(fixtureStore(t, storage.ColumnStore))
	res, err := minisql.ExecSQL(cat, "SELECT COUNT(*) FROM AllTables WHERE RowId = 0")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Cell(0, 0).AsInt(); got != 8 {
		t.Fatalf("RowId=0 cells = %d, want 8", got)
	}
}

func TestSuperKeyColumnsExposed(t *testing.T) {
	r := New(fixtureStore(t, storage.ColumnStore))
	for p := 0; p < r.NumRows(); p++ {
		lo := r.Cell(p, ColSuperLo)
		hi := r.Cell(p, ColSuperHi)
		if lo.IsNull() || hi.IsNull() {
			t.Fatal("super key words must not be NULL")
		}
	}
}

func TestListing2MCFirstPhaseSQL(t *testing.T) {
	// The MC seeker's first phase (Listing 2): candidate rows carrying
	// values from both query columns in the same row.
	cat := catalogFor(fixtureStore(t, storage.ColumnStore))
	res, err := minisql.ExecSQL(cat, `SELECT * FROM
		(SELECT * FROM AllTables WHERE CellValue IN ('HR')) AS Q1_index_hits
		INNER JOIN
		(SELECT * FROM AllTables WHERE CellValue IN ('Firenze')) AS Q2_index_hits
		ON Q1_index_hits.TableId = Q2_index_hits.TableId
		AND Q1_index_hits.RowId = Q2_index_hits.RowId`)
	if err != nil {
		t.Fatal(err)
	}
	// ("HR","Firenze") co-occur in T2 row 1 and T3 row 1.
	if res.NumRows() != 2 {
		t.Fatalf("candidate rows = %d, want 2", res.NumRows())
	}
	// Misaligned pair: HR and Tom Riddle never share a row.
	res, err = minisql.ExecSQL(cat, `SELECT * FROM
		(SELECT * FROM AllTables WHERE CellValue IN ('HR')) AS a
		INNER JOIN
		(SELECT * FROM AllTables WHERE CellValue IN ('Tom Riddle')) AS b
		ON a.TableId = b.TableId AND a.RowId = b.RowId`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Fatalf("misaligned rows = %d, want 0", res.NumRows())
	}
}

func TestListing3CorrelationSQL(t *testing.T) {
	// Listing 3 shape: join keys against numeric quadrant bits, grouped by
	// (table, numeric column, key column), ranked by |QCR|.
	tb := table.New("corr", "City", "Pop")
	cities := []string{"aa", "bb", "cc", "dd", "ee", "ff"}
	for i, c := range cities {
		tb.MustAppendRow(c, fmt.Sprintf("%d", (i+1)*10))
	}
	tb.InferKinds()
	st := storage.Build(storage.ColumnStore, []*table.Table{tb})
	cat := catalogFor(st)
	// Query target grows with city index: keys below the target mean are
	// aa..cc (k0), the rest are k1 — and Pop follows the same split.
	res, err := minisql.ExecSQL(cat, `SELECT keys.TableId,
		(2 * SUM(((keys.CellValue IN ('aa','bb','cc') AND nums.Quadrant = 0)
		       OR (keys.CellValue IN ('dd','ee','ff') AND nums.Quadrant = 1))::int)
		 - COUNT(*)) / COUNT(*) AS qcr
		FROM (SELECT * FROM AllTables WHERE RowId < 256 AND CellValue IN ('aa','bb','cc','dd','ee','ff')) AS keys
		INNER JOIN (SELECT * FROM AllTables WHERE RowId < 256 AND Quadrant IS NOT NULL) AS nums
		ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId AND keys.ColumnId <> nums.ColumnId
		GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId
		ORDER BY ABS(qcr) DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if qcr, _ := res.Cell(0, 1).AsFloat(); qcr != 1 {
		t.Fatalf("QCR = %v, want 1 (perfect correlation)", qcr)
	}
}

// TestShardedGlobalViewMatchesMonolithicSQL runs seeker-shaped SQL against
// a catalog over the sharded store's unified global view and over the
// monolithic store, requiring identical result sets — the property that
// keeps the raw SQL mode partition-agnostic.
func TestShardedGlobalViewMatchesMonolithicSQL(t *testing.T) {
	t1 := table.New("A1", "Team", "Size")
	t1.MustAppendRow("HR", "33")
	t1.MustAppendRow("IT", "92")
	t2 := table.New("A2", "Team", "Lead")
	t2.MustAppendRow("HR", "Firenze")
	t2.MustAppendRow("Sales", "Luna")
	t3 := table.New("A3", "Team", "Lead")
	t3.MustAppendRow("IT", "Tom")
	t3.MustAppendRow("HR", "Minerva")
	for _, tb := range []*table.Table{t1, t2, t3} {
		tb.InferKinds()
	}
	tables := []*table.Table{t1, t2, t3}
	mono := storage.Build(storage.ColumnStore, tables)
	shard := storage.BuildSharded(storage.ColumnStore, tables, 3)
	queries := []string{
		"SELECT TableId, COUNT(DISTINCT CellValue) AS overlap FROM AllTables" +
			" WHERE CellValue IN ('HR', 'IT') GROUP BY TableId ORDER BY overlap DESC, TableId ASC",
		"SELECT TableId, RowId FROM AllTables WHERE CellValue IN ('Firenze') ORDER BY TableId, RowId",
		"SELECT COUNT(*) AS n FROM AllTables WHERE TableId IN (0, 2)",
	}
	for _, q := range queries {
		r1, err := minisql.ExecSQL(catalogFor(mono), q)
		if err != nil {
			t.Fatal(err)
		}
		shardCat := minisql.NewCatalog()
		shardCat.Register(Name, New(shard))
		r2, err := minisql.ExecSQL(shardCat, q)
		if err != nil {
			t.Fatal(err)
		}
		if r1.NumRows() != r2.NumRows() {
			t.Fatalf("query %q: %d rows vs %d", q, r1.NumRows(), r2.NumRows())
		}
		for r := 0; r < r1.NumRows(); r++ {
			for c := range r1.Columns() {
				if r1.Cell(r, c).String() != r2.Cell(r, c).String() {
					t.Fatalf("query %q: cell (%d,%d) %q != %q",
						q, r, c, r1.Cell(r, c).String(), r2.Cell(r, c).String())
				}
			}
		}
	}
}
