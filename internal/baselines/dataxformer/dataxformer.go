// Package dataxformer reimplements the inverted index of DataXFormer
// (Abedjan et al., CIDR 2015), the content-to-table lookup structure BLEND
// absorbs into AllTables (§V): every cell value maps to its full list of
// (table, column, row) locations. Standalone it serves keyword search and
// example-based transformation lookups; in the Table VIII storage
// comparison it is one of the redundant structures the unified index
// replaces.
package dataxformer

import (
	"sort"

	"blend/internal/table"
)

// Loc is one cell location.
type Loc struct {
	TableID  int32
	ColumnID int32
	RowID    int32
}

// Index maps every distinct cell value to all its locations in the lake.
type Index struct {
	postings   map[string][]Loc
	tableNames []string
}

// Build indexes every non-null cell of every table.
func Build(tables []*table.Table) *Index {
	ix := &Index{postings: make(map[string][]Loc)}
	for tid, t := range tables {
		ix.tableNames = append(ix.tableNames, t.Name)
		for r, row := range t.Rows {
			for c, v := range row {
				if v == table.Null {
					continue
				}
				ix.postings[v] = append(ix.postings[v], Loc{
					TableID: int32(tid), ColumnID: int32(c), RowID: int32(r),
				})
			}
		}
	}
	return ix
}

// Lookup returns all locations of a value.
func (ix *Index) Lookup(value string) []Loc { return ix.postings[value] }

// TableName maps a table id to its name.
func (ix *Index) TableName(tid int32) string {
	if tid < 0 || int(tid) >= len(ix.tableNames) {
		return ""
	}
	return ix.tableNames[tid]
}

// Hit is one keyword-search result.
type Hit struct {
	TableID int32
	Overlap int
}

// SearchTables returns the top-k tables by the number of distinct keywords
// they contain — keyword search over the inverted index.
func (ix *Index) SearchTables(keywords []string, k int) []Hit {
	seen := make(map[string]struct{}, len(keywords))
	counts := make(map[int32]int)
	for _, kw := range keywords {
		if kw == "" {
			continue
		}
		if _, dup := seen[kw]; dup {
			continue
		}
		seen[kw] = struct{}{}
		tables := make(map[int32]struct{})
		for _, loc := range ix.postings[kw] {
			tables[loc.TableID] = struct{}{}
		}
		for tid := range tables {
			counts[tid]++
		}
	}
	hits := make([]Hit, 0, len(counts))
	for tid, n := range counts {
		hits = append(hits, Hit{TableID: tid, Overlap: n})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Overlap != hits[b].Overlap {
			return hits[a].Overlap > hits[b].Overlap
		}
		return hits[a].TableID < hits[b].TableID
	})
	if k >= 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SizeBytes estimates the index's resident size: value strings plus
// 12-byte locations.
func (ix *Index) SizeBytes() int64 {
	var b int64
	for v, ps := range ix.postings {
		b += int64(len(v)) + 16 + int64(len(ps))*12
	}
	return b
}
