package dataxformer

import (
	"testing"

	"blend/internal/table"
)

func lake() []*table.Table {
	t1 := table.New("teams", "Team", "Size")
	t1.MustAppendRow("HR", "33")
	t1.MustAppendRow("IT", "92")
	t2 := table.New("leads", "Lead", "Team")
	t2.MustAppendRow("Firenze", "HR")
	t2.MustAppendRow("", "Sales") // null cell skipped
	return []*table.Table{t1, t2}
}

func TestLookupLocations(t *testing.T) {
	ix := Build(lake())
	locs := ix.Lookup("HR")
	if len(locs) != 2 {
		t.Fatalf("HR locations = %d, want 2", len(locs))
	}
	// Exact location of teams[0][0].
	found := false
	for _, l := range locs {
		if l.TableID == 0 && l.ColumnID == 0 && l.RowID == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing location: %+v", locs)
	}
	if ix.Lookup("") != nil {
		t.Fatal("nulls must not be indexed")
	}
	if ix.Lookup("missing") != nil {
		t.Fatal("unknown value should return nil")
	}
}

func TestSearchTables(t *testing.T) {
	ix := Build(lake())
	hits := ix.SearchTables([]string{"HR", "92", "Firenze"}, 5)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	// teams matches HR + 92; leads matches HR + Firenze: tie at 2, broken
	// by table id.
	if hits[0].TableID != 0 || hits[0].Overlap != 2 {
		t.Fatalf("best = %+v", hits[0])
	}
	// Duplicate keywords count once.
	again := ix.SearchTables([]string{"HR", "HR"}, 5)
	if again[0].Overlap != 1 {
		t.Fatalf("duplicate keyword counted twice: %+v", again[0])
	}
}

func TestSearchTablesK(t *testing.T) {
	ix := Build(lake())
	if got := ix.SearchTables([]string{"HR"}, 1); len(got) != 1 {
		t.Fatalf("k=1 returned %d", len(got))
	}
	if got := ix.SearchTables(nil, 5); len(got) != 0 {
		t.Fatalf("empty query matched %v", got)
	}
}

func TestTableNameAndSize(t *testing.T) {
	ix := Build(lake())
	if ix.TableName(1) != "leads" || ix.TableName(-1) != "" {
		t.Fatal("TableName wrong")
	}
	if ix.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}
