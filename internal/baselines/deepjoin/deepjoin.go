// Package deepjoin reimplements the semantic join-discovery baseline of
// Fig. 6 (DeepJoin, Dong et al., VLDB 2023) on the substituted embedding
// stack: lake columns embed to dense vectors indexed in HNSW, and a query
// column retrieves its nearest columns by cosine similarity. Its runtime
// advantage in the paper — sub-linear ANN search versus posting-list
// scans — carries over; its results differ from the exact-overlap systems
// because similarity is semantic rather than syntactic.
package deepjoin

import (
	"sort"

	"blend/internal/embed"
	"blend/internal/hnsw"
	"blend/internal/table"
)

// ColumnRef locates one lake column.
type ColumnRef struct {
	TableID  int32
	ColumnID int32
}

// Index is the DeepJoin column-embedding index.
type Index struct {
	ann        *hnsw.Index
	refs       []ColumnRef
	tableNames []string
}

// Build embeds and indexes every non-empty column.
func Build(tables []*table.Table) *Index {
	ix := &Index{ann: hnsw.New(hnsw.DefaultConfig())}
	for tid, t := range tables {
		ix.tableNames = append(ix.tableNames, t.Name)
		for c := 0; c < t.NumCols(); c++ {
			vec := embed.Column(t.ColumnValues(c))
			if vec.IsZero() {
				continue
			}
			id := len(ix.refs)
			ix.refs = append(ix.refs, ColumnRef{TableID: int32(tid), ColumnID: int32(c)})
			if err := ix.ann.Add(id, vec); err != nil {
				panic("deepjoin: " + err.Error())
			}
		}
	}
	return ix
}

// TableName maps a table id to its name.
func (ix *Index) TableName(tid int32) string {
	if tid < 0 || int(tid) >= len(ix.tableNames) {
		return ""
	}
	return ix.tableNames[tid]
}

// Hit is one joinable-column result.
type Hit struct {
	Column     ColumnRef
	Similarity float64
}

// Search returns the top-k lake columns most similar to the query column.
func (ix *Index) Search(queryColumn []string, k int) []Hit {
	vec := embed.Column(queryColumn)
	if vec.IsZero() {
		return nil
	}
	rs := ix.ann.Search(vec, k)
	hits := make([]Hit, 0, len(rs))
	for _, r := range rs {
		hits = append(hits, Hit{Column: ix.refs[r.ID], Similarity: float64(r.Similarity)})
	}
	return hits
}

// SearchTables collapses Search to distinct tables, best column first.
func (ix *Index) SearchTables(queryColumn []string, k int) []Hit {
	cols := ix.Search(queryColumn, 4*k)
	best := make(map[int32]Hit)
	for _, h := range cols {
		if b, ok := best[h.Column.TableID]; !ok || h.Similarity > b.Similarity {
			best[h.Column.TableID] = h
		}
	}
	hits := make([]Hit, 0, len(best))
	for _, h := range best {
		hits = append(hits, h)
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Similarity != hits[b].Similarity {
			return hits[a].Similarity > hits[b].Similarity
		}
		return hits[a].Column.TableID < hits[b].Column.TableID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SizeBytes estimates the index's resident size.
func (ix *Index) SizeBytes() int64 {
	return ix.ann.SizeBytes() + int64(len(ix.refs))*8
}
