package deepjoin

import (
	"testing"

	"blend/internal/table"
)

func lake() []*table.Table {
	cities := table.New("cities", "City", "Country")
	cities.MustAppendRow("berlin", "germany")
	cities.MustAppendRow("hamburg", "germany")
	cities.MustAppendRow("munich", "germany")
	people := table.New("people", "Name")
	people.MustAppendRow("alice cooper")
	people.MustAppendRow("brian may")
	return []*table.Table{cities, people}
}

func TestSearchFindsSemanticallySimilarColumn(t *testing.T) {
	ix := Build(lake())
	hits := ix.Search([]string{"berlin", "munich", "cologne"}, 1)
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Column.TableID != 0 || hits[0].Column.ColumnID != 0 {
		t.Fatalf("best = %+v, want cities.City", hits[0])
	}
	if hits[0].Similarity <= 0 {
		t.Fatalf("similarity = %v", hits[0].Similarity)
	}
}

func TestSearchTables(t *testing.T) {
	ix := Build(lake())
	hits := ix.SearchTables([]string{"berlin", "germany"}, 5)
	if len(hits) == 0 || ix.TableName(hits[0].Column.TableID) != "cities" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSearchEmptyColumn(t *testing.T) {
	ix := Build(lake())
	if hits := ix.Search([]string{"", ""}, 3); hits != nil {
		t.Fatalf("empty column matched %v", hits)
	}
}

func TestSizeBytes(t *testing.T) {
	if Build(lake()).SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}
