// Package josie reimplements JOSIE (Zhu et al., SIGMOD 2019), the
// single-column join-discovery baseline BLEND compares against in §VIII-D:
// exact top-k overlap set similarity search over posting lists with
// frequency-ordered token processing and best-possible-overlap pruning.
//
// The index maps each distinct token to the list of lake columns containing
// it. A query column's tokens are processed from rarest to most frequent;
// candidate columns accumulate overlap counts, and the search stops early
// once no unseen candidate can still enter the top-k — the data-dependent
// pruning that makes JOSIE fast on skewed posting-length distributions.
package josie

import (
	"sort"

	"blend/internal/table"
)

// ColumnRef identifies one lake column.
type ColumnRef struct {
	TableID  int32
	ColumnID int32
}

// Index is the JOSIE posting-list index over a lake.
type Index struct {
	postings map[string][]ColumnRef
	// tables records table names by id, for result mapping.
	tableNames []string
}

// Build indexes the distinct value sets of every column of every table.
// Table ids are assigned in slice order, matching storage.Build.
func Build(tables []*table.Table) *Index {
	ix := &Index{postings: make(map[string][]ColumnRef)}
	for tid, t := range tables {
		ix.tableNames = append(ix.tableNames, t.Name)
		for c := 0; c < t.NumCols(); c++ {
			ref := ColumnRef{TableID: int32(tid), ColumnID: int32(c)}
			for _, v := range t.DistinctColumnValues(c) {
				ix.postings[v] = append(ix.postings[v], ref)
			}
		}
	}
	return ix
}

// TableName maps a table id to its name.
func (ix *Index) TableName(tid int32) string {
	if tid < 0 || int(tid) >= len(ix.tableNames) {
		return ""
	}
	return ix.tableNames[tid]
}

// Hit is one result column with its exact overlap.
type Hit struct {
	Column  ColumnRef
	Overlap int
}

// Search returns the top-k columns by exact set overlap with the query
// values. Ties break on (TableID, ColumnID) for determinism.
func (ix *Index) Search(query []string, k int) []Hit {
	toks := distinct(query)
	if len(toks) == 0 || k <= 0 {
		return nil
	}
	// Process tokens rarest-first: the cheapest lists go first and the
	// termination bound tightens fastest.
	sort.Slice(toks, func(a, b int) bool {
		la, lb := len(ix.postings[toks[a]]), len(ix.postings[toks[b]])
		if la != lb {
			return la < lb
		}
		return toks[a] < toks[b]
	})
	counts := make(map[ColumnRef]int)
	for i, tok := range toks {
		remaining := len(toks) - i
		// Early termination: a column not yet seen can reach at most
		// `remaining` overlap. If the current k-th best already meets or
		// exceeds that, unseen candidates cannot displace it, and seen
		// candidates keep accumulating through the loop below — but only
		// posting lists of remaining tokens matter, so check first.
		if kth := kthBest(counts, k); kth >= remaining && len(counts) >= k {
			// Seen candidates still need the remaining tokens counted.
			for _, rest := range toks[i:] {
				for _, ref := range ix.postings[rest] {
					if _, seen := counts[ref]; seen {
						counts[ref]++
					}
				}
			}
			break
		}
		for _, ref := range ix.postings[tok] {
			counts[ref]++
		}
	}
	hits := make([]Hit, 0, len(counts))
	for ref, n := range counts {
		hits = append(hits, Hit{Column: ref, Overlap: n})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Overlap != hits[b].Overlap {
			return hits[a].Overlap > hits[b].Overlap
		}
		if hits[a].Column.TableID != hits[b].Column.TableID {
			return hits[a].Column.TableID < hits[b].Column.TableID
		}
		return hits[a].Column.ColumnID < hits[b].Column.ColumnID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SearchTables collapses Search results to distinct tables (best column per
// table), the granularity BLEND's SC seeker reports.
func (ix *Index) SearchTables(query []string, k int) []Hit {
	cols := ix.Search(query, 4*k)
	best := make(map[int32]Hit)
	for _, h := range cols {
		if b, ok := best[h.Column.TableID]; !ok || h.Overlap > b.Overlap {
			best[h.Column.TableID] = h
		}
	}
	hits := make([]Hit, 0, len(best))
	for _, h := range best {
		hits = append(hits, h)
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Overlap != hits[b].Overlap {
			return hits[a].Overlap > hits[b].Overlap
		}
		return hits[a].Column.TableID < hits[b].Column.TableID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// kthBest returns the k-th largest count, or 0 when fewer than k
// candidates exist.
func kthBest(counts map[ColumnRef]int, k int) int {
	if len(counts) < k {
		return 0
	}
	// Small k: selection by partial scan is fine at this scale.
	top := make([]int, 0, k)
	for _, n := range counts {
		if len(top) < k {
			top = append(top, n)
			sort.Ints(top)
			continue
		}
		if n > top[0] {
			top[0] = n
			sort.Ints(top)
		}
	}
	return top[0]
}

// SizeBytes estimates the index's resident size: per-token posting lists
// plus the token strings themselves.
func (ix *Index) SizeBytes() int64 {
	var b int64
	for tok, ps := range ix.postings {
		b += int64(len(tok)) + 16 + int64(len(ps))*8
	}
	for _, n := range ix.tableNames {
		b += int64(len(n)) + 16
	}
	return b
}

func distinct(values []string) []string {
	seen := make(map[string]struct{}, len(values))
	out := make([]string, 0, len(values))
	for _, v := range values {
		if v == "" {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
