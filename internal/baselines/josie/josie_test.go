package josie

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"blend/internal/table"
)

func lake() []*table.Table {
	t1 := table.New("teams", "Team")
	for _, v := range []string{"HR", "Marketing", "Finance", "IT", "Sales"} {
		t1.MustAppendRow(v)
	}
	t2 := table.New("leads", "Lead", "Team")
	t2.MustAppendRow("Firenze", "HR")
	t2.MustAppendRow("Tom", "IT")
	t3 := table.New("cities", "City")
	t3.MustAppendRow("Berlin")
	t3.MustAppendRow("Hannover")
	return []*table.Table{t1, t2, t3}
}

func TestSearchExactOverlap(t *testing.T) {
	ix := Build(lake())
	hits := ix.Search([]string{"HR", "IT", "Sales", "Berlin"}, 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Column.TableID != 0 || hits[0].Overlap != 3 {
		t.Fatalf("best = %+v, want teams.Team overlap 3", hits[0])
	}
}

func TestSearchTablesCollapses(t *testing.T) {
	ix := Build(lake())
	hits := ix.SearchTables([]string{"HR", "IT"}, 10)
	// teams and leads both contain HR and IT (leads.Team has both).
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	for _, h := range hits {
		if h.Overlap != 2 {
			t.Fatalf("overlap = %d, want 2", h.Overlap)
		}
	}
}

func TestSearchEmptyAndMissing(t *testing.T) {
	ix := Build(lake())
	if ix.Search(nil, 5) != nil {
		t.Fatal("empty query must return nil")
	}
	if got := ix.Search([]string{"does-not-exist"}, 5); len(got) != 0 {
		t.Fatalf("missing value matched %v", got)
	}
	if ix.Search([]string{"HR"}, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestSearchDeduplicatesQuery(t *testing.T) {
	ix := Build(lake())
	a := ix.Search([]string{"HR", "HR", "IT"}, 5)
	b := ix.Search([]string{"HR", "IT"}, 5)
	if len(a) != len(b) {
		t.Fatal("duplicate query values changed results")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("duplicate query values changed results")
		}
	}
}

func TestTableName(t *testing.T) {
	ix := Build(lake())
	if ix.TableName(1) != "leads" || ix.TableName(-1) != "" || ix.TableName(99) != "" {
		t.Fatal("TableName wrong")
	}
}

func TestSizeBytes(t *testing.T) {
	if Build(lake()).SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

// TestMatchesBruteForce property-checks the pruned search against a naive
// overlap computation on random lakes.
func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("v%02d", i)
	}
	for trial := 0; trial < 25; trial++ {
		numTables := 3 + rng.Intn(6)
		tables := make([]*table.Table, numTables)
		for ti := range tables {
			tb := table.New(fmt.Sprintf("t%d", ti), "a", "b")
			rows := 3 + rng.Intn(15)
			for r := 0; r < rows; r++ {
				tb.MustAppendRow(vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))])
			}
			tables[ti] = tb
		}
		ix := Build(tables)
		qn := 1 + rng.Intn(10)
		query := make([]string, qn)
		for i := range query {
			query[i] = vocab[rng.Intn(len(vocab))]
		}
		k := 1 + rng.Intn(5)
		got := ix.Search(query, k)

		// Brute force per column.
		qset := make(map[string]bool)
		for _, q := range query {
			qset[q] = true
		}
		type colKey struct{ t, c int }
		want := make(map[colKey]int)
		for ti, tb := range tables {
			for c := 0; c < tb.NumCols(); c++ {
				n := 0
				for _, v := range tb.DistinctColumnValues(c) {
					if qset[v] {
						n++
					}
				}
				if n > 0 {
					want[colKey{ti, c}] = n
				}
			}
		}
		var wantOverlaps []int
		for _, n := range want {
			wantOverlaps = append(wantOverlaps, n)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(wantOverlaps)))
		if len(wantOverlaps) > k {
			wantOverlaps = wantOverlaps[:k]
		}
		if len(got) != len(wantOverlaps) {
			t.Fatalf("trial %d: got %d hits, want %d", trial, len(got), len(wantOverlaps))
		}
		for i := range got {
			if got[i].Overlap != wantOverlaps[i] {
				t.Fatalf("trial %d: overlap[%d] = %d, want %d", trial, i, got[i].Overlap, wantOverlaps[i])
			}
			if want[colKey{int(got[i].Column.TableID), int(got[i].Column.ColumnID)}] != got[i].Overlap {
				t.Fatalf("trial %d: hit %v has wrong overlap", trial, got[i])
			}
		}
	}
}
