// Package mate reimplements MATE (Esmailoghli et al., VLDB 2022), the
// multi-column join-discovery baseline of §VIII-E: an inverted index whose
// entries carry the XASH super key of their row, an initiator-column fetch,
// XASH-based filtering, and row-by-row exact validation in application
// code.
//
// The contrast with BLEND's MC seeker is architectural: MATE fetches every
// row matching the single initiator column and relies on XASH alone to
// prune, so far more candidate rows survive to validation (the false
// positives counted in Table V); BLEND's SQL joins the per-column index
// hits first, discarding rows that lack values from the other columns
// before any validation happens.
package mate

import (
	"sort"

	"blend/internal/table"
	"blend/internal/xash"
)

// entry is one inverted-index posting: the row location plus its super key.
type entry struct {
	tableID int32
	rowID   int32
	key     xash.Key
}

// Index is the MATE index over a lake.
type Index struct {
	postings   map[string][]entry
	tables     []*table.Table // retained for application-level validation
	tableNames []string
}

// Build indexes every cell value with its row's XASH super key. The source
// tables are retained: MATE validates candidate rows against the raw data
// at the application level.
func Build(tables []*table.Table) *Index {
	ix := &Index{postings: make(map[string][]entry), tables: tables}
	for tid, t := range tables {
		ix.tableNames = append(ix.tableNames, t.Name)
		for r, row := range t.Rows {
			key := xash.HashRow(row)
			seen := make(map[string]struct{}, len(row))
			for _, v := range row {
				if v == table.Null {
					continue
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				ix.postings[v] = append(ix.postings[v], entry{
					tableID: int32(tid), rowID: int32(r), key: key,
				})
			}
		}
	}
	return ix
}

// TableName maps a table id to its name.
func (ix *Index) TableName(tid int32) string {
	if tid < 0 || int(tid) >= len(ix.tableNames) {
		return ""
	}
	return ix.tableNames[tid]
}

// Hit is one result table with its joinable-row count.
type Hit struct {
	TableID int32
	Rows    int
}

// Stats reports the filtering funnel of one search, feeding Table V:
// Fetched rows from the initiator column, Candidates surviving the XASH
// filter, TruePositives passing exact validation, and FalsePositives
// (candidates that validation rejected).
type Stats struct {
	Fetched        int
	Candidates     int
	TruePositives  int
	FalsePositives int
}

// Search finds the top-k tables containing the query tuples on their
// composite key. Each tuple lists the key values of one query row.
func (ix *Index) Search(tuples [][]string, k int) ([]Hit, Stats) {
	var stats Stats
	if len(tuples) == 0 {
		return nil, stats
	}
	width := len(tuples[0])
	// Initiator column: the query column with the shortest total posting
	// length (MATE's cheapest-first fetch).
	initiator, bestCost := 0, -1
	for c := 0; c < width; c++ {
		cost := 0
		for _, v := range columnValues(tuples, c) {
			cost += len(ix.postings[v])
		}
		if bestCost < 0 || cost < bestCost {
			initiator, bestCost = c, cost
		}
	}

	tupleKeys := make([]xash.Key, len(tuples))
	for i, t := range tuples {
		tupleKeys[i] = xash.HashRow(t)
	}

	type rowKey struct{ tid, rid int32 }
	seen := make(map[rowKey]struct{})
	joinable := make(map[int32]int)
	for _, v := range columnValues(tuples, initiator) {
		for _, e := range ix.postings[v] {
			rk := rowKey{e.tableID, e.rowID}
			if _, dup := seen[rk]; dup {
				continue
			}
			seen[rk] = struct{}{}
			stats.Fetched++
			// XASH filter: some query tuple must be fully covered by the
			// row's super key.
			matched := -1
			for ti, tk := range tupleKeys {
				if e.key.Contains(tk) {
					matched = ti
					break
				}
			}
			if matched < 0 {
				continue
			}
			stats.Candidates++
			// Application-level validation against the raw table.
			if ix.validate(e.tableID, e.rowID, tuples, tupleKeys) {
				stats.TruePositives++
				joinable[e.tableID]++
			} else {
				stats.FalsePositives++
			}
		}
	}
	hits := make([]Hit, 0, len(joinable))
	for tid, n := range joinable {
		hits = append(hits, Hit{TableID: tid, Rows: n})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Rows != hits[b].Rows {
			return hits[a].Rows > hits[b].Rows
		}
		return hits[a].TableID < hits[b].TableID
	})
	if k >= 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits, stats
}

// validate checks whether the raw row contains every value of some query
// tuple.
func (ix *Index) validate(tid, rid int32, tuples [][]string, keys []xash.Key) bool {
	row := ix.tables[tid].Rows[rid]
	cells := make(map[string]struct{}, len(row))
	for _, c := range row {
		if c != table.Null {
			cells[c] = struct{}{}
		}
	}
	for _, t := range tuples {
		all := true
		for _, v := range t {
			if v == table.Null {
				continue
			}
			if _, ok := cells[v]; !ok {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// SizeBytes estimates the index size: postings with 16-byte super keys per
// entry plus token strings. The retained raw tables are not counted — the
// paper's storage comparison covers index structures.
func (ix *Index) SizeBytes() int64 {
	var b int64
	for tok, ps := range ix.postings {
		b += int64(len(tok)) + 16 + int64(len(ps))*24
	}
	return b
}

func columnValues(tuples [][]string, c int) []string {
	seen := make(map[string]struct{}, len(tuples))
	out := make([]string, 0, len(tuples))
	for _, t := range tuples {
		if c >= len(t) || t[c] == "" {
			continue
		}
		if _, dup := seen[t[c]]; dup {
			continue
		}
		seen[t[c]] = struct{}{}
		out = append(out, t[c])
	}
	return out
}
