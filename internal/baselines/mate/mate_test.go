package mate

import (
	"testing"

	"blend/internal/table"
)

func lake() []*table.Table {
	t2 := table.New("T2", "Lead", "Year", "Team")
	t2.MustAppendRow("Tom Riddle", "2022", "IT")
	t2.MustAppendRow("Firenze", "2022", "HR")
	t3 := table.New("T3", "Lead", "Year", "Team")
	t3.MustAppendRow("Ronald Weasley", "2024", "IT")
	t3.MustAppendRow("Firenze", "2024", "HR")
	return []*table.Table{t2, t3}
}

func TestSearchFindsAlignedTuples(t *testing.T) {
	ix := Build(lake())
	hits, stats := ix.Search([][]string{{"HR", "Firenze"}}, 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if stats.TruePositives != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Recall is 100% by construction (bloom filter has no false negatives).
	if hits[0].Rows != 1 || hits[1].Rows != 1 {
		t.Fatalf("row counts = %v", hits)
	}
}

func TestSearchRejectsMisaligned(t *testing.T) {
	ix := Build(lake())
	// HR and Tom Riddle never co-occur in a row.
	hits, stats := ix.Search([][]string{{"HR", "Tom Riddle"}}, 10)
	if len(hits) != 0 {
		t.Fatalf("misaligned matched %v", hits)
	}
	if stats.TruePositives != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The initiator fetch still touched rows.
	if stats.Fetched == 0 {
		t.Fatal("expected fetched rows")
	}
}

func TestSearchEmpty(t *testing.T) {
	ix := Build(lake())
	hits, _ := ix.Search(nil, 10)
	if hits != nil {
		t.Fatal("empty query must return nil")
	}
}

func TestInitiatorPicksCheapestColumn(t *testing.T) {
	// "IT" appears twice across the lake, "Tom Riddle" once: the initiator
	// must be the Tom Riddle column, fetching only one row.
	ix := Build(lake())
	_, stats := ix.Search([][]string{{"IT", "Tom Riddle"}}, 10)
	if stats.Fetched != 1 {
		t.Fatalf("fetched = %d, want 1 (cheapest initiator)", stats.Fetched)
	}
}

func TestMultipleTuplesAccumulateRows(t *testing.T) {
	ix := Build(lake())
	hits, _ := ix.Search([][]string{{"HR", "Firenze"}, {"IT", "Tom Riddle"}}, 10)
	// T2 matches both tuples (2 rows), T3 only the HR tuple.
	if len(hits) != 2 || hits[0].Rows != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if ix.TableName(hits[0].TableID) != "T2" {
		t.Fatalf("best = %s", ix.TableName(hits[0].TableID))
	}
}

func TestStatsFunnelMonotone(t *testing.T) {
	ix := Build(lake())
	_, stats := ix.Search([][]string{{"HR", "Firenze"}}, 10)
	if stats.Candidates > stats.Fetched {
		t.Fatal("candidates cannot exceed fetched")
	}
	if stats.TruePositives+stats.FalsePositives != stats.Candidates {
		t.Fatal("TP + FP must equal candidates")
	}
}

func TestSizeBytes(t *testing.T) {
	if Build(lake()).SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestTableName(t *testing.T) {
	ix := Build(lake())
	if ix.TableName(0) != "T2" || ix.TableName(5) != "" {
		t.Fatal("TableName wrong")
	}
}
