// Package qcrsketch reimplements the sketch-based correlation-discovery
// baseline of Santos et al. (ICDE 2022) that BLEND compares against in
// §VIII-G: for every (categorical key column, numeric column) pair in the
// lake, the index stores the h smallest hashes of key⊕quadrant; retrieval
// intersects the query's sketch with each stored sketch and estimates the
// correlation from the fraction of agreeing quadrant bits.
//
// Two limitations of the original — reproduced faithfully because the
// paper's experiments rely on them — are: (1) join keys must be
// categorical, so numeric-key queries find nothing (Table VII, NYC (All));
// (2) the sketch size h is fixed at indexing time, so changing it requires
// re-indexing the lake, unlike BLEND's query-time h.
package qcrsketch

import (
	"hash/fnv"
	"sort"

	"blend/internal/qcr"
	"blend/internal/table"
)

// sketchEntry pairs a key hash with the quadrant bit of its numeric value.
type sketchEntry struct {
	keyHash  uint64
	quadrant int8
}

// pairSketch is the stored sketch of one (key column, numeric column)
// pair.
type pairSketch struct {
	tableID int32
	keyCol  int32
	numCol  int32
	entries []sketchEntry // h smallest key hashes, ascending
}

// Index is the QCR sketch index over a lake. Its size grows with the
// number of column pairs per table — the quadratic blow-up BLEND's single
// Quadrant column avoids (§V).
type Index struct {
	h          int
	sketches   []pairSketch
	tableNames []string
}

// Build indexes every (categorical, numeric) column pair of every table
// with sketch size h.
func Build(tables []*table.Table, h int) *Index {
	ix := &Index{h: h}
	for tid, t := range tables {
		ix.tableNames = append(ix.tableNames, t.Name)
		var catCols, numCols []int
		for c := 0; c < t.NumCols(); c++ {
			if t.Columns[c].Kind == table.KindNumeric {
				numCols = append(numCols, c)
			} else {
				catCols = append(catCols, c)
			}
		}
		for _, kc := range catCols {
			for _, nc := range numCols {
				sk := buildPairSketch(t, kc, nc, h)
				if len(sk) == 0 {
					continue
				}
				ix.sketches = append(ix.sketches, pairSketch{
					tableID: int32(tid), keyCol: int32(kc), numCol: int32(nc), entries: sk,
				})
			}
		}
	}
	return ix
}

func buildPairSketch(t *table.Table, keyCol, numCol, h int) []sketchEntry {
	nums, rows := t.NumericColumnValues(numCol)
	if len(nums) == 0 {
		return nil
	}
	mean := qcr.Mean(nums)
	entries := make([]sketchEntry, 0, len(nums))
	for i, r := range rows {
		key := t.Cell(r, keyCol)
		if key == table.Null {
			continue
		}
		entries = append(entries, sketchEntry{
			keyHash:  hashKey(key),
			quadrant: qcr.QuadrantBit(nums[i], mean),
		})
	}
	return smallestH(entries, h)
}

// smallestH keeps the h entries with the smallest key hashes (the min-hash
// selection of the original), deduplicated by hash.
func smallestH(entries []sketchEntry, h int) []sketchEntry {
	sort.Slice(entries, func(a, b int) bool { return entries[a].keyHash < entries[b].keyHash })
	out := entries[:0]
	var last uint64
	for i, e := range entries {
		if i > 0 && e.keyHash == last {
			continue
		}
		last = e.keyHash
		out = append(out, e)
		if len(out) == h {
			break
		}
	}
	return append([]sketchEntry(nil), out...)
}

// TableName maps a table id to its name.
func (ix *Index) TableName(tid int32) string {
	if tid < 0 || int(tid) >= len(ix.tableNames) {
		return ""
	}
	return ix.tableNames[tid]
}

// Hit is one result table with its estimated |QCR|.
type Hit struct {
	TableID int32
	AbsQCR  float64
}

// Search estimates, for every indexed column pair, the correlation between
// the query target and the pair's numeric column across the join keys, and
// returns the top-k tables by |QCR| estimate. Keys pair positionally with
// targets.
func (ix *Index) Search(keys []string, targets []float64, k int) []Hit {
	n := len(keys)
	if len(targets) < n {
		n = len(targets)
	}
	if n == 0 {
		return nil
	}
	mean := qcr.Mean(targets[:n])
	queryQuad := make(map[uint64]int8, n)
	for i := 0; i < n; i++ {
		if keys[i] == "" {
			continue
		}
		queryQuad[hashKey(keys[i])] = qcr.QuadrantBit(targets[i], mean)
	}
	best := make(map[int32]float64)
	for _, sk := range ix.sketches {
		agree, total := 0, 0
		for _, e := range sk.entries {
			q, ok := queryQuad[e.keyHash]
			if !ok {
				continue
			}
			total++
			if q == e.quadrant {
				agree++
			}
		}
		if total == 0 {
			continue
		}
		est := qcr.FromAgreement(agree, total)
		if est < 0 {
			est = -est
		}
		if cur, ok := best[sk.tableID]; !ok || est > cur {
			best[sk.tableID] = est
		}
	}
	hits := make([]Hit, 0, len(best))
	for tid, s := range best {
		hits = append(hits, Hit{TableID: tid, AbsQCR: s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].AbsQCR != hits[b].AbsQCR {
			return hits[a].AbsQCR > hits[b].AbsQCR
		}
		return hits[a].TableID < hits[b].TableID
	})
	if k >= 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SizeBytes estimates the index size: 9 bytes per sketch entry plus
// per-pair bookkeeping.
func (ix *Index) SizeBytes() int64 {
	var b int64
	for _, sk := range ix.sketches {
		b += 16 + int64(len(sk.entries))*9
	}
	return b
}

// NumSketches reports the number of stored column-pair sketches.
func (ix *Index) NumSketches() int { return len(ix.sketches) }

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
