package qcrsketch

import (
	"strconv"
	"testing"

	"blend/internal/table"
)

func keysN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "key" + strconv.Itoa(i)
	}
	return out
}

func corrLake(n int) []*table.Table {
	good := table.New("good", "City", "Pop")
	noise := table.New("noise", "City", "Rand")
	for i, c := range keysN(n) {
		good.MustAppendRow(c, strconv.Itoa((i+1)*10))
		noise.MustAppendRow(c, strconv.Itoa((i*7919+13)%997))
	}
	good.InferKinds()
	noise.InferKinds()
	return []*table.Table{good, noise}
}

func TestSearchRanksCorrelatedFirst(t *testing.T) {
	n := 40
	ix := Build(corrLake(n), 256)
	targets := make([]float64, n)
	for i := range targets {
		targets[i] = float64(i + 1)
	}
	hits := ix.Search(keysN(n), targets, 2)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if ix.TableName(hits[0].TableID) != "good" || hits[0].AbsQCR < 0.9 {
		t.Fatalf("best = %v (%s)", hits[0], ix.TableName(hits[0].TableID))
	}
	if hits[1].AbsQCR >= hits[0].AbsQCR {
		t.Fatal("noise must rank below the correlated table")
	}
}

func TestNumericKeysNotSupported(t *testing.T) {
	// Lake table keyed by a numeric column: the baseline cannot index it
	// (only categorical keys are sketched), so the query finds nothing —
	// the limitation behind Table VII's NYC (All) gap.
	tb := table.New("numkey", "Id", "Metric")
	for i := 1; i <= 20; i++ {
		tb.MustAppendRow(strconv.Itoa(i), strconv.Itoa(i*100))
	}
	tb.InferKinds()
	ix := Build([]*table.Table{tb}, 64)
	if ix.NumSketches() != 0 {
		t.Fatalf("numeric key column was sketched: %d", ix.NumSketches())
	}
	keys := make([]string, 20)
	targets := make([]float64, 20)
	for i := range keys {
		keys[i] = strconv.Itoa(i + 1)
		targets[i] = float64(i + 1)
	}
	if hits := ix.Search(keys, targets, 5); len(hits) != 0 {
		t.Fatalf("numeric-key query matched %v", hits)
	}
}

func TestSketchSizeBounded(t *testing.T) {
	n := 500
	h := 32
	ix := Build(corrLake(n), h)
	for _, sk := range ix.sketches {
		if len(sk.entries) > h {
			t.Fatalf("sketch has %d entries, cap %d", len(sk.entries), h)
		}
	}
}

func TestSearchEmptyInputs(t *testing.T) {
	ix := Build(corrLake(10), 16)
	if hits := ix.Search(nil, nil, 5); hits != nil {
		t.Fatalf("empty query matched %v", hits)
	}
}

func TestSizeBytesGrowsQuadratically(t *testing.T) {
	// Two numeric columns and two categorical columns → 4 pair sketches;
	// BLEND's single Quadrant column avoids this blow-up.
	tb := table.New("wide", "K1", "K2", "N1", "N2")
	for i := 0; i < 20; i++ {
		tb.MustAppendRow("a"+strconv.Itoa(i), "b"+strconv.Itoa(i),
			strconv.Itoa(i), strconv.Itoa(i*2))
	}
	tb.InferKinds()
	ix := Build([]*table.Table{tb}, 64)
	if ix.NumSketches() != 4 {
		t.Fatalf("sketches = %d, want 4 (2 cat × 2 num)", ix.NumSketches())
	}
	if ix.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestAntiCorrelationScoresHigh(t *testing.T) {
	n := 40
	anti := table.New("anti", "City", "Neg")
	for i, c := range keysN(n) {
		anti.MustAppendRow(c, strconv.Itoa((n-i)*10))
	}
	anti.InferKinds()
	ix := Build([]*table.Table{anti}, 256)
	targets := make([]float64, n)
	for i := range targets {
		targets[i] = float64(i + 1)
	}
	hits := ix.Search(keysN(n), targets, 1)
	if len(hits) != 1 || hits[0].AbsQCR < 0.9 {
		t.Fatalf("anti-correlated table scored %v", hits)
	}
}
