// Package starmie reimplements the union-search baseline of §VIII-F
// (Starmie, Fan et al., VLDB 2023) on the substituted embedding stack: each
// lake column embeds to a dense vector (internal/embed standing in for the
// contrastive model, see DESIGN.md §3), the vectors live in an HNSW index,
// and a query table scores candidates by greedily matching its columns to
// their nearest lake columns — the architecture (embed → ANN → aggregate)
// and its runtime profile are preserved.
package starmie

import (
	"sort"

	"blend/internal/embed"
	"blend/internal/hnsw"
	"blend/internal/table"
)

// columnRef locates an embedded column.
type columnRef struct {
	tableID  int32
	columnID int32
}

// Index is the Starmie column-embedding index.
type Index struct {
	ann        *hnsw.Index
	refs       []columnRef // external id -> column
	vectors    []embed.Vector
	tableNames []string
	// probeWidth is how many ANN neighbours each query column fetches.
	probeWidth int
}

// Build embeds every non-empty column of every table and indexes the
// vectors in HNSW.
func Build(tables []*table.Table) *Index {
	ix := &Index{
		ann:        hnsw.New(hnsw.DefaultConfig()),
		probeWidth: 32,
	}
	for tid, t := range tables {
		ix.tableNames = append(ix.tableNames, t.Name)
		for c := 0; c < t.NumCols(); c++ {
			vec := embed.Column(t.ColumnValues(c))
			if vec.IsZero() {
				continue
			}
			id := len(ix.refs)
			ix.refs = append(ix.refs, columnRef{tableID: int32(tid), columnID: int32(c)})
			ix.vectors = append(ix.vectors, vec)
			// Add cannot fail: IsZero filtered zero vectors.
			if err := ix.ann.Add(id, vec); err != nil {
				panic("starmie: " + err.Error())
			}
		}
	}
	return ix
}

// TableName maps a table id to its name.
func (ix *Index) TableName(tid int32) string {
	if tid < 0 || int(tid) >= len(ix.tableNames) {
		return ""
	}
	return ix.tableNames[tid]
}

// Hit is one unionable-table result with its aggregate column-match score.
type Hit struct {
	TableID int32
	Score   float64
}

// Search returns the top-k tables unionable with the query table: every
// query column probes the ANN index, per-table column similarities
// aggregate greedily (each lake column matches at most one query column),
// and tables rank by total matched similarity.
func (ix *Index) Search(query *table.Table, k int) []Hit {
	type match struct {
		qcol int
		ref  columnRef
		sim  float64
	}
	var matches []match
	for c := 0; c < query.NumCols(); c++ {
		vec := embed.Column(query.ColumnValues(c))
		if vec.IsZero() {
			continue
		}
		for _, r := range ix.ann.Search(vec, ix.probeWidth) {
			matches = append(matches, match{
				qcol: c,
				ref:  ix.refs[r.ID],
				sim:  float64(r.Similarity),
			})
		}
	}
	// Greedy bipartite matching per table: best similarity first, each
	// query column and each lake column used once.
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].sim != matches[b].sim {
			return matches[a].sim > matches[b].sim
		}
		if matches[a].ref.tableID != matches[b].ref.tableID {
			return matches[a].ref.tableID < matches[b].ref.tableID
		}
		return matches[a].qcol < matches[b].qcol
	})
	type key struct {
		tid  int32
		qcol int
	}
	usedQ := make(map[key]bool)
	usedL := make(map[columnRef]bool)
	score := make(map[int32]float64)
	for _, m := range matches {
		if m.sim <= 0 {
			continue
		}
		kq := key{m.ref.tableID, m.qcol}
		if usedQ[kq] || usedL[m.ref] {
			continue
		}
		usedQ[kq] = true
		usedL[m.ref] = true
		score[m.ref.tableID] += m.sim
	}
	hits := make([]Hit, 0, len(score))
	for tid, s := range score {
		hits = append(hits, Hit{TableID: tid, Score: s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].TableID < hits[b].TableID
	})
	if k >= 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// SizeBytes estimates the index size: the HNSW graph plus the retained
// column vectors ("Starmie vectors are stored as a file", §VIII-B5).
func (ix *Index) SizeBytes() int64 {
	var b int64 = ix.ann.SizeBytes()
	for _, v := range ix.vectors {
		b += int64(len(v)) * 4
	}
	b += int64(len(ix.refs)) * 8
	return b
}
