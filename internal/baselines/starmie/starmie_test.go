package starmie

import (
	"fmt"
	"testing"

	"blend/internal/table"
)

// unionLake builds two schema families: people tables (unionable with each
// other) and metric tables.
func unionLake() []*table.Table {
	var tables []*table.Table
	people := [][2]string{
		{"alice johnson", "engineering"}, {"bob smith", "marketing"},
		{"carol white", "finance"}, {"dan brown", "engineering"},
		{"eve black", "sales"}, {"frank green", "support"},
	}
	for i := 0; i < 3; i++ {
		tb := table.New(fmt.Sprintf("people%d", i), "Name", "Department")
		for j, p := range people {
			if (i+j)%3 != 0 { // partial, non-identical overlap
				tb.MustAppendRow(p[0], p[1])
			}
		}
		tables = append(tables, tb)
	}
	for i := 0; i < 2; i++ {
		tb := table.New(fmt.Sprintf("metrics%d", i), "SensorReading", "Station")
		tb.MustAppendRow("temperature 20.4", "station north")
		tb.MustAppendRow("humidity 88", "station south")
		tb.MustAppendRow("pressure 1011", "station west")
		tables = append(tables, tb)
	}
	return tables
}

func TestSearchFindsUnionableFamily(t *testing.T) {
	ix := Build(unionLake())
	q := table.New("q", "Name", "Department")
	q.MustAppendRow("alice johnson", "engineering")
	q.MustAppendRow("bob smith", "marketing")
	hits := ix.Search(q, 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	for _, h := range hits {
		name := ix.TableName(h.TableID)
		if name != "people0" && name != "people1" && name != "people2" {
			t.Fatalf("non-people table %s in top-3: %v", name, hits)
		}
	}
}

func TestSearchScoresMetricFamilyLower(t *testing.T) {
	ix := Build(unionLake())
	q := table.New("q", "Reading", "Where")
	q.MustAppendRow("temperature 19.9", "station north")
	hits := ix.Search(q, 2)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if name := ix.TableName(hits[0].TableID); name != "metrics0" && name != "metrics1" {
		t.Fatalf("best = %s, want a metrics table", name)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	ix := Build(unionLake())
	q := table.New("q", "Empty")
	if hits := ix.Search(q, 5); len(hits) != 0 {
		t.Fatalf("empty query matched %v", hits)
	}
}

func TestGreedyMatchingUsesEachQueryColumnOnce(t *testing.T) {
	ix := Build(unionLake())
	q := table.New("q", "Name", "Department")
	q.MustAppendRow("alice johnson", "engineering")
	hits := ix.Search(q, 1)
	if len(hits) != 1 {
		t.Fatal("no hits")
	}
	// Max score = 2 columns × similarity ≤ 1 each.
	if hits[0].Score > 2.0001 {
		t.Fatalf("score %v exceeds column budget", hits[0].Score)
	}
}

func TestSizeBytes(t *testing.T) {
	if Build(unionLake()).SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestTableName(t *testing.T) {
	ix := Build(unionLake())
	if ix.TableName(0) != "people0" || ix.TableName(-1) != "" {
		t.Fatal("TableName wrong")
	}
}
