// Package berr defines BLEND's typed error model. Every layer — plan
// validation in core, seeker execution, the minisql engine, index
// persistence, and the HTTP service — reports failures as *Error values
// carrying a stable Code, so callers dispatch with errors.Is/errors.As
// instead of string matching, and the service layer maps codes onto HTTP
// statuses and wire names mechanically.
//
// The package sits below every other blend package (it imports nothing but
// the standard library); the root blend package re-exports the type, the
// codes, and the sentinels as its public error surface.
package berr

import (
	"context"
	"errors"
	"fmt"
)

// Code classifies an error for programmatic handling. Codes are stable:
// the String form is the wire name used by the HTTP service.
type Code uint8

// Error codes.
const (
	// CodeUnknown marks errors that predate the typed model or carry no
	// classification.
	CodeUnknown Code = iota
	// CodeBadPlan reports a structurally invalid discovery plan: empty,
	// duplicate or missing node ids, cycles, malformed plan JSON, or
	// invalid operator parameters such as k <= 0 in a plan document.
	CodeBadPlan
	// CodeUnknownNode reports a reference to a plan node id that does not
	// exist (combiner inputs, the output selector).
	CodeUnknownNode
	// CodeCanceled reports an execution aborted by context cancellation.
	CodeCanceled
	// CodeDeadline reports an execution aborted by a context deadline.
	CodeDeadline
	// CodeNoCostModel reports a cost-model operation before training.
	CodeNoCostModel
	// CodeBadQuery reports a raw SQL statement the minisql engine rejects,
	// at parse time or during execution.
	CodeBadQuery
	// CodeBadIndex reports a corrupt or unreadable persisted index file.
	CodeBadIndex
	// CodeBadRequest reports an invalid service request or CLI invocation
	// outside plan/query semantics (bad flags, malformed DTOs).
	CodeBadRequest
	// CodeNotFound reports a lookup of a resource that does not exist
	// (e.g. a table id beyond the catalog).
	CodeNotFound
	// CodeInternal reports an invariant violation inside the engine.
	CodeInternal
	// CodeDuplicateTable reports an ingest of a table whose name is
	// already indexed (or repeated within one batch).
	CodeDuplicateTable
	// CodeGenerationGone reports a time-travel query pinned to an index
	// generation that has fallen out of (or never entered) the engine's
	// retention window.
	CodeGenerationGone
)

// String returns the stable wire name of the code.
func (c Code) String() string {
	switch c {
	case CodeBadPlan:
		return "bad_plan"
	case CodeUnknownNode:
		return "unknown_node"
	case CodeCanceled:
		return "canceled"
	case CodeDeadline:
		return "deadline_exceeded"
	case CodeNoCostModel:
		return "no_cost_model"
	case CodeBadQuery:
		return "bad_query"
	case CodeBadIndex:
		return "bad_index"
	case CodeBadRequest:
		return "bad_request"
	case CodeNotFound:
		return "not_found"
	case CodeInternal:
		return "internal"
	case CodeDuplicateTable:
		return "duplicate_table"
	case CodeGenerationGone:
		return "generation_gone"
	default:
		return "unknown"
	}
}

// Error is BLEND's typed error: a code for dispatch, the operation that
// failed, and a human-readable detail. An Error may wrap a cause, so
// errors.Is also matches underlying sentinels such as context.Canceled.
type Error struct {
	// Code classifies the failure.
	Code Code
	// Op names the operation that failed, e.g. "plan.validate" or
	// "minisql.parse".
	Op string
	// Detail is the human-readable description.
	Detail string
	// Err is the wrapped cause, if any.
	Err error
}

// Error implements the error interface: "code: op: detail: cause" with
// empty parts omitted.
func (e *Error) Error() string {
	msg := e.Code.String()
	if e.Op != "" {
		msg += ": " + e.Op
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the cause to errors.Is/errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches sentinel errors by code: errors.Is(err, ErrBadPlan) holds for
// every Error whose Code is CodeBadPlan. Only bare sentinels (no op,
// detail, or cause) compare by code; fully populated Errors fall back to
// identity so two distinct failures never alias.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return t.Op == "" && t.Detail == "" && t.Err == nil && t.Code == e.Code
}

// Sentinels, one per code, for errors.Is dispatch. They carry no operation
// or detail; construct real errors with New or Wrap.
var (
	ErrBadPlan          = &Error{Code: CodeBadPlan}
	ErrUnknownNode      = &Error{Code: CodeUnknownNode}
	ErrCanceled         = &Error{Code: CodeCanceled}
	ErrDeadlineExceeded = &Error{Code: CodeDeadline}
	ErrNoCostModel      = &Error{Code: CodeNoCostModel}
	ErrBadQuery         = &Error{Code: CodeBadQuery}
	ErrBadIndex         = &Error{Code: CodeBadIndex}
	ErrBadRequest       = &Error{Code: CodeBadRequest}
	ErrNotFound         = &Error{Code: CodeNotFound}
	ErrInternal         = &Error{Code: CodeInternal}
	ErrDuplicateTable   = &Error{Code: CodeDuplicateTable}
	ErrGenerationGone   = &Error{Code: CodeGenerationGone}
)

// New builds a typed error from a format string.
func New(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Detail: fmt.Sprintf(format, args...)}
}

// Wrap attaches a code and operation to a cause. A nil cause returns nil.
// If the cause is already a typed Error, its code is preserved and only
// the operation context is added, so the original classification survives
// layer crossings.
func Wrap(code Code, op string, err error) error {
	if err == nil {
		return nil
	}
	var te *Error
	if errors.As(err, &te) {
		code = te.Code
	}
	return &Error{Code: code, Op: op, Err: err}
}

// FromContext converts a context error into the matching typed error,
// wrapping the original so errors.Is(err, context.Canceled) keeps working.
// A nil error returns nil.
func FromContext(op string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeDeadline, Op: op, Err: err}
	default:
		return &Error{Code: CodeCanceled, Op: op, Err: err}
	}
}

// CodeOf extracts the code of the first typed error in err's chain, or
// CodeUnknown when the chain carries none. Context errors classify as
// canceled/deadline even when nothing wrapped them.
func CodeOf(err error) Code {
	var te *Error
	if errors.As(err, &te) {
		return te.Code
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	default:
		return CodeUnknown
	}
}
