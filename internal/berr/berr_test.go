package berr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSentinelMatching(t *testing.T) {
	err := New(CodeBadPlan, "plan.add", "duplicate node id %q", "x")
	if !errors.Is(err, ErrBadPlan) {
		t.Fatal("constructed error must match its sentinel")
	}
	if errors.Is(err, ErrBadQuery) {
		t.Fatal("codes must not cross-match")
	}
	var te *Error
	if !errors.As(err, &te) || te.Code != CodeBadPlan || te.Op != "plan.add" {
		t.Fatalf("errors.As = %+v", te)
	}
}

func TestTwoPopulatedErrorsDoNotAlias(t *testing.T) {
	a := New(CodeBadPlan, "op", "a")
	b := New(CodeBadPlan, "op", "b")
	if errors.Is(a, b) {
		t.Fatal("populated errors must not compare by code")
	}
}

func TestWrapPreservesInnerCode(t *testing.T) {
	inner := New(CodeUnknownNode, "plan.validate", "no node %q", "ghost")
	outer := Wrap(CodeBadPlan, "service.query", inner)
	if !errors.Is(outer, ErrUnknownNode) {
		t.Fatal("wrap must preserve the inner classification")
	}
	if CodeOf(outer) != CodeUnknownNode {
		t.Fatalf("CodeOf = %v", CodeOf(outer))
	}
	if Wrap(CodeBadPlan, "op", nil) != nil {
		t.Fatal("wrapping nil must stay nil")
	}
}

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext("run", ctx.Err())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context maps badly: %v", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	<-dctx.Done()
	derr := FromContext("run", dctx.Err())
	if !errors.Is(derr, ErrDeadlineExceeded) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline context maps badly: %v", derr)
	}
	if FromContext("run", nil) != nil {
		t.Fatal("nil maps to nil")
	}
}

func TestCodeOfPlainError(t *testing.T) {
	if CodeOf(fmt.Errorf("plain")) != CodeUnknown {
		t.Fatal("plain errors have no code")
	}
	if CodeOf(fmt.Errorf("wrapped: %w", context.Canceled)) != CodeCanceled {
		t.Fatal("bare context.Canceled classifies as canceled")
	}
}

func TestErrorString(t *testing.T) {
	err := &Error{Code: CodeBadQuery, Op: "minisql.parse", Detail: "unexpected token"}
	want := "bad_query: minisql.parse: unexpected token"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
	for c := CodeUnknown; c <= CodeInternal; c++ {
		if c.String() == "" {
			t.Fatalf("code %d has no name", c)
		}
	}
}
