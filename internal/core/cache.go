package core

import (
	"container/list"
	"context"
	"strconv"
	"strings"
	"sync"
)

// The engine's result cache memoizes seeker top-k lists across queries:
// repeated /v1/seek and /v1/query traffic over an unchanged index returns
// the cached list instead of rescanning posting lists (or interpreting
// SQL). Entries are keyed by (seeker fingerprint, rewrite, store
// generation), so a lookup can only ever hit a result computed at the
// exact generation it executes against — mutations publish new generations
// and therefore new key spaces. The cache is opt-in
// (Engine.SetResultCache) so library benchmarks and the paper-reproduction
// experiments keep measuring real executions.
//
// Invalidation follows the retention window, not individual mutations:
//
//   - Entries for generations still inside the window stay resident and
//     valid — a WithAsOf / Snapshot query pinned to generation g hits the
//     results memoized when g was current, and traffic racing an ingest
//     keeps its warm keys until the window moves past them.
//   - When a generation falls out of the window (publish beyond the bound,
//     SetRetention shrinking it), sweepBelow removes every entry below the
//     oldest retained generation in one bounded pass. That keeps
//     retained-history memory accounted: an unreachable entry is dropped
//     when its generation dies, not when LRU pressure happens to evict it.
//   - Compact reassigns table ids, but needs no special casing: its
//     entries are only reachable under pre-compaction generation keys,
//     which only pre-compaction snapshots — whose stores still use the old
//     ids — can look up.

// CacheStats summarizes the engine result cache for operators
// (Engine.ResultCacheStats, the service's `/v1/stats`).
type CacheStats struct {
	// Capacity is the configured entry bound; 0 means the cache is
	// disabled.
	Capacity int
	// Entries is the current resident entry count.
	Entries int
	// Hits / Misses count lookups since the cache was configured.
	Hits   uint64
	Misses uint64
	// Invalidations counts retention sweeps that dropped at least one
	// entry (a generation left the retention window with results still
	// memoized).
	Invalidations uint64
}

// cacheEntry is one memoized seeker result.
type cacheEntry struct {
	key  string
	gen  uint64 // generation the result was computed at, for sweepBelow
	hits Hits
	path string // execution path that produced the entry
}

// resultCache is a mutex-guarded LRU over seeker results. Get returns (and
// Put stores) defensive copies, so cached hit lists are immutable no
// matter what callers do with the slices they receive.
type resultCache struct {
	mu            sync.Mutex
	cap           int
	ll            *list.List
	idx           map[string]*list.Element
	hits          uint64
	misses        uint64
	invalidations uint64
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[string]*list.Element, capacity),
	}
}

// get looks a key up, refreshing its recency on hit.
func (c *resultCache) get(key string) (Hits, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	return append(Hits(nil), ent.hits...), ent.path, true
}

// put inserts (or refreshes) a key, evicting the least-recently-used entry
// beyond capacity.
func (c *resultCache) put(key string, gen uint64, h Hits, path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		ent.hits = append(Hits(nil), h...)
		ent.path = path
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, gen: gen, hits: append(Hits(nil), h...), path: path})
	c.idx[key] = el
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.idx, back.Value.(*cacheEntry).key)
	}
}

// sweepBelow drops every entry computed at a generation below minGen — the
// bounded sweep the engine runs when generations leave the retention
// window, so dead-generation results do not stay resident until LRU
// pressure reaches them. One O(entries) pass per eviction batch; counters
// survive so operators see cumulative hit rates.
func (c *resultCache) sweepBelow(minGen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := false
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.gen < minGen {
			c.ll.Remove(el)
			delete(c.idx, ent.key)
			removed = true
		}
		el = next
	}
	if removed {
		c.invalidations++
	}
}

// stats snapshots the cache counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:      c.cap,
		Entries:       c.ll.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
	}
}

// appendLenPrefixed writes a length-prefixed string, making fingerprints
// injective regardless of the bytes values contain.
func appendLenPrefixed(sb *strings.Builder, s string) {
	sb.WriteString(strconv.Itoa(len(s)))
	sb.WriteByte(':')
	sb.WriteString(s)
}

// seekerFingerprint renders a deterministic, collision-free identity for
// the built-in relational seeker kinds — SC, KW, MC, and Correlation are
// all cache-eligible, including the correlation seeker's native fast
// path (the sampled h that shapes its result is part of the cache key,
// see cacheKey). The second result is false for anything else, which is
// then never cached:
//
//   - user-defined seekers may close over mutable state a fingerprint
//     cannot see, so memoizing them would be unsound;
//   - the semantic seeker is already served by the engine's HNSW side
//     index, which carries its own generation-based invalidation, and its
//     tunables (Probe, MinSupport) change results without changing the
//     query values — caching it would buy little and risk serving a hit
//     computed under different knobs.
func seekerFingerprint(sb *strings.Builder, s Seeker) bool {
	switch x := s.(type) {
	case *SCSeeker:
		sb.WriteString("sc|")
		sb.WriteString(strconv.Itoa(x.K))
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(x.MinOverlap))
		sb.WriteByte('|')
		for _, v := range x.Values {
			appendLenPrefixed(sb, v)
		}
	case *KWSeeker:
		sb.WriteString("kw|")
		sb.WriteString(strconv.Itoa(x.K))
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(x.MinOverlap))
		sb.WriteByte('|')
		for _, v := range x.Keywords {
			appendLenPrefixed(sb, v)
		}
	case *MCSeeker:
		sb.WriteString("mc|")
		sb.WriteString(strconv.Itoa(x.K))
		sb.WriteByte('|')
		for _, t := range x.Tuples {
			sb.WriteString("r")
			sb.WriteString(strconv.Itoa(len(t)))
			sb.WriteByte('|')
			for _, v := range t {
				appendLenPrefixed(sb, v)
			}
		}
	case *CorrelationSeeker:
		sb.WriteString("c|")
		sb.WriteString(strconv.Itoa(x.K))
		sb.WriteByte('|')
		for i, key := range x.Keys {
			appendLenPrefixed(sb, key)
			sb.WriteString(strconv.FormatFloat(x.Targets[i], 'g', -1, 64))
			sb.WriteByte('|')
		}
	default:
		return false
	}
	return true
}

// cacheKey renders the full lookup key for a seeker run: the pinned
// snapshot's generation, correlation sample size (it changes C-seeker
// results), seeker fingerprint, and rewrite predicate.
func (v *view) cacheKey(s Seeker, rw Rewrite) (string, bool) {
	var sb strings.Builder
	sb.WriteString("g")
	sb.WriteString(strconv.FormatUint(v.sn.gen, 10))
	sb.WriteString("|h")
	sb.WriteString(strconv.Itoa(v.SampleH))
	sb.WriteByte('|')
	if !seekerFingerprint(&sb, s) {
		return "", false
	}
	sb.WriteString("|rw")
	sb.WriteString(strconv.Itoa(rw.mode))
	sb.WriteByte('|')
	for _, id := range rw.ids {
		sb.WriteString(strconv.FormatInt(int64(id), 10))
		sb.WriteByte(',')
	}
	return sb.String(), true
}

// runSeekerCached executes a seeker through the result cache: a hit
// returns the memoized top-k (with CacheHit set and the original path
// preserved); a miss executes the seeker and stores its result. With no
// cache configured it is a plain dispatch. The generation embedded in the
// key is the pinned snapshot's, so it cannot move mid-run.
func (v *view) runSeekerCached(ctx context.Context, s Seeker, rw Rewrite) (Hits, RunStats, error) {
	cache := v.cache.Load()
	if cache == nil {
		return s.run(ctx, v, rw)
	}
	key, cacheable := v.cacheKey(s, rw)
	if !cacheable {
		return s.run(ctx, v, rw)
	}
	if hits, path, ok := cache.get(key); ok {
		return hits, RunStats{Kind: s.Kind(), Rewritten: rw.active(), Path: path, CacheHit: true}, nil
	}
	hits, stats, err := s.run(ctx, v, rw)
	if err == nil {
		cache.put(key, v.sn.gen, hits, stats.Path)
	}
	return hits, stats, err
}
