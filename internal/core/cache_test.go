package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"blend/internal/storage"
	"blend/internal/table"
)

func cacheTestEngine(capacity int) *Engine {
	e := NewEngine(storage.Build(storage.ColumnStore, fig1Lake()))
	e.SetResultCache(capacity)
	return e
}

// TestResultCacheHit asserts the second identical seek is served from the
// cache with identical results and the original path preserved.
func TestResultCacheHit(t *testing.T) {
	e := cacheTestEngine(16)
	s := NewKW([]string{"HR", "IT", "Marketing"}, 5)
	first, st1, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first run must miss")
	}
	second, st2, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("second run must hit the cache")
	}
	if st2.Path != st1.Path {
		t.Fatalf("cached path %q, want original %q", st2.Path, st1.Path)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached hits differ: %v vs %v", second, first)
	}
	cs := e.ResultCacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("unexpected stats %+v", cs)
	}

	// An equivalent seeker built separately must share the entry…
	if _, st3, _ := e.RunSeeker(context.Background(), NewKW([]string{"HR", "IT", "Marketing"}, 5)); !st3.CacheHit {
		t.Fatal("identical seeker must hit")
	}
	// …while different k, different values, or a rewrite must not.
	if _, st4, _ := e.RunSeeker(context.Background(), NewKW([]string{"HR", "IT", "Marketing"}, 4)); st4.CacheHit {
		t.Fatal("different k must miss")
	}
	v, releaseV := testView(t, e)
	defer releaseV()
	if _, st5, err := v.runSeekerCached(context.Background(), s, ExcludeTables([]int32{0})); err != nil || st5.CacheHit {
		t.Fatalf("rewritten run must miss (err %v)", err)
	}
	if _, st6, err := v.runSeekerCached(context.Background(), s, ExcludeTables([]int32{0})); err != nil || !st6.CacheHit {
		t.Fatalf("repeated rewritten run must hit (err %v)", err)
	}
}

// TestResultCacheInvalidationOnAddTable asserts a post-AddTable run
// misses (the generation moved, so the warm key is unreachable) and that
// with a retention window of one the publish sweeps the dead
// generation's entry in the same call.
func TestResultCacheInvalidationOnAddTable(t *testing.T) {
	e := cacheTestEngine(16)
	e.SetRetention(1)
	s := NewKW([]string{"HR", "IT", "Marketing"}, 10)
	before, _, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if _, st, _ := e.RunSeeker(context.Background(), s); !st.CacheHit {
		t.Fatal("warm-up must hit")
	}

	// The new table matches all three keywords, so it must appear in the
	// post-mutation result.
	nt := table.New("T9", "Team")
	nt.MustAppendRow("HR")
	nt.MustAppendRow("IT")
	nt.MustAppendRow("Marketing")
	tid := e.AddTable(nt)

	after, st, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("post-AddTable run must miss: the cache was invalidated")
	}
	if !after.Contains(tid) {
		t.Fatalf("new table %d missing from post-mutation result %v", tid, after)
	}
	if reflect.DeepEqual(before, after) {
		t.Fatal("result unchanged after indexing a better-matching table")
	}
	if cs := e.ResultCacheStats(); cs.Invalidations != 1 {
		t.Fatalf("expected 1 invalidation, got %+v", cs)
	}
}

// TestResultCacheLRUEviction asserts the capacity bound evicts the
// least-recently-used entry first.
func TestResultCacheLRUEviction(t *testing.T) {
	e := cacheTestEngine(2)
	ctx := context.Background()
	a := NewKW([]string{"HR"}, 5)
	b := NewKW([]string{"IT"}, 5)
	c := NewKW([]string{"Sales"}, 5)
	for _, s := range []Seeker{a, b} {
		if _, _, err := e.RunSeeker(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh a, insert c: b is now the LRU and must be evicted.
	if _, st, _ := e.RunSeeker(ctx, a); !st.CacheHit {
		t.Fatal("a must hit")
	}
	if _, _, err := e.RunSeeker(ctx, c); err != nil {
		t.Fatal(err)
	}
	if cs := e.ResultCacheStats(); cs.Entries != 2 {
		t.Fatalf("expected 2 resident entries, got %+v", cs)
	}
	if _, st, _ := e.RunSeeker(ctx, a); !st.CacheHit {
		t.Fatal("a should have survived")
	}
	if _, st, _ := e.RunSeeker(ctx, b); st.CacheHit {
		t.Fatal("b should have been evicted")
	}
}

// TestResultCacheImmutability asserts mutating a returned hit list cannot
// corrupt the cached entry.
func TestResultCacheImmutability(t *testing.T) {
	e := cacheTestEngine(8)
	s := NewKW([]string{"HR", "IT"}, 5)
	first, _, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("expected hits")
	}
	want := append(Hits(nil), first...)
	first[0] = TableHit{TableID: 999, Score: -1}
	again, _, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("cached entry corrupted: %v, want %v", again, want)
	}
}

// TestResultCacheConcurrent hammers the cache from many goroutines —
// mixed hits, misses, evictions — concurrently with AddTable
// invalidations. It exists to run under -race (the CI race suite covers
// this package); correctness here is "no race, no panic, sane results".
func TestResultCacheConcurrent(t *testing.T) {
	e := cacheTestEngine(4)
	queries := [][]string{
		{"HR"}, {"IT"}, {"Sales"}, {"Marketing"}, {"Finance"}, {"HR", "IT"},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := queries[(w+i)%len(queries)]
				if _, _, err := e.RunSeeker(context.Background(), NewKW(q, 3)); err != nil {
					t.Errorf("seek: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			nt := table.New(fmt.Sprintf("C%d", i), "Team")
			nt.MustAppendRow("HR")
			e.AddTable(nt)
		}
	}()
	wg.Wait()
	cs := e.ResultCacheStats()
	if cs.Hits+cs.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
	// Sweeps follow the retention window: each AddTable publish can evict
	// at most one generation, and only sweeps that drop a resident entry
	// count — an upper bound, not an exact figure, under concurrency.
	if cs.Invalidations > 10 {
		t.Fatalf("more invalidations than publishes: %+v", cs)
	}
}

// TestResultCacheEligibility pins the cache-eligibility matrix for the
// non-trivial kinds: correlation runs (native fast path included) are
// cached under a key that folds in the sample size h, so changing
// SampleH misses rather than serving a result computed under a different
// sample; semantic runs never touch the cache in either direction.
func TestResultCacheEligibility(t *testing.T) {
	e := cacheTestEngine(16)
	ctx := context.Background()
	keys := []string{"Finance", "Marketing", "HR", "IT", "Sales"}
	targets := []float64{31, 28, 33, 92, 80}

	first, st1, err := e.RunSeeker(ctx, NewCorrelation(keys, targets, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit || st1.Path != PathNative {
		t.Fatalf("first correlation run: %+v, want native-path miss", st1)
	}
	second, st2, err := e.RunSeeker(ctx, NewCorrelation(keys, targets, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.Path != PathNative {
		t.Fatalf("repeat correlation run: %+v, want cached hit with native path", st2)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached correlation hits differ: %v vs %v", second, first)
	}
	// Different targets and a different sample size must both miss.
	bumped := append([]float64(nil), targets...)
	bumped[0]++
	if _, st, _ := e.RunSeeker(ctx, NewCorrelation(keys, bumped, 5)); st.CacheHit {
		t.Fatal("different targets must miss")
	}
	e.SampleH = e.SampleH / 2
	if _, st, _ := e.RunSeeker(ctx, NewCorrelation(keys, targets, 5)); st.CacheHit {
		t.Fatal("changed SampleH must miss")
	}

	// Semantic seeks bypass the cache entirely: same query twice, no hit,
	// and no cache entries or lookups recorded beyond the correlation ones.
	before := e.ResultCacheStats()
	for i := 0; i < 2; i++ {
		if _, st, err := e.RunSeeker(ctx, NewSemantic([]string{"Harry Potter", "Luna Lovegood"}, 3)); err != nil || st.CacheHit {
			t.Fatalf("semantic run %d: err %v, stats %+v, want uncached", i, err, st)
		}
	}
	after := e.ResultCacheStats()
	if after != before {
		t.Fatalf("semantic seeks touched the cache: %+v -> %+v", before, after)
	}
}

// TestCacheDisabledByDefault asserts a fresh engine performs no caching
// until configured — experiments and benchmarks measure real executions.
func TestCacheDisabledByDefault(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, fig1Lake()))
	s := NewKW([]string{"HR"}, 5)
	for i := 0; i < 2; i++ {
		if _, st, err := e.RunSeeker(context.Background(), s); err != nil || st.CacheHit {
			t.Fatalf("run %d: err %v, cacheHit %v", i, err, st.CacheHit)
		}
	}
	if cs := e.ResultCacheStats(); cs != (CacheStats{}) {
		t.Fatalf("expected zero stats, got %+v", cs)
	}
}
