package core

import "fmt"

// CombinerKind identifies the set operators of §IV-B.
type CombinerKind int

const (
	// Intersect keeps tables present in every input.
	Intersect CombinerKind = iota
	// Union keeps tables present in any input.
	Union
	// Difference keeps tables of the first input absent from the second.
	Difference
	// Counter ranks tables by how many inputs contain them.
	Counter
)

// String names the combiner kind.
func (k CombinerKind) String() string {
	switch k {
	case Intersect:
		return "Intersect"
	case Union:
		return "Union"
	case Difference:
		return "Difference"
	case Counter:
		return "Counter"
	default:
		return fmt.Sprintf("CombinerKind(%d)", int(k))
	}
}

// Combiner merges the table collections produced by seekers or other
// combiners (§IV-B). Implementations must be pure: same inputs, same
// output.
type Combiner interface {
	// Kind reports the set operation.
	Kind() CombinerKind
	// TopK is the combiner-level result limit (-1 for unlimited).
	TopK() int
	// MinInputs/MaxInputs bound the accepted input count; MaxInputs < 0
	// means unbounded.
	MinInputs() int
	MaxInputs() int
	// Combine merges the inputs.
	Combine(inputs []Hits) Hits
}

// IntersectCombiner implements ∩.
type IntersectCombiner struct{ K int }

// NewIntersect builds an intersection combiner with result limit k.
func NewIntersect(k int) *IntersectCombiner { return &IntersectCombiner{K: k} }

// Kind implements Combiner.
func (c *IntersectCombiner) Kind() CombinerKind { return Intersect }

// TopK implements Combiner.
func (c *IntersectCombiner) TopK() int { return c.K }

// MinInputs implements Combiner.
func (c *IntersectCombiner) MinInputs() int { return 2 }

// MaxInputs implements Combiner.
func (c *IntersectCombiner) MaxInputs() int { return -1 }

// Combine keeps tables appearing in all inputs; scores are summed so that
// tables strong under several seekers rank first.
func (c *IntersectCombiner) Combine(inputs []Hits) Hits {
	if len(inputs) == 0 {
		return nil
	}
	count := make(map[int32]int)
	score := make(map[int32]float64)
	for _, in := range inputs {
		for _, h := range in {
			count[h.TableID]++
			score[h.TableID] += h.Score
		}
	}
	out := make(Hits, 0)
	for id, n := range count {
		if n == len(inputs) {
			out = append(out, TableHit{TableID: id, Score: score[id]})
		}
	}
	return topK(out, c.K)
}

// UnionCombiner implements ∪.
type UnionCombiner struct{ K int }

// NewUnion builds a union combiner with result limit k.
func NewUnion(k int) *UnionCombiner { return &UnionCombiner{K: k} }

// Kind implements Combiner.
func (c *UnionCombiner) Kind() CombinerKind { return Union }

// TopK implements Combiner.
func (c *UnionCombiner) TopK() int { return c.K }

// MinInputs implements Combiner.
func (c *UnionCombiner) MinInputs() int { return 1 }

// MaxInputs implements Combiner.
func (c *UnionCombiner) MaxInputs() int { return -1 }

// Combine keeps every table, with its best score across inputs.
func (c *UnionCombiner) Combine(inputs []Hits) Hits {
	var all Hits
	for _, in := range inputs {
		all = append(all, in...)
	}
	return topK(dedupeBest(all), c.K)
}

// DifferenceCombiner implements \: tables of the first input that do not
// appear in the second. It accepts exactly two inputs (§IV-B).
type DifferenceCombiner struct{ K int }

// NewDifference builds a difference combiner with result limit k.
func NewDifference(k int) *DifferenceCombiner { return &DifferenceCombiner{K: k} }

// Kind implements Combiner.
func (c *DifferenceCombiner) Kind() CombinerKind { return Difference }

// TopK implements Combiner.
func (c *DifferenceCombiner) TopK() int { return c.K }

// MinInputs implements Combiner.
func (c *DifferenceCombiner) MinInputs() int { return 2 }

// MaxInputs implements Combiner.
func (c *DifferenceCombiner) MaxInputs() int { return 2 }

// Combine subtracts the second input's tables from the first's.
func (c *DifferenceCombiner) Combine(inputs []Hits) Hits {
	if len(inputs) != 2 {
		return nil
	}
	excluded := make(map[int32]struct{}, len(inputs[1]))
	for _, h := range inputs[1] {
		excluded[h.TableID] = struct{}{}
	}
	out := make(Hits, 0, len(inputs[0]))
	for _, h := range inputs[0] {
		if _, ok := excluded[h.TableID]; !ok {
			out = append(out, h)
		}
	}
	return topK(out, c.K)
}

// CounterCombiner ranks tables by their occurrence count across inputs —
// the aggregation step of BLEND's union-search plan (§VII-A).
type CounterCombiner struct{ K int }

// NewCounter builds a counter combiner with result limit k.
func NewCounter(k int) *CounterCombiner { return &CounterCombiner{K: k} }

// Kind implements Combiner.
func (c *CounterCombiner) Kind() CombinerKind { return Counter }

// TopK implements Combiner.
func (c *CounterCombiner) TopK() int { return c.K }

// MinInputs implements Combiner.
func (c *CounterCombiner) MinInputs() int { return 1 }

// MaxInputs implements Combiner.
func (c *CounterCombiner) MaxInputs() int { return -1 }

// Combine counts, per table, the number of inputs containing it and ranks
// descending by that frequency.
func (c *CounterCombiner) Combine(inputs []Hits) Hits {
	count := make(map[int32]float64)
	for _, in := range inputs {
		seen := make(map[int32]struct{}, len(in))
		for _, h := range in {
			if _, dup := seen[h.TableID]; dup {
				continue
			}
			seen[h.TableID] = struct{}{}
			count[h.TableID]++
		}
	}
	out := make(Hits, 0, len(count))
	for id, n := range count {
		out = append(out, TableHit{TableID: id, Score: n})
	}
	return topK(out, c.K)
}
