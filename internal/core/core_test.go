package core

import (
	"context"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"blend/internal/storage"
	"blend/internal/table"
)

// fig1Lake builds the data lake of the paper's Fig. 1 (tables T1, T2, T3;
// the query table S is not indexed).
func fig1Lake() []*table.Table {
	t1 := table.New("T1", "Team", "Size")
	t1.MustAppendRow("Finance", "31")
	t1.MustAppendRow("Marketing", "28")
	t1.MustAppendRow("HR", "33")
	t1.MustAppendRow("IT", "92")
	t1.MustAppendRow("Sales", "80")

	t2 := table.New("T2", "Lead", "Year", "Team")
	t2.MustAppendRow("Tom Riddle", "2022", "IT")
	t2.MustAppendRow("Draco Malfoy", "2022", "Marketing")
	t2.MustAppendRow("Harry Potter", "2022", "Finance")
	t2.MustAppendRow("Cho Chang", "2022", "R&D")
	t2.MustAppendRow("Luna Lovegood", "2022", "Sales")
	t2.MustAppendRow("Firenze", "2022", "HR")

	t3 := table.New("T3", "Lead", "Year", "Team")
	t3.MustAppendRow("Ronald Weasley", "2024", "IT")
	t3.MustAppendRow("Draco Malfoy", "2024", "Marketing")
	t3.MustAppendRow("Harry Potter", "2024", "Finance")
	t3.MustAppendRow("Cho Chang", "2024", "R&D")
	t3.MustAppendRow("Luna Lovegood", "2024", "Sales")
	t3.MustAppendRow("Firenze", "2024", "HR")

	for _, t := range []*table.Table{t1, t2, t3} {
		t.InferKinds()
	}
	return []*table.Table{t1, t2, t3}
}

func fig1Engine() *Engine {
	return NewEngine(storage.Build(storage.ColumnStore, fig1Lake()))
}

var departments = []string{"HR", "Marketing", "Finance", "IT", "R&D", "Sales"}

func TestSCSeeker(t *testing.T) {
	e := fig1Engine()
	hits, stats, err := e.RunSeeker(context.Background(), NewSC(departments, 10))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kind != SC || stats.SQLRows == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// T2 and T3 overlap on all 6 departments in their Team column; T1 on 5.
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Score != 6 || hits[1].Score != 6 || hits[2].Score != 5 {
		t.Fatalf("scores = %v", hits)
	}
	if e.Store().TableName(hits[2].TableID) != "T1" {
		t.Fatal("T1 should be last")
	}
}

func TestSCSeekerTopKCut(t *testing.T) {
	e := fig1Engine()
	hits, _, err := e.RunSeeker(context.Background(), NewSC(departments, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("k=2 returned %d hits", len(hits))
	}
}

func TestSCSeekerEmptyInput(t *testing.T) {
	e := fig1Engine()
	hits, _, err := e.RunSeeker(context.Background(), NewSC(nil, 5))
	if err != nil || len(hits) != 0 {
		t.Fatalf("hits=%v err=%v", hits, err)
	}
}

func TestKWSeeker(t *testing.T) {
	e := fig1Engine()
	hits, _, err := e.RunSeeker(context.Background(), NewKW([]string{"Firenze", "2024"}, 10))
	if err != nil {
		t.Fatal(err)
	}
	// T3 matches both keywords, T2 only Firenze.
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if e.Store().TableName(hits[0].TableID) != "T3" || hits[0].Score != 2 {
		t.Fatalf("best = %v", hits[0])
	}
}

// TestRunStatsFunnelKinds pins the RunStats invariant: Candidates and
// Validated belong to the MC and semantic validation funnels and are
// exactly zero for every other seeker kind, on both execution paths —
// consumers must gate funnel attribution on Kind, never on non-zero
// counters.
func TestRunStatsFunnelKinds(t *testing.T) {
	for _, noNative := range []bool{false, true} {
		e := fig1Engine()
		e.NoNativeExec = noNative
		seekers := map[string]Seeker{
			"sc": NewSC(departments, 10),
			"kw": NewKW([]string{"Firenze", "2024"}, 10),
			"c":  NewCorrelation([]string{"HR", "IT", "Sales"}, []float64{33, 92, 80}, 10),
		}
		for name, s := range seekers {
			_, stats, err := e.RunSeeker(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Candidates != 0 || stats.Validated != 0 {
				t.Fatalf("%s (noNative=%v): funnel counters leaked: %+v", name, noNative, stats)
			}
		}
		// The MC seeker does populate the funnel — on both paths.
		_, stats, err := e.RunSeeker(context.Background(), NewMC([][]string{{"HR", "Firenze"}}, 10))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates == 0 || stats.Validated == 0 {
			t.Fatalf("mc (noNative=%v): funnel empty: %+v", noNative, stats)
		}
		// So does the semantic seeker: ANN candidates in, posting-validated
		// tables out (departments appear verbatim in the lake).
		_, stats, err = e.RunSeeker(context.Background(), NewSemantic(departments, 10))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Candidates == 0 || stats.Validated == 0 {
			t.Fatalf("semantic (noNative=%v): funnel empty: %+v", noNative, stats)
		}
	}
}

func TestMCSeekerExample1(t *testing.T) {
	e := fig1Engine()
	// Positive examples: tables containing ("HR", "Firenze") in a row.
	hits, stats, err := e.RunSeeker(context.Background(), NewMC([][]string{{"HR", "Firenze"}}, 10))
	if err != nil {
		t.Fatal(err)
	}
	names := e.TableNames(hits)
	if !reflect.DeepEqual(names, []string{"T2", "T3"}) {
		t.Fatalf("rs1 = %v, want [T2 T3]", names)
	}
	if stats.Validated != 2 {
		t.Fatalf("validated = %d", stats.Validated)
	}
	// Negative examples: tables containing ("IT", "Tom Riddle").
	hits, _, err = e.RunSeeker(context.Background(), NewMC([][]string{{"IT", "Tom Riddle"}}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if names := e.TableNames(hits); !reflect.DeepEqual(names, []string{"T2"}) {
		t.Fatalf("rs2 = %v, want [T2]", names)
	}
}

func TestMCSeekerRejectsMisaligned(t *testing.T) {
	e := fig1Engine()
	// "HR" and "Tom Riddle" both exist in T2, but never in the same row.
	hits, _, err := e.RunSeeker(context.Background(), NewMC([][]string{{"HR", "Tom Riddle"}}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("misaligned tuple matched %v", e.TableNames(hits))
	}
}

func TestMCSeekerCountsJoinableRows(t *testing.T) {
	e := fig1Engine()
	hits, _, err := e.RunSeeker(context.Background(), NewMC([][]string{
		{"IT", "2024"}, {"HR", "2024"}, {"Sales", "2024"},
	}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || e.Store().TableName(hits[0].TableID) != "T3" || hits[0].Score != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestMCSeekerEmpty(t *testing.T) {
	e := fig1Engine()
	hits, _, err := e.RunSeeker(context.Background(), NewMC(nil, 10))
	if err != nil || len(hits) != 0 {
		t.Fatalf("hits=%v err=%v", hits, err)
	}
}

// correlationLake plants a table whose numeric column correlates perfectly
// (positively or negatively) with the query target, and a decoy without
// correlation.
func corrCities() []string {
	cities := make([]string, 30)
	for i := range cities {
		cities[i] = "city" + strconv.Itoa(i)
	}
	return cities
}

func correlationLake() []*table.Table {
	good := table.New("good", "City", "Pop")
	noise := table.New("noise", "City", "Rand")
	anti := table.New("anti", "City", "Neg")
	rng := rand.New(rand.NewSource(5))
	for i, c := range corrCities() {
		good.MustAppendRow(c, strconv.Itoa((i+1)*10))
		noise.MustAppendRow(c, strconv.Itoa(rng.Intn(1000)))
		anti.MustAppendRow(c, strconv.Itoa(1000-(i+1)*10))
	}
	for _, t := range []*table.Table{good, noise, anti} {
		t.InferKinds()
	}
	return []*table.Table{good, noise, anti}
}

func TestCorrelationSeeker(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, correlationLake()))
	keys := corrCities()
	targets := make([]float64, len(keys))
	for i := range targets {
		targets[i] = float64(i + 1)
	}
	hits, _, err := e.RunSeeker(context.Background(), NewCorrelation(keys, targets, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	names := e.TableNames(hits)
	// Both the positively and the negatively correlated tables score
	// |QCR| = 1 and must outrank the noise table.
	for _, n := range names {
		if n == "noise" {
			t.Fatalf("noise outranked a correlated table: %v", names)
		}
	}
	if hits[0].Score != 1 {
		t.Fatalf("top |QCR| = %v, want 1", hits[0].Score)
	}
}

func TestCorrelationSeekerNumericKeys(t *testing.T) {
	// Numeric join keys are a BLEND advantage over the sketch baseline
	// (§VIII-G). Keys are numbers stored as strings in the lake.
	tb := table.New("numkey", "Id", "Metric")
	for i := 1; i <= 8; i++ {
		tb.MustAppendRow(strconv.Itoa(i), strconv.Itoa(i*100))
	}
	tb.InferKinds()
	e := NewEngine(storage.Build(storage.ColumnStore, []*table.Table{tb}))
	keys := []string{"1", "2", "3", "4", "5", "6", "7", "8"}
	targets := []float64{10, 20, 30, 40, 50, 60, 70, 80}
	hits, _, err := e.RunSeeker(context.Background(), NewCorrelation(keys, targets, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Score < 0.9 {
		t.Fatalf("numeric-key correlation failed: %v", hits)
	}
}

func TestExample1FullPlan(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("P_examples", NewMC([][]string{{"HR", "Firenze"}}, 10))
	p.MustAddSeeker("N_examples", NewMC([][]string{{"IT", "Tom Riddle"}}, 10))
	p.MustAddCombiner("exclude", NewDifference(10), "P_examples", "N_examples")
	p.MustAddSeeker("dep", NewSC(departments, 10))
	p.MustAddCombiner("intersect", NewIntersect(10), "exclude", "dep")

	for _, opt := range []bool{false, true} {
		res, err := e.Run(context.Background(), p, RunOptions{Optimize: opt})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Tables, []string{"T3"}) {
			t.Fatalf("optimize=%v: result = %v, want [T3]", opt, res.Tables)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	p := NewPlan()
	if err := p.AddSeeker("", NewSC([]string{"x"}, 1)); err == nil {
		t.Fatal("empty id must fail")
	}
	if err := p.AddSeeker("a", nil); err == nil {
		t.Fatal("nil seeker must fail")
	}
	p.MustAddSeeker("a", NewSC([]string{"x"}, 1))
	if err := p.AddSeeker("a", NewSC([]string{"y"}, 1)); err == nil {
		t.Fatal("duplicate id must fail")
	}
	if err := p.AddCombiner("c", NewDifference(1), "a"); err == nil {
		t.Fatal("difference with one input must fail")
	}
	if err := p.AddCombiner("c", NewDifference(1), "a", "b", "x"); err == nil {
		t.Fatal("difference with three inputs must fail")
	}
	if err := p.AddCombiner("c", nil, "a", "a"); err == nil {
		t.Fatal("nil combiner must fail")
	}
	if err := p.SetOutput("zzz"); err == nil {
		t.Fatal("unknown output must fail")
	}
}

func TestPlanUnknownInput(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("a", NewSC([]string{"HR"}, 5))
	p.MustAddCombiner("c", NewIntersect(5), "a", "ghost")
	if _, err := e.Run(context.Background(), p, RunOptions{Optimize: true}); err == nil {
		t.Fatal("unknown input must fail at run time")
	}
}

func TestPlanEmpty(t *testing.T) {
	e := fig1Engine()
	if _, err := e.Run(context.Background(), NewPlan(), RunOptions{Optimize: true}); err == nil {
		t.Fatal("empty plan must fail")
	}
}

func TestPlanOutputDefaultsToLastNode(t *testing.T) {
	p := NewPlan()
	p.MustAddSeeker("a", NewSC([]string{"HR"}, 5))
	p.MustAddSeeker("b", NewSC([]string{"IT"}, 5))
	if p.Output() != "b" {
		t.Fatalf("output = %q", p.Output())
	}
	if err := p.SetOutput("a"); err != nil {
		t.Fatal(err)
	}
	if p.Output() != "a" {
		t.Fatal("SetOutput did not stick")
	}
}

func TestCombinerAlgebra(t *testing.T) {
	a := Hits{{1, 5}, {2, 3}, {3, 1}}
	b := Hits{{2, 4}, {3, 2}, {4, 9}}

	inter := NewIntersect(-1).Combine([]Hits{a, b})
	if ids := inter.TableIDs(); !reflect.DeepEqual(ids, []int32{2, 3}) {
		t.Fatalf("intersect = %v", ids)
	}
	// Commutativity.
	inter2 := NewIntersect(-1).Combine([]Hits{b, a})
	if !reflect.DeepEqual(inter, inter2) {
		t.Fatal("intersection must be commutative")
	}

	uni := NewUnion(-1).Combine([]Hits{a, b})
	if len(uni) != 4 {
		t.Fatalf("union = %v", uni)
	}
	if !uni.Contains(1) || !uni.Contains(4) {
		t.Fatal("union lost tables")
	}

	diff := NewDifference(-1).Combine([]Hits{a, b})
	if ids := diff.TableIDs(); !reflect.DeepEqual(ids, []int32{1}) {
		t.Fatalf("difference = %v", ids)
	}

	cnt := NewCounter(-1).Combine([]Hits{a, b, a})
	// Table 2 appears in 3 inputs, 1 and 3 in 2 (3 also in b), 4 in 1.
	if cnt[0].TableID != 2 && cnt[0].Score != 3 {
		t.Fatalf("counter = %v", cnt)
	}
	if cnt[len(cnt)-1].TableID != 4 {
		t.Fatalf("counter tail = %v", cnt)
	}
}

func TestCounterIgnoresDuplicatesWithinInput(t *testing.T) {
	in := Hits{{1, 5}, {1, 4}}
	cnt := NewCounter(-1).Combine([]Hits{in})
	if len(cnt) != 1 || cnt[0].Score != 1 {
		t.Fatalf("counter = %v", cnt)
	}
}

func TestCombinerTopK(t *testing.T) {
	a := Hits{{1, 1}, {2, 2}, {3, 3}}
	uni := NewUnion(2).Combine([]Hits{a})
	if len(uni) != 2 || uni[0].TableID != 3 {
		t.Fatalf("union k=2: %v", uni)
	}
}

func TestHitsHelpers(t *testing.T) {
	h := Hits{{7, 1}, {9, 2}}
	if !h.Contains(9) || h.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if !reflect.DeepEqual(h.TableIDs(), []int32{7, 9}) {
		t.Fatal("TableIDs wrong")
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	h := Hits{{5, 1}, {2, 1}, {9, 1}}
	got := topK(h, 2)
	if got[0].TableID != 2 || got[1].TableID != 5 {
		t.Fatalf("tie break = %v", got)
	}
}

func TestRuleRanking(t *testing.T) {
	order := []SeekerKind{KW, SC, C, MC}
	for i := 0; i < len(order)-1; i++ {
		if ruleRank(order[i]) >= ruleRank(order[i+1]) {
			t.Fatalf("rule rank must order %v before %v", order[i], order[i+1])
		}
	}
}

func TestExecutionGroupIdentification(t *testing.T) {
	p := NewPlan()
	p.MustAddSeeker("mc", NewMC([][]string{{"a", "b"}}, 5))
	p.MustAddSeeker("sc", NewSC([]string{"a"}, 5))
	p.MustAddSeeker("kw", NewKW([]string{"a"}, 5))
	p.MustAddCombiner("i", NewIntersect(5), "mc", "sc", "kw")
	groups := p.findExecutionGroups()
	if len(groups) != 1 || len(groups[0].members) != 3 {
		t.Fatalf("groups = %+v", groups)
	}

	// A seeker shared with another combiner must not join the group.
	p2 := NewPlan()
	p2.MustAddSeeker("s1", NewSC([]string{"a"}, 5))
	p2.MustAddSeeker("s2", NewSC([]string{"b"}, 5))
	p2.MustAddCombiner("i", NewIntersect(5), "s1", "s2")
	p2.MustAddCombiner("u", NewUnion(5), "s1", "i")
	groups = p2.findExecutionGroups()
	if len(groups) != 0 {
		t.Fatalf("shared seeker leaked into group: %+v", groups)
	}

	// Union combiners never form groups.
	p3 := NewPlan()
	p3.MustAddSeeker("s1", NewSC([]string{"a"}, 5))
	p3.MustAddSeeker("s2", NewSC([]string{"b"}, 5))
	p3.MustAddCombiner("u", NewUnion(5), "s1", "s2")
	if groups := p3.findExecutionGroups(); len(groups) != 0 {
		t.Fatalf("union formed a group: %+v", groups)
	}
}

func TestOptimizerRunsKWBeforeMC(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("mc", NewMC([][]string{{"HR", "Firenze"}}, 10))
	p.MustAddSeeker("kw", NewKW([]string{"Firenze"}, 10))
	p.MustAddCombiner("i", NewIntersect(10), "mc", "kw")
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.SeekerOrder, []string{"kw", "mc"}) {
		t.Fatalf("order = %v, want [kw mc]", res.SeekerOrder)
	}
	if !res.Stats["mc"].Rewritten {
		t.Fatal("mc should have been rewritten with kw's tables")
	}
	if res.Stats["kw"].Rewritten {
		t.Fatal("first seeker must not be rewritten")
	}
}

func TestDifferenceRewriteRunsSubtrahendFirst(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("pos", NewMC([][]string{{"HR", "Firenze"}}, 10))
	p.MustAddSeeker("neg", NewMC([][]string{{"IT", "Tom Riddle"}}, 10))
	p.MustAddCombiner("diff", NewDifference(10), "pos", "neg")
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.SeekerOrder, []string{"neg", "pos"}) {
		t.Fatalf("order = %v, want [neg pos]", res.SeekerOrder)
	}
	if !res.Stats["pos"].Rewritten {
		t.Fatal("minuend should carry the NOT IN rewrite")
	}
	if !reflect.DeepEqual(res.Tables, []string{"T3"}) {
		t.Fatalf("tables = %v", res.Tables)
	}
}

// TestTheorem1OptimizerPreservesOutput property-tests Theorem 1: for random
// plans of seekers and combiners, the optimized execution returns exactly
// the same table set as the unoptimized one.
func TestTheorem1OptimizerPreservesOutput(t *testing.T) {
	e := fig1Engine()
	vocab := []string{"HR", "Marketing", "Finance", "IT", "Sales", "R&D",
		"Firenze", "Tom Riddle", "2022", "2024", "Harry Potter", "Luna Lovegood"}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		p := NewPlan()
		numSeekers := 2 + rng.Intn(3)
		ids := make([]string, numSeekers)
		for i := range ids {
			id := "s" + strconv.Itoa(i)
			ids[i] = id
			switch rng.Intn(3) {
			case 0:
				p.MustAddSeeker(id, NewSC(randPick(rng, vocab, 1+rng.Intn(4)), 10))
			case 1:
				p.MustAddSeeker(id, NewKW(randPick(rng, vocab, 1+rng.Intn(3)), 10))
			case 2:
				pair := [][]string{{vocab[rng.Intn(6)], vocab[6+rng.Intn(6)]}}
				p.MustAddSeeker(id, NewMC(pair, 10))
			}
		}
		switch rng.Intn(3) {
		case 0:
			p.MustAddCombiner("out", NewIntersect(10), ids...)
		case 1:
			p.MustAddCombiner("out", NewUnion(10), ids...)
		case 2:
			p.MustAddCombiner("out", NewDifference(10), ids[0], ids[1])
		}
		noOpt, err := e.Run(context.Background(), p, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTableSet(noOpt.Output, opt.Output) {
			t.Fatalf("trial %d: optimizer changed output: %v vs %v\nplan: %s",
				trial, noOpt.Tables, opt.Tables, p)
		}
	}
}

func randPick(rng *rand.Rand, pool []string, n int) []string {
	idx := rng.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[idx[i]]
	}
	return out
}

func sameTableSet(a, b Hits) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[int32]struct{}, len(a))
	for _, h := range a {
		set[h.TableID] = struct{}{}
	}
	for _, h := range b {
		if _, ok := set[h.TableID]; !ok {
			return false
		}
	}
	return true
}

func TestForcedOrder(t *testing.T) {
	ranked := []string{"a", "b", "c"}
	got := applyForcedOrder(ranked, []string{"c", "a"})
	if !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Fatalf("forced order = %v", got)
	}
	// Forced ids not in ranked are ignored.
	got = applyForcedOrder(ranked, []string{"z"})
	if !reflect.DeepEqual(got, ranked) {
		t.Fatalf("unknown forced id changed order: %v", got)
	}
}

func TestTrainCostModels(t *testing.T) {
	e := fig1Engine()
	per, err := TrainCostModels(context.Background(), e, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cost != per {
		t.Fatal("models must be installed on the engine")
	}
	// SC should always be trainable on this lake.
	if per.Get(SC) == nil {
		t.Fatal("SC model missing")
	}
	// Prediction should be finite.
	m := per.Get(SC)
	v := m.Predict(NewSC(departments, 10).Features(e.Store()))
	if v != v { // NaN check
		t.Fatal("prediction is NaN")
	}
}

// TestTrainCostModelsPathSeparation asserts training observes both
// executors for natively-served kinds: the flag is restored afterwards,
// and the fitted model prices the native execution of a seeker below its
// SQL execution (the Native feature varied within the training set, so
// its weight carries the path cost gap instead of being collinear with
// the intercept).
func TestTrainCostModelsPathSeparation(t *testing.T) {
	for _, cached := range []bool{false, true} {
		e := fig1Engine()
		if cached {
			// Training must bypass the result cache: its keys are
			// path-agnostic, so a cached run would feed the SQL-path
			// samples the native run's result at zero measured cost.
			e.SetResultCache(64)
		}
		per, err := TrainCostModels(context.Background(), e, 40, 3)
		if err != nil {
			t.Fatal(err)
		}
		if e.NoNativeExec {
			t.Fatal("training must restore the engine's execution path")
		}
		m := per.Get(SC)
		if m == nil {
			t.Fatal("SC model missing")
		}
		f := NewSC(departments, 10).Features(e.Store())
		fNative := f
		fNative.Native = 1
		if n, s := m.Predict(fNative), m.Predict(f); n >= s {
			t.Fatalf("cached=%v: trained model prices native (%v) >= sql (%v)",
				cached, n, s)
		}
	}
}

func TestTrainCostModelsTooFewSamples(t *testing.T) {
	e := fig1Engine()
	if _, err := TrainCostModels(context.Background(), e, 2, 1); err == nil {
		t.Fatal("want error for tiny sample count")
	}
}

func TestRewritePredicate(t *testing.T) {
	if NoRewrite.predicate("TableId") != "" {
		t.Fatal("no-op rewrite must render empty")
	}
	got := IncludeTables([]int32{1, 2}).predicate("TableId")
	if got != " AND TableId IN (1, 2)" {
		t.Fatalf("include = %q", got)
	}
	got = ExcludeTables([]int32{3}).predicate("q0.TableId")
	if got != " AND q0.TableId NOT IN (3)" {
		t.Fatalf("exclude = %q", got)
	}
}

func TestSeekerSQLIncludesRewrite(t *testing.T) {
	sc := NewSC([]string{"x"}, 5)
	sql := sc.SQL(IncludeTables([]int32{7}))
	if want := "TableId IN (7)"; !containsStr(sql, want) {
		t.Fatalf("SQL %q missing %q", sql, want)
	}
	mc := NewMC([][]string{{"a", "b"}}, 5)
	sql = mc.SQL(ExcludeTables([]int32{9}))
	if want := "TableId NOT IN (9)"; !containsStr(sql, want) {
		t.Fatalf("MC SQL %q missing %q", sql, want)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestParallelExecutionMatchesSequential(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("kw", NewKW([]string{"Firenze", "2024"}, 10))
	p.MustAddSeeker("sc", NewSC(departments, 10))
	p.MustAddSeeker("mc", NewMC([][]string{{"HR", "Firenze"}}, 10))
	p.MustAddCombiner("all", NewUnion(10), "kw", "sc", "mc")
	seq, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Run(context.Background(), p, RunOptions{Optimize: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Tables, par.Tables) {
		t.Fatalf("parallel %v != sequential %v", par.Tables, seq.Tables)
	}
	if len(par.SeekerOrder) != 3 {
		t.Fatalf("parallel ran %d seekers, want 3", len(par.SeekerOrder))
	}
}

func TestParallelKeepsRewriteDependencies(t *testing.T) {
	// A Difference plan still runs its subtrahend before its minuend even
	// in parallel mode, and the rewrite still applies.
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("pos", NewMC([][]string{{"HR", "Firenze"}}, 10))
	p.MustAddSeeker("neg", NewMC([][]string{{"IT", "Tom Riddle"}}, 10))
	p.MustAddCombiner("diff", NewDifference(10), "pos", "neg")
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tables, []string{"T3"}) {
		t.Fatalf("tables = %v", res.Tables)
	}
	if !res.Stats["pos"].Rewritten {
		t.Fatal("minuend lost its rewrite in parallel mode")
	}
}

func TestParallelIntersectGroupStaysSequential(t *testing.T) {
	// Execution-group members must keep their ranked, rewritten pipeline
	// even when Parallel is requested.
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("kw", NewKW([]string{"Firenze"}, 10))
	p.MustAddSeeker("mc", NewMC([][]string{{"HR", "Firenze"}}, 10))
	p.MustAddCombiner("i", NewIntersect(10), "kw", "mc")
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats["mc"].Rewritten {
		t.Fatal("group member lost its rewrite in parallel mode")
	}
	if !reflect.DeepEqual(res.SeekerOrder, []string{"kw", "mc"}) {
		t.Fatalf("group order broken: %v", res.SeekerOrder)
	}
}

func TestPlanResultProfile(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("mc", NewMC([][]string{{"HR", "Firenze"}}, 10))
	p.MustAddSeeker("kw", NewKW([]string{"Firenze"}, 10))
	p.MustAddCombiner("i", NewIntersect(10), "mc", "kw")
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := res.Profile()
	for _, want := range []string{"seeker order: kw → mc", "candidates=", "[rewritten]", "combiner"} {
		if !strings.Contains(prof, want) {
			t.Fatalf("profile missing %q:\n%s", want, prof)
		}
	}
}

// TestPlanResultProfilePaths pins the per-node path column of the profile
// report for the fast-path kinds: the correlation node must show native,
// the semantic node ann — and with the native executor disabled the
// correlation node flips to sql while semantic keeps ann.
func TestPlanResultProfilePaths(t *testing.T) {
	run := func(e *Engine) string {
		t.Helper()
		p := NewPlan()
		p.MustAddSeeker("corr", NewCorrelation(
			[]string{"Finance", "Marketing", "HR", "IT", "Sales"},
			[]float64{31, 28, 33, 92, 80}, 5))
		p.MustAddSeeker("sem", NewSemantic([]string{"Harry Potter", "Luna Lovegood"}, 5))
		p.MustAddCombiner("u", NewUnion(5), "corr", "sem")
		res, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile()
	}

	prof := run(fig1Engine())
	for _, want := range []string{PathNative, PathANN} {
		if !strings.Contains(prof, want) {
			t.Fatalf("native-engine profile missing %q:\n%s", want, prof)
		}
	}

	sqlEngine := fig1Engine()
	sqlEngine.NoNativeExec = true
	prof = run(sqlEngine)
	if strings.Contains(prof, PathNative) || !strings.Contains(prof, PathSQL) || !strings.Contains(prof, PathANN) {
		t.Fatalf("sql-engine profile paths wrong:\n%s", prof)
	}
}

func TestSCSeekerMinOverlap(t *testing.T) {
	e := fig1Engine()
	s := NewSC(departments, 10)
	s.MinOverlap = 6 // T1 overlaps only 5 departments
	hits, _, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("min-overlap hits = %v", e.TableNames(hits))
	}
	for _, h := range hits {
		if h.Score < 6 {
			t.Fatalf("threshold leaked: %v", hits)
		}
	}
}

func TestKWSeekerMinOverlap(t *testing.T) {
	e := fig1Engine()
	s := NewKW([]string{"Firenze", "2024"}, 10)
	s.MinOverlap = 2 // only T3 matches both
	hits, _, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || e.Store().TableName(hits[0].TableID) != "T3" {
		t.Fatalf("hits = %v", e.TableNames(hits))
	}
}

func TestDifferenceWithCombinerMinuend(t *testing.T) {
	// The minuend is itself a combiner: no rewrite applies, but the
	// result must still be correct under optimization.
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("a", NewSC(departments, 10))
	p.MustAddSeeker("b", NewKW([]string{"Firenze"}, 10))
	p.MustAddCombiner("u", NewUnion(10), "a", "b")
	p.MustAddSeeker("neg", NewMC([][]string{{"IT", "Tom Riddle"}}, 10))
	p.MustAddCombiner("diff", NewDifference(10), "u", "neg")
	opt, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	noOpt, err := e.Run(context.Background(), p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTableSet(opt.Output, noOpt.Output) {
		t.Fatalf("optimizer changed output: %v vs %v", opt.Tables, noOpt.Tables)
	}
	// The negative tuple ("IT","Tom Riddle") lives in T2 only.
	for _, h := range opt.Output {
		if e.Store().TableName(h.TableID) == "T2" {
			t.Fatalf("T2 must be excluded: %v", opt.Tables)
		}
	}
}

func TestNestedCombiners(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("s1", NewSC(departments, 10))
	p.MustAddSeeker("s2", NewKW([]string{"2022"}, 10))
	p.MustAddSeeker("s3", NewKW([]string{"2024"}, 10))
	p.MustAddCombiner("years", NewUnion(10), "s2", "s3")
	p.MustAddCombiner("both", NewIntersect(10), "s1", "years")
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// T2 (2022) and T3 (2024) join on departments and have a year.
	set := tableNameSet(res.Tables)
	if !set["T2"] || !set["T3"] || set["T1"] {
		t.Fatalf("nested combiner result = %v", res.Tables)
	}
}

func tableNameSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestPlanStringRendering(t *testing.T) {
	p := NewPlan()
	p.MustAddSeeker("s", NewSC([]string{"x"}, 5))
	p.MustAddCombiner("c", NewUnion(5), "s")
	got := p.String()
	if got != "s=SC(k=5); c=Union(s)" {
		t.Fatalf("Plan.String = %q", got)
	}
}
