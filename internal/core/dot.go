package core

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the plan DAG in Graphviz dot format, mirroring the
// DAG representation of Fig. 2b: seekers are boxes labeled with their
// kind and k, combiners are ellipses with their set operation, and edges
// follow the data flow. The output node is drawn with a double border.
func (p *Plan) WriteDot(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("digraph plan {\n  rankdir=LR;\n")
	for _, id := range p.order {
		n := p.nodes[id]
		var label, shape, extra string
		if n.isSeeker() {
			label = fmt.Sprintf("%s\\n%s (k=%d)", id, n.seeker.Kind(), n.seeker.TopK())
			shape = "box"
		} else {
			label = fmt.Sprintf("%s\\n%s", id, n.combiner.Kind())
			shape = "ellipse"
		}
		if id == p.output {
			extra = ", peripheries=2"
		}
		fmt.Fprintf(&sb, "  %s [label=\"%s\", shape=%s%s];\n", dotID(id), label, shape, extra)
	}
	for _, id := range p.order {
		for _, in := range p.nodes[id].inputs {
			fmt.Fprintf(&sb, "  %s -> %s;\n", dotID(in), dotID(id))
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// dotID quotes a node id for dot.
func dotID(id string) string {
	return `"` + strings.ReplaceAll(id, `"`, `\"`) + `"`
}
