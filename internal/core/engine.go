package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"blend/internal/berr"
	"blend/internal/costmodel"
	"blend/internal/minisql"
	"blend/internal/storage"
	"blend/internal/table"
)

// DefaultSampleH is the default correlation sample size h (§V); the paper's
// experiments use h = 256.
const DefaultSampleH = 256

// Engine executes discovery plans against one indexed data lake. It owns
// the trained per-seeker cost models used by the optimizer and publishes
// MVCC generation snapshots of the index (see snapshot.go): each snapshot
// carries its own SQL catalog exposing the AllTables relation and, when the
// index is sharded, one catalog per shard so every seeker's SQL executes
// against all shards concurrently with the partial results merged exactly
// (tables are partitioned whole, so per-table aggregates are shard-local).
//
// The engine is safe for concurrent use, and reads never block on writes:
// a query pins the current snapshot once at start and runs lock-free
// against it, while mutations (AddTable, AddTables, RemoveTable, Compact)
// serialize on writeMu, derive the next store copy-on-write, and publish it
// atomically. Queries started before a mutation keep seeing the old
// generation; queries started after it see the new one.
type Engine struct {
	// snap is the currently published generation; the only synchronization
	// the read path touches (one atomic load + one atomic reference count).
	snap atomic.Pointer[snapshot]

	// writeMu serializes mutations and guards the write-side bookkeeping:
	// the generation counter, the live-name cache, the journal, and the
	// store lineage's file-mapping lease.
	writeMu sync.Mutex
	gen     uint64 // guarded by writeMu
	// names caches the live table names for AddTables' duplicate check,
	// built lazily and maintained incrementally; nil means "rebuild on next
	// use" (RemoveTable invalidates it, since duplicate names the unchecked
	// AddTable may have introduced make an incremental delete ambiguous).
	names   map[string]struct{} // guarded by writeMu
	journal Journal             // guarded by writeMu
	lease   *storeLease         // guarded by writeMu

	// retained holds the generations pinnable for time travel, oldest
	// first; each entry owns one snapshot reference.
	retainMu  sync.Mutex
	retained  []*snapshot // guarded by retainMu
	retention int         // guarded by retainMu

	// maint counts index maintenance for operators (see MaintStats).
	maintMu sync.Mutex
	maint   MaintStats // guarded by maintMu

	// cache memoizes seeker results when configured (nil otherwise);
	// entries are tagged with the generation they were computed at and
	// swept when that generation leaves the retention window.
	cache atomic.Pointer[resultCache]

	// closed flips once at Close and breaks the pin retry loop.
	closed atomic.Bool

	// shardSem bounds how many per-shard executions run at once
	// engine-wide, so plan-level and shard-level parallelism compose
	// without oversubscribing the machine. Nil for monolithic stores
	// (the shard count never changes across generations).
	shardSem chan struct{}

	// NoNativeExec forces every seeker through SQL generation and the
	// minisql interpreter — the pre-fast-path behavior, kept for A/B
	// benchmarking and the path-equivalence tests.
	NoNativeExec bool

	// SampleH is the number of leading row ids sampled by the correlation
	// seeker (the `rowid < h` predicate of Listing 3).
	SampleH int

	// Cost holds the learned cost models per seeker kind; when nil the
	// optimizer falls back to pure rule-based ranking.
	Cost *costmodel.PerKind
}

// NewEngine wraps an AllTables index for plan execution and publishes it as
// generation 1.
func NewEngine(store storage.Index) *Engine {
	e := &Engine{SampleH: DefaultSampleH, retention: DefaultRetainedGenerations}
	e.lease = newStoreLease(store)
	if sh, ok := store.(storage.Sharded); ok && len(sh.ShardReaders()) > 1 {
		e.shardSem = newShardSem()
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.gen = 1
	e.publish(e.buildSnapshot(store, e.gen))
	return e
}

// Store returns the current generation's index. The returned value is an
// immutable published view: mutations derive new stores rather than
// touching it, but holding it does not pin the generation — the backing
// file mapping may be released once the generation leaves the retention
// window. Prefer the Engine accessors or a Snapshot handle.
func (e *Engine) Store() storage.Index { return e.snap.Load().store }

// Catalog returns the current generation's unified SQL catalog (exposed
// for tests and advanced embedding). For sharded indexes it serves the
// global single-relation view; seekers use the concurrent per-shard path
// instead. Prefer ExecRawSQL, which pins the generation for the statement.
func (e *Engine) Catalog() *minisql.Catalog { return e.snap.Load().cat }

// NumShards reports how many partitions the engine scans per seeker.
func (e *Engine) NumShards() int { return e.snap.Load().store.NumShards() }

// AddTable appends one table to the index without rebuilding it — the
// incremental maintenance a single unified index enables (§I). It derives
// and publishes a new generation, so it is safe concurrently with queries:
// in-flight plans keep their pinned snapshot, and queries started after it
// returns see the new table. Unlike AddTables it performs no duplicate
// check, and it pays the generation publish per call — bulk ingestion
// should batch through AddTables. A journal append failure panics with a
// typed error (durability was promised and cannot be delivered); use
// AddTables to handle journal errors gracefully.
func (e *Engine) AddTable(t *table.Table) int32 {
	start := time.Now()
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.journal != nil {
		if err := e.journal.AddTables([]*table.Table{t}); err != nil {
			panic(berr.Wrap(berr.CodeInternal, "engine.wal", err))
		}
	}
	next, id := cloneAddTables(e.snap.Load().store, []*table.Table{t}, 0)
	e.gen++
	e.publish(e.buildSnapshot(next, e.gen))
	if e.names != nil {
		e.names[t.Name] = struct{}{}
	}
	e.recordBatch(1, uint64(len(t.Rows)), time.Since(start))
	return id[0]
}

// cloneAddTables derives the next store with the batch appended,
// copy-on-write when the store supports it. The in-place fallback covers
// custom Index implementations outside this module: readers of older
// snapshots then share the mutated store — the pre-MVCC behavior.
func cloneAddTables(s storage.Index, tables []*table.Table, workers int) (storage.Index, []int32) {
	if c, ok := s.(storage.CowIndex); ok {
		return c.CloneAddTablesBatch(tables, workers)
	}
	return s, s.AddTablesBatch(tables, workers)
}

// recordBatch updates the ingest counters for one committed batch.
func (e *Engine) recordBatch(tables int, rows uint64, d time.Duration) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.maint.Batches++
	e.maint.TablesAdded += uint64(tables)
	e.maint.RowsAdded += rows
	e.maint.LastBatchTables = tables
	e.maint.LastBatchDuration = d
}

// SetResultCache configures the engine's seeker result cache to hold up to
// capacity entries; capacity <= 0 disables caching. The cache memoizes
// per-seeker top-k lists keyed by (seeker fingerprint, rewrite, store
// generation); entries are swept when their generation leaves the
// retention window, so it never serves stale results and bounds what
// retained history can keep resident. Reconfiguring resets the counters.
func (e *Engine) SetResultCache(capacity int) {
	if capacity <= 0 {
		e.cache.Store(nil)
		return
	}
	e.cache.Store(newResultCache(capacity))
}

// ResultCacheStats snapshots the result cache counters; the zero value is
// returned when no cache is configured.
func (e *Engine) ResultCacheStats() CacheStats {
	c := e.cache.Load()
	if c == nil {
		return CacheStats{}
	}
	return c.stats()
}

// ExecRawSQL runs one SQL statement against the unified AllTables relation
// of the current generation. Invalid statements report typed bad-query
// errors. Cancellation is honored at statement granularity: a context
// already canceled reports the typed canceled code, but the minisql
// executor does not interrupt a statement mid-flight.
func (e *Engine) ExecRawSQL(ctx context.Context, sql string) (*minisql.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, berr.FromContext("sql.exec", err)
	}
	sn, err := e.pin()
	if err != nil {
		return nil, err
	}
	defer e.unpin(sn)
	return minisql.ExecSQL(sn.cat, sql)
}

// ExplainRawSQL renders the execution plan of one SQL statement against
// the unified relation.
func (e *Engine) ExplainRawSQL(sql string) (string, error) {
	sn, err := e.pin()
	if err != nil {
		return "", err
	}
	defer e.unpin(sn)
	return minisql.ExplainSQL(sn.cat, sql)
}

// ComputeStats summarizes the current generation of the index.
func (e *Engine) ComputeStats() storage.Stats {
	sn, err := e.pin()
	if err != nil {
		return storage.Stats{}
	}
	defer e.unpin(sn)
	return sn.store.ComputeStats()
}

// NumTables reports the number of allocated table ids, tombstoned slots
// included — the bound for id-space iteration. See LiveTables for the
// discoverable-table count.
func (e *Engine) NumTables() int {
	sn, err := e.pin()
	if err != nil {
		return 0
	}
	defer e.unpin(sn)
	return sn.store.NumTables()
}

// LiveTables reports the number of discoverable tables: allocated ids
// minus removed-but-not-compacted tombstones.
func (e *Engine) LiveTables() int {
	sn, err := e.pin()
	if err != nil {
		return 0
	}
	defer e.unpin(sn)
	return sn.store.NumTables() - sn.store.Tombstones()
}

// ReconstructTable materializes one indexed table, or nil when the id is
// out of range.
func (e *Engine) ReconstructTable(tid int32) *table.Table {
	sn, err := e.pin()
	if err != nil {
		return nil
	}
	defer e.unpin(sn)
	if tid < 0 || int(tid) >= sn.store.NumTables() {
		return nil
	}
	return sn.store.ReconstructTable(tid)
}

// SizeBytes estimates the resident size of the unified index.
func (e *Engine) SizeBytes() int64 {
	sn, err := e.pin()
	if err != nil {
		return 0
	}
	defer e.unpin(sn)
	return sn.store.SizeBytes()
}

// SaveFile persists the current generation and, when a journal is
// installed, checkpoints it at that generation — the mutations before the
// save need never be replayed again. Serializes with mutations so the
// checkpoint can not run ahead of the bytes on disk.
func (e *Engine) SaveFile(path string) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	sn := e.snap.Load()
	if err := sn.store.SaveFile(path); err != nil {
		return err
	}
	if e.journal != nil {
		if err := e.journal.Checkpoint(sn.gen); err != nil {
			return berr.Wrap(berr.CodeInternal, "engine.wal", err)
		}
	}
	return nil
}

// execSQL runs a seeker's SQL against the view's pinned snapshot and times
// it. On a sharded index the statement executes against every shard
// concurrently and the partial results are merged; tables never span
// shards, so the merged rows equal a run against the unified relation. The
// context cancels the fan-out between shard scans.
func (v *view) execSQL(ctx context.Context, sql string) (*minisql.Result, time.Duration, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	sn := v.sn
	if len(sn.shardCats) == 0 {
		res, err := minisql.ExecSQL(sn.cat, sql)
		return res, time.Since(start), err
	}
	parts := make([]*minisql.Result, len(sn.shardCats))
	errs := make([]error, len(sn.shardCats))
	panics := make([]any, len(sn.shardCats))
	var wg sync.WaitGroup
	for i, cat := range sn.shardCats {
		wg.Add(1)
		go func(i int, cat *minisql.Catalog) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			select {
			case v.shardSem <- struct{}{}:
				defer func() { <-v.shardSem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = minisql.ExecSQL(cat, sql)
		}(i, cat)
	}
	wg.Wait()
	repanic(panics)
	for _, err := range errs {
		if err != nil {
			return nil, time.Since(start), err
		}
	}
	return minisql.MergeResults(parts...), time.Since(start), nil
}

// TableNames maps hits to table names, preserving order, against the
// current generation.
func (e *Engine) TableNames(h Hits) []string {
	sn, err := e.pin()
	if err != nil {
		return make([]string, len(h))
	}
	defer e.unpin(sn)
	return (&view{Engine: e, sn: sn}).tableNames(h)
}

// tableNames is TableNames against the view's pinned snapshot (Run's
// result assembly resolves names at the generation the plan executed at).
func (v *view) tableNames(h Hits) []string {
	out := make([]string, len(h))
	for i, t := range h {
		out[i] = v.sn.store.TableName(t.TableID)
	}
	return out
}
