package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"blend/internal/alltables"
	"blend/internal/berr"
	"blend/internal/costmodel"
	"blend/internal/minisql"
	"blend/internal/storage"
	"blend/internal/table"
)

// DefaultSampleH is the default correlation sample size h (§V); the paper's
// experiments use h = 256.
const DefaultSampleH = 256

// Engine executes discovery plans against one indexed data lake. It owns
// the SQL catalog exposing the AllTables relation and, optionally, the
// trained per-seeker cost models used by the optimizer.
//
// When the index is sharded, the engine additionally keeps one catalog per
// shard and executes every seeker's SQL against all shards concurrently,
// merging the partial results; tables are partitioned whole, so every
// per-table aggregate in the generated SQL is shard-local and the merge is
// exact. The unified catalog remains available for raw SQL.
//
// The engine is safe for concurrent use: queries (Run, RunSeeker, raw SQL,
// stats, table reconstruction) share a read lock, while incremental index
// maintenance (AddTable) takes the write lock and waits for in-flight
// queries to drain.
type Engine struct {
	// mu guards the store against concurrent mutation: every query path
	// holds it for reading, AddTable for writing. The storage layer itself
	// is safe for concurrent readers once built.
	mu    sync.RWMutex
	store storage.Index    // guarded by mu
	cat   *minisql.Catalog // immutable after NewEngine; the relation it serves reads store

	// shardCats holds one catalog per shard when the index is sharded
	// (nil for monolithic stores).
	shardCats []*minisql.Catalog
	// shardSem bounds how many per-shard SQL executions run at once
	// engine-wide, so plan-level and shard-level parallelism compose
	// without oversubscribing the machine.
	shardSem chan struct{}

	// nativeViews holds the per-shard readers the native posting-list
	// executor scans (one element wrapping the whole store when
	// monolithic). Views reference the store, so AddTable needs no
	// rebuild.
	nativeViews []storage.Reader
	// NoNativeExec forces every seeker through SQL generation and the
	// minisql interpreter — the pre-fast-path behavior, kept for A/B
	// benchmarking and the path-equivalence tests.
	NoNativeExec bool

	// cache memoizes seeker results when configured (nil otherwise); gen
	// is the store generation embedded in cache keys, bumped by every
	// index mutation (AddTable, AddTables, RemoveTable, Compact).
	cache *resultCache // guarded by mu
	gen   uint64       // guarded by mu

	// maint counts index maintenance for operators (see MaintStats).
	maint MaintStats // guarded by mu
	// names caches the live table names for AddTables' duplicate check,
	// built lazily and maintained incrementally under the write lock;
	// nil means "rebuild on next use" (RemoveTable invalidates it, since
	// duplicate names the unchecked AddTable may have introduced make an
	// incremental delete ambiguous).
	names map[string]struct{} // guarded by mu

	// SampleH is the number of leading row ids sampled by the correlation
	// seeker (the `rowid < h` predicate of Listing 3).
	SampleH int

	// Cost holds the learned cost models per seeker kind; when nil the
	// optimizer falls back to pure rule-based ranking.
	Cost *costmodel.PerKind

	// Lazily built embedding side-index for the SemanticSeeker extension,
	// rebuilt when the store generation moves (table added or removed), so
	// ANN results never reference tables the index no longer serves.
	semMu  sync.Mutex
	semIdx *semanticIdx // guarded by semMu
	semGen uint64       // guarded by semMu
}

// NewEngine wraps an AllTables index for plan execution.
func NewEngine(store storage.Index) *Engine {
	cat := minisql.NewCatalog()
	cat.Register(alltables.Name, alltables.New(store))
	e := &Engine{store: store, cat: cat, SampleH: DefaultSampleH}
	e.nativeViews = []storage.Reader{store}
	if sh, ok := store.(storage.Sharded); ok {
		if views := sh.ShardReaders(); len(views) > 1 {
			e.shardCats = make([]*minisql.Catalog, len(views))
			for i, v := range views {
				c := minisql.NewCatalog()
				c.Register(alltables.Name, alltables.New(v))
				e.shardCats[i] = c
			}
			e.shardSem = make(chan struct{}, runtime.GOMAXPROCS(0))
			e.nativeViews = views
		}
	}
	return e
}

// Store returns the engine's index. Callers touching it directly are not
// covered by the engine's lock; prefer the Engine accessors when queries
// may run concurrently.
func (e *Engine) Store() storage.Index { return e.store } // lint:ignore lockguard documented unlocked accessor; callers own the locking once they hold the store

// Catalog returns the unified SQL catalog (exposed for tests and advanced
// embedding). For sharded indexes it serves the global single-relation
// view; seekers use the concurrent per-shard path instead. Prefer
// ExecRawSQL, which also takes the engine's read lock.
func (e *Engine) Catalog() *minisql.Catalog { return e.cat }

// NumShards reports how many partitions the engine scans per seeker.
func (e *Engine) NumShards() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.NumShards()
}

// AddTable appends one table to the index without rebuilding it — the
// incremental maintenance a single unified index enables (§I). It takes
// the engine's write lock, so it is safe concurrently with queries: the
// call waits for in-flight plans to finish, and queries started after it
// returns see the new table. Unlike AddTables it performs no duplicate
// check, and it pays the generation bump and cache purge per call — bulk
// ingestion should batch through AddTables.
func (e *Engine) AddTable(t *table.Table) int32 {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	// The mutation invalidates every memoized result: bump the generation
	// (so in-flight keys can never collide with post-mutation ones) and
	// drop the entries.
	e.gen++
	if e.cache != nil {
		e.cache.purge()
	}
	id := e.store.AddTable(t)
	if e.names != nil {
		e.names[t.Name] = struct{}{}
	}
	e.maint.Batches++
	e.maint.TablesAdded++
	e.maint.RowsAdded += uint64(len(t.Rows))
	e.maint.LastBatchTables = 1
	e.maint.LastBatchDuration = time.Since(start)
	return id
}

// SetResultCache configures the engine's seeker result cache to hold up to
// capacity entries; capacity <= 0 disables caching. The cache memoizes
// per-seeker top-k lists keyed by (seeker fingerprint, rewrite, store
// generation) and is purged by AddTable, so it never serves stale results.
// Reconfiguring resets the hit/miss counters.
func (e *Engine) SetResultCache(capacity int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if capacity <= 0 {
		e.cache = nil
		return
	}
	e.cache = newResultCache(capacity)
}

// ResultCacheStats snapshots the result cache counters; the zero value is
// returned when no cache is configured.
func (e *Engine) ResultCacheStats() CacheStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// ExecRawSQL runs one SQL statement against the unified AllTables relation
// under the engine's read lock. Invalid statements report typed bad-query
// errors. Cancellation is honored at statement granularity: a context
// already canceled reports the typed canceled code, but the minisql
// executor does not interrupt a statement mid-flight.
func (e *Engine) ExecRawSQL(ctx context.Context, sql string) (*minisql.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, berr.FromContext("sql.exec", err)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return minisql.ExecSQL(e.cat, sql)
}

// ExplainRawSQL renders the execution plan of one SQL statement against
// the unified relation.
func (e *Engine) ExplainRawSQL(sql string) (string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return minisql.ExplainSQL(e.cat, sql)
}

// ComputeStats summarizes the index under the engine's read lock.
func (e *Engine) ComputeStats() storage.Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.ComputeStats()
}

// NumTables reports the number of allocated table ids, tombstoned slots
// included — the bound for id-space iteration. See LiveTables for the
// discoverable-table count.
func (e *Engine) NumTables() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.NumTables()
}

// LiveTables reports the number of discoverable tables: allocated ids
// minus removed-but-not-compacted tombstones.
func (e *Engine) LiveTables() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.NumTables() - e.store.Tombstones()
}

// ReconstructTable materializes one indexed table, or nil when the id is
// out of range.
func (e *Engine) ReconstructTable(tid int32) *table.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if tid < 0 || int(tid) >= e.store.NumTables() {
		return nil
	}
	return e.store.ReconstructTable(tid)
}

// SizeBytes estimates the resident size of the unified index.
func (e *Engine) SizeBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.SizeBytes()
}

// SaveFile persists the index under the engine's read lock (persistence
// only reads the store, so concurrent queries may proceed, but a
// concurrent AddTable waits).
func (e *Engine) SaveFile(path string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.SaveFile(path)
}

// execSQL runs a seeker's SQL and times it. On a sharded index the
// statement executes against every shard concurrently and the partial
// results are merged; tables never span shards, so the merged rows equal a
// run against the unified relation. The context cancels the fan-out
// between shard scans. Callers hold the engine's read lock (seekers only
// run inside Engine.Run / Engine.RunSeeker).
func (e *Engine) execSQL(ctx context.Context, sql string) (*minisql.Result, time.Duration, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if len(e.shardCats) == 0 {
		res, err := minisql.ExecSQL(e.cat, sql)
		return res, time.Since(start), err
	}
	parts := make([]*minisql.Result, len(e.shardCats))
	errs := make([]error, len(e.shardCats))
	panics := make([]any, len(e.shardCats))
	var wg sync.WaitGroup
	for i, cat := range e.shardCats {
		wg.Add(1)
		go func(i int, cat *minisql.Catalog) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			select {
			case e.shardSem <- struct{}{}:
				defer func() { <-e.shardSem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = minisql.ExecSQL(cat, sql)
		}(i, cat)
	}
	wg.Wait()
	repanic(panics)
	for _, err := range errs {
		if err != nil {
			return nil, time.Since(start), err
		}
	}
	return minisql.MergeResults(parts...), time.Since(start), nil
}

// TableNames maps hits to table names, preserving order, under the
// engine's read lock.
func (e *Engine) TableNames(h Hits) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tableNames(h)
}

// tableNames is TableNames without locking, for callers already holding
// the engine lock (Engine.Run's result assembly).
//
// lockguard: caller holds mu
func (e *Engine) tableNames(h Hits) []string {
	out := make([]string, len(h))
	for i, t := range h {
		out[i] = e.store.TableName(t.TableID)
	}
	return out
}
