package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"blend/internal/alltables"
	"blend/internal/costmodel"
	"blend/internal/minisql"
	"blend/internal/storage"
)

// DefaultSampleH is the default correlation sample size h (§V); the paper's
// experiments use h = 256.
const DefaultSampleH = 256

// Engine executes discovery plans against one indexed data lake. It owns
// the SQL catalog exposing the AllTables relation and, optionally, the
// trained per-seeker cost models used by the optimizer.
//
// When the index is sharded, the engine additionally keeps one catalog per
// shard and executes every seeker's SQL against all shards concurrently,
// merging the partial results; tables are partitioned whole, so every
// per-table aggregate in the generated SQL is shard-local and the merge is
// exact. The unified catalog remains available for raw SQL.
type Engine struct {
	store storage.Index
	cat   *minisql.Catalog

	// shardCats holds one catalog per shard when the index is sharded
	// (nil for monolithic stores).
	shardCats []*minisql.Catalog
	// shardSem bounds how many per-shard SQL executions run at once
	// engine-wide, so plan-level and shard-level parallelism compose
	// without oversubscribing the machine.
	shardSem chan struct{}

	// SampleH is the number of leading row ids sampled by the correlation
	// seeker (the `rowid < h` predicate of Listing 3).
	SampleH int

	// Cost holds the learned cost models per seeker kind; when nil the
	// optimizer falls back to pure rule-based ranking.
	Cost *costmodel.PerKind

	// Lazily built embedding side-index for the SemanticSeeker extension.
	semOnce sync.Once
	semIdx  *semanticIdx
}

// NewEngine wraps an AllTables index for plan execution.
func NewEngine(store storage.Index) *Engine {
	cat := minisql.NewCatalog()
	cat.Register(alltables.Name, alltables.New(store))
	e := &Engine{store: store, cat: cat, SampleH: DefaultSampleH}
	if sh, ok := store.(storage.Sharded); ok {
		if views := sh.ShardReaders(); len(views) > 1 {
			e.shardCats = make([]*minisql.Catalog, len(views))
			for i, v := range views {
				c := minisql.NewCatalog()
				c.Register(alltables.Name, alltables.New(v))
				e.shardCats[i] = c
			}
			e.shardSem = make(chan struct{}, runtime.GOMAXPROCS(0))
		}
	}
	return e
}

// Store returns the engine's index.
func (e *Engine) Store() storage.Index { return e.store }

// Catalog returns the unified SQL catalog (exposed for tests and the CLI's
// raw SQL mode). For sharded indexes it serves the global single-relation
// view; seekers use the concurrent per-shard path instead.
func (e *Engine) Catalog() *minisql.Catalog { return e.cat }

// NumShards reports how many partitions the engine scans per seeker.
func (e *Engine) NumShards() int { return e.store.NumShards() }

// execSQL runs a seeker's SQL and times it. On a sharded index the
// statement executes against every shard concurrently and the partial
// results are merged; tables never span shards, so the merged rows equal a
// run against the unified relation. The context cancels the fan-out
// between shard scans.
func (e *Engine) execSQL(ctx context.Context, sql string) (*minisql.Result, time.Duration, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if len(e.shardCats) == 0 {
		res, err := minisql.ExecSQL(e.cat, sql)
		return res, time.Since(start), err
	}
	parts := make([]*minisql.Result, len(e.shardCats))
	errs := make([]error, len(e.shardCats))
	var wg sync.WaitGroup
	for i, cat := range e.shardCats {
		wg.Add(1)
		go func(i int, cat *minisql.Catalog) {
			defer wg.Done()
			select {
			case e.shardSem <- struct{}{}:
				defer func() { <-e.shardSem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = minisql.ExecSQL(cat, sql)
		}(i, cat)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, time.Since(start), err
		}
	}
	return minisql.MergeResults(parts...), time.Since(start), nil
}

// TableNames maps hits to table names, preserving order.
func (e *Engine) TableNames(h Hits) []string {
	out := make([]string, len(h))
	for i, t := range h {
		out[i] = e.store.TableName(t.TableID)
	}
	return out
}
