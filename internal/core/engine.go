package core

import (
	"sync"
	"time"

	"blend/internal/alltables"
	"blend/internal/costmodel"
	"blend/internal/minisql"
	"blend/internal/storage"
)

// DefaultSampleH is the default correlation sample size h (§V); the paper's
// experiments use h = 256.
const DefaultSampleH = 256

// Engine executes discovery plans against one indexed data lake. It owns
// the SQL catalog exposing the AllTables relation and, optionally, the
// trained per-seeker cost models used by the optimizer.
type Engine struct {
	store *storage.Store
	cat   *minisql.Catalog

	// SampleH is the number of leading row ids sampled by the correlation
	// seeker (the `rowid < h` predicate of Listing 3).
	SampleH int

	// Cost holds the learned cost models per seeker kind; when nil the
	// optimizer falls back to pure rule-based ranking.
	Cost *costmodel.PerKind

	// Lazily built embedding side-index for the SemanticSeeker extension.
	semOnce sync.Once
	semIdx  *semanticIdx
}

// NewEngine wraps an AllTables store for plan execution.
func NewEngine(store *storage.Store) *Engine {
	cat := minisql.NewCatalog()
	cat.Register(alltables.Name, alltables.New(store))
	return &Engine{store: store, cat: cat, SampleH: DefaultSampleH}
}

// Store returns the engine's index.
func (e *Engine) Store() *storage.Store { return e.store }

// Catalog returns the SQL catalog (exposed for tests and the CLI's raw SQL
// mode).
func (e *Engine) Catalog() *minisql.Catalog { return e.cat }

// execSQL runs a seeker's SQL and times it.
func (e *Engine) execSQL(sql string) (*minisql.Result, time.Duration, error) {
	start := time.Now()
	res, err := minisql.ExecSQL(e.cat, sql)
	return res, time.Since(start), err
}

// TableNames maps hits to table names, preserving order.
func (e *Engine) TableNames(h Hits) []string {
	out := make([]string, len(h))
	for i, t := range h {
		out[i] = e.store.TableName(t.TableID)
	}
	return out
}
