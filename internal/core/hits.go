// Package core implements BLEND's contribution: the seeker and combiner
// operators (§IV of the paper), the declarative discovery Plan and its DAG,
// and the two-phase plan optimizer (§VII) that ranks operators with rules
// plus a learned cost model and rewrites their SQL with intermediate-result
// predicates before execution on the AllTables index.
package core

import "sort"

// TableHit is one discovered table with its operator-specific relevance
// score (overlap count for SC/KW/MC, |QCR| for the correlation seeker,
// occurrence count for the Counter combiner).
type TableHit struct {
	TableID int32
	Score   float64
}

// Hits is an ordered collection of scored tables, best first.
type Hits []TableHit

// TableIDs returns the table ids in order.
func (h Hits) TableIDs() []int32 {
	out := make([]int32, len(h))
	for i, t := range h {
		out[i] = t.TableID
	}
	return out
}

// Contains reports whether the table id appears in h.
func (h Hits) Contains(id int32) bool {
	for _, t := range h {
		if t.TableID == id {
			return true
		}
	}
	return false
}

// topK sorts hits by score descending (table id ascending as a
// deterministic tie break) and truncates to k. k < 0 means no limit.
func topK(h Hits, k int) Hits {
	sort.SliceStable(h, func(a, b int) bool {
		if h[a].Score != h[b].Score {
			return h[a].Score > h[b].Score
		}
		return h[a].TableID < h[b].TableID
	})
	if k >= 0 && len(h) > k {
		h = h[:k]
	}
	return h
}

// dedupeBest keeps the best-scoring hit per table, preserving no particular
// order (callers run topK afterwards).
func dedupeBest(h Hits) Hits {
	best := make(map[int32]float64, len(h))
	for _, t := range h {
		if s, ok := best[t.TableID]; !ok || t.Score > s {
			best[t.TableID] = t.Score
		}
	}
	out := make(Hits, 0, len(best))
	for id, s := range best {
		out = append(out, TableHit{TableID: id, Score: s})
	}
	return out
}
