package core

import (
	"time"

	"blend/internal/berr"
	"blend/internal/table"
)

// Index maintenance: the write path of the engine. Mutations take the
// engine's write lock, so they serialize against each other and wait for
// in-flight queries to drain; queries started after a mutation returns see
// its effect. Batch ingestion (AddTables) amortizes the per-mutation costs
// — generation bump, result-cache purge, derived-state refresh — over the
// whole batch instead of paying them per table.

// MaintStats counts index maintenance since the engine was built; the
// service exposes them as the ingest progress/throughput counters of
// /v1/stats.
type MaintStats struct {
	// Batches counts committed ingest batches (one per AddTables call;
	// AddTable counts as a batch of one).
	Batches uint64
	// TablesAdded / RowsAdded count ingested tables and rows.
	TablesAdded uint64
	RowsAdded   uint64
	// TablesRemoved counts RemoveTable tombstones.
	TablesRemoved uint64
	// Compactions counts Compact passes that reclaimed space;
	// TablesCompacted sums the tables they physically removed.
	Compactions     uint64
	TablesCompacted uint64
	// LastBatchTables and LastBatchDuration describe the most recently
	// committed ingest batch (throughput = tables over duration).
	LastBatchTables   int
	LastBatchDuration time.Duration
}

// AddTables appends a batch of tables to the index as one maintenance
// operation: one write-lock acquisition, one generation bump, and one
// result-cache purge for the whole batch (AddTable pays each per call).
// On a sharded index the per-shard inserts run concurrently, bounded by
// workers (<= 0 means GOMAXPROCS).
//
// Table names must be unique: a name already indexed (and not removed), or
// repeated within the batch, fails the whole call with a typed
// duplicate-table error and the index unchanged — ingest batches are
// atomic.
func (e *Engine) AddTables(tables []*table.Table, workers int) ([]int32, error) {
	if len(tables) == 0 {
		return nil, nil
	}
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	// Duplicate check against the cached live-name set (O(batch), not
	// O(lake), per batch) plus an intra-batch scratch set; the cache is
	// only updated after the batch commits, so a rejected batch leaves it
	// clean.
	names := e.liveNamesLocked()
	batch := make(map[string]struct{}, len(tables))
	for _, t := range tables {
		if _, dup := names[t.Name]; dup {
			return nil, berr.New(berr.CodeDuplicateTable, "engine.ingest",
				"table %q is already indexed", t.Name)
		}
		if _, dup := batch[t.Name]; dup {
			return nil, berr.New(berr.CodeDuplicateTable, "engine.ingest",
				"table %q appears twice in the batch", t.Name)
		}
		batch[t.Name] = struct{}{}
	}
	e.gen++
	if e.cache != nil {
		e.cache.purge()
	}
	ids := e.store.AddTablesBatch(tables, workers)
	for _, t := range tables {
		names[t.Name] = struct{}{}
	}
	e.maint.Batches++
	e.maint.TablesAdded += uint64(len(ids))
	for _, t := range tables {
		e.maint.RowsAdded += uint64(len(t.Rows))
	}
	e.maint.LastBatchTables = len(ids)
	e.maint.LastBatchDuration = time.Since(start)
	return ids, nil
}

// RemoveTable tombstones one table: it immediately disappears from every
// query path (seekers, raw SQL, reconstruction, name lookups) while its
// entries stay allocated until Compact reclaims them. The store generation
// is bumped so memoized results referencing the table become unreachable,
// but the result cache is not purged — see cache.go for why removal
// invalidates lazily where ingestion purges eagerly. An unknown or
// already-removed id reports a typed not-found error.
func (e *Engine) RemoveTable(tid int32) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.store.RemoveTable(tid); err != nil {
		return err
	}
	e.gen++       // lint:gen-lazy removal keeps cached entries; the bumped generation already makes their keys unreachable (see cache.go)
	e.names = nil // see the field comment: removals invalidate the name cache
	e.maint.TablesRemoved++
	return nil
}

// Compact physically reclaims every tombstoned table and returns how many
// were removed. Table ids are reassigned contiguously, so the generation
// is bumped and the result cache purged; callers holding ids from before
// the compaction must re-resolve them by name. A lake without tombstones
// returns 0 without touching the index.
func (e *Engine) Compact() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	removed := e.store.Compact()
	if removed == 0 {
		return 0
	}
	e.gen++
	if e.cache != nil {
		e.cache.purge()
	}
	e.maint.Compactions++
	e.maint.TablesCompacted += uint64(removed)
	return removed
}

// liveNamesLocked returns the cached live table-name set, building it
// once per invalidation. Callers hold the engine's write lock.
//
// lockguard: caller holds mu
func (e *Engine) liveNamesLocked() map[string]struct{} {
	if e.names == nil {
		e.names = make(map[string]struct{}, e.store.NumTables())
		for tid := 0; tid < e.store.NumTables(); tid++ {
			if n := e.store.TableName(int32(tid)); n != "" {
				e.names[n] = struct{}{}
			}
		}
	}
	return e.names
}

// MaintStats snapshots the maintenance counters.
func (e *Engine) MaintStats() MaintStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.maint
}

// TableIDByName resolves a live table name to its current id (-1 when
// absent) under the engine's read lock — the stable way to re-find a
// table across compactions, which reassign ids.
func (e *Engine) TableIDByName(name string) int32 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.TableIDByName(name)
}
