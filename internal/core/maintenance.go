package core

import (
	"time"

	"blend/internal/berr"
	"blend/internal/storage"
	"blend/internal/table"
)

// Index maintenance: the write path of the engine. Mutations serialize on
// writeMu, derive the next store copy-on-write, append to the journal when
// one is installed, and publish the result as a new generation — in-flight
// queries keep their pinned snapshot, queries started after a mutation
// returns see its effect. Batch ingestion (AddTables) amortizes the
// per-mutation costs — journal append, snapshot build, publish — over the
// whole batch instead of paying them per table.

// MaintStats counts index maintenance since the engine was built; the
// service exposes them as the ingest progress/throughput counters of
// /v1/stats.
type MaintStats struct {
	// Batches counts committed ingest batches (one per AddTables call;
	// AddTable counts as a batch of one).
	Batches uint64
	// TablesAdded / RowsAdded count ingested tables and rows.
	TablesAdded uint64
	RowsAdded   uint64
	// TablesRemoved counts RemoveTable tombstones.
	TablesRemoved uint64
	// Compactions counts Compact passes that reclaimed space;
	// TablesCompacted sums the tables they physically removed.
	Compactions     uint64
	TablesCompacted uint64
	// LastBatchTables and LastBatchDuration describe the most recently
	// committed ingest batch (throughput = tables over duration).
	LastBatchTables   int
	LastBatchDuration time.Duration
}

// AddTables appends a batch of tables to the index as one maintenance
// operation: one journal append, one derived store, one published
// generation for the whole batch (AddTable pays each per call). On a
// sharded index the per-shard inserts run concurrently, bounded by workers
// (<= 0 means GOMAXPROCS).
//
// Table names must be unique: a name already indexed (and not removed), or
// repeated within the batch, fails the whole call with a typed
// duplicate-table error and the index unchanged — ingest batches are
// atomic.
func (e *Engine) AddTables(tables []*table.Table, workers int) ([]int32, error) {
	if len(tables) == 0 {
		return nil, nil
	}
	start := time.Now()
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	// Duplicate check against the cached live-name set (O(batch), not
	// O(lake), per batch) plus an intra-batch scratch set; the cache is
	// only updated after the batch commits, so a rejected batch leaves it
	// clean.
	names := e.liveNamesLocked()
	batch := make(map[string]struct{}, len(tables))
	for _, t := range tables {
		if _, dup := names[t.Name]; dup {
			return nil, berr.New(berr.CodeDuplicateTable, "engine.ingest",
				"table %q is already indexed", t.Name)
		}
		if _, dup := batch[t.Name]; dup {
			return nil, berr.New(berr.CodeDuplicateTable, "engine.ingest",
				"table %q appears twice in the batch", t.Name)
		}
		batch[t.Name] = struct{}{}
	}
	if e.journal != nil {
		if err := e.journal.AddTables(tables); err != nil {
			return nil, berr.Wrap(berr.CodeInternal, "engine.wal", err)
		}
	}
	next, ids := cloneAddTables(e.snap.Load().store, tables, workers)
	e.gen++
	e.publish(e.buildSnapshot(next, e.gen))
	for _, t := range tables {
		names[t.Name] = struct{}{}
	}
	rows := uint64(0)
	for _, t := range tables {
		rows += uint64(len(t.Rows))
	}
	e.recordBatch(len(ids), rows, time.Since(start))
	return ids, nil
}

// RemoveTable tombstones one table: it immediately disappears from every
// query path of the new generation (seekers, raw SQL, reconstruction, name
// lookups) while its entries stay allocated until Compact reclaims them —
// and while retained historical generations still serve it to time-travel
// queries. Memoized results referencing the table stay reachable only
// under their historical generation keys and are swept when that
// generation leaves the retention window. An unknown or already-removed id
// reports a typed not-found error with the index unchanged.
func (e *Engine) RemoveTable(tid int32) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.snap.Load()
	var next storage.Index
	if c, ok := cur.store.(storage.CowIndex); ok {
		derived, err := c.CloneRemoveTable(tid)
		if err != nil {
			return err
		}
		next = derived
	} else {
		// In-place fallback for custom Index implementations; older
		// snapshots then share the mutated store (the pre-MVCC behavior).
		if err := cur.store.RemoveTable(tid); err != nil {
			return err
		}
		next = cur.store
	}
	if e.journal != nil {
		if err := e.journal.RemoveTable(tid); err != nil {
			return berr.Wrap(berr.CodeInternal, "engine.wal", err)
		}
	}
	e.gen++
	e.publish(e.buildSnapshot(next, e.gen))
	e.names = nil // see the field comment: removals invalidate the name cache
	e.maintMu.Lock()
	e.maint.TablesRemoved++
	e.maintMu.Unlock()
	return nil
}

// Compact physically reclaims every tombstoned table and returns how many
// were removed. The new generation is rebuilt from scratch, so table ids
// are reassigned contiguously and the store lineage changes: the old file
// mapping (if any) closes once the last retained or pinned generation
// using it is released. Callers holding ids from before the compaction
// must re-resolve them by name. A lake without tombstones returns 0
// without publishing. A journal append failure panics with a typed error
// (the compaction is already built and durability was promised).
func (e *Engine) Compact() int {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.snap.Load()
	var next storage.Index
	var removed int
	if c, ok := cur.store.(storage.CowIndex); ok {
		next, removed = c.CloneCompact()
	} else {
		removed = cur.store.Compact()
		next = cur.store
	}
	if removed == 0 {
		return 0
	}
	if e.journal != nil {
		if err := e.journal.Compact(); err != nil {
			panic(berr.Wrap(berr.CodeInternal, "engine.wal", err))
		}
	}
	// The rebuilt store starts a fresh lineage: new snapshots lease its
	// backing (a no-op closer for heap stores), while older generations
	// keep the previous lease and unmap the old file when the last of them
	// is released.
	e.lease = newStoreLease(next)
	e.gen++
	e.publish(e.buildSnapshot(next, e.gen))
	e.maintMu.Lock()
	e.maint.Compactions++
	e.maint.TablesCompacted += uint64(removed)
	e.maintMu.Unlock()
	return removed
}

// liveNamesLocked returns the cached live table-name set, building it
// once per invalidation from the current snapshot.
//
// lockguard: caller holds writeMu
func (e *Engine) liveNamesLocked() map[string]struct{} {
	if e.names == nil {
		store := e.snap.Load().store
		e.names = make(map[string]struct{}, store.NumTables())
		for tid := 0; tid < store.NumTables(); tid++ {
			if n := store.TableName(int32(tid)); n != "" {
				e.names[n] = struct{}{}
			}
		}
	}
	return e.names
}

// MaintStats snapshots the maintenance counters.
func (e *Engine) MaintStats() MaintStats {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	return e.maint
}

// TableIDByName resolves a live table name to its current id (-1 when
// absent) against the current generation — the stable way to re-find a
// table across compactions, which reassign ids.
func (e *Engine) TableIDByName(name string) int32 {
	sn, err := e.pin()
	if err != nil {
		return -1
	}
	defer e.unpin(sn)
	return sn.store.TableIDByName(name)
}
