package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"blend/internal/datalake"
	"blend/internal/storage"
	"blend/internal/table"
)

// Tests for the engine's batch-maintenance surface: AddTables batching
// semantics and cache behavior, RemoveTable/Compact lifecycle, and the
// native-vs-SQL equivalence property across a remove+compact cycle.

func maintLake(prefix string, n int) []*table.Table {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: prefix, NumTables: n, ColsPerTable: 3, RowsPerTable: 30,
		VocabSize: 200, Seed: 17,
	})
	return lake.Tables
}

func TestAddTablesBatchVisibilityAndCounters(t *testing.T) {
	base := maintLake("base", 6)
	e := NewEngine(storage.BuildSharded(storage.ColumnStore, base, 4))
	add := maintLake("extra", 10)
	ids, err := e.AddTables(add, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("AddTables returned %d ids", len(ids))
	}
	if e.NumTables() != 16 {
		t.Fatalf("NumTables = %d", e.NumTables())
	}
	// The batch is immediately discoverable.
	sc := NewSC([]string{add[0].Cell(0, 0)}, 32)
	hits, _, err := e.RunSeeker(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.TableID == ids[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("batch-added table not discoverable")
	}
	ms := e.MaintStats()
	if ms.Batches != 1 || ms.TablesAdded != 10 {
		t.Fatalf("maint stats = %+v", ms)
	}
	if ms.RowsAdded != 10*30 {
		t.Fatalf("RowsAdded = %d", ms.RowsAdded)
	}
	if ms.LastBatchTables != 10 || ms.LastBatchDuration <= 0 {
		t.Fatalf("last batch stats = %+v", ms)
	}
}

func TestAddTablesRejectsDuplicates(t *testing.T) {
	base := maintLake("dup", 4)
	e := NewEngine(storage.Build(storage.ColumnStore, base))
	before := e.NumTables()

	// Duplicate against the existing index.
	clash := table.New(base[2].Name, "A")
	clash.MustAppendRow("x")
	if _, err := e.AddTables([]*table.Table{clash}, 1); err == nil {
		t.Fatal("duplicate against index must fail")
	}
	// Duplicate within the batch.
	a := table.New("fresh", "A")
	a.MustAppendRow("x")
	b := table.New("fresh", "B")
	b.MustAppendRow("y")
	if _, err := e.AddTables([]*table.Table{a, b}, 1); err == nil {
		t.Fatal("duplicate within batch must fail")
	}
	// Atomicity: nothing from the failed batches landed.
	if e.NumTables() != before {
		t.Fatalf("failed batches mutated the index: %d tables, want %d", e.NumTables(), before)
	}
	ms := e.MaintStats()
	if ms.Batches != 0 || ms.TablesAdded != 0 {
		t.Fatalf("failed batches counted: %+v", ms)
	}
	// A removed table's name is free for re-ingest.
	if err := e.RemoveTable(2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddTables([]*table.Table{clash}, 1); err != nil {
		t.Fatalf("re-ingest of removed name: %v", err)
	}
}

func TestBatchCachePurgeOncePerBatch(t *testing.T) {
	base := maintLake("cache", 6)
	e := NewEngine(storage.Build(storage.ColumnStore, base))
	e.SetResultCache(32)
	e.SetRetention(1)
	sc := NewSC([]string{base[0].Cell(0, 0)}, 8)
	warm := func() {
		if _, _, err := e.RunSeeker(context.Background(), sc); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	warm() // second run hits
	if cs := e.ResultCacheStats(); cs.Hits != 1 {
		t.Fatalf("warm-up hits = %d", cs.Hits)
	}

	// One AddTables batch of 5 publishes exactly one generation — the
	// retention window moves once, sweeping the warmed generation in one
	// pass, where a sequential AddTable loop would sweep five times.
	genBefore := e.Generation()
	if _, err := e.AddTables(maintLake("more", 5), 2); err != nil {
		t.Fatal(err)
	}
	if got := e.Generation(); got != genBefore+1 {
		t.Fatalf("batch published %d generations, want 1", got-genBefore)
	}
	if cs := e.ResultCacheStats(); cs.Invalidations != 1 {
		t.Fatalf("batch caused %d invalidations, want 1", cs.Invalidations)
	}

	// RemoveTable follows the same retention rule: the old generation dies
	// (retention 1), so its entry is swept and the re-warmed key misses.
	warm()
	missesBefore := e.ResultCacheStats().Misses
	if err := e.RemoveTable(1); err != nil {
		t.Fatal(err)
	}
	cs := e.ResultCacheStats()
	if cs.Invalidations != 2 || cs.Entries != 0 {
		t.Fatalf("RemoveTable must sweep the dead generation: %+v", cs)
	}
	warm()
	if e.ResultCacheStats().Misses != missesBefore+1 {
		t.Fatal("post-remove lookup must miss (generation moved)")
	}

	// Compact needs no special casing: its publish moves the window too,
	// and the pre-compaction entry dies with its generation.
	if e.Compact() != 1 {
		t.Fatal("compact must reclaim the tombstone")
	}
	if cs := e.ResultCacheStats(); cs.Invalidations != 3 || cs.Entries != 0 {
		t.Fatalf("compact must sweep: %+v", cs)
	}
}

func TestRemoveTableHiddenFromQueries(t *testing.T) {
	base := maintLake("rm", 8)
	e := NewEngine(storage.BuildSharded(storage.ColumnStore, base, 4))
	victim := int32(3)
	val := base[victim].Cell(0, 0)
	if err := e.RemoveTable(victim); err != nil {
		t.Fatal(err)
	}
	// Seeker path.
	hits, _, err := e.RunSeeker(context.Background(), NewSC([]string{val}, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.TableID == victim {
			t.Fatal("seeker returned the removed table")
		}
	}
	// Raw SQL full-scan path: no rows of the removed table survive.
	res, err := e.ExecRawSQL(context.Background(),
		"SELECT TableId FROM AllTables WHERE TableId = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Fatalf("raw SQL still sees %d rows of the removed table", res.NumRows())
	}
	// Reconstruction path.
	if e.ReconstructTable(victim) != nil {
		t.Fatal("removed table still reconstructs")
	}
	// Typed error on unknown / double removal.
	if err := e.RemoveTable(victim); err == nil {
		t.Fatal("double remove must fail")
	}
	ms := e.MaintStats()
	if ms.TablesRemoved != 1 {
		t.Fatalf("TablesRemoved = %d", ms.TablesRemoved)
	}
}

// TestNativeSQLEquivalenceAfterRemoveCompact extends the fast-path
// property test across the table lifecycle: after RemoveTable the two
// paths must agree (both hiding the tombstoned table), and after Compact
// they must agree again over the renumbered id space.
func TestNativeSQLEquivalenceAfterRemoveCompact(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "eqrm", NumTables: 20, ColsPerTable: 3, RowsPerTable: 40,
		VocabSize: 250, Seed: 23,
	})
	rng := rand.New(rand.NewSource(99))
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			native, sql := buildNativeTestEngines(cfg.layout, cfg.shards, lake)
			queries := make([][]string, 6)
			for i := range queries {
				queries[i] = lake.QueryColumn(15 + rng.Intn(25))
			}
			check := func(stage string) {
				for qi, q := range queries {
					k := 1 + rng.Intn(24)
					runBoth(t, native, sql, NewSC(q, k), Rewrite{}, stage)
					runBoth(t, native, sql, NewKW(q, k), Rewrite{}, stage)
					_ = qi
				}
			}
			check("pre-remove")
			// Each engine owns its generation lineage now, so the removal
			// is applied to both (copy-on-write: mutating one engine no
			// longer leaks into the other's published store).
			for _, e := range []*Engine{native, sql} {
				for _, tid := range []int32{2, 7} {
					if err := e.RemoveTable(tid); err != nil {
						t.Fatal(err)
					}
				}
			}
			check("post-remove")
			for _, e := range []*Engine{native, sql} {
				if got := e.Compact(); got != 2 {
					t.Fatalf("Compact = %d, want 2", got)
				}
			}
			check("post-compact")
			if native.NumTables() != 18 {
				t.Fatalf("NumTables = %d after compact", native.NumTables())
			}
		})
	}
}

func TestTrainCostModelsSurvivesTombstones(t *testing.T) {
	base := maintLake("train", 8)
	e := NewEngine(storage.Build(storage.ColumnStore, base))
	for _, tid := range []int32{1, 4, 6} {
		if err := e.RemoveTable(tid); err != nil {
			t.Fatal(err)
		}
	}
	// The sampler draws ids across the whole allocated space; tombstoned
	// ids must be resampled, not dereferenced.
	if _, err := TrainCostModels(context.Background(), e, 40, 5); err != nil {
		t.Fatal(err)
	}
}

func TestLiveTablesExcludesTombstones(t *testing.T) {
	base := maintLake("live", 6)
	e := NewEngine(storage.BuildSharded(storage.ColumnStore, base, 2))
	if e.LiveTables() != 6 || e.NumTables() != 6 {
		t.Fatalf("fresh lake: live=%d total=%d", e.LiveTables(), e.NumTables())
	}
	if err := e.RemoveTable(2); err != nil {
		t.Fatal(err)
	}
	if e.LiveTables() != 5 || e.NumTables() != 6 {
		t.Fatalf("post-remove: live=%d total=%d", e.LiveTables(), e.NumTables())
	}
	e.Compact()
	if e.LiveTables() != 5 || e.NumTables() != 5 {
		t.Fatalf("post-compact: live=%d total=%d", e.LiveTables(), e.NumTables())
	}
}

func TestSemanticIndexRebuiltAfterRemove(t *testing.T) {
	base := maintLake("sem", 6)
	e := NewEngine(storage.Build(storage.ColumnStore, base))
	sem := NewSemantic([]string{base[2].Cell(0, 1)}, 12)
	hits, _, err := e.RunSeeker(context.Background(), sem)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("semantic seeker found nothing")
	}
	if err := e.RemoveTable(2); err != nil {
		t.Fatal(err)
	}
	hits, _, err = e.RunSeeker(context.Background(), sem)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.TableID == 2 {
			t.Fatal("ANN index still serves the removed table")
		}
	}
}

func TestMaintenanceConcurrentWithQueries(t *testing.T) {
	base := maintLake("conc", 8)
	e := NewEngine(storage.BuildSharded(storage.ColumnStore, base, 4))
	e.SetResultCache(64)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		q := []string{base[0].Cell(0, 0), base[1].Cell(0, 0)}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := e.RunSeeker(context.Background(), NewSC(q, 8)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 4; i++ {
		if _, err := e.AddTables(maintLake(fmt.Sprintf("conc-extra%d", i), 3), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RemoveTable(1); err != nil {
		t.Fatal(err)
	}
	e.Compact()
	close(stop)
	<-done
	if e.MaintStats().TablesRemoved != 1 {
		t.Fatal("maintenance counters lost")
	}
}
