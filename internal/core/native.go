package core

import (
	"context"
	"sort"
	"sync"

	"blend/internal/storage"
)

// Execution-path labels reported in RunStats.Path and, under WithExplain,
// in PlanResult.PathByNode. They tell the optimizer/cost-model layer (and
// operators reading -explain output) whether a seeker ran on the native
// posting-list executor or fell back to SQL interpretation.
const (
	// PathNative marks a run on the native posting-list fast path: no SQL
	// was generated, parsed, or interpreted.
	PathNative = "native"
	// PathSQL marks a run through SQL generation and the minisql
	// interpreter.
	PathSQL = "sql"
	// PathANN marks the semantic seeker's embedding-index search, which
	// has no relational form on either path.
	PathANN = "ann"
)

// The native executor answers the hot seeker family
//
//	SELECT TableId, COUNT(DISTINCT CellValue) … GROUP BY TableId[, ColumnId]
//	ORDER BY overlap DESC, TableId ASC LIMIT k
//
// (single-column joinability, keyword/multi-column overlap, and the
// union-compatibility probes built from them) directly over the sharded
// store: one dictionary lookup per query value, an int32 posting-list scan
// with per-table counters, a bounded k-size selection per shard, and a
// deterministic merge across shards. No SQL string is built, nothing is
// parsed, and the per-row work is integer comparisons against pooled
// counter buffers — the JOSIE/MATE-style merge execution the paper's SQL
// formulation abstracts over.

// tableFilter is a Rewrite compiled to an O(1) membership test on table
// ids — the native form of the optimizer's `TableId [NOT] IN (…)`
// predicate.
type tableFilter struct {
	mode int // 0 none, 1 include, 2 exclude
	ids  map[int32]struct{}
}

// compileFilter builds the native predicate for a rewrite.
func compileFilter(rw Rewrite) tableFilter {
	f := tableFilter{mode: rw.mode}
	if rw.mode != 0 {
		f.ids = make(map[int32]struct{}, len(rw.ids))
		for _, id := range rw.ids {
			f.ids[id] = struct{}{}
		}
	}
	return f
}

// admit reports whether the filter keeps entries of the given table.
func (f *tableFilter) admit(tid int32) bool {
	switch f.mode {
	case 1:
		_, ok := f.ids[tid]
		return ok
	case 2:
		_, ok := f.ids[tid]
		return !ok
	default:
		return true
	}
}

// scGroup is one (TableId, ColumnId) aggregation cell of the SC shape.
type scGroup struct {
	count int32  // COUNT(DISTINCT CellValue) so far
	mark  uint32 // last value epoch that contributed (dedup within a value)
}

// overlapScratch holds the pooled per-scan counter state. The count/mark
// arrays are indexed by global table id; touched records which ids were
// written so release() resets in O(touched) instead of O(tables). groups
// carries the per-(table, column) cells of the SC shape; clear() keeps its
// buckets allocated across scans.
type overlapScratch struct {
	count   []int32
	mark    []uint32
	touched []int32
	groups  map[uint64]scGroup
}

var overlapPool = sync.Pool{New: func() any {
	return &overlapScratch{groups: make(map[uint64]scGroup)}
}}

// grab fetches a scratch sized for numTables table ids.
func grabScratch(numTables int) *overlapScratch {
	sc := overlapPool.Get().(*overlapScratch)
	if len(sc.count) < numTables {
		sc.count = make([]int32, numTables)
		sc.mark = make([]uint32, numTables)
	}
	return sc
}

// release resets the touched counters and returns the scratch to the pool.
func (sc *overlapScratch) release() {
	for _, tid := range sc.touched {
		sc.count[tid] = 0
		sc.mark[tid] = 0
	}
	sc.touched = sc.touched[:0]
	if len(sc.groups) > 0 {
		clear(sc.groups)
	}
	overlapPool.Put(sc)
}

// bump counts one distinct query value for table tid. epoch identifies the
// value, so repeated occurrences of the same value in a table count once —
// COUNT(DISTINCT CellValue) in integer space.
func (sc *overlapScratch) bump(tid int32, epoch uint32) {
	if sc.mark[tid] == epoch {
		return
	}
	sc.mark[tid] = epoch
	if sc.count[tid] == 0 {
		sc.touched = append(sc.touched, tid)
	}
	sc.count[tid]++
}

// hitBetter is the shared result order of both execution paths: overlap
// score descending, TableId ascending as the deterministic tie-break.
func hitBetter(a, b TableHit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.TableID < b.TableID
}

// topkHeap is a bounded min-heap under hitBetter: the root is the worst
// retained hit, so a better candidate replaces it in O(log k). It keeps a
// shard's top-k without sorting (or even materializing) the full table set.
type topkHeap struct {
	h Hits
	k int
}

// offer inserts a candidate, evicting the current worst once full.
func (t *topkHeap) offer(h TableHit) {
	if t.k == 0 {
		return
	}
	if t.k > 0 && len(t.h) == t.k {
		if !hitBetter(h, t.h[0]) {
			return
		}
		t.h[0] = h
		t.siftDown(0)
		return
	}
	t.h = append(t.h, h)
	// Sift up.
	i := len(t.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if hitBetter(t.h[p], t.h[i]) {
			t.h[p], t.h[i] = t.h[i], t.h[p]
			i = p
			continue
		}
		break
	}
}

func (t *topkHeap) siftDown(i int) {
	n := len(t.h)
	for {
		worst := i
		if l := 2*i + 1; l < n && hitBetter(t.h[worst], t.h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && hitBetter(t.h[worst], t.h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}

// sorted drains the heap into best-first order.
func (t *topkHeap) sorted() Hits {
	out := t.h
	sort.Slice(out, func(a, b int) bool { return hitBetter(out[a], out[b]) })
	return out
}

// dedupeValues removes duplicate query values (the SQL IN list and
// COUNT(DISTINCT …) are insensitive to them; the epoch counters are not).
// Seekers built through the constructors are already distinct, so the
// common case allocates nothing beyond the small set map.
func dedupeValues(values []string) []string {
	seen := make(map[string]struct{}, len(values))
	dup := false
	for _, v := range values {
		if _, ok := seen[v]; ok {
			dup = true
			break
		}
		seen[v] = struct{}{}
	}
	if !dup {
		return values
	}
	out := make([]string, 0, len(seen))
	clear(seen)
	for _, v := range values {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// scanShardOverlap executes the overlap aggregation against one shard
// reader and returns its top-k hits (best first) plus the number of
// aggregation groups that passed the minOverlap threshold (the rows the
// equivalent SQL would have produced on this shard).
func scanShardOverlap(ctx context.Context, r storage.Reader, values []string,
	k, minOverlap int, perColumn bool, f *tableFilter, numTables int) (Hits, int, error) {

	sc := grabScratch(numTables)
	defer sc.release()

	for vi, v := range values {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		epoch := uint32(vi + 1)
		if perColumn {
			r.ScanPostings(v, func(tid, cid, rid int32) {
				if !f.admit(tid) {
					return
				}
				key := uint64(uint32(tid))<<32 | uint64(uint32(cid))
				g := sc.groups[key]
				if g.mark == epoch {
					return
				}
				g.mark = epoch
				g.count++
				sc.groups[key] = g
			})
		} else {
			r.ScanPostings(v, func(tid, cid, rid int32) {
				if !f.admit(tid) {
					return
				}
				sc.bump(tid, epoch)
			})
		}
	}

	groups := 0
	if perColumn {
		// Reduce (table, column) cells to the best column per table — the
		// application-level cut the SQL path performs with dedupeBest. The
		// HAVING threshold applies per group, but a table survives iff its
		// best group does, so thresholding the maximum is equivalent.
		for key, g := range sc.groups {
			if minOverlap > 0 && int(g.count) < minOverlap {
				continue
			}
			groups++
			tid := int32(key >> 32)
			if g.count > sc.count[tid] {
				if sc.count[tid] == 0 {
					sc.touched = append(sc.touched, tid)
				}
				sc.count[tid] = g.count
			}
		}
	}

	heap := topkHeap{k: k}
	for _, tid := range sc.touched {
		n := sc.count[tid]
		if !perColumn {
			if minOverlap > 0 && int(n) < minOverlap {
				continue
			}
			groups++
		}
		heap.offer(TableHit{TableID: tid, Score: float64(n)})
	}
	if !perColumn && k >= 0 && groups > k {
		// The equivalent KW SQL carries LIMIT k per shard; clamp the group
		// count so RunStats.SQLRows matches what that SQL would return.
		groups = k
	}
	return heap.sorted(), groups, nil
}

// runNativeOverlap executes the SC (perColumn) / KW seeker shape on the
// native fast path: every shard is scanned concurrently (bounded by the
// engine's shard semaphore), each producing a bounded top-k, and the
// partials are merged with the same (score desc, TableId asc) order the
// SQL path's topK applies — so both paths return identical results. The
// returned group count approximates RunStats.SQLRows: the rows the
// generated SQL would have returned.
func (v *view) runNativeOverlap(ctx context.Context, values []string,
	k, minOverlap int, perColumn bool, rw Rewrite) (Hits, int, error) {

	values = dedupeValues(values)
	f := compileFilter(rw)
	numTables := v.sn.store.NumTables()

	if len(v.sn.nativeViews) == 1 {
		hits, groups, err := scanShardOverlap(ctx, v.sn.nativeViews[0], values, k, minOverlap, perColumn, &f, numTables)
		if err != nil {
			return nil, 0, err
		}
		if hits == nil {
			hits = Hits{} // match the SQL path's empty-but-non-nil result
		}
		return topK(hits, k), groups, nil
	}

	partials, counts, err := fanOutShards(ctx, v, func(ctx context.Context, r storage.Reader) (Hits, int, error) {
		return scanShardOverlap(ctx, r, values, k, minOverlap, perColumn, &f, numTables)
	})
	if err != nil {
		return nil, 0, err
	}
	merged := Hits{}
	groups := 0
	for i, p := range partials {
		merged = append(merged, p...)
		groups += counts[i]
	}
	return topK(merged, k), groups, nil
}

// fanOutShards runs scan against every native shard view concurrently,
// each goroutine acquiring a slot of the engine's shard semaphore (or
// aborting if the context is canceled while waiting), and returns the
// per-shard partial hits and counters. Any shard error — cancellation
// included — fails the whole fan-out. Both native executors (overlap and
// MC) share this scaffolding so the semaphore/cancellation protocol lives
// in exactly one place.
func fanOutShards[C any](ctx context.Context, v *view,
	scan func(ctx context.Context, r storage.Reader) (Hits, C, error)) ([]Hits, []C, error) {

	shards := v.sn.nativeViews
	partials := make([]Hits, len(shards))
	counts := make([]C, len(shards))
	errs := make([]error, len(shards))
	panics := make([]any, len(shards))
	var wg sync.WaitGroup
	for i, r := range shards {
		wg.Add(1)
		go func(i int, r storage.Reader) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			if v.shardSem != nil {
				select {
				case v.shardSem <- struct{}{}:
					defer func() { <-v.shardSem }()
				case <-ctx.Done():
					errs[i] = ctx.Err()
					return
				}
			}
			partials[i], counts[i], errs[i] = scan(ctx, r)
		}(i, r)
	}
	wg.Wait()
	repanic(panics)
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return partials, counts, nil
}

// repanic re-raises the first panic captured on a worker goroutine.
// Lazily mapped shards report post-open integrity failures (a section
// checksum mismatch at first touch) by panicking with a typed bad_index
// error; re-raising on the calling goroutine preserves that contract
// while letting request-scoped recovery — net/http's per-request
// handler recover, a caller's own defer — contain the failure instead
// of an unrecovered worker-goroutine panic killing the process.
func repanic(panics []any) {
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
