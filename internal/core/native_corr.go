package core

import (
	"context"
	"sort"
	"sync"

	"blend/internal/storage"
)

// The native correlation executor answers the paper's correlation seeker
// (Listing 3 plus the QCR score of §VI) with no SQL: per shard, one posting
// scan per distinct key value collects the key-side entries of the sampled
// row prefix (RowId < h), and a single pass over each touched table's
// quadrant stream merge-joins numeric cells against those key hits on
// RowId — the (TableId, RowId) join of Listing 3 — accumulating agreement
// counts per (numeric column, key column) group. The QCR of each group is
// (2·agree − n)/n, computed with the exact float semantics of the minisql
// fallback, and per-shard bounded top-k heaps merge under the shared
// (score desc, TableId asc) order. It is the correlation counterpart of
// runNativeMC: same pooled scratch discipline, same shard fan-out under
// the engine's semaphore, and bit-identical results to the SQL path.

// corrHit is one key-side entry of the sampled prefix: a cell of table tid
// in row rid and column kcol whose value is a query key. mask records
// which quadrant partitions the value belongs to (bit 0: below-mean keys
// k0, bit 1: at-or-above-mean keys k1) — one key value can sit in both
// when its paired targets straddle the mean, and folding that into a
// bitmask keeps the scan visiting each distinct value once without
// double-counting join rows the way two separate scans would.
type corrHit struct {
	tid, rid, kcol int32
	mask           uint8
}

// corrGroup is one (nums.ColumnId, keys.ColumnId) aggregation cell of
// Listing 3's GROUP BY within a table: n joined pairs, agree of them with
// the key's partition matching the numeric cell's quadrant bit.
type corrGroup struct {
	n, agree int32
}

// corrScratch is the pooled per-shard scan state: the key-hit buffer
// (sorted once per scan, reused across scans) and the per-table group
// map (cleared between tables, buckets kept allocated).
type corrScratch struct {
	hits   []corrHit
	groups map[uint64]corrGroup
}

var corrPool = sync.Pool{New: func() any {
	return &corrScratch{groups: make(map[uint64]corrGroup)}
}}

func grabCorrScratch() *corrScratch { return corrPool.Get().(*corrScratch) }

func (sc *corrScratch) release() {
	sc.hits = sc.hits[:0]
	if len(sc.groups) > 0 {
		clear(sc.groups)
	}
	corrPool.Put(sc)
}

// scanShardCorr executes the correlation pipeline against one shard reader
// and returns its top-k hits (best first) plus the number of aggregation
// groups — the rows Listing 3 would have produced on this shard.
func scanShardCorr(ctx context.Context, r storage.Reader, vals []string,
	masks []uint8, h int32, k int, f *tableFilter) (Hits, int, error) {

	sc := grabCorrScratch()
	defer sc.release()

	// Phase 1: one posting scan per distinct key value collects the
	// key-side entries of the sampled prefix, rewrite-filtered exactly
	// like the keys subquery of the generated SQL.
	for vi, v := range vals {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		mask := masks[vi]
		r.ScanPostings(v, func(tid, cid, rid int32) {
			if rid >= h || !f.admit(tid) {
				return
			}
			sc.hits = append(sc.hits, corrHit{tid: tid, rid: rid, kcol: cid, mask: mask})
		})
	}
	if len(sc.hits) == 0 {
		return nil, 0, nil
	}

	// Phase 2: group the hits by table, rows ascending within each table,
	// so every table is joined in one ordered pass.
	hits := sc.hits
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].tid != hits[b].tid {
			return hits[a].tid < hits[b].tid
		}
		return hits[a].rid < hits[b].rid
	})

	// Phase 3: per table, merge-join the quadrant stream (numeric cells of
	// RowId < h, ascending by row) against the table's key hits on RowId.
	// Both sides are sorted, so the join advances a cursor instead of
	// building a hash table; a (numeric, key) pair joins unless it is the
	// same column on both sides (keys.ColumnId <> nums.ColumnId).
	heap := topkHeap{k: k}
	groups := 0
	for lo := 0; lo < len(hits); {
		tid := hits[lo].tid
		hi := lo + 1
		for hi < len(hits) && hits[hi].tid == tid {
			hi++
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		p := lo
		r.ScanTableNumeric(tid, h, func(ncol, rid int32, q int8) {
			for p < hi && hits[p].rid < rid {
				p++
			}
			for j := p; j < hi && hits[j].rid == rid; j++ {
				if hits[j].kcol == ncol {
					continue
				}
				key := uint64(uint32(ncol))<<32 | uint64(uint32(hits[j].kcol))
				g := sc.groups[key]
				g.n++
				g.agree += int32(hits[j].mask>>uint8(q)) & 1
				sc.groups[key] = g
			}
		})
		if len(sc.groups) > 0 {
			best := 0.0
			for _, g := range sc.groups {
				// The minisql fallback computes (2·SUM − COUNT) in integer
				// space and divides as float; reproducing the operation
				// order keeps the scores bit-identical across paths.
				score := float64(2*int64(g.agree)-int64(g.n)) / float64(g.n)
				if score < 0 {
					score = -score
				}
				if score > best {
					best = score
				}
			}
			groups += len(sc.groups)
			heap.offer(TableHit{TableID: tid, Score: best})
			clear(sc.groups)
		}
		lo = hi
	}
	return heap.sorted(), groups, nil
}

// runNativeCorrelation executes the correlation seeker on the native fast
// path: every shard is scanned concurrently (bounded by the engine's shard
// semaphore), each producing a bounded top-k plus its group count, and the
// partials merge with the deterministic (score desc, TableId asc) order of
// the SQL path. Tables never span shards, so per-shard groups — and the
// summed SQLRows — partition exactly.
//
// k0 and k1 are the seeker's quadrant-partitioned key lists (split());
// they fold into one distinct value list with a per-value partition
// bitmask so each posting list is scanned exactly once.
func (v *view) runNativeCorrelation(ctx context.Context, k0, k1 []string,
	k int, h int32, rw Rewrite) (Hits, int, error) {

	vals := make([]string, 0, len(k0)+len(k1))
	masks := make([]uint8, 0, len(k0)+len(k1))
	idx := make(map[string]int, len(k0)+len(k1))
	for _, key := range k0 {
		idx[key] = len(vals)
		vals = append(vals, key)
		masks = append(masks, 1)
	}
	for _, key := range k1 {
		if i, ok := idx[key]; ok {
			masks[i] |= 2
			continue
		}
		idx[key] = len(vals)
		vals = append(vals, key)
		masks = append(masks, 2)
	}
	f := compileFilter(rw)

	if len(v.sn.nativeViews) == 1 {
		hits, groups, err := scanShardCorr(ctx, v.sn.nativeViews[0], vals, masks, h, k, &f)
		if err != nil {
			return nil, 0, err
		}
		if hits == nil {
			hits = Hits{} // match the SQL path's empty-but-non-nil result
		}
		return topK(hits, k), groups, nil
	}

	partials, counts, err := fanOutShards(ctx, v, func(ctx context.Context, r storage.Reader) (Hits, int, error) {
		return scanShardCorr(ctx, r, vals, masks, h, k, &f)
	})
	if err != nil {
		return nil, 0, err
	}
	merged := Hits{}
	groups := 0
	for i, p := range partials {
		merged = append(merged, p...)
		groups += counts[i]
	}
	return topK(merged, k), groups, nil
}
