package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"blend/internal/datalake"
	"blend/internal/storage"
	"blend/internal/table"
)

// buildCorrTestEngines indexes numeric-bearing tables under one config and
// returns a native-path engine and a SQL-path engine over the same store,
// both sampling the same h.
func buildCorrTestEngines(layout storage.Layout, shards, sampleH int, tables []*table.Table) (native, sql *Engine) {
	var idx storage.Index
	if shards > 1 {
		idx = storage.BuildSharded(layout, tables, shards)
	} else {
		idx = storage.Build(layout, tables)
	}
	native = NewEngine(idx)
	native.SampleH = sampleH
	sql = NewEngine(idx)
	sql.NoNativeExec = true
	sql.SampleH = sampleH
	return native, sql
}

// TestNativeCorrSQLEquivalence is the correlation fast-path property test:
// for generated correlation lakes, random (key, target) queries, random k,
// sample sizes, and optimizer rewrites, across layouts and shard counts,
// the native executor and the minisql interpreter must return identical
// top-k lists — same ids, same QCR scores (bit-identical floats), same
// order — and identical SQLRows group counts.
func TestNativeCorrSQLEquivalence(t *testing.T) {
	bench := datalake.GenCorrBenchmark(datalake.CorrConfig{
		Name: "ceq", NumTables: 14, Rows: 60, CorrelatedShare: 0.5,
		Queries: 6, Seed: 17,
	})
	rng := rand.New(rand.NewSource(31))
	sampleHs := []int{4, 16, 64, 256}
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			for _, h := range sampleHs {
				native, sql := buildCorrTestEngines(cfg.layout, cfg.shards, h, bench.Tables)
				numTables := int32(native.Store().NumTables())
				for qi, q := range bench.Queries {
					keys := append([]string(nil), q.Keys...)
					targets := append([]float64(nil), q.Targets...)
					if n := 4 + rng.Intn(len(keys)-4); rng.Intn(2) == 0 {
						keys, targets = keys[:n], targets[:n]
					}
					if rng.Intn(2) == 0 {
						// Duplicate a key on both sides of the target mean, so
						// the value belongs to k0 AND k1 — the case where a
						// naive two-scan native plan double-counts join rows.
						keys = append(keys, keys[0], keys[0])
						targets = append(targets, -1e9, 1e9)
					}
					k := 1 + rng.Intn(10)
					rw := NoRewrite
					switch rng.Intn(3) {
					case 1:
						rw = IncludeTables(randomTableIDs(rng, numTables))
					case 2:
						rw = ExcludeTables(randomTableIDs(rng, numTables))
					}
					label := fmt.Sprintf("c h=%d q=%d k=%d rw=%d", h, qi, k, rw.mode)
					runBoth(t, native, sql, NewCorrelation(keys, targets, k), rw, label)

					nst := statsFor(t, native, NewCorrelation(keys, targets, k), rw)
					sst := statsFor(t, sql, NewCorrelation(keys, targets, k), rw)
					if nst.SQLRows != sst.SQLRows {
						t.Fatalf("%s: SQLRows disagree: native %d sql %d", label, nst.SQLRows, sst.SQLRows)
					}
				}
			}
		})
	}
}

// statsFor runs a seeker and returns its RunStats.
func statsFor(t *testing.T, e *Engine, s Seeker, rw Rewrite) RunStats {
	t.Helper()
	_, stats, err := runDirect(context.Background(), e, s, rw)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestNativeCorrEmptyAndDegenerate pins the edge cases: no keys
// short-circuits before path selection, all-empty keys degenerate
// identically on both paths, and a key vocabulary absent from the lake
// returns the SQL path's empty-but-non-nil hits.
func TestNativeCorrEmptyAndDegenerate(t *testing.T) {
	bench := datalake.GenCorrBenchmark(datalake.CorrConfig{
		Name: "cdeg", NumTables: 4, Rows: 20, CorrelatedShare: 0.5,
		Queries: 1, Seed: 3,
	})
	native, sql := buildCorrTestEngines(storage.ColumnStore, 1, 256, bench.Tables)
	ctx := context.Background()

	for _, tc := range []struct {
		name    string
		keys    []string
		targets []float64
	}{
		{"all-empty-keys", []string{"", "", ""}, []float64{1, 2, 3}},
		{"absent-vocab", []string{"no_such_a", "no_such_b"}, []float64{1, 2}},
	} {
		s := NewCorrelation(tc.keys, tc.targets, 5)
		nh, _, err := runDirect(ctx, native, s, NoRewrite)
		if err != nil {
			t.Fatalf("%s: native: %v", tc.name, err)
		}
		sh, _, err := runDirect(ctx, sql, s, NoRewrite)
		if err != nil {
			t.Fatalf("%s: sql: %v", tc.name, err)
		}
		if !reflect.DeepEqual(nh, sh) {
			t.Fatalf("%s: paths disagree: native %v sql %v", tc.name, nh, sh)
		}
	}

	s := NewCorrelation(nil, nil, 5)
	hits, stats, err := runDirect(ctx, native, s, NoRewrite)
	if err != nil || hits != nil {
		t.Fatalf("no-keys run = (%v, %v), want (nil, nil)", hits, err)
	}
	if stats.SQLRows != 0 {
		t.Fatalf("no-keys SQLRows = %d", stats.SQLRows)
	}

	// A canceled context fails the native fan-out promptly.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	q := bench.Queries[0]
	if _, _, err := runDirect(cctx, native, NewCorrelation(q.Keys, q.Targets, 5), NoRewrite); err == nil {
		t.Fatal("expected cancellation error from native correlation path")
	}
}

// TestNativeCorrEquivalenceAfterRemoveCompact extends the correlation
// differential test across the table lifecycle: both paths must agree
// after RemoveTable (tombstoned tables join nothing) and after Compact
// (renumbered id space).
func TestNativeCorrEquivalenceAfterRemoveCompact(t *testing.T) {
	bench := datalake.GenCorrBenchmark(datalake.CorrConfig{
		Name: "crm", NumTables: 12, Rows: 40, CorrelatedShare: 0.5,
		Queries: 4, Seed: 29,
	})
	rng := rand.New(rand.NewSource(77))
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			native, sql := buildCorrTestEngines(cfg.layout, cfg.shards, 64, bench.Tables)
			check := func(stage string) {
				for qi, q := range bench.Queries {
					k := 1 + rng.Intn(8)
					runBoth(t, native, sql, NewCorrelation(q.Keys, q.Targets, k),
						NoRewrite, fmt.Sprintf("%s q=%d", stage, qi))
				}
			}
			check("pre-remove")
			for _, e := range []*Engine{native, sql} {
				for _, tid := range []int32{1, 6} {
					if err := e.RemoveTable(tid); err != nil {
						t.Fatal(err)
					}
				}
			}
			check("post-remove")
			for _, e := range []*Engine{native, sql} {
				if got := e.Compact(); got != 2 {
					t.Fatalf("Compact = %d, want 2", got)
				}
			}
			check("post-compact")
		})
	}
}
