package core

import (
	"context"
	"sync"

	"blend/internal/storage"
	"blend/internal/xash"
)

// The native MC executor answers the paper's multi-column seeker (Listing 2
// plus XASH filtering and exact validation, §VI) with no SQL: per-shard
// posting scans build the candidate-row set of the per-column index-hit
// join, each candidate's XASH super key prunes non-covering rows in-stream,
// exact tuple validation runs against rows reconstructed from that shard,
// and the per-shard bounded top-k heaps merge under the shared
// (score desc, TableId asc) order. It is the MC counterpart of
// runNativeOverlap: same pooled scratch discipline (epoch-marked progress
// per candidate instead of per table), same shard fan-out under the
// engine's semaphore, and bit-identical results to the SQL fallback —
// including the RunStats funnel (SQLRows, Candidates, Validated).

// mcCand tracks one candidate row (TableId, RowId) through the per-column
// join. col is the epoch mark: the index of the last query column that
// matched the row. A row whose col falls behind the scan's current column
// missed a join leg and is dead; it is skipped, never deleted, so the
// pooled map is written once per surviving leg.
type mcCand struct {
	super xash.Key
	prod  int64 // join-row multiplicity of columns 0..col-1
	col   int32 // epoch: last query column with a match
	cnt   int32 // matches within column col
}

// mcScratch is the pooled per-shard scan state: the candidate map, the
// cell set reused across row validations, and the contained-tuple index
// buffer. clear() keeps the map buckets allocated across scans, the same
// amortization the overlap scratch applies to its group map.
type mcScratch struct {
	cands  map[uint64]mcCand
	cells  map[string]struct{}
	tupIdx []int
}

var mcPool = sync.Pool{New: func() any {
	return &mcScratch{
		cands: make(map[uint64]mcCand),
		cells: make(map[string]struct{}),
	}
}}

func grabMCScratch() *mcScratch { return mcPool.Get().(*mcScratch) }

func (sc *mcScratch) release() {
	if len(sc.cands) > 0 {
		clear(sc.cands)
	}
	if len(sc.cells) > 0 {
		clear(sc.cells)
	}
	sc.tupIdx = sc.tupIdx[:0]
	mcPool.Put(sc)
}

// mcCounters is the MC validation funnel both execution paths report
// identically: the rows Listing 2's join would return, the rows surviving
// the XASH filter, and the rows surviving exact validation.
type mcCounters struct {
	sqlRows    int
	candidates int
	validated  int
}

// rowKey64 packs a (TableId, RowId) pair into one map key.
func rowKey64(tid, rid int32) uint64 {
	return uint64(uint32(tid))<<32 | uint64(uint32(rid))
}

// scanShardMC executes the MC pipeline against one shard reader and
// returns its top-k hits (best first) plus the funnel counters.
//
// Column 0 seeds the candidate set (the optimizer's rewrite predicate
// lands here, exactly like the first subquery of the generated SQL bounds
// every join result); each later column advances only candidates whose
// epoch reached the previous column. The per-column match counts multiply
// into the join-row multiplicity, so sqlRows equals the row count of the
// SQL join without materializing it.
func scanShardMC(ctx context.Context, r storage.Reader, cols [][]string,
	tuples [][]string, tupleKeys []xash.Key, k int, f *tableFilter) (Hits, mcCounters, error) {

	var c mcCounters
	sc := grabMCScratch()
	defer sc.release()

	for _, v := range cols[0] {
		if err := ctx.Err(); err != nil {
			return nil, c, err
		}
		r.ScanPostingsSuper(v, func(tid, cid, rid int32, super xash.Key) {
			if !f.admit(tid) {
				return
			}
			key := rowKey64(tid, rid)
			cand, ok := sc.cands[key]
			if !ok {
				sc.cands[key] = mcCand{super: super, prod: 1, cnt: 1}
				return
			}
			if cand.col == 0 {
				cand.cnt++
				sc.cands[key] = cand
			}
		})
	}
	for i := 1; i < len(cols); i++ {
		epoch := int32(i)
		for _, v := range cols[i] {
			if err := ctx.Err(); err != nil {
				return nil, c, err
			}
			r.ScanPostings(v, func(tid, cid, rid int32) {
				key := rowKey64(tid, rid)
				cand, ok := sc.cands[key]
				if !ok {
					return
				}
				switch cand.col {
				case epoch - 1:
					cand.prod *= int64(cand.cnt)
					cand.col = epoch
					cand.cnt = 1
				case epoch:
					cand.cnt++
				default:
					return
				}
				sc.cands[key] = cand
			})
		}
	}

	last := int32(len(cols) - 1)
	matched := make(map[int32]int32)
	checked := 0
	for key, cand := range sc.cands {
		if cand.col != last {
			continue
		}
		c.sqlRows += int(cand.prod) * int(cand.cnt)

		// XASH bloom filter: some query tuple must be fully covered by the
		// row's super key. Recall is exact (Contains never rejects a truly
		// contained tuple), so the filter only trims validation work.
		sc.tupIdx = sc.tupIdx[:0]
		for ti, tk := range tupleKeys {
			if cand.super.Contains(tk) {
				sc.tupIdx = append(sc.tupIdx, ti)
			}
		}
		if len(sc.tupIdx) == 0 {
			continue
		}
		c.candidates++
		if checked++; checked&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, c, err
			}
		}

		// Exact validation: every value of some surviving tuple must occur
		// in the reconstructed candidate row.
		tid, rid := int32(key>>32), int32(uint32(key))
		if len(sc.cells) > 0 {
			clear(sc.cells)
		}
		for _, cell := range r.ReconstructRow(tid, rid) {
			if cell != "" {
				sc.cells[cell] = struct{}{}
			}
		}
		valid := false
		for _, ti := range sc.tupIdx {
			all := true
			for _, v := range tuples[ti] {
				if v == "" {
					continue
				}
				if _, ok := sc.cells[v]; !ok {
					all = false
					break
				}
			}
			if all {
				valid = true
				break
			}
		}
		if valid {
			c.validated++
			matched[tid]++
		}
	}

	heap := topkHeap{k: k}
	for tid, n := range matched {
		heap.offer(TableHit{TableID: tid, Score: float64(n)})
	}
	return heap.sorted(), c, nil
}

// runNativeMC executes the MC seeker on the native fast path: every shard
// is scanned concurrently (bounded by the engine's shard semaphore), each
// producing a bounded top-k and its slice of the validation funnel, and
// the partials merge with the deterministic (score desc, TableId asc)
// order of the SQL path. Tables never span shards, so per-shard candidate
// rows — and therefore the summed counters — partition exactly.
func (v *view) runNativeMC(ctx context.Context, s *MCSeeker, rw Rewrite) (Hits, mcCounters, error) {
	x := s.width()
	cols := make([][]string, x)
	for i := range cols {
		cols[i] = s.columnValues(i)
		if len(cols[i]) == 0 {
			// A column with no non-empty values renders as `IN ()`, which
			// matches nothing: the join is empty on both paths.
			return Hits{}, mcCounters{}, nil
		}
	}
	tupleKeys := make([]xash.Key, len(s.Tuples))
	for i, t := range s.Tuples {
		tupleKeys[i] = xash.HashRow(t)
	}
	f := compileFilter(rw)

	if len(v.sn.nativeViews) == 1 {
		hits, c, err := scanShardMC(ctx, v.sn.nativeViews[0], cols, s.Tuples, tupleKeys, s.K, &f)
		if err != nil {
			return nil, c, err
		}
		if hits == nil {
			hits = Hits{} // match the SQL path's empty-but-non-nil result
		}
		return topK(hits, s.K), c, nil
	}

	partials, counts, err := fanOutShards(ctx, v, func(ctx context.Context, r storage.Reader) (Hits, mcCounters, error) {
		return scanShardMC(ctx, r, cols, s.Tuples, tupleKeys, s.K, &f)
	})
	var c mcCounters
	if err != nil {
		return nil, c, err
	}
	merged := Hits{}
	for i, p := range partials {
		merged = append(merged, p...)
		c.sqlRows += counts[i].sqlRows
		c.candidates += counts[i].candidates
		c.validated += counts[i].validated
	}
	return topK(merged, s.K), c, nil
}
