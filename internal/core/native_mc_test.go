package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"blend/internal/datalake"
	"blend/internal/storage"
)

// runBothMC executes one MC seeker on both engines and asserts identical
// hits, path attribution, and — unlike the generic runBoth — parity of the
// full validation funnel: SQLRows (the rows Listing 2's join produces),
// Candidates (rows surviving the XASH filter), and Validated (rows
// surviving exact validation) must match between the native executor and
// the SQL interpreter.
func runBothMC(t *testing.T, native, sql *Engine, s *MCSeeker, rw Rewrite, label string) Hits {
	t.Helper()
	ctx := context.Background()
	nh, nst, err := runDirect(ctx, native, s, rw)
	if err != nil {
		t.Fatalf("%s: native run: %v", label, err)
	}
	sh, sst, err := runDirect(ctx, sql, s, rw)
	if err != nil {
		t.Fatalf("%s: sql run: %v", label, err)
	}
	if nst.Path != PathNative {
		t.Fatalf("%s: native engine reported path %q", label, nst.Path)
	}
	if sst.Path != PathSQL {
		t.Fatalf("%s: sql engine reported path %q", label, sst.Path)
	}
	if !reflect.DeepEqual(nh, sh) {
		t.Fatalf("%s: paths disagree\n native: %v\n    sql: %v", label, nh, sh)
	}
	if nst.SQLRows != sst.SQLRows {
		t.Fatalf("%s: SQLRows %d (native) vs %d (sql)", label, nst.SQLRows, sst.SQLRows)
	}
	if nst.Candidates != sst.Candidates {
		t.Fatalf("%s: Candidates %d (native) vs %d (sql)", label, nst.Candidates, sst.Candidates)
	}
	if nst.Validated != sst.Validated {
		t.Fatalf("%s: Validated %d (native) vs %d (sql)", label, nst.Validated, sst.Validated)
	}
	return nh
}

// mcQueryTuples draws a mixed MC input: planted rows from a real lake
// table (guaranteed hits) plus noise tuples assembled from the vocabulary
// (mostly XASH-prunable misses), so every stage of the funnel is
// exercised.
func mcQueryTuples(rng *rand.Rand, lake *datalake.JoinLake, n, width int) [][]string {
	tuples, _ := lake.QueryTuples(n, width)
	noise := 1 + rng.Intn(3)
	for i := 0; i < noise; i++ {
		row := make([]string, width)
		for c := range row {
			row[c] = lake.Vocab[rng.Intn(len(lake.Vocab))]
		}
		tuples = append(tuples, row)
	}
	return tuples
}

// TestNativeMCSQLEquivalence is the multi-column fast-path property test:
// for random lakes, random tuple sets of varying width, random k, with and
// without optimizer rewrites, across layouts and shard counts, the native
// MC executor and the SQL interpreter must return identical top-k lists
// and identical funnel counters.
func TestNativeMCSQLEquivalence(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "mceq", NumTables: 20, ColsPerTable: 4, RowsPerTable: 30,
		VocabSize: 150, Seed: 17,
	})
	rng := rand.New(rand.NewSource(171))
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			native, sql := buildNativeTestEngines(cfg.layout, cfg.shards, lake)
			numTables := int32(native.Store().NumTables())
			for trial := 0; trial < 20; trial++ {
				width := 1 + rng.Intn(4)
				tuples := mcQueryTuples(rng, lake, 1+rng.Intn(6), width)
				k := 1 + rng.Intn(12)
				rw := NoRewrite
				switch rng.Intn(3) {
				case 1:
					rw = IncludeTables(randomTableIDs(rng, numTables))
				case 2:
					rw = ExcludeTables(randomTableIDs(rng, numTables))
				}
				label := fmt.Sprintf("trial %d (tuples=%d width=%d k=%d rw=%d)",
					trial, len(tuples), width, k, rw.mode)
				runBothMC(t, native, sql, NewMC(tuples, k), rw, label)
			}
		})
	}
}

// TestNativeMCEquivalenceAfterRemoveCompact extends the MC property test
// across the table lifecycle: both paths must agree over tombstoned stores
// (the removed tables invisible to posting scans and SQL alike) and again
// over the renumbered id space after Compact.
func TestNativeMCEquivalenceAfterRemoveCompact(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "mcrm", NumTables: 16, ColsPerTable: 3, RowsPerTable: 25,
		VocabSize: 120, Seed: 29,
	})
	rng := rand.New(rand.NewSource(291))
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			native, sql := buildNativeTestEngines(cfg.layout, cfg.shards, lake)
			check := func(stage string) {
				for trial := 0; trial < 5; trial++ {
					width := 1 + rng.Intn(3)
					tuples := mcQueryTuples(rng, lake, 1+rng.Intn(5), width)
					label := fmt.Sprintf("%s trial %d", stage, trial)
					runBothMC(t, native, sql, NewMC(tuples, 1+rng.Intn(10)), NoRewrite, label)
				}
			}
			check("pre-remove")
			// Copy-on-write generations: each engine must apply the
			// mutation to its own lineage.
			for _, e := range []*Engine{native, sql} {
				for _, tid := range []int32{3, 9} {
					if err := e.RemoveTable(tid); err != nil {
						t.Fatal(err)
					}
				}
			}
			check("post-remove")
			for _, e := range []*Engine{native, sql} {
				if got := e.Compact(); got != 2 {
					t.Fatalf("Compact = %d, want 2", got)
				}
			}
			check("post-compact")
		})
	}
}

// TestNativeMCDeterministicTies asserts the tie-break contract on the MC
// path: cloned tables validate the same row counts, so their scores tie
// and must order by ascending TableId, identically across repeated runs
// and across both paths.
func TestNativeMCDeterministicTies(t *testing.T) {
	lakeTables := fig1Lake()
	for i := 0; i < 3; i++ {
		c := lakeTables[1].Clone()
		c.Name = fmt.Sprintf("McTie%d", i)
		lakeTables = append(lakeTables, c)
	}
	tuples := [][]string{{"HR", "Firenze"}, {"IT", "Tom Riddle"}}
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			var idx storage.Index
			if cfg.shards > 1 {
				idx = storage.BuildSharded(cfg.layout, lakeTables, cfg.shards)
			} else {
				idx = storage.Build(cfg.layout, lakeTables)
			}
			native := NewEngine(idx)
			sql := NewEngine(idx)
			sql.NoNativeExec = true
			s := NewMC(tuples, 6)
			first, _, err := native.RunSeeker(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				again, _, err := native.RunSeeker(context.Background(), s)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("native run %d differs: %v vs %v", i, again, first)
				}
				viaSQL, _, err := sql.RunSeeker(context.Background(), s)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, viaSQL) {
					t.Fatalf("sql run %d differs: %v vs %v", i, viaSQL, first)
				}
			}
			for i := 1; i < len(first); i++ {
				prev, cur := first[i-1], first[i]
				if prev.Score == cur.Score && prev.TableID >= cur.TableID {
					t.Fatalf("tie not broken by ascending TableId: %v", first)
				}
			}
		})
	}
}

// TestNativeMCEdgeShapes pins degenerate inputs both paths must agree on:
// single-column tuples, tuples containing empty values, ragged tuple
// widths, and a column whose values are all empty (the SQL renders
// `IN ()`, which matches nothing).
func TestNativeMCEdgeShapes(t *testing.T) {
	lakeTables := fig1Lake()
	native := NewEngine(storage.Build(storage.ColumnStore, lakeTables))
	sql := NewEngine(storage.Build(storage.ColumnStore, lakeTables))
	sql.NoNativeExec = true
	cases := []struct {
		name   string
		tuples [][]string
	}{
		{"width-1", [][]string{{"HR"}, {"IT"}}},
		{"empty-value-in-tuple", [][]string{{"HR", ""}, {"IT", "Tom Riddle"}}},
		{"ragged", [][]string{{"HR", "Firenze"}, {"IT"}}},
		{"duplicate-tuples", [][]string{{"HR", "Firenze"}, {"HR", "Firenze"}}},
		{"no-match", [][]string{{"nonexistent-a", "nonexistent-b"}}},
	}
	for _, tc := range cases {
		runBothMC(t, native, sql, NewMC(tc.tuples, 10), NoRewrite, tc.name)
	}
	// All-empty column: the native path must return the SQL path's empty
	// result without scanning.
	s := NewMC([][]string{{"", "Firenze"}}, 10)
	nh, _, err := runDirect(context.Background(), native, s, NoRewrite)
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := runDirect(context.Background(), sql, s, NoRewrite)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nh, sh) {
		t.Fatalf("all-empty column: native %v vs sql %v", nh, sh)
	}
}

// TestNativeMCCachePathPreserved asserts cache-key compatibility between
// the executors: the result cache keys MC seekers by fingerprint, not by
// path, so an entry produced by the native executor is served regardless
// of the engine's current path configuration — with the original path
// preserved in the stats.
func TestNativeMCCachePathPreserved(t *testing.T) {
	lakeTables := fig1Lake()
	e := NewEngine(storage.Build(storage.ColumnStore, lakeTables))
	e.SetResultCache(16)
	s := NewMC([][]string{{"HR", "Firenze"}}, 10)
	first, st1, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Path != PathNative || st1.CacheHit {
		t.Fatalf("first run: path=%q cacheHit=%v", st1.Path, st1.CacheHit)
	}
	// Force the SQL fallback: the cached native entry must still serve.
	e.NoNativeExec = true
	again, st2, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("second run missed the cache")
	}
	if st2.Path != PathNative {
		t.Fatalf("cached path = %q, want %q", st2.Path, PathNative)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("cached hits differ: %v vs %v", again, first)
	}
}

// TestNativeMCCanceledContext asserts the MC fast path honors
// cancellation.
func TestNativeMCCanceledContext(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "mccancel", NumTables: 6, ColsPerTable: 3, RowsPerTable: 20,
		VocabSize: 60, Seed: 31,
	})
	native, _ := buildNativeTestEngines(storage.ColumnStore, 4, lake)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tuples, _ := lake.QueryTuples(3, 2)
	s := NewMC(tuples, 5)
	if _, _, err := runDirect(ctx, native, s, NoRewrite); err == nil {
		t.Fatal("expected cancellation error from native MC path")
	}
}

// TestNativeMCPlanExplainPath runs an optimized plan containing an MC node
// on both engines and checks the explain attribution: the MC node must
// report path=native on the fast-path engine and path=sql on the fallback.
func TestNativeMCPlanExplainPath(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "mcplan", NumTables: 12, ColsPerTable: 3, RowsPerTable: 25,
		VocabSize: 100, Seed: 37,
	})
	native, sql := buildNativeTestEngines(storage.ColumnStore, 4, lake)
	tuples, _ := lake.QueryTuples(3, 2)
	p := NewPlan()
	p.MustAddSeeker("mc", NewMC(tuples, 8))
	p.MustAddSeeker("kw", NewKW(lake.QueryColumn(8), 8))
	p.MustAddCombiner("out", NewUnion(8), "mc", "kw")

	opts := RunOptions{Optimize: true, Explain: true}
	nres, err := native.Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sql.Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := range nres.NodeHits {
		if !reflect.DeepEqual(nres.NodeHits[id], sres.NodeHits[id]) {
			t.Fatalf("node %q differs: %v vs %v", id, nres.NodeHits[id], sres.NodeHits[id])
		}
	}
	if nres.PathByNode["mc"] != PathNative {
		t.Fatalf("native engine: PathByNode[mc] = %q", nres.PathByNode["mc"])
	}
	if sres.PathByNode["mc"] != PathSQL {
		t.Fatalf("sql engine: PathByNode[mc] = %q", sres.PathByNode["mc"])
	}
}
