package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"blend/internal/datalake"
	"blend/internal/storage"
)

// nativeTestConfigs enumerates the physical organisations both execution
// paths must agree across.
var nativeTestConfigs = []struct {
	name   string
	layout storage.Layout
	shards int
}{
	{"column", storage.ColumnStore, 1},
	{"row", storage.RowStore, 1},
	{"column-sharded", storage.ColumnStore, 4},
	{"row-sharded", storage.RowStore, 4},
}

// buildNativeTestEngines indexes the lake under one config and returns a
// native-path engine and a SQL-path engine over the same store.
func buildNativeTestEngines(layout storage.Layout, shards int, lake *datalake.JoinLake) (native, sql *Engine) {
	var idx storage.Index
	if shards > 1 {
		idx = storage.BuildSharded(layout, lake.Tables, shards)
	} else {
		idx = storage.Build(layout, lake.Tables)
	}
	native = NewEngine(idx)
	sql = NewEngine(idx)
	sql.NoNativeExec = true
	return native, sql
}

// runBoth executes one seeker with the same rewrite on both engines and
// asserts byte-identical results and correct path attribution.
func runBoth(t *testing.T, native, sql *Engine, s Seeker, rw Rewrite, label string) Hits {
	t.Helper()
	ctx := context.Background()
	nh, nst, err := runDirect(ctx, native, s, rw)
	if err != nil {
		t.Fatalf("%s: native run: %v", label, err)
	}
	sh, sst, err := runDirect(ctx, sql, s, rw)
	if err != nil {
		t.Fatalf("%s: sql run: %v", label, err)
	}
	if len(nh) != 0 || len(sh) != 0 { // empty inputs short-circuit before path selection
		if nst.Path != PathNative {
			t.Fatalf("%s: native engine reported path %q", label, nst.Path)
		}
		if sst.Path != PathSQL {
			t.Fatalf("%s: sql engine reported path %q", label, sst.Path)
		}
	}
	if !reflect.DeepEqual(nh, sh) {
		t.Fatalf("%s: paths disagree\n native: %v\n    sql: %v", label, nh, sh)
	}
	return nh
}

// TestNativeSQLEquivalence is the fast-path property test: for random
// lakes, random query columns, random k, with and without MinOverlap
// thresholds and optimizer rewrites, across layouts and shard counts, the
// native posting-list executor and the minisql interpreter must return
// identical top-k lists — same ids, same scores, same order.
func TestNativeSQLEquivalence(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "eq", NumTables: 24, ColsPerTable: 3, RowsPerTable: 40,
		VocabSize: 300, Seed: 7,
	})
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			native, sql := buildNativeTestEngines(cfg.layout, cfg.shards, lake)
			numTables := int32(native.Store().NumTables())
			for trial := 0; trial < 25; trial++ {
				values := lake.QueryColumn(1 + rng.Intn(40))
				k := 1 + rng.Intn(15)
				minOverlap := 0
				if rng.Intn(3) == 0 {
					minOverlap = 1 + rng.Intn(4)
				}
				rw := NoRewrite
				switch rng.Intn(3) {
				case 1:
					ids := randomTableIDs(rng, numTables)
					rw = IncludeTables(ids)
				case 2:
					ids := randomTableIDs(rng, numTables)
					rw = ExcludeTables(ids)
				}
				label := fmt.Sprintf("trial %d (|q|=%d k=%d min=%d rw=%d)",
					trial, len(values), k, minOverlap, rw.mode)

				sc := &SCSeeker{Values: values, K: k, MinOverlap: minOverlap}
				runBoth(t, native, sql, sc, rw, "sc "+label)
				kw := &KWSeeker{Keywords: values, K: k, MinOverlap: minOverlap}
				runBoth(t, native, sql, kw, rw, "kw "+label)
			}
		})
	}
}

func randomTableIDs(rng *rand.Rand, numTables int32) []int32 {
	n := 1 + rng.Intn(8)
	ids := make([]int32, 0, n)
	seen := make(map[int32]struct{}, n)
	for len(ids) < n {
		id := int32(rng.Intn(int(numTables)))
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		ids = append(ids, id)
	}
	return ids
}

// TestNativeDeterministicTies asserts the tie-break contract of both
// paths: equal overlap scores order by ascending TableId, so repeated runs
// return identical lists. The lake holds identical tables, so every score
// ties.
func TestNativeDeterministicTies(t *testing.T) {
	lakeTables := fig1Lake()
	// Clone T2 under other names so several tables tie exactly.
	for i := 0; i < 3; i++ {
		c := lakeTables[1].Clone()
		c.Name = fmt.Sprintf("Tie%d", i)
		lakeTables = append(lakeTables, c)
	}
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			var idx storage.Index
			if cfg.shards > 1 {
				idx = storage.BuildSharded(cfg.layout, lakeTables, cfg.shards)
			} else {
				idx = storage.Build(cfg.layout, lakeTables)
			}
			native := NewEngine(idx)
			sql := NewEngine(idx)
			sql.NoNativeExec = true
			s := NewKW([]string{"IT", "Marketing", "HR"}, 4)
			first, _, err := native.RunSeeker(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				again, _, err := native.RunSeeker(context.Background(), s)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("native run %d differs: %v vs %v", i, again, first)
				}
				viaSQL, _, err := sql.RunSeeker(context.Background(), s)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, viaSQL) {
					t.Fatalf("sql run %d differs: %v vs %v", i, viaSQL, first)
				}
			}
			for i := 1; i < len(first); i++ {
				prev, cur := first[i-1], first[i]
				if prev.Score == cur.Score && prev.TableID >= cur.TableID {
					t.Fatalf("tie not broken by ascending TableId: %v", first)
				}
			}
		})
	}
}

// TestNativePlanEquivalence runs a full optimized plan — execution groups,
// Difference rewrites, combiners — on both paths and compares every node's
// result, and checks PathByNode explain attribution.
func TestNativePlanEquivalence(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "plan", NumTables: 16, ColsPerTable: 3, RowsPerTable: 30,
		VocabSize: 120, Seed: 11,
	})
	native, sql := buildNativeTestEngines(storage.ColumnStore, 4, lake)
	p := NewPlan()
	p.MustAddSeeker("a", NewSC(lake.QueryColumn(12), 8))
	p.MustAddSeeker("b", NewKW(lake.QueryColumn(10), 8))
	p.MustAddSeeker("c", NewKW(lake.QueryColumn(6), 8))
	p.MustAddCombiner("both", NewIntersect(8), "a", "b")
	p.MustAddCombiner("out", NewDifference(8), "both", "c")

	opts := RunOptions{Optimize: true, Explain: true}
	nres, err := native.Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sql.Run(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := range nres.NodeHits {
		if !reflect.DeepEqual(nres.NodeHits[id], sres.NodeHits[id]) {
			t.Fatalf("node %q differs: %v vs %v", id, nres.NodeHits[id], sres.NodeHits[id])
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		if nres.PathByNode[id] != PathNative {
			t.Fatalf("native engine: PathByNode[%s] = %q", id, nres.PathByNode[id])
		}
		if sres.PathByNode[id] != PathSQL {
			t.Fatalf("sql engine: PathByNode[%s] = %q", id, sres.PathByNode[id])
		}
	}
}

// TestNativeAddTableVisibility asserts the native path sees incrementally
// appended tables exactly like the SQL path (the per-shard views read the
// live store).
func TestNativeAddTableVisibility(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "addt", NumTables: 8, ColsPerTable: 3, RowsPerTable: 20,
		VocabSize: 80, Seed: 3,
	})
	extra := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "addx", NumTables: 2, ColsPerTable: 3, RowsPerTable: 20,
		VocabSize: 80, Seed: 4,
	})
	for _, cfg := range nativeTestConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			native, sql := buildNativeTestEngines(cfg.layout, cfg.shards, lake)
			for _, tb := range extra.Tables {
				native.AddTable(tb)
				sql.AddTable(tb)
			}
			q := extra.Tables[0].DistinctColumnValues(0)
			if len(q) > 15 {
				q = q[:15]
			}
			runBoth(t, native, sql, NewSC(q, 10), NoRewrite, "post-AddTable sc")
			runBoth(t, native, sql, NewKW(q, 10), NoRewrite, "post-AddTable kw")
		})
	}
}

// TestNativeCanceledContext asserts the fast path honors cancellation.
func TestNativeCanceledContext(t *testing.T) {
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "cancel", NumTables: 6, ColsPerTable: 3, RowsPerTable: 20,
		VocabSize: 60, Seed: 5,
	})
	native, _ := buildNativeTestEngines(storage.ColumnStore, 4, lake)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSC(lake.QueryColumn(10), 5)
	if _, _, err := runDirect(ctx, native, s, NoRewrite); err == nil {
		t.Fatal("expected cancellation error from native path")
	}
}
