package core

import (
	"sort"

	"blend/internal/costmodel"
)

// nativeServes reports whether the engine's native posting-list executor
// will serve the given seeker kind. With every relational seeker family
// (KW, SC, MC, C) served natively, the minisql interpreter is reachable
// only through NoNativeExec (-no-native) or raw SQL; the semantic seeker
// runs on its ANN side-index regardless of this switch.
func (e *Engine) nativeServes(k SeekerKind) bool {
	if e.NoNativeExec {
		return false
	}
	switch k {
	case KW, SC, MC, C:
		return true
	default:
		return false
	}
}

// seekerFeatures extracts a seeker's cost-model features and stamps the
// execution-path indicator, so trained models can price the native and SQL
// executions of one kind separately. Every optimizer or training call site
// goes through here — never through Seeker.Features directly, which cannot
// know the engine's path configuration.
func (v *view) seekerFeatures(s Seeker) costmodel.Features {
	f := s.Features(v.sn.store)
	if v.nativeServes(s.Kind()) {
		f.Native = 1
	}
	return f
}

// ruleRank orders seeker kinds per the rule-based optimizer (§VII-B):
// Rule 1 — the keyword seeker always executes first; Rule 2 — the MC seeker
// always executes last; Rule 3 — SC is prioritized over C.
func ruleRank(k SeekerKind) int {
	switch k {
	case KW:
		return 0
	case SC, Semantic:
		return 1
	case C:
		return 2
	case MC:
		return 3
	default:
		return 4
	}
}

// executionGroup is a set of seeker nodes whose relative execution order is
// free (§VII-B): seekers feeding the same Intersection combiner, each
// consumed by that combiner alone (rewriting a shared seeker would leak the
// restriction to its other consumers and break Theorem 1).
type executionGroup struct {
	combiner string   // owning Intersect combiner node
	members  []string // seeker node ids, in plan insertion order
}

// findExecutionGroups builds the hyper-DAG's execution groups: one per
// Intersection combiner with at least two exclusively-owned seeker inputs.
func (p *Plan) findExecutionGroups() []executionGroup {
	consumers := p.consumers()
	var groups []executionGroup
	for _, id := range p.order {
		n := p.nodes[id]
		if n.isSeeker() || n.combiner.Kind() != Intersect {
			continue
		}
		var members []string
		for _, in := range n.inputs {
			inNode := p.nodes[in]
			if inNode == nil || !inNode.isSeeker() {
				continue
			}
			if len(consumers[in]) != 1 {
				continue
			}
			// Approximate operators stay outside execution groups:
			// reordering them could change their result set (§IX), so
			// they run standalone and unrewritten.
			if inNode.seeker.Kind() == Semantic {
				continue
			}
			members = append(members, in)
		}
		if len(members) >= 2 {
			groups = append(groups, executionGroup{combiner: id, members: members})
		}
	}
	return groups
}

// rankSeekers orders the execution-group members: rule-based ranking across
// kinds, learned cost estimation within a kind (falling back to a frequency
// heuristic when no model is trained). The sort is stable over plan
// insertion order, keeping optimization deterministic.
func (v *view) rankSeekers(p *Plan, members []string) []string {
	type ranked struct {
		id   string
		rule int
		cost float64
	}
	rs := make([]ranked, len(members))
	for i, id := range members {
		s := p.nodes[id].seeker
		r := ranked{id: id, rule: ruleRank(s.Kind())}
		f := v.seekerFeatures(s)
		if v.Cost != nil {
			if m := v.Cost.Get(s.Kind()); m != nil {
				r.cost = m.Predict(f)
				rs[i] = r
				continue
			}
		}
		// Heuristic fallback: work is roughly |Q| × avg posting length.
		freq := f.AvgFreq
		if freq < 1 {
			freq = 1
		}
		r.cost = f.Card * freq * float64(int(f.Cols))
		rs[i] = r
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].rule != rs[b].rule {
			return rs[a].rule < rs[b].rule
		}
		return rs[a].cost < rs[b].cost
	})
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.id
	}
	return out
}
