package core

import (
	"fmt"
	"strings"

	"blend/internal/berr"
)

// Plan is a declarative discovery task: a DAG of named seeker and combiner
// nodes where edges carry table collections (Fig. 2b). Build one by adding
// nodes, then execute it with Engine.Run.
type Plan struct {
	nodes map[string]*planNode
	// order preserves insertion order: it is the unoptimized execution
	// order and the deterministic basis for optimization.
	order []string
	// output names the node whose result is the plan's result; defaults to
	// the last added node.
	output string
}

type planNode struct {
	id       string
	seeker   Seeker
	combiner Combiner
	inputs   []string
}

func (n *planNode) isSeeker() bool { return n.seeker != nil }

// NewPlan creates an empty plan.
func NewPlan() *Plan {
	return &Plan{nodes: make(map[string]*planNode)}
}

// AddSeeker adds a named seeker node. Names must be unique within the plan.
func (p *Plan) AddSeeker(id string, s Seeker) error {
	if s == nil {
		return berr.New(berr.CodeBadPlan, "plan.add", "seeker %q is nil", id)
	}
	return p.add(&planNode{id: id, seeker: s})
}

// AddCombiner adds a named combiner node consuming the given input nodes.
// Inputs may be added later; the plan is validated when executed.
func (p *Plan) AddCombiner(id string, c Combiner, inputs ...string) error {
	if c == nil {
		return berr.New(berr.CodeBadPlan, "plan.add", "combiner %q is nil", id)
	}
	if min := c.MinInputs(); len(inputs) < min {
		return berr.New(berr.CodeBadPlan, "plan.add", "combiner %q needs at least %d inputs, got %d", id, min, len(inputs))
	}
	if max := c.MaxInputs(); max >= 0 && len(inputs) > max {
		return berr.New(berr.CodeBadPlan, "plan.add", "combiner %q accepts at most %d inputs, got %d", id, max, len(inputs))
	}
	return p.add(&planNode{id: id, combiner: c, inputs: append([]string(nil), inputs...)})
}

// MustAddSeeker is AddSeeker that panics on error, for plan literals in
// examples and tests.
func (p *Plan) MustAddSeeker(id string, s Seeker) {
	if err := p.AddSeeker(id, s); err != nil {
		panic(err)
	}
}

// MustAddCombiner is AddCombiner that panics on error.
func (p *Plan) MustAddCombiner(id string, c Combiner, inputs ...string) {
	if err := p.AddCombiner(id, c, inputs...); err != nil {
		panic(err)
	}
}

func (p *Plan) add(n *planNode) error {
	if n.id == "" {
		return berr.New(berr.CodeBadPlan, "plan.add", "node id must not be empty")
	}
	if _, dup := p.nodes[n.id]; dup {
		return berr.New(berr.CodeBadPlan, "plan.add", "duplicate node id %q", n.id)
	}
	p.nodes[n.id] = n
	p.order = append(p.order, n.id)
	p.output = n.id
	return nil
}

// SetOutput selects which node's result the plan returns. By default the
// last added node is the output.
func (p *Plan) SetOutput(id string) error {
	if _, ok := p.nodes[id]; !ok {
		return berr.New(berr.CodeUnknownNode, "plan.output", "unknown output node %q", id)
	}
	p.output = id
	return nil
}

// Output returns the current output node id.
func (p *Plan) Output() string { return p.output }

// Len returns the number of nodes.
func (p *Plan) Len() int { return len(p.nodes) }

// NodeIDs returns the node ids in insertion order.
func (p *Plan) NodeIDs() []string { return append([]string(nil), p.order...) }

// validate checks that every referenced input exists and that the DAG is
// acyclic, returning a topological order (insertion-order stable).
func (p *Plan) validate() ([]string, error) {
	if len(p.nodes) == 0 {
		return nil, berr.New(berr.CodeBadPlan, "plan.validate", "empty plan")
	}
	for _, id := range p.order {
		n := p.nodes[id]
		for _, in := range n.inputs {
			if _, ok := p.nodes[in]; !ok {
				return nil, berr.New(berr.CodeUnknownNode, "plan.validate", "node %q references unknown input %q", id, in)
			}
			if in == id {
				return nil, berr.New(berr.CodeBadPlan, "plan.validate", "node %q consumes itself", id)
			}
		}
	}
	// Kahn's algorithm with insertion-order tie breaking keeps execution
	// deterministic for unoptimized runs.
	indeg := make(map[string]int, len(p.nodes))
	dependents := make(map[string][]string, len(p.nodes))
	for _, id := range p.order {
		indeg[id] = len(p.nodes[id].inputs)
		for _, in := range p.nodes[id].inputs {
			dependents[in] = append(dependents[in], id)
		}
	}
	var topo []string
	ready := make([]string, 0, len(p.nodes))
	for _, id := range p.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		topo = append(topo, id)
		for _, d := range dependents[id] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}
	if len(topo) != len(p.nodes) {
		return nil, berr.New(berr.CodeBadPlan, "plan.validate", "cycle detected among nodes")
	}
	return topo, nil
}

// consumers returns, per node id, the ids of nodes consuming it.
func (p *Plan) consumers() map[string][]string {
	out := make(map[string][]string, len(p.nodes))
	for _, id := range p.order {
		for _, in := range p.nodes[id].inputs {
			out[in] = append(out[in], id)
		}
	}
	return out
}

// String renders a compact description of the DAG for diagnostics.
func (p *Plan) String() string {
	var sb strings.Builder
	for i, id := range p.order {
		if i > 0 {
			sb.WriteString("; ")
		}
		n := p.nodes[id]
		if n.isSeeker() {
			fmt.Fprintf(&sb, "%s=%s(k=%d)", id, n.seeker.Kind(), n.seeker.TopK())
		} else {
			fmt.Fprintf(&sb, "%s=%s(%s)", id, n.combiner.Kind(), strings.Join(n.inputs, ","))
		}
	}
	return sb.String()
}
