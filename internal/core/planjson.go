package core

import (
	"encoding/json"
	"fmt"
	"io"

	"blend/internal/berr"
)

// JSON plan documents let discovery tasks be written declaratively outside
// Go code (the CLI's `blend plan` subcommand and the HTTP service's
// /v1/query endpoint execute them). The format mirrors the paper's API
// one-to-one:
//
//	{
//	  "output": "answer",
//	  "nodes": [
//	    {"id": "pos", "seeker": {"kind": "mc", "tuples": [["HR","Firenze"]], "k": 10}},
//	    {"id": "dep", "seeker": {"kind": "sc", "values": ["HR","IT"], "k": 10}},
//	    {"id": "answer", "combiner": {"kind": "intersect", "k": 10},
//	     "inputs": ["pos", "dep"]}
//	  ]
//	}

// planDoc is the JSON document shape.
type planDoc struct {
	Output string        `json:"output,omitempty"`
	Nodes  []planNodeDoc `json:"nodes"`
}

type planNodeDoc struct {
	ID       string       `json:"id"`
	Seeker   *seekerDoc   `json:"seeker,omitempty"`
	Combiner *combinerDoc `json:"combiner,omitempty"`
	Inputs   []string     `json:"inputs,omitempty"`
}

type seekerDoc struct {
	Kind string `json:"kind"` // sc | kw | mc | correlation | semantic
	K    int    `json:"k"`
	// Values serves sc, kw, and semantic.
	Values []string `json:"values,omitempty"`
	// Tuples serves mc.
	Tuples [][]string `json:"tuples,omitempty"`
	// Keys and Targets serve correlation.
	Keys    []string  `json:"keys,omitempty"`
	Targets []float64 `json:"targets,omitempty"`
}

type combinerDoc struct {
	Kind string `json:"kind"` // intersect | union | difference | counter
	K    int    `json:"k"`
}

// ParsePlanJSON decodes a JSON plan document into an executable Plan.
// Malformed documents and invalid operator parameters report ErrBadPlan;
// references to undeclared node ids report ErrUnknownNode.
func ParsePlanJSON(r io.Reader) (*Plan, error) {
	var doc planDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, berr.New(berr.CodeBadPlan, "plan.json", "malformed document: %v", err)
	}
	p := NewPlan()
	for _, n := range doc.Nodes {
		switch {
		case n.Seeker != nil && n.Combiner != nil:
			return nil, berr.New(berr.CodeBadPlan, "plan.json", "node %q is both seeker and combiner", n.ID)
		case n.Seeker != nil:
			if len(n.Inputs) > 0 {
				return nil, berr.New(berr.CodeBadPlan, "plan.json", "seeker node %q cannot have inputs", n.ID)
			}
			s, err := n.Seeker.build()
			if err != nil {
				return nil, berr.Wrap(berr.CodeBadPlan, fmt.Sprintf("plan.json node %q", n.ID), err)
			}
			if err := p.AddSeeker(n.ID, s); err != nil {
				return nil, err
			}
		case n.Combiner != nil:
			c, err := n.Combiner.build()
			if err != nil {
				return nil, berr.Wrap(berr.CodeBadPlan, fmt.Sprintf("plan.json node %q", n.ID), err)
			}
			if err := p.AddCombiner(n.ID, c, n.Inputs...); err != nil {
				return nil, err
			}
		default:
			return nil, berr.New(berr.CodeBadPlan, "plan.json", "node %q has neither seeker nor combiner", n.ID)
		}
	}
	if doc.Output != "" {
		if err := p.SetOutput(doc.Output); err != nil {
			return nil, err
		}
	}
	if p.Len() == 0 {
		return nil, berr.New(berr.CodeBadPlan, "plan.json", "no nodes")
	}
	return p, nil
}

// ParseSeekerJSON decodes one seeker document — the "seeker" object of a
// plan node, e.g. {"kind": "sc", "values": ["HR"], "k": 10} — into an
// executable Seeker. The HTTP service's /v1/seek endpoint runs these
// standalone.
func ParseSeekerJSON(r io.Reader) (Seeker, error) {
	var doc seekerDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, berr.New(berr.CodeBadPlan, "seeker.json", "malformed document: %v", err)
	}
	s, err := doc.build()
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadPlan, "seeker.json", err)
	}
	return s, nil
}

// EncodeSeekerJSON renders a single seeker back to its JSON document.
func EncodeSeekerJSON(s Seeker, w io.Writer) error {
	doc, err := encodeSeeker(s)
	if err != nil {
		return berr.Wrap(berr.CodeBadPlan, "seeker.json", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func (d *seekerDoc) build() (Seeker, error) {
	if d.K <= 0 {
		return nil, berr.New(berr.CodeBadPlan, "seeker.json", "%s seeker k must be positive, got %d", d.Kind, d.K)
	}
	switch d.Kind {
	case "sc":
		return NewSC(d.Values, d.K), nil
	case "kw":
		return NewKW(d.Values, d.K), nil
	case "semantic":
		return NewSemantic(d.Values, d.K), nil
	case "mc":
		return NewMC(d.Tuples, d.K), nil
	case "correlation":
		if len(d.Keys) == 0 || len(d.Targets) == 0 {
			return nil, berr.New(berr.CodeBadPlan, "seeker.json", "correlation seeker needs keys and targets")
		}
		return NewCorrelation(d.Keys, d.Targets, d.K), nil
	default:
		return nil, berr.New(berr.CodeBadPlan, "seeker.json", "unknown seeker kind %q", d.Kind)
	}
}

func (d *combinerDoc) build() (Combiner, error) {
	if d.K <= 0 {
		return nil, berr.New(berr.CodeBadPlan, "combiner.json", "%s combiner k must be positive, got %d", d.Kind, d.K)
	}
	switch d.Kind {
	case "intersect":
		return NewIntersect(d.K), nil
	case "union":
		return NewUnion(d.K), nil
	case "difference":
		return NewDifference(d.K), nil
	case "counter":
		return NewCounter(d.K), nil
	default:
		return nil, berr.New(berr.CodeBadPlan, "combiner.json", "unknown combiner kind %q", d.Kind)
	}
}

// EncodePlanJSON renders a Plan back to its JSON document. Plans built
// from custom Seeker or Combiner implementations outside this package
// cannot be encoded and return an error.
func EncodePlanJSON(p *Plan, w io.Writer) error {
	doc := planDoc{Output: p.output}
	for _, id := range p.order {
		n := p.nodes[id]
		nd := planNodeDoc{ID: id, Inputs: n.inputs}
		if n.isSeeker() {
			sd, err := encodeSeeker(n.seeker)
			if err != nil {
				return berr.Wrap(berr.CodeBadPlan, fmt.Sprintf("plan.json node %q", id), err)
			}
			nd.Seeker = sd
		} else {
			cd, err := encodeCombiner(n.combiner)
			if err != nil {
				return berr.Wrap(berr.CodeBadPlan, fmt.Sprintf("plan.json node %q", id), err)
			}
			nd.Combiner = cd
		}
		doc.Nodes = append(doc.Nodes, nd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func encodeSeeker(s Seeker) (*seekerDoc, error) {
	switch x := s.(type) {
	case *SCSeeker:
		return &seekerDoc{Kind: "sc", K: x.K, Values: x.Values}, nil
	case *KWSeeker:
		return &seekerDoc{Kind: "kw", K: x.K, Values: x.Keywords}, nil
	case *SemanticSeeker:
		return &seekerDoc{Kind: "semantic", K: x.K, Values: x.Values}, nil
	case *MCSeeker:
		return &seekerDoc{Kind: "mc", K: x.K, Tuples: x.Tuples}, nil
	case *CorrelationSeeker:
		return &seekerDoc{Kind: "correlation", K: x.K, Keys: x.Keys, Targets: x.Targets}, nil
	default:
		return nil, berr.New(berr.CodeBadPlan, "plan.json", "unsupported seeker type %T", s)
	}
}

func encodeCombiner(c Combiner) (*combinerDoc, error) {
	switch x := c.(type) {
	case *IntersectCombiner:
		return &combinerDoc{Kind: "intersect", K: x.K}, nil
	case *UnionCombiner:
		return &combinerDoc{Kind: "union", K: x.K}, nil
	case *DifferenceCombiner:
		return &combinerDoc{Kind: "difference", K: x.K}, nil
	case *CounterCombiner:
		return &combinerDoc{Kind: "counter", K: x.K}, nil
	default:
		return nil, berr.New(berr.CodeBadPlan, "plan.json", "unsupported combiner type %T", c)
	}
}
