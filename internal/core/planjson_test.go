package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const example1JSON = `{
  "output": "intersect",
  "nodes": [
    {"id": "P_examples", "seeker": {"kind": "mc", "tuples": [["HR","Firenze"]], "k": 10}},
    {"id": "N_examples", "seeker": {"kind": "mc", "tuples": [["IT","Tom Riddle"]], "k": 10}},
    {"id": "exclude", "combiner": {"kind": "difference", "k": 10},
     "inputs": ["P_examples", "N_examples"]},
    {"id": "dep", "seeker": {"kind": "sc",
     "values": ["HR","Marketing","Finance","IT","R&D","Sales"], "k": 10}},
    {"id": "intersect", "combiner": {"kind": "intersect", "k": 10},
     "inputs": ["exclude", "dep"]}
  ]
}`

func TestParsePlanJSONExample1(t *testing.T) {
	p, err := ParsePlanJSON(strings.NewReader(example1JSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 || p.Output() != "intersect" {
		t.Fatalf("plan = %s", p)
	}
	e := fig1Engine()
	res, err := e.RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tables, []string{"T3"}) {
		t.Fatalf("json plan result = %v, want [T3]", res.Tables)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p, err := ParsePlanJSON(strings.NewReader(example1JSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePlanJSON(p, &buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlanJSON(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if p2.String() != p.String() || p2.Output() != p.Output() {
		t.Fatalf("round trip changed the plan:\n%s\n%s", p, p2)
	}
}

func TestPlanJSONAllNodeKinds(t *testing.T) {
	doc := `{
	  "nodes": [
	    {"id": "a", "seeker": {"kind": "kw", "values": ["x"], "k": 5}},
	    {"id": "b", "seeker": {"kind": "semantic", "values": ["x"], "k": 5}},
	    {"id": "c", "seeker": {"kind": "correlation", "keys": ["k1"], "targets": [1.5], "k": 5}},
	    {"id": "u", "combiner": {"kind": "union", "k": 5}, "inputs": ["a", "b"]},
	    {"id": "n", "combiner": {"kind": "counter", "k": 5}, "inputs": ["u", "c"]}
	  ]
	}`
	p, err := ParsePlanJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Output() != "n" { // defaults to last node
		t.Fatalf("output = %q", p.Output())
	}
	var buf bytes.Buffer
	if err := EncodePlanJSON(p, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestParsePlanJSONErrors(t *testing.T) {
	bad := []string{
		``,
		`{}`,
		`{"nodes": []}`,
		`{"nodes": [{"id": "x"}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "nope", "k": 1}}]}`,
		`{"nodes": [{"id": "x", "combiner": {"kind": "nope", "k": 1}, "inputs": ["a","b"]}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}, "inputs": ["y"]}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1},
		             "combiner": {"kind": "union", "k": 1}}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "correlation", "k": 1}}]}`,
		`{"output": "ghost", "nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}, "bogus": true}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}},
		            {"id": "x", "seeker": {"kind": "sc", "k": 1}}]}`,
	}
	for _, doc := range bad {
		if _, err := ParsePlanJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("ParsePlanJSON(%q) should fail", doc)
		}
	}
}

// customSeeker is a user-defined operator (the paper allows custom
// combiners/seekers); JSON encoding must reject it cleanly rather than
// guess a representation.
type customSeeker struct{ SCSeeker }

func TestEncodePlanJSONRejectsCustomNodes(t *testing.T) {
	p := NewPlan()
	p.MustAddSeeker("c", &customSeeker{SCSeeker{Values: []string{"x"}, K: 1}})
	var buf bytes.Buffer
	if err := EncodePlanJSON(p, &buf); err == nil {
		t.Fatal("custom seeker must not encode silently")
	}
}

func TestWriteDot(t *testing.T) {
	p, err := ParsePlanJSON(strings.NewReader(example1JSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{
		"digraph plan",
		`"P_examples" [label="P_examples\nMC (k=10)", shape=box]`,
		`"exclude" [label="exclude\nDifference", shape=ellipse]`,
		`"intersect" [label="intersect\nIntersect", shape=ellipse, peripheries=2]`,
		`"P_examples" -> "exclude";`,
		`"dep" -> "intersect";`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}
