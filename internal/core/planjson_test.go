package core

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

const example1JSON = `{
  "output": "intersect",
  "nodes": [
    {"id": "P_examples", "seeker": {"kind": "mc", "tuples": [["HR","Firenze"]], "k": 10}},
    {"id": "N_examples", "seeker": {"kind": "mc", "tuples": [["IT","Tom Riddle"]], "k": 10}},
    {"id": "exclude", "combiner": {"kind": "difference", "k": 10},
     "inputs": ["P_examples", "N_examples"]},
    {"id": "dep", "seeker": {"kind": "sc",
     "values": ["HR","Marketing","Finance","IT","R&D","Sales"], "k": 10}},
    {"id": "intersect", "combiner": {"kind": "intersect", "k": 10},
     "inputs": ["exclude", "dep"]}
  ]
}`

func TestParsePlanJSONExample1(t *testing.T) {
	p, err := ParsePlanJSON(strings.NewReader(example1JSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 || p.Output() != "intersect" {
		t.Fatalf("plan = %s", p)
	}
	e := fig1Engine()
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tables, []string{"T3"}) {
		t.Fatalf("json plan result = %v, want [T3]", res.Tables)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p, err := ParsePlanJSON(strings.NewReader(example1JSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePlanJSON(p, &buf); err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlanJSON(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if p2.String() != p.String() || p2.Output() != p.Output() {
		t.Fatalf("round trip changed the plan:\n%s\n%s", p, p2)
	}
}

func TestPlanJSONAllNodeKinds(t *testing.T) {
	doc := `{
	  "nodes": [
	    {"id": "a", "seeker": {"kind": "kw", "values": ["x"], "k": 5}},
	    {"id": "b", "seeker": {"kind": "semantic", "values": ["x"], "k": 5}},
	    {"id": "c", "seeker": {"kind": "correlation", "keys": ["k1"], "targets": [1.5], "k": 5}},
	    {"id": "u", "combiner": {"kind": "union", "k": 5}, "inputs": ["a", "b"]},
	    {"id": "n", "combiner": {"kind": "counter", "k": 5}, "inputs": ["u", "c"]}
	  ]
	}`
	p, err := ParsePlanJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Output() != "n" { // defaults to last node
		t.Fatalf("output = %q", p.Output())
	}
	var buf bytes.Buffer
	if err := EncodePlanJSON(p, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestParsePlanJSONErrors(t *testing.T) {
	bad := []string{
		``,
		`{}`,
		`{"nodes": []}`,
		`{"nodes": [{"id": "x"}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "nope", "k": 1}}]}`,
		`{"nodes": [{"id": "x", "combiner": {"kind": "nope", "k": 1}, "inputs": ["a","b"]}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}, "inputs": ["y"]}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1},
		             "combiner": {"kind": "union", "k": 1}}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "correlation", "k": 1}}]}`,
		`{"output": "ghost", "nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}, "bogus": true}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "k": 1}},
		            {"id": "x", "seeker": {"kind": "sc", "k": 1}}]}`,
	}
	for _, doc := range bad {
		if _, err := ParsePlanJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("ParsePlanJSON(%q) should fail", doc)
		}
	}
}

// customSeeker is a user-defined operator (the paper allows custom
// combiners/seekers); JSON encoding must reject it cleanly rather than
// guess a representation.
type customSeeker struct{ SCSeeker }

func TestEncodePlanJSONRejectsCustomNodes(t *testing.T) {
	p := NewPlan()
	p.MustAddSeeker("c", &customSeeker{SCSeeker{Values: []string{"x"}, K: 1}})
	var buf bytes.Buffer
	if err := EncodePlanJSON(p, &buf); err == nil {
		t.Fatal("custom seeker must not encode silently")
	}
}

func TestWriteDot(t *testing.T) {
	p, err := ParsePlanJSON(strings.NewReader(example1JSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteDot(&buf); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{
		"digraph plan",
		`"P_examples" [label="P_examples\nMC (k=10)", shape=box]`,
		`"exclude" [label="exclude\nDifference", shape=ellipse]`,
		`"intersect" [label="intersect\nIntersect", shape=ellipse, peripheries=2]`,
		`"P_examples" -> "exclude";`,
		`"dep" -> "intersect";`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}

// TestPlanJSONRoundTripEveryKind round-trips one plan per seeker kind and
// one per combiner kind, checking decoded parameters — not just String()
// equality — survive encode → parse.
func TestPlanJSONRoundTripEveryKind(t *testing.T) {
	seekers := map[string]Seeker{
		"sc":          NewSC([]string{"a", "b"}, 7),
		"kw":          NewKW([]string{"k1", "k2", "k3"}, 4),
		"mc":          NewMC([][]string{{"x", "y"}, {"u", "v"}}, 9),
		"correlation": NewCorrelation([]string{"c1", "c2"}, []float64{1.5, -2.25}, 3),
		"semantic":    NewSemantic([]string{"berlin"}, 2),
	}
	for kind, s := range seekers {
		t.Run("seeker_"+kind, func(t *testing.T) {
			var buf bytes.Buffer
			if err := EncodeSeekerJSON(s, &buf); err != nil {
				t.Fatal(err)
			}
			back, err := ParseSeekerJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back, s) {
				t.Fatalf("round trip changed the seeker:\n%#v\n%#v", s, back)
			}
		})
	}
	combiners := map[string]Combiner{
		"intersect":  NewIntersect(5),
		"union":      NewUnion(6),
		"difference": NewDifference(7),
		"counter":    NewCounter(8),
	}
	for kind, c := range combiners {
		t.Run("combiner_"+kind, func(t *testing.T) {
			p := NewPlan()
			p.MustAddSeeker("s1", NewSC([]string{"a"}, 5))
			p.MustAddSeeker("s2", NewKW([]string{"b"}, 5))
			p.MustAddCombiner("out", c, "s1", "s2")
			var buf bytes.Buffer
			if err := EncodePlanJSON(p, &buf); err != nil {
				t.Fatal(err)
			}
			back, err := ParsePlanJSON(&buf)
			if err != nil {
				t.Fatalf("reparse: %v\n%s", err, buf.String())
			}
			if back.String() != p.String() || back.Output() != p.Output() {
				t.Fatalf("round trip changed the plan:\n%s\n%s", p, back)
			}
			if !reflect.DeepEqual(back.nodes["out"].combiner, c) {
				t.Fatalf("combiner params changed: %#v vs %#v", back.nodes["out"].combiner, c)
			}
		})
	}
}

// TestPlanJSONRejectsNonPositiveK pins the k > 0 document invariant for
// both node families.
func TestPlanJSONRejectsNonPositiveK(t *testing.T) {
	for _, doc := range []string{
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "values": ["a"], "k": 0}}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "kw", "values": ["a"], "k": -3}}]}`,
		`{"nodes": [{"id": "x", "seeker": {"kind": "sc", "values": ["a"], "k": 1}},
		            {"id": "y", "combiner": {"kind": "union", "k": 0}, "inputs": ["x"]}]}`,
	} {
		_, err := ParsePlanJSON(strings.NewReader(doc))
		if err == nil {
			t.Fatalf("ParsePlanJSON(%s) accepted k <= 0", doc)
		}
	}
}
