package core

import (
	"fmt"
	"sort"
	"strings"
)

// Profile renders a per-node execution report: which seekers ran in what
// order, with their durations, SQL row counts, rewrite status, and the
// validation funnels of the MC and semantic seekers — the observability
// counterpart of the paper's Table IV/V diagnostics.
func (r *PlanResult) Profile() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %v across %d nodes\n", r.Duration, len(r.NodeHits))
	if r.PeakConcurrency > 1 {
		fmt.Fprintf(&sb, "peak concurrent seekers: %d\n", r.PeakConcurrency)
	}
	if len(r.SeekerOrder) > 0 {
		fmt.Fprintf(&sb, "seeker order: %s\n", strings.Join(r.SeekerOrder, " → "))
	}
	for _, id := range r.SeekerOrder {
		st, ok := r.Stats[id]
		if !ok {
			continue
		}
		path := st.Path
		if path == "" {
			path = "?"
		}
		fmt.Fprintf(&sb, "  %-20s %-9s %-7s %10v  sql_rows=%-6d hits=%-4d",
			id, st.Kind.String(), path, st.Duration.Round(10_000), st.SQLRows, len(r.NodeHits[id]))
		if st.Kind == MC || st.Kind == Semantic {
			fmt.Fprintf(&sb, " candidates=%-5d validated=%-5d", st.Candidates, st.Validated)
		}
		if st.Rewritten {
			sb.WriteString(" [rewritten]")
		}
		if st.CacheHit {
			sb.WriteString(" [cached]")
		}
		sb.WriteByte('\n')
	}
	// Combiner nodes (everything with hits but no stats), sorted for
	// deterministic output.
	var combiners []string
	for id := range r.NodeHits {
		if _, isSeeker := r.Stats[id]; !isSeeker {
			combiners = append(combiners, id)
		}
	}
	sort.Strings(combiners)
	for _, id := range combiners {
		fmt.Fprintf(&sb, "  %-20s combiner            hits=%d\n", id, len(r.NodeHits[id]))
	}
	return sb.String()
}
