package core

import (
	"fmt"
	"sync"
	"time"
)

// RunOptions tune plan execution.
type RunOptions struct {
	// Optimize enables the two-phase optimizer (execution-group
	// reordering + query rewriting). Disabled it reproduces B-NO, the
	// paper's unoptimized baseline.
	Optimize bool
	// ForcedOrder, when non-empty, fixes the relative execution order of
	// seekers inside execution groups (used by the optimizer experiments
	// to run random and oracle orders). Ids absent from the slice keep
	// their ranked position.
	ForcedOrder []string
	// Parallel executes independent seekers — those outside every
	// execution group and not awaiting a Difference rewrite — on
	// concurrent goroutines. Results are identical to sequential
	// execution (seekers are pure reads); only SeekerOrder becomes
	// nondeterministic. Sub-plans joined by Union or Counter combiners,
	// like the multi-objective plan of Listing 4, gain the most.
	Parallel bool
}

// PlanResult is the outcome of executing a discovery plan.
type PlanResult struct {
	// Output holds the scored tables of the plan's output node.
	Output Hits
	// Tables holds the output table names, best first.
	Tables []string
	// NodeHits maps every node id to its result.
	NodeHits map[string]Hits
	// Stats maps seeker node ids to execution diagnostics.
	Stats map[string]RunStats
	// SeekerOrder is the order in which seekers actually executed.
	SeekerOrder []string
	// Duration is the total wall-clock execution time, including
	// optimization overhead (the paper reports optimizer time as part of
	// BLEND's runtime).
	Duration time.Duration
}

// RunPlan executes the plan with the optimizer enabled.
func (e *Engine) RunPlan(p *Plan) (*PlanResult, error) {
	return e.Run(p, RunOptions{Optimize: true})
}

// RunPlanNoOpt executes the plan without optimization (B-NO): seekers run
// in insertion order with no rewriting.
func (e *Engine) RunPlanNoOpt(p *Plan) (*PlanResult, error) {
	return e.Run(p, RunOptions{})
}

// Run executes the plan with explicit options.
func (e *Engine) Run(p *Plan, opts RunOptions) (*PlanResult, error) {
	start := time.Now()
	topo, err := p.validate()
	if err != nil {
		return nil, err
	}
	res := &PlanResult{
		NodeHits: make(map[string]Hits, len(p.nodes)),
		Stats:    make(map[string]RunStats),
	}

	// Membership maps for optimization decisions.
	groupOf := make(map[string]*executionGroup)
	var groups []executionGroup
	excludeFrom := make(map[string]string) // minuend seeker -> subtrahend node
	if opts.Optimize {
		groups = p.findExecutionGroups()
		for gi := range groups {
			for _, m := range groups[gi].members {
				groupOf[m] = &groups[gi]
			}
		}
		consumers := p.consumers()
		for _, id := range p.order {
			n := p.nodes[id]
			if n.isSeeker() || n.combiner.Kind() != Difference || len(n.inputs) != 2 {
				continue
			}
			minuend := n.inputs[0]
			mn := p.nodes[minuend]
			// Only rewrite a seeker exclusively owned by this combiner,
			// and only when it is not already inside an intersect group.
			if mn != nil && mn.isSeeker() && len(consumers[minuend]) == 1 && groupOf[minuend] == nil {
				excludeFrom[minuend] = n.inputs[1]
			}
		}
	}

	ranOrder := make([]string, 0, len(p.nodes))
	var resolve func(id string) error
	runSeeker := func(id string, rw Rewrite) error {
		n := p.nodes[id]
		hits, stats, err := n.seeker.run(e, rw)
		if err != nil {
			return fmt.Errorf("plan node %q: %w", id, err)
		}
		res.NodeHits[id] = hits
		res.Stats[id] = stats
		ranOrder = append(ranOrder, id)
		return nil
	}
	runGroup := func(g *executionGroup) error {
		order := e.rankSeekers(p, g.members)
		if len(opts.ForcedOrder) > 0 {
			order = applyForcedOrder(order, opts.ForcedOrder)
		}
		var prior []int32
		for i, id := range order {
			rw := NoRewrite
			if i > 0 {
				rw = IncludeTables(prior)
			}
			if err := runSeeker(id, rw); err != nil {
				return err
			}
			// The next seeker searches only within the tables found so
			// far (the Intersection rewrite rule).
			prior = res.NodeHits[id].TableIDs()
		}
		return nil
	}
	resolve = func(id string) error {
		if _, done := res.NodeHits[id]; done {
			return nil
		}
		n := p.nodes[id]
		if n.isSeeker() {
			if g := groupOf[id]; g != nil {
				return runGroup(g)
			}
			if sub, ok := excludeFrom[id]; ok {
				if err := resolve(sub); err != nil {
					return err
				}
				return runSeeker(id, ExcludeTables(res.NodeHits[sub].TableIDs()))
			}
			return runSeeker(id, NoRewrite)
		}
		// Combiner: resolve inputs first. For Difference the subtrahend
		// resolves before the minuend so its result can rewrite the
		// minuend's SQL.
		inputs := n.inputs
		if opts.Optimize && n.combiner.Kind() == Difference && len(inputs) == 2 {
			if err := resolve(inputs[1]); err != nil {
				return err
			}
		}
		for _, in := range inputs {
			if err := resolve(in); err != nil {
				return err
			}
		}
		collected := make([]Hits, len(inputs))
		for i, in := range inputs {
			collected[i] = res.NodeHits[in]
		}
		res.NodeHits[id] = n.combiner.Combine(collected)
		return nil
	}

	if opts.Parallel {
		if err := runFreeSeekersParallel(e, p, topo, groupOf, excludeFrom, res, &ranOrder); err != nil {
			return nil, err
		}
	}

	for _, id := range topo {
		if err := resolve(id); err != nil {
			return nil, err
		}
	}
	res.Output = res.NodeHits[p.output]
	res.Tables = e.TableNames(res.Output)
	res.SeekerOrder = ranOrder
	res.Duration = time.Since(start)
	return res, nil
}

// RunSeeker executes a single seeker outside any plan (the "simple task"
// mode of §VII-A).
func (e *Engine) RunSeeker(s Seeker) (Hits, RunStats, error) {
	return s.run(e, NoRewrite)
}

// runFreeSeekersParallel executes every seeker with no execution-group or
// rewrite dependency concurrently, filling res before the sequential
// resolve pass picks up the remaining nodes. Seekers only read the
// immutable index, so concurrent execution returns exactly the sequential
// results.
func runFreeSeekersParallel(e *Engine, p *Plan, topo []string, groupOf map[string]*executionGroup, excludeFrom map[string]string, res *PlanResult, ranOrder *[]string) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, id := range topo {
		n := p.nodes[id]
		if !n.isSeeker() || groupOf[id] != nil {
			continue
		}
		if _, waits := excludeFrom[id]; waits {
			continue
		}
		wg.Add(1)
		go func(id string, s Seeker) {
			defer wg.Done()
			hits, stats, err := s.run(e, NoRewrite)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("plan node %q: %w", id, err)
				}
				return
			}
			res.NodeHits[id] = hits
			res.Stats[id] = stats
			*ranOrder = append(*ranOrder, id)
		}(id, n.seeker)
	}
	wg.Wait()
	return firstErr
}

// applyForcedOrder reorders ranked ids so that ids listed in forced appear
// in forced's relative order; unlisted ids keep their ranked positions.
func applyForcedOrder(ranked, forced []string) []string {
	pos := make(map[string]int, len(forced))
	for i, id := range forced {
		pos[id] = i
	}
	// Collect ranked ids that are constrained, in forced order.
	var constrained []string
	for _, id := range forced {
		for _, r := range ranked {
			if r == id {
				constrained = append(constrained, id)
				break
			}
		}
	}
	out := make([]string, 0, len(ranked))
	ci := 0
	for _, id := range ranked {
		if _, ok := pos[id]; ok {
			out = append(out, constrained[ci])
			ci++
		} else {
			out = append(out, id)
		}
	}
	return out
}
