package core

import (
	"context"
	"errors"
	"time"

	"blend/internal/berr"
)

// RunOptions tune plan execution. The context is NOT part of the options:
// Engine.Run and Engine.RunSeeker take it as their first parameter, so
// cancellation composes the same way across the library, the CLI, and the
// HTTP service.
type RunOptions struct {
	// Optimize enables the two-phase optimizer (execution-group
	// reordering + query rewriting). Disabled it reproduces B-NO, the
	// paper's unoptimized baseline.
	Optimize bool
	// ForcedOrder, when non-empty, fixes the relative execution order of
	// seekers inside execution groups (used by the optimizer experiments
	// to run random and oracle orders). Ids absent from the slice keep
	// their ranked position.
	ForcedOrder []string
	// Parallel executes the plan on the concurrent DAG scheduler: every
	// node — free seekers, execution groups, Difference-rewrite chains,
	// and combiners — becomes a task dispatched to a bounded worker pool
	// as soon as its dependencies resolve. Seekers are pure reads, so
	// NodeHits are identical to sequential execution; only the wall-clock
	// completion order varies (SeekerOrder stays deterministic, see
	// PlanResult). Sub-plans joined by Union or Counter combiners, like
	// the multi-objective plan of Listing 4, gain the most.
	Parallel bool
	// MaxWorkers bounds the scheduler's worker pool (and therefore how
	// many seekers run concurrently). Zero or negative means GOMAXPROCS.
	// Ignored without Parallel.
	MaxWorkers int
	// Explain records, per seeker node, the exact SQL statement executed
	// against the AllTables relation — including any optimizer rewrite
	// predicates — into PlanResult.SQLByNode.
	Explain bool

	// AsOf executes the plan against retained historical generation AsOf
	// instead of the current snapshot (time travel). Zero means current. A
	// generation outside the retention window fails with a typed
	// generation-gone error before any seeker runs. Ignored by
	// Snapshot.Run, where the handle already fixes the generation.
	AsOf uint64
}

// PlanResult is the outcome of executing a discovery plan.
type PlanResult struct {
	// Output holds the scored tables of the plan's output node.
	Output Hits
	// Tables holds the output table names, best first.
	Tables []string
	// NodeHits maps every node id to its result.
	NodeHits map[string]Hits
	// Stats maps seeker node ids to execution diagnostics.
	Stats map[string]RunStats
	// SQLByNode maps seeker node ids to the SQL statement the node
	// executed — or, for nodes the native fast path served, the SQL it
	// made unnecessary (rendered for diagnostics only; the hot path
	// never generates it). Populated only under RunOptions.Explain.
	SQLByNode map[string]string
	// PathByNode maps seeker node ids to the execution path that served
	// them: "native", "sql", or "ann", with " (cached)" appended when the
	// result came from the engine's result cache. Populated only under
	// RunOptions.Explain; per-run stats always carry the same facts in
	// Stats[id].Path / Stats[id].CacheHit.
	PathByNode map[string]string
	// SeekerOrder is the deterministic seeker execution order: the order
	// the sequential engine executes (topological order with execution
	// groups expanded at their ranked positions and Difference
	// subtrahends hoisted before their rewritten minuends). Under
	// Parallel the same order is reported even though seekers complete
	// concurrently; see CompletionOrder for what actually happened.
	SeekerOrder []string
	// CompletionOrder records the order seekers actually finished in.
	// Sequential runs match SeekerOrder; Parallel runs are
	// timing-dependent and nondeterministic.
	CompletionOrder []string
	// PeakConcurrency is the maximum number of seekers observed running
	// simultaneously — worker-pool instrumentation for verifying that a
	// parallel plan actually overlapped its independent seekers (1 for
	// sequential runs).
	PeakConcurrency int
	// Duration is the total wall-clock execution time, including
	// optimization overhead (the paper reports optimizer time as part of
	// BLEND's runtime).
	Duration time.Duration
}

// Run executes the plan under the given context with explicit options —
// the single execution entry point of the engine. A nil ctx means
// context.Background(). On cancellation the returned error carries the
// typed canceled/deadline code and wraps the context's error; partial
// results are discarded.
//
// Run pins one generation snapshot at entry (RunOptions.AsOf selects a
// retained historical one; zero means current) and executes lock-free
// against it, so it is safe to call concurrently with other runs and with
// index mutations — neither side ever waits for the other.
func (e *Engine) Run(ctx context.Context, p *Plan, opts RunOptions) (*PlanResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, berr.FromContext("plan.run", err)
	}
	sn, err := e.pinAt(opts.AsOf)
	if err != nil {
		return nil, err
	}
	defer e.unpin(sn)
	return e.runPinned(ctx, sn, p, opts)
}

// runPinned is Run against an already pinned snapshot; the caller owns the
// pin for the duration of the call (Engine.Run pins per call, Snapshot.Run
// holds one for the handle's lifetime).
func (e *Engine) runPinned(ctx context.Context, sn *snapshot, p *Plan, opts RunOptions) (*PlanResult, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, berr.FromContext("plan.run", err)
	}
	topo, err := p.validate()
	if err != nil {
		return nil, err
	}
	v := &view{Engine: e, sn: sn}
	res := &PlanResult{
		NodeHits: make(map[string]Hits, len(p.nodes)),
		Stats:    make(map[string]RunStats),
	}
	if opts.Explain {
		res.SQLByNode = make(map[string]string)
		res.PathByNode = make(map[string]string)
	}

	// Membership maps for optimization decisions.
	groupOf := make(map[string]*executionGroup)
	var groups []executionGroup
	excludeFrom := make(map[string]string) // minuend seeker -> subtrahend node
	if opts.Optimize {
		groups = p.findExecutionGroups()
		for gi := range groups {
			for _, m := range groups[gi].members {
				groupOf[m] = &groups[gi]
			}
		}
		consumers := p.consumers()
		for _, id := range p.order {
			n := p.nodes[id]
			if n.isSeeker() || n.combiner.Kind() != Difference || len(n.inputs) != 2 {
				continue
			}
			minuend := n.inputs[0]
			mn := p.nodes[minuend]
			// Only rewrite a seeker exclusively owned by this combiner,
			// and only when it is not already inside an intersect group.
			if mn != nil && mn.isSeeker() && len(consumers[minuend]) == 1 && groupOf[minuend] == nil {
				excludeFrom[minuend] = n.inputs[1]
			}
		}
	}

	// Rank execution-group members up front: ranking needs only index
	// statistics, never intermediate results, so both execution modes
	// (and the deterministic SeekerOrder) share one ranking.
	rankedOf := make(map[string][]string, len(groups))
	for gi := range groups {
		order := v.rankSeekers(p, groups[gi].members)
		if len(opts.ForcedOrder) > 0 {
			order = applyForcedOrder(order, opts.ForcedOrder)
		}
		rankedOf[groups[gi].combiner] = order
	}

	ex := &planExec{
		v:           v,
		p:           p,
		res:         res,
		optimize:    opts.Optimize,
		explain:     opts.Explain,
		groupOf:     groupOf,
		excludeFrom: excludeFrom,
		rankedOf:    rankedOf,
	}
	if opts.Parallel {
		err = ex.runScheduled(ctx, topo, opts.MaxWorkers)
	} else {
		err = ex.runSequential(ctx, topo)
	}
	if err != nil {
		// Only type as canceled/deadline when the failure actually came
		// from the context; an unrelated seeker error racing with
		// cancellation keeps its own classification.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, berr.FromContext("plan.run", err)
		}
		return nil, err
	}
	res.SeekerOrder = ex.emissionOrder(topo)
	res.CompletionOrder = ex.completion
	res.PeakConcurrency = int(ex.peak)
	res.Output = res.NodeHits[p.output]
	res.Tables = v.tableNames(res.Output)
	res.Duration = time.Since(start)
	return res, nil
}

// RunSeeker executes a single seeker outside any plan under the given
// context (the "simple task" mode of §VII-A). A nil ctx means
// context.Background(). Like Run, it pins the current generation once at
// entry and executes lock-free against it.
func (e *Engine) RunSeeker(ctx context.Context, s Seeker) (Hits, RunStats, error) {
	sn, err := e.pin()
	if err != nil {
		return nil, RunStats{}, err
	}
	defer e.unpin(sn)
	return e.runSeekerPinned(ctx, sn, s)
}

// runSeekerPinned is RunSeeker against an already pinned snapshot.
func (e *Engine) runSeekerPinned(ctx context.Context, sn *snapshot, s Seeker) (Hits, RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, RunStats{}, berr.FromContext("seeker.run", err)
	}
	v := &view{Engine: e, sn: sn}
	hits, stats, err := v.runSeekerCached(ctx, s, NoRewrite)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, stats, berr.FromContext("seeker.run", err)
	}
	return hits, stats, err
}

// applyForcedOrder reorders ranked ids so that ids listed in forced appear
// in forced's relative order; unlisted ids keep their ranked positions.
func applyForcedOrder(ranked, forced []string) []string {
	pos := make(map[string]int, len(forced))
	for i, id := range forced {
		pos[id] = i
	}
	// Collect ranked ids that are constrained, in forced order.
	var constrained []string
	for _, id := range forced {
		for _, r := range ranked {
			if r == id {
				constrained = append(constrained, id)
				break
			}
		}
	}
	out := make([]string, 0, len(ranked))
	ci := 0
	for _, id := range ranked {
		if _, ok := pos[id]; ok {
			out = append(out, constrained[ci])
			ci++
		} else {
			out = append(out, id)
		}
	}
	return out
}
