package core

import (
	"context"
	"fmt"
	"time"
)

// RunOptions tune plan execution.
type RunOptions struct {
	// Optimize enables the two-phase optimizer (execution-group
	// reordering + query rewriting). Disabled it reproduces B-NO, the
	// paper's unoptimized baseline.
	Optimize bool
	// ForcedOrder, when non-empty, fixes the relative execution order of
	// seekers inside execution groups (used by the optimizer experiments
	// to run random and oracle orders). Ids absent from the slice keep
	// their ranked position.
	ForcedOrder []string
	// Parallel executes the plan on the concurrent DAG scheduler: every
	// node — free seekers, execution groups, Difference-rewrite chains,
	// and combiners — becomes a task dispatched to a bounded worker pool
	// as soon as its dependencies resolve. Seekers are pure reads, so
	// NodeHits are identical to sequential execution; only the wall-clock
	// completion order varies (SeekerOrder stays deterministic, see
	// PlanResult). Sub-plans joined by Union or Counter combiners, like
	// the multi-objective plan of Listing 4, gain the most.
	Parallel bool
	// MaxWorkers bounds the scheduler's worker pool (and therefore how
	// many seekers run concurrently). Zero or negative means GOMAXPROCS.
	// Ignored without Parallel.
	MaxWorkers int
	// Context cancels plan execution: between scheduler tasks, between
	// execution-group members, and between per-shard index scans. A nil
	// Context means context.Background(). On cancellation Run returns
	// the context's error; partial results are discarded.
	Context context.Context
}

// PlanResult is the outcome of executing a discovery plan.
type PlanResult struct {
	// Output holds the scored tables of the plan's output node.
	Output Hits
	// Tables holds the output table names, best first.
	Tables []string
	// NodeHits maps every node id to its result.
	NodeHits map[string]Hits
	// Stats maps seeker node ids to execution diagnostics.
	Stats map[string]RunStats
	// SeekerOrder is the deterministic seeker execution order: the order
	// the sequential engine executes (topological order with execution
	// groups expanded at their ranked positions and Difference
	// subtrahends hoisted before their rewritten minuends). Under
	// Parallel the same order is reported even though seekers complete
	// concurrently; see CompletionOrder for what actually happened.
	SeekerOrder []string
	// CompletionOrder records the order seekers actually finished in.
	// Sequential runs match SeekerOrder; Parallel runs are
	// timing-dependent and nondeterministic.
	CompletionOrder []string
	// PeakConcurrency is the maximum number of seekers observed running
	// simultaneously — worker-pool instrumentation for verifying that a
	// parallel plan actually overlapped its independent seekers (1 for
	// sequential runs).
	PeakConcurrency int
	// Duration is the total wall-clock execution time, including
	// optimization overhead (the paper reports optimizer time as part of
	// BLEND's runtime).
	Duration time.Duration
}

// RunPlan executes the plan with the optimizer enabled.
func (e *Engine) RunPlan(p *Plan) (*PlanResult, error) {
	return e.Run(p, RunOptions{Optimize: true})
}

// RunPlanNoOpt executes the plan without optimization (B-NO): seekers run
// in insertion order with no rewriting.
func (e *Engine) RunPlanNoOpt(p *Plan) (*PlanResult, error) {
	return e.Run(p, RunOptions{})
}

// Run executes the plan with explicit options.
func (e *Engine) Run(p *Plan, opts RunOptions) (*PlanResult, error) {
	start := time.Now()
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan cancelled before execution: %w", err)
	}
	topo, err := p.validate()
	if err != nil {
		return nil, err
	}
	res := &PlanResult{
		NodeHits: make(map[string]Hits, len(p.nodes)),
		Stats:    make(map[string]RunStats),
	}

	// Membership maps for optimization decisions.
	groupOf := make(map[string]*executionGroup)
	var groups []executionGroup
	excludeFrom := make(map[string]string) // minuend seeker -> subtrahend node
	if opts.Optimize {
		groups = p.findExecutionGroups()
		for gi := range groups {
			for _, m := range groups[gi].members {
				groupOf[m] = &groups[gi]
			}
		}
		consumers := p.consumers()
		for _, id := range p.order {
			n := p.nodes[id]
			if n.isSeeker() || n.combiner.Kind() != Difference || len(n.inputs) != 2 {
				continue
			}
			minuend := n.inputs[0]
			mn := p.nodes[minuend]
			// Only rewrite a seeker exclusively owned by this combiner,
			// and only when it is not already inside an intersect group.
			if mn != nil && mn.isSeeker() && len(consumers[minuend]) == 1 && groupOf[minuend] == nil {
				excludeFrom[minuend] = n.inputs[1]
			}
		}
	}

	// Rank execution-group members up front: ranking needs only index
	// statistics, never intermediate results, so both execution modes
	// (and the deterministic SeekerOrder) share one ranking.
	rankedOf := make(map[string][]string, len(groups))
	for gi := range groups {
		order := e.rankSeekers(p, groups[gi].members)
		if len(opts.ForcedOrder) > 0 {
			order = applyForcedOrder(order, opts.ForcedOrder)
		}
		rankedOf[groups[gi].combiner] = order
	}

	ex := &planExec{
		e:           e,
		p:           p,
		res:         res,
		ctx:         ctx,
		optimize:    opts.Optimize,
		groupOf:     groupOf,
		excludeFrom: excludeFrom,
		rankedOf:    rankedOf,
	}
	if opts.Parallel {
		err = ex.runScheduled(topo, opts.MaxWorkers)
	} else {
		err = ex.runSequential(topo)
	}
	if err != nil {
		return nil, err
	}
	res.SeekerOrder = ex.emissionOrder(topo)
	res.CompletionOrder = ex.completion
	res.PeakConcurrency = int(ex.peak)
	res.Output = res.NodeHits[p.output]
	res.Tables = e.TableNames(res.Output)
	res.Duration = time.Since(start)
	return res, nil
}

// RunSeeker executes a single seeker outside any plan (the "simple task"
// mode of §VII-A).
func (e *Engine) RunSeeker(s Seeker) (Hits, RunStats, error) {
	return s.run(context.Background(), e, NoRewrite)
}

// RunSeekerContext executes a single seeker under a cancellable context.
func (e *Engine) RunSeekerContext(ctx context.Context, s Seeker) (Hits, RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.run(ctx, e, NoRewrite)
}

// applyForcedOrder reorders ranked ids so that ids listed in forced appear
// in forced's relative order; unlisted ids keep their ranked positions.
func applyForcedOrder(ranked, forced []string) []string {
	pos := make(map[string]int, len(forced))
	for i, id := range forced {
		pos[id] = i
	}
	// Collect ranked ids that are constrained, in forced order.
	var constrained []string
	for _, id := range forced {
		for _, r := range ranked {
			if r == id {
				constrained = append(constrained, id)
				break
			}
		}
	}
	out := make([]string, 0, len(ranked))
	ci := 0
	for _, id := range ranked {
		if _, ok := pos[id]; ok {
			out = append(out, constrained[ci])
			ci++
		} else {
			out = append(out, id)
		}
	}
	return out
}
