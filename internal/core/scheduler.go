package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"blend/internal/berr"
)

// planExec carries the shared state of one plan execution. Both execution
// modes — the sequential resolver and the concurrent DAG scheduler — run
// through the same node helpers, so their NodeHits are computed by
// identical code and differ only in dispatch order.
type planExec struct {
	v   *view
	p   *Plan
	res *PlanResult

	optimize    bool
	explain     bool
	groupOf     map[string]*executionGroup
	excludeFrom map[string]string
	rankedOf    map[string][]string // Intersect combiner id -> ranked members

	mu         sync.Mutex // guards res maps and completion
	completion []string

	inFlight int32
	peak     int32
}

// runSeeker executes one seeker node and records its result.
func (x *planExec) runSeeker(ctx context.Context, id string, rw Rewrite) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := x.p.nodes[id]
	cur := atomic.AddInt32(&x.inFlight, 1)
	for {
		peak := atomic.LoadInt32(&x.peak)
		if cur <= peak || atomic.CompareAndSwapInt32(&x.peak, peak, cur) {
			break
		}
	}
	hits, stats, err := x.v.runSeekerCached(ctx, n.seeker, rw)
	atomic.AddInt32(&x.inFlight, -1)
	if err != nil {
		// Wrap preserves an inner typed code (and errors.Is through Err),
		// so cancellation and index corruption keep their classification.
		return berr.Wrap(berr.CodeInternal, fmt.Sprintf("plan.node[%s]", id), err)
	}
	x.mu.Lock()
	x.res.NodeHits[id] = hits
	x.res.Stats[id] = stats
	if x.explain {
		x.res.SQLByNode[id] = n.seeker.SQL(rw)
		path := stats.Path
		if stats.CacheHit {
			path += " (cached)"
		}
		x.res.PathByNode[id] = path
	}
	x.completion = append(x.completion, id)
	x.mu.Unlock()
	return nil
}

// hitsOf reads a finished node's result.
func (x *planExec) hitsOf(id string) Hits {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.res.NodeHits[id]
}

// done reports whether a node already has a result.
func (x *planExec) done(id string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	_, ok := x.res.NodeHits[id]
	return ok
}

// runGroup executes an execution group's members in ranked order, each
// seeker after the first restricted to the tables found so far (the
// Intersection rewrite rule). The chain is inherently sequential — every
// member's SQL depends on its predecessor's result — so a group forms a
// single scheduler task.
func (x *planExec) runGroup(ctx context.Context, g *executionGroup) error {
	var prior []int32
	for i, id := range x.rankedOf[g.combiner] {
		rw := NoRewrite
		if i > 0 {
			rw = IncludeTables(prior)
		}
		if err := x.runSeeker(ctx, id, rw); err != nil {
			return err
		}
		prior = x.hitsOf(id).TableIDs()
	}
	return nil
}

// runCombiner merges the (already resolved) inputs of a combiner node.
func (x *planExec) runCombiner(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := x.p.nodes[id]
	x.mu.Lock()
	collected := make([]Hits, len(n.inputs))
	for i, in := range n.inputs {
		collected[i] = x.res.NodeHits[in]
	}
	x.mu.Unlock()
	out := n.combiner.Combine(collected)
	x.mu.Lock()
	x.res.NodeHits[id] = out
	x.mu.Unlock()
	return nil
}

// runSequential resolves nodes depth-first in topological order — the
// reference execution whose results the scheduler must reproduce bit for
// bit.
func (x *planExec) runSequential(ctx context.Context, topo []string) error {
	var resolve func(id string) error
	resolve = func(id string) error {
		if x.done(id) {
			return nil
		}
		n := x.p.nodes[id]
		if n.isSeeker() {
			if g := x.groupOf[id]; g != nil {
				return x.runGroup(ctx, g)
			}
			if sub, ok := x.excludeFrom[id]; ok {
				if err := resolve(sub); err != nil {
					return err
				}
				return x.runSeeker(ctx, id, ExcludeTables(x.hitsOf(sub).TableIDs()))
			}
			return x.runSeeker(ctx, id, NoRewrite)
		}
		// Combiner: resolve inputs first. For Difference the subtrahend
		// resolves before the minuend so its result can rewrite the
		// minuend's SQL.
		if x.optimize && n.combiner.Kind() == Difference && len(n.inputs) == 2 {
			if err := resolve(n.inputs[1]); err != nil {
				return err
			}
		}
		for _, in := range n.inputs {
			if err := resolve(in); err != nil {
				return err
			}
		}
		return x.runCombiner(ctx, id)
	}
	for _, id := range topo {
		if err := resolve(id); err != nil {
			return err
		}
	}
	return nil
}

// schedTask is one node of the execution DAG handed to the worker pool.
type schedTask struct {
	run        func() error
	deps       int32 // remaining unfinished dependencies
	dependents []*schedTask
}

// runScheduled executes the plan as a task DAG on a bounded worker pool:
// free seekers, execution groups, Difference-rewrite chains, and combiners
// each become one task, dispatched the moment their dependencies resolve.
func (x *planExec) runScheduled(ctx context.Context, topo []string, maxWorkers int) error {
	taskOf := make(map[string]*schedTask, len(topo))
	var tasks []*schedTask
	newTask := func(run func() error) *schedTask {
		t := &schedTask{run: run}
		tasks = append(tasks, t)
		return t
	}
	groupTask := make(map[string]*schedTask)
	for _, id := range topo {
		id := id
		n := x.p.nodes[id]
		switch {
		case n.isSeeker() && x.groupOf[id] != nil:
			// All members of a group share one task (their rewrite
			// chain is sequential by construction).
			g := x.groupOf[id]
			t, ok := groupTask[g.combiner]
			if !ok {
				t = newTask(func() error { return x.runGroup(ctx, g) })
				groupTask[g.combiner] = t
			}
			taskOf[id] = t
		case n.isSeeker():
			if sub, ok := x.excludeFrom[id]; ok {
				taskOf[id] = newTask(func() error {
					return x.runSeeker(ctx, id, ExcludeTables(x.hitsOf(sub).TableIDs()))
				})
			} else {
				taskOf[id] = newTask(func() error { return x.runSeeker(ctx, id, NoRewrite) })
			}
		default:
			taskOf[id] = newTask(func() error { return x.runCombiner(ctx, id) })
		}
	}
	// Wire dependencies in a second pass: a Difference subtrahend may sit
	// anywhere in the topological order relative to its minuend.
	type edge struct{ from, to *schedTask }
	wired := make(map[edge]bool)
	dep := func(from, to *schedTask) {
		if from == nil || to == nil || from == to || wired[edge{from, to}] {
			return
		}
		wired[edge{from, to}] = true
		from.dependents = append(from.dependents, to)
		to.deps++
	}
	for _, id := range topo {
		n := x.p.nodes[id]
		if n.isSeeker() {
			if sub, ok := x.excludeFrom[id]; ok {
				dep(taskOf[sub], taskOf[id])
			}
			continue
		}
		for _, in := range n.inputs {
			dep(taskOf[in], taskOf[id])
		}
	}
	return runTaskPool(ctx, tasks, maxWorkers)
}

// runTaskPool drains a task DAG with a bounded number of workers. On the
// first task error (or context cancellation) remaining tasks are skipped
// but still drained, so the pool always terminates; the first error wins.
func runTaskPool(ctx context.Context, tasks []*schedTask, maxWorkers int) error {
	if len(tasks) == 0 {
		return nil
	}
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	if maxWorkers > len(tasks) {
		maxWorkers = len(tasks)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Every task is sent to ready exactly once, so the buffer makes all
	// sends non-blocking and completion can safely close the channel.
	ready := make(chan *schedTask, len(tasks))
	pending := int32(len(tasks))
	var errOnce sync.Once
	var firstErr error
	complete := func(t *schedTask) {
		for _, d := range t.dependents {
			if atomic.AddInt32(&d.deps, -1) == 0 {
				ready <- d
			}
		}
		if atomic.AddInt32(&pending, -1) == 0 {
			close(ready)
		}
	}
	// Seed the initially-ready tasks before any worker starts: once
	// workers run, complete() also enqueues tasks whose deps reach zero,
	// and seeding concurrently could observe such a task and enqueue it
	// twice. The buffer holds every task, so seeding cannot block.
	for _, t := range tasks {
		if t.deps == 0 {
			ready <- t
		}
	}
	// A panicking task (a lazily mapped shard failing its first-touch
	// checksum panics typed bad_index) must still run complete(t) — the
	// ready channel never closes otherwise — so capture the panic, cancel
	// the rest of the plan, and re-raise it on the calling goroutine once
	// the workers drain (see repanic).
	var panicOnce sync.Once
	taskPanic := make([]any, 1)
	runTask := func(t *schedTask) (err error) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					taskPanic[0] = r
					cancel()
				})
			}
		}()
		return t.run()
	}
	var wg sync.WaitGroup
	for w := 0; w < maxWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ready {
				if cctx.Err() == nil {
					if err := runTask(t); err != nil {
						errOnce.Do(func() {
							firstErr = err
							cancel()
						})
					}
				}
				complete(t)
			}
		}()
	}
	wg.Wait()
	repanic(taskPanic)
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// emissionOrder computes the deterministic SeekerOrder: a dry run of the
// sequential resolver that records which seeker would execute when, without
// touching the index. Both execution modes report this order, so plan
// diagnostics are stable under concurrency.
func (x *planExec) emissionOrder(topo []string) []string {
	done := make(map[string]bool, len(x.p.nodes))
	order := make([]string, 0, len(x.p.nodes))
	var visit func(id string)
	visit = func(id string) {
		if done[id] {
			return
		}
		n := x.p.nodes[id]
		if n.isSeeker() {
			if g := x.groupOf[id]; g != nil {
				for _, m := range x.rankedOf[g.combiner] {
					done[m] = true
					order = append(order, m)
				}
				return
			}
			if sub, ok := x.excludeFrom[id]; ok {
				visit(sub)
			}
			done[id] = true
			order = append(order, id)
			return
		}
		done[id] = true
		if x.optimize && n.combiner.Kind() == Difference && len(n.inputs) == 2 {
			visit(n.inputs[1])
		}
		for _, in := range n.inputs {
			visit(in)
		}
	}
	for _, id := range topo {
		visit(id)
	}
	return order
}
