package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"time"

	"blend/internal/costmodel"
	"blend/internal/storage"
	"blend/internal/table"
)

// schedLake generates a deterministic random lake with shared vocabulary,
// numeric columns, and enough tables for interesting plans.
func schedLake(seed int64, numTables int) []*table.Table {
	rng := rand.New(rand.NewSource(seed))
	tables := make([]*table.Table, 0, numTables)
	for ti := 0; ti < numTables; ti++ {
		t := table.New(fmt.Sprintf("L%d", ti), "Key", "Aux", "Num")
		rows := 6 + rng.Intn(10)
		for r := 0; r < rows; r++ {
			t.MustAppendRow(
				"v"+strconv.Itoa(rng.Intn(30)),
				"a"+strconv.Itoa(rng.Intn(20)),
				strconv.Itoa(rng.Intn(100)),
			)
		}
		t.InferKinds()
		tables = append(tables, t)
	}
	return tables
}

// randomVals draws n random vocabulary values.
func randomVals(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "v" + strconv.Itoa(rng.Intn(30))
	}
	return out
}

// randomMixedPlan builds a plan exercising every scheduler shape: an
// execution group (Intersect over exclusively-owned seekers), a
// Difference-rewrite chain, and a Union/Counter fan-out of free seekers.
func randomMixedPlan(rng *rand.Rand) *Plan {
	p := NewPlan()
	// Execution group: 2-3 exclusive seekers under one Intersect.
	groupN := 2 + rng.Intn(2)
	groupIDs := make([]string, 0, groupN)
	for i := 0; i < groupN; i++ {
		id := fmt.Sprintf("g%d", i)
		p.MustAddSeeker(id, NewSC(randomVals(rng, 3+rng.Intn(4)), 10))
		groupIDs = append(groupIDs, id)
	}
	p.MustAddCombiner("inter", NewIntersect(10), groupIDs...)
	// Difference-rewrite chain: exclusive minuend, seeker subtrahend.
	p.MustAddSeeker("minuend", NewKW(randomVals(rng, 4), 10))
	p.MustAddSeeker("subtra", NewKW(randomVals(rng, 2), 5))
	p.MustAddCombiner("diff", NewDifference(10), "minuend", "subtra")
	// Free seekers fanned into a Counter.
	p.MustAddSeeker("free1", NewKW(randomVals(rng, 3), 10))
	tuples := [][]string{{randomVals(rng, 1)[0], "a" + strconv.Itoa(rng.Intn(20))}}
	p.MustAddSeeker("free2", NewMC(tuples, 10))
	p.MustAddCombiner("count", NewCounter(10), "free1", "free2", "diff")
	// Roof: Union of everything.
	p.MustAddCombiner("all", NewUnion(15), "inter", "count")
	return p
}

// TestSchedulerMatchesSequential property-tests the core invariant: the
// concurrent scheduler must produce NodeHits identical to sequential
// execution, with and without the optimizer, on plans mixing execution
// groups, Difference rewrites, and Union/Counter fan-outs.
func TestSchedulerMatchesSequential(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, schedLake(42, 14)))
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		p := randomMixedPlan(rng)
		for _, optimize := range []bool{false, true} {
			seq, err := e.Run(context.Background(), p, RunOptions{Optimize: optimize})
			if err != nil {
				t.Fatal(err)
			}
			par, err := e.Run(context.Background(), p, RunOptions{Optimize: optimize, Parallel: true, MaxWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.NodeHits, par.NodeHits) {
				t.Fatalf("trial %d optimize=%v: NodeHits differ\nseq: %v\npar: %v",
					trial, optimize, seq.NodeHits, par.NodeHits)
			}
			if !reflect.DeepEqual(seq.Tables, par.Tables) {
				t.Fatalf("trial %d optimize=%v: output differs", trial, optimize)
			}
		}
	}
}

// TestSchedulerMatchesSequentialSharded repeats the invariant on a sharded
// index, covering the concurrent per-shard SQL fan-out as well.
func TestSchedulerMatchesSequentialSharded(t *testing.T) {
	lake := schedLake(77, 14)
	mono := NewEngine(storage.Build(storage.ColumnStore, lake))
	shard := NewEngine(storage.BuildSharded(storage.ColumnStore, lake, 4))
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 10; trial++ {
		p := randomMixedPlan(rng)
		ref, err := mono.Run(context.Background(), p, RunOptions{Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		got, err := shard.Run(context.Background(), p, RunOptions{Optimize: true, Parallel: true, MaxWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.NodeHits, got.NodeHits) {
			t.Fatalf("trial %d: sharded parallel NodeHits differ from monolithic sequential", trial)
		}
	}
}

// TestSeekerOrderDeterministicUnderParallel covers the SeekerOrder
// contract: identical across repeated parallel runs and equal to the
// sequential order, even though completion order varies.
func TestSeekerOrderDeterministicUnderParallel(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, schedLake(7, 12)))
	p := randomMixedPlan(rand.New(rand.NewSource(8)))
	seq, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.SeekerOrder, seq.CompletionOrder) {
		t.Fatalf("sequential SeekerOrder %v must match its completion order %v",
			seq.SeekerOrder, seq.CompletionOrder)
	}
	for i := 0; i < 5; i++ {
		par, err := e.Run(context.Background(), p, RunOptions{Optimize: true, Parallel: true, MaxWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par.SeekerOrder, seq.SeekerOrder) {
			t.Fatalf("parallel SeekerOrder %v != sequential %v", par.SeekerOrder, seq.SeekerOrder)
		}
		if len(par.CompletionOrder) != len(seq.CompletionOrder) {
			t.Fatalf("parallel completed %d seekers, want %d",
				len(par.CompletionOrder), len(seq.CompletionOrder))
		}
	}
}

// blockingSeeker is a test double whose run blocks until released,
// signalling when it starts — a barrier proving true concurrency.
type blockingSeeker struct {
	started chan string
	release chan struct{}
	id      string
}

func (s *blockingSeeker) Kind() SeekerKind { return KW }
func (s *blockingSeeker) TopK() int        { return 1 }
func (s *blockingSeeker) Features(storage.Reader) costmodel.Features {
	return costmodel.Features{Card: 1, Cols: 1, AvgFreq: 1}
}
func (s *blockingSeeker) SQL(Rewrite) string { return "" }
func (s *blockingSeeker) run(ctx context.Context, v *view, rw Rewrite) (Hits, RunStats, error) {
	s.started <- s.id
	select {
	case <-s.release:
		return Hits{{TableID: 0, Score: 1}}, RunStats{Kind: KW}, nil
	case <-ctx.Done():
		return nil, RunStats{}, ctx.Err()
	}
}

// TestIndependentSeekersRunConcurrently is the acceptance check: four
// independent seekers on a 4-shard index must overlap in time under the
// scheduler. Each seeker blocks until all four have started, so the test
// deadlocks (and times out) if the pool serializes them; the worker-pool
// instrumentation must report the overlap.
func TestIndependentSeekersRunConcurrently(t *testing.T) {
	e := NewEngine(storage.BuildSharded(storage.ColumnStore, schedLake(11, 12), 4))
	started := make(chan string, 4)
	release := make(chan struct{})
	p := NewPlan()
	ids := []string{"s0", "s1", "s2", "s3"}
	for _, id := range ids {
		p.MustAddSeeker(id, &blockingSeeker{started: started, release: release, id: id})
	}
	p.MustAddCombiner("any", NewUnion(5), ids...)

	type outcome struct {
		res *PlanResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.Run(context.Background(), p, RunOptions{Parallel: true, MaxWorkers: 4})
		done <- outcome{res, err}
	}()
	// All four seekers must reach their barrier while blocked — only
	// possible if they run simultaneously.
	for i := 0; i < 4; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of 4 independent seekers started concurrently", i)
		}
	}
	close(release)
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.PeakConcurrency != 4 {
		t.Fatalf("PeakConcurrency = %d, want 4", out.res.PeakConcurrency)
	}
}

// TestRunPreCancelledContext covers prompt cancellation: a context
// cancelled before Run starts must abort without executing any seeker.
func TestRunPreCancelledContext(t *testing.T) {
	e := fig1Engine()
	p := NewPlan()
	p.MustAddSeeker("kw", NewKW(departments, 5))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []bool{false, true} {
		start := time.Now()
		_, err := e.Run(ctx, p, RunOptions{Optimize: true, Parallel: parallel})
		if err == nil {
			t.Fatalf("parallel=%v: pre-cancelled context must fail", parallel)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatalf("parallel=%v: cancellation not prompt", parallel)
		}
	}
}

// TestRunCancelMidPlan cancels while seekers are blocked mid-execution;
// Run must return the context error instead of hanging.
func TestRunCancelMidPlan(t *testing.T) {
	e := fig1Engine()
	started := make(chan string, 2)
	release := make(chan struct{}) // never closed: only ctx can unblock
	p := NewPlan()
	p.MustAddSeeker("b0", &blockingSeeker{started: started, release: release, id: "b0"})
	p.MustAddSeeker("b1", &blockingSeeker{started: started, release: release, id: "b1"})
	p.MustAddCombiner("u", NewUnion(5), "b0", "b1")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx, p, RunOptions{Parallel: true, MaxWorkers: 2})
		done <- err
	}()
	<-started
	<-started
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled run must return an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
}

// TestRunSeekerContext covers single-seeker cancellation.
func TestRunSeekerContext(t *testing.T) {
	e := fig1Engine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.RunSeeker(ctx, NewKW(departments, 5)); err == nil {
		t.Fatal("pre-cancelled seeker run must fail")
	}
	if hits, _, err := e.RunSeeker(context.Background(), NewKW(departments, 5)); err != nil || len(hits) == 0 {
		t.Fatalf("live context run failed: %v %v", hits, err)
	}
}

// TestShardedEngineSeekersMatchMonolithic runs every real seeker kind
// against monolithic and sharded engines and requires identical hits —
// the merge-exactness property the partitioning-by-table guarantees.
func TestShardedEngineSeekersMatchMonolithic(t *testing.T) {
	lake := schedLake(21, 16)
	mono := NewEngine(storage.Build(storage.ColumnStore, lake))
	shard := NewEngine(storage.BuildSharded(storage.ColumnStore, lake, 4))
	if shard.NumShards() != 4 {
		t.Fatalf("NumShards = %d", shard.NumShards())
	}
	keys := make([]string, 12)
	targets := make([]float64, 12)
	for i := range keys {
		keys[i] = "v" + strconv.Itoa(i)
		targets[i] = float64(i * i % 17)
	}
	seekers := []Seeker{
		NewKW([]string{"v1", "v2", "v3", "v4"}, 8),
		NewSC([]string{"v5", "v6", "v7"}, 8),
		NewMC([][]string{{"v1", "a1"}, {"v2", "a2"}}, 8),
		NewCorrelation(keys, targets, 8),
	}
	for i, s := range seekers {
		h1, _, err := mono.RunSeeker(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		h2, _, err := shard.RunSeeker(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(h1, h2) {
			t.Fatalf("seeker %d (%v): monolithic %v != sharded %v", i, s.Kind(), h1, h2)
		}
	}
}

// TestSchedulerRunsEachTaskOnce guards the pool-seeding race: under heavy
// fan-out with fast tasks, every seeker must execute exactly once (no
// double enqueue when a dependent becomes ready while initial tasks are
// still being seeded).
func TestSchedulerRunsEachTaskOnce(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, schedLake(3, 10)))
	p := NewPlan()
	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("s%d", i)
		p.MustAddSeeker(id, NewKW([]string{"v" + strconv.Itoa(i%5)}, 5))
		ids = append(ids, id)
	}
	p.MustAddCombiner("u1", NewUnion(10), ids[:6]...)
	p.MustAddCombiner("u2", NewUnion(10), ids[6:]...)
	p.MustAddCombiner("all", NewCounter(10), "u1", "u2")
	for trial := 0; trial < 30; trial++ {
		res, err := e.Run(context.Background(), p, RunOptions{Parallel: true, MaxWorkers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.CompletionOrder) != len(ids) {
			t.Fatalf("trial %d: %d completions for %d seekers: %v",
				trial, len(res.CompletionOrder), len(ids), res.CompletionOrder)
		}
		seen := make(map[string]bool, len(ids))
		for _, id := range res.CompletionOrder {
			if seen[id] {
				t.Fatalf("trial %d: seeker %s completed twice", trial, id)
			}
			seen[id] = true
		}
	}
}
