package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"blend/internal/costmodel"
	"blend/internal/qcr"
	"blend/internal/storage"
	"blend/internal/xash"
)

// SeekerKind identifies the seeker types of §IV-A. It aliases the cost
// model's kind so trained models attach without translation.
type SeekerKind = costmodel.Kind

// Seeker kind values.
const (
	KW = costmodel.KindKW
	SC = costmodel.KindSC
	MC = costmodel.KindMC
	C  = costmodel.KindC
)

// RunStats captures per-seeker execution diagnostics used by the
// experiments (Table V counts true/false positives of the MC seeker).
//
// Invariant: Candidates and Validated describe a seeker's validation
// funnel and exist for exactly two kinds. For MC they are candidate rows
// surviving the XASH super-key filter, then rows surviving exact tuple
// validation. For Semantic they are distinct candidate tables surviving
// the rewrite post-filter of the ANN search, then tables corroborated by
// at least one exact query-value posting. Every other seeker kind has no
// such funnel and reports both as zero, on the native and the SQL path
// alike (core_test.go asserts this). Consumers attributing funnel
// counters must therefore gate on Kind (MC or Semantic), not on the
// counters being non-zero.
type RunStats struct {
	Kind       SeekerKind
	Duration   time.Duration
	SQLRows    int // rows the seeker's (actual or equivalent) SQL produced; ANN neighbours for Semantic
	Candidates int // funnel input (MC and Semantic only; see above)
	Validated  int // funnel survivors (MC and Semantic only; see above)
	Rewritten  bool
	// Path reports the execution path the run took: PathNative for the
	// posting-list fast path, PathSQL for the minisql interpreter, PathANN
	// for the semantic seeker's embedding search. The optimizer/cost-model
	// layer uses it to attribute timings to the right executor.
	Path string
	// CacheHit marks a run served from the engine's result cache; Path
	// then reports the path that originally produced the entry.
	CacheHit bool
}

// Seeker is a low-level search operator: given an input Q it returns the
// top-k most relevant tables (§IV-A).
type Seeker interface {
	// Kind reports the seeker type, which drives rule-based ranking.
	Kind() SeekerKind
	// TopK is the seeker-level result limit.
	TopK() int
	// Features extracts the cost-model features of this seeker's input
	// against the given index.
	Features(store storage.Reader) costmodel.Features
	// SQL renders the seeker's (first-phase) SQL statement with the given
	// rewrite predicate injected, as the optimizer would execute it.
	SQL(rw Rewrite) string
	// run executes the seeker against a view — one pinned generation
	// snapshot plus the engine's execution knobs. The context cancels
	// index scans between shards; implementations must return promptly
	// once it is done.
	run(ctx context.Context, v *view, rw Rewrite) (Hits, RunStats, error)
}

// Rewrite is the combiner-dependent predicate the optimizer injects into a
// seeker's SQL (§VII-B): restrict to, or exclude, previously discovered
// table ids.
type Rewrite struct {
	mode int // 0 none, 1 include, 2 exclude
	ids  []int32
}

// NoRewrite leaves the seeker's SQL untouched.
var NoRewrite = Rewrite{}

// IncludeTables restricts a seeker to the given table ids
// (WHERE TableId IN (…), the Intersection rewrite rule).
func IncludeTables(ids []int32) Rewrite { return Rewrite{mode: 1, ids: ids} }

// ExcludeTables excludes the given table ids
// (WHERE TableId NOT IN (…), the Difference rewrite rule).
func ExcludeTables(ids []int32) Rewrite { return Rewrite{mode: 2, ids: ids} }

// active reports whether the rewrite changes the SQL.
func (r Rewrite) active() bool { return r.mode != 0 }

// predicate renders the rewrite as an SQL conjunct on the given qualified
// TableId column, with a leading " AND ", or "" for NoRewrite.
func (r Rewrite) predicate(col string) string {
	switch r.mode {
	case 1, 2:
		var sb strings.Builder
		sb.WriteString(" AND ")
		sb.WriteString(col)
		if r.mode == 2 {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, id := range r.ids {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%d", id)
		}
		sb.WriteString(")")
		return sb.String()
	default:
		return ""
	}
}

// quoteList renders string values as a SQL literal list.
func quoteList(values []string) string {
	var sb strings.Builder
	for i, v := range values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("'")
		sb.WriteString(strings.ReplaceAll(v, "'", "''"))
		sb.WriteString("'")
	}
	return sb.String()
}

// distinct removes duplicates preserving first-appearance order.
func distinct(values []string) []string {
	seen := make(map[string]struct{}, len(values))
	out := make([]string, 0, len(values))
	for _, v := range values {
		if v == "" {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// ---------------------------------------------------------------- SC / KW

// SCSeeker finds tables with a single column overlapping the input column
// the most (Listing 1).
type SCSeeker struct {
	Values []string
	K      int
	// MinOverlap, when positive, drops tables overlapping on fewer than
	// this many distinct values (a HAVING threshold on Listing 1's GROUP
	// BY — useful to cut long low-overlap tails from join candidates).
	MinOverlap int
}

// NewSC builds a single-column seeker over the input column's values.
func NewSC(values []string, k int) *SCSeeker {
	return &SCSeeker{Values: distinct(values), K: k}
}

// Kind implements Seeker.
func (s *SCSeeker) Kind() SeekerKind { return SC }

// TopK implements Seeker.
func (s *SCSeeker) TopK() int { return s.K }

// Features implements Seeker.
func (s *SCSeeker) Features(store storage.Reader) costmodel.Features {
	return costmodel.Features{
		Card:    float64(len(s.Values)),
		Cols:    1,
		AvgFreq: store.AvgFrequency(s.Values),
	}
}

// SQL implements Seeker. The GROUP BY (TableId, ColumnId) pairs are cut at
// the application level to k distinct tables, so no LIMIT is emitted here:
// a LIMIT on column groups could starve tables ranked below duplicated
// (table, column) pairs.
func (s *SCSeeker) SQL(rw Rewrite) string {
	sql := "SELECT TableId, COUNT(DISTINCT CellValue) AS overlap FROM AllTables" +
		" WHERE CellValue IN (" + quoteList(s.Values) + ")" + rw.predicate("TableId") +
		" GROUP BY TableId, ColumnId"
	if s.MinOverlap > 0 {
		sql += fmt.Sprintf(" HAVING COUNT(DISTINCT CellValue) >= %d", s.MinOverlap)
	}
	return sql + " ORDER BY overlap DESC, TableId ASC"
}

func (s *SCSeeker) run(ctx context.Context, v *view, rw Rewrite) (Hits, RunStats, error) {
	stats := RunStats{Kind: SC, Rewritten: rw.active(), Path: PathSQL}
	if len(s.Values) == 0 {
		return nil, stats, nil
	}
	if v.nativeServes(SC) {
		start := time.Now()
		hits, groups, err := v.runNativeOverlap(ctx, s.Values, s.K, s.MinOverlap, true, rw)
		if err != nil {
			return nil, stats, err
		}
		stats.Path = PathNative
		stats.Duration = time.Since(start)
		stats.SQLRows = groups
		return hits, stats, nil
	}
	res, dur, err := v.execSQL(ctx, s.SQL(rw))
	if err != nil {
		return nil, stats, err
	}
	stats.Duration = dur
	stats.SQLRows = res.NumRows()
	hits := make(Hits, 0, res.NumRows())
	for i := 0; i < res.NumRows(); i++ {
		tid, _ := res.Cell(i, 0).AsInt()
		overlap, _ := res.Cell(i, 1).AsFloat()
		hits = append(hits, TableHit{TableID: int32(tid), Score: overlap})
	}
	return topK(dedupeBest(hits), s.K), stats, nil
}

// KWSeeker finds tables overlapping a keyword set anywhere in the table
// (§IV-A2): the SC seeker without the ColumnId grouping.
type KWSeeker struct {
	Keywords []string
	K        int
	// MinOverlap, when positive, drops tables matching fewer than this
	// many distinct keywords.
	MinOverlap int
}

// NewKW builds a keyword seeker.
func NewKW(keywords []string, k int) *KWSeeker {
	return &KWSeeker{Keywords: distinct(keywords), K: k}
}

// Kind implements Seeker.
func (s *KWSeeker) Kind() SeekerKind { return KW }

// TopK implements Seeker.
func (s *KWSeeker) TopK() int { return s.K }

// Features implements Seeker.
func (s *KWSeeker) Features(store storage.Reader) costmodel.Features {
	return costmodel.Features{
		Card:    float64(len(s.Keywords)),
		Cols:    1,
		AvgFreq: store.AvgFrequency(s.Keywords),
	}
}

// SQL implements Seeker.
func (s *KWSeeker) SQL(rw Rewrite) string {
	sql := "SELECT TableId, COUNT(DISTINCT CellValue) AS overlap FROM AllTables" +
		" WHERE CellValue IN (" + quoteList(s.Keywords) + ")" + rw.predicate("TableId") +
		" GROUP BY TableId"
	if s.MinOverlap > 0 {
		sql += fmt.Sprintf(" HAVING COUNT(DISTINCT CellValue) >= %d", s.MinOverlap)
	}
	sql += " ORDER BY overlap DESC, TableId ASC"
	if s.K >= 0 {
		sql += fmt.Sprintf(" LIMIT %d", s.K)
	}
	return sql
}

func (s *KWSeeker) run(ctx context.Context, v *view, rw Rewrite) (Hits, RunStats, error) {
	stats := RunStats{Kind: KW, Rewritten: rw.active(), Path: PathSQL}
	if len(s.Keywords) == 0 {
		return nil, stats, nil
	}
	if v.nativeServes(KW) {
		start := time.Now()
		hits, groups, err := v.runNativeOverlap(ctx, s.Keywords, s.K, s.MinOverlap, false, rw)
		if err != nil {
			return nil, stats, err
		}
		stats.Path = PathNative
		stats.Duration = time.Since(start)
		stats.SQLRows = groups
		return hits, stats, nil
	}
	res, dur, err := v.execSQL(ctx, s.SQL(rw))
	if err != nil {
		return nil, stats, err
	}
	stats.Duration = dur
	stats.SQLRows = res.NumRows()
	hits := make(Hits, 0, res.NumRows())
	for i := 0; i < res.NumRows(); i++ {
		tid, _ := res.Cell(i, 0).AsInt()
		overlap, _ := res.Cell(i, 1).AsFloat()
		hits = append(hits, TableHit{TableID: int32(tid), Score: overlap})
	}
	// The SQL already groups per table, but each shard contributes its own
	// top-k; re-rank across the merged partials (a no-op re-sort on a
	// single shard, whose SQL ordered identically).
	return topK(hits, s.K), stats, nil
}

// ---------------------------------------------------------------- MC

// MCSeeker discovers tables joinable on a composite key: candidate rows
// must contain a whole query tuple (Listing 2 plus XASH filtering and exact
// validation, §VI).
type MCSeeker struct {
	// Tuples holds the query rows; each row lists the composite-key values
	// in column order. All rows must have the same width.
	Tuples [][]string
	K      int
}

// NewMC builds a multi-column seeker from query rows.
func NewMC(tuples [][]string, k int) *MCSeeker {
	cp := make([][]string, len(tuples))
	for i, t := range tuples {
		cp[i] = append([]string(nil), t...)
	}
	return &MCSeeker{Tuples: cp, K: k}
}

// Kind implements Seeker.
func (s *MCSeeker) Kind() SeekerKind { return MC }

// TopK implements Seeker.
func (s *MCSeeker) TopK() int { return s.K }

// width returns the composite key width.
func (s *MCSeeker) width() int {
	if len(s.Tuples) == 0 {
		return 0
	}
	return len(s.Tuples[0])
}

// columnValues returns the distinct values of query column i.
func (s *MCSeeker) columnValues(i int) []string {
	vals := make([]string, 0, len(s.Tuples))
	for _, t := range s.Tuples {
		if i < len(t) {
			vals = append(vals, t[i])
		}
	}
	return distinct(vals)
}

// Features implements Seeker. The MC frequency feature multiplies the
// per-column averages because the SQL joins the per-column index hits
// (§VII-B).
func (s *MCSeeker) Features(store storage.Reader) costmodel.Features {
	x := s.width()
	freq := 1.0
	card := 0
	for i := 0; i < x; i++ {
		vals := s.columnValues(i)
		card += len(vals)
		freq *= store.AvgFrequency(vals)
	}
	return costmodel.Features{Card: float64(card), Cols: float64(x), AvgFreq: freq}
}

// SQL implements Seeker: the first phase of the MC seeker (Listing 2),
// joining per-column index hits on (TableId, RowId). The rewrite predicate
// lands in the first subquery, which bounds every join result.
func (s *MCSeeker) SQL(rw Rewrite) string {
	x := s.width()
	if x == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("SELECT q0.TableId AS TableId, q0.RowId AS RowId,")
	sb.WriteString(" q0.SuperKeyLo AS SuperKeyLo, q0.SuperKeyHi AS SuperKeyHi FROM ")
	for i := 0; i < x; i++ {
		if i > 0 {
			sb.WriteString(" INNER JOIN ")
		}
		fmt.Fprintf(&sb, "(SELECT * FROM AllTables WHERE CellValue IN (%s)", quoteList(s.columnValues(i)))
		if i == 0 {
			sb.WriteString(rw.predicate("TableId"))
		}
		fmt.Fprintf(&sb, ") AS q%d", i)
		if i > 0 {
			fmt.Fprintf(&sb, " ON q0.TableId = q%d.TableId AND q0.RowId = q%d.RowId", i, i)
		}
	}
	return sb.String()
}

// run executes the MC seeker against the view's pinned snapshot (seekers
// only run inside Engine.Run / Engine.RunSeeker / the offline trainer).
func (s *MCSeeker) run(ctx context.Context, v *view, rw Rewrite) (Hits, RunStats, error) {
	stats := RunStats{Kind: MC, Rewritten: rw.active(), Path: PathSQL}
	if s.width() == 0 || len(s.Tuples) == 0 {
		return nil, stats, nil
	}
	if v.nativeServes(MC) {
		start := time.Now()
		hits, c, err := v.runNativeMC(ctx, s, rw)
		if err != nil {
			return nil, stats, err
		}
		stats.Path = PathNative
		stats.Duration = time.Since(start)
		stats.SQLRows = c.sqlRows
		stats.Candidates = c.candidates
		stats.Validated = c.validated
		return hits, stats, nil
	}
	res, dur, err := v.execSQL(ctx, s.SQL(rw))
	if err != nil {
		return nil, stats, err
	}
	stats.Duration = dur
	stats.SQLRows = res.NumRows()

	// Pre-hash the query tuples once.
	tupleKeys := make([]xash.Key, len(s.Tuples))
	for i, t := range s.Tuples {
		tupleKeys[i] = xash.HashRow(t)
	}

	type rowKey struct{ tid, rid int32 }
	seen := make(map[rowKey]struct{}, res.NumRows())
	matchedRows := make(map[int32]float64) // table id -> joinable row count
	start := time.Now()
	for i := 0; i < res.NumRows(); i++ {
		tidI, _ := res.Cell(i, 0).AsInt()
		ridI, _ := res.Cell(i, 1).AsInt()
		rk := rowKey{int32(tidI), int32(ridI)}
		if _, dup := seen[rk]; dup {
			continue
		}
		seen[rk] = struct{}{}
		loI, _ := res.Cell(i, 2).AsInt()
		hiI, _ := res.Cell(i, 3).AsInt()
		super := xash.Key{Lo: uint64(loI), Hi: uint64(hiI)}

		// XASH bloom filter: some query tuple must be fully covered.
		candidateTuples := make([]int, 0, 2)
		for ti, tk := range tupleKeys {
			if super.Contains(tk) {
				candidateTuples = append(candidateTuples, ti)
			}
		}
		if len(candidateTuples) == 0 {
			continue
		}
		stats.Candidates++

		// Exact validation at the application level: every value of the
		// tuple must occur in the candidate row.
		row := v.sn.store.ReconstructRow(rk.tid, rk.rid)
		cells := make(map[string]struct{}, len(row))
		for _, c := range row {
			if c != "" {
				cells[c] = struct{}{}
			}
		}
		valid := false
		for _, ti := range candidateTuples {
			all := true
			for _, v := range s.Tuples[ti] {
				if v == "" {
					continue
				}
				if _, ok := cells[v]; !ok {
					all = false
					break
				}
			}
			if all {
				valid = true
				break
			}
		}
		if valid {
			stats.Validated++
			matchedRows[rk.tid]++
		}
	}
	stats.Duration += time.Since(start)

	hits := make(Hits, 0, len(matchedRows))
	for tid, n := range matchedRows {
		hits = append(hits, TableHit{TableID: tid, Score: n})
	}
	return topK(hits, s.K), stats, nil
}

// ---------------------------------------------------------------- C

// CorrelationSeeker finds tables joinable on a key column that contain a
// numeric column correlating with the input target, ranked by |QCR|
// (Listing 3).
type CorrelationSeeker struct {
	// Keys are the join-key values, paired index-wise with Targets.
	Keys []string
	// Targets is the numeric target column.
	Targets []float64
	K       int
}

// NewCorrelation builds a correlation seeker from a (join key, target)
// column pair; the two slices are paired by position and truncated to the
// shorter length.
func NewCorrelation(keys []string, targets []float64, k int) *CorrelationSeeker {
	n := len(keys)
	if len(targets) < n {
		n = len(targets)
	}
	return &CorrelationSeeker{
		Keys:    append([]string(nil), keys[:n]...),
		Targets: append([]float64(nil), targets[:n]...),
		K:       k,
	}
}

// Kind implements Seeker.
func (s *CorrelationSeeker) Kind() SeekerKind { return C }

// TopK implements Seeker.
func (s *CorrelationSeeker) TopK() int { return s.K }

// Features implements Seeker.
func (s *CorrelationSeeker) Features(store storage.Reader) costmodel.Features {
	return costmodel.Features{
		Card:    float64(len(s.Keys)),
		Cols:    2,
		AvgFreq: store.AvgFrequency(s.Keys),
	}
}

// split partitions the join keys by their target's quadrant bit: k0 below
// the target mean, k1 at or above. The split happens while parsing the
// input, before the query is issued (§VI).
func (s *CorrelationSeeker) split() (k0, k1 []string) {
	mean := qcr.Mean(s.Targets)
	for i, key := range s.Keys {
		if key == "" {
			continue
		}
		if qcr.QuadrantBit(s.Targets[i], mean) == 1 {
			k1 = append(k1, key)
		} else {
			k0 = append(k0, key)
		}
	}
	return distinct(k0), distinct(k1)
}

// SQL implements Seeker: Listing 3 with the QCR score of §VI computed as
// (2·SUM(agreeing pairs) − COUNT(*)) / COUNT(*).
func (s *CorrelationSeeker) SQL(rw Rewrite) string {
	return s.sqlWithH(rw, DefaultSampleH)
}

func (s *CorrelationSeeker) sqlWithH(rw Rewrite, h int) string {
	k0, k1 := s.split()
	agree := make([]string, 0, 2)
	if len(k0) > 0 {
		agree = append(agree, "(keys.CellValue IN ("+quoteList(k0)+") AND nums.Quadrant = 0)")
	}
	if len(k1) > 0 {
		agree = append(agree, "(keys.CellValue IN ("+quoteList(k1)+") AND nums.Quadrant = 1)")
	}
	cond := strings.Join(agree, " OR ")
	if cond == "" {
		cond = "FALSE"
	}
	all := append(append([]string(nil), k0...), k1...)
	return fmt.Sprintf(
		"SELECT keys.TableId AS TableId,"+
			" (2 * SUM((%s)::int) - COUNT(*)) / COUNT(*) AS qcr"+
			" FROM (SELECT * FROM AllTables WHERE RowId < %d AND CellValue IN (%s)%s) AS keys"+
			" INNER JOIN (SELECT * FROM AllTables WHERE RowId < %d AND Quadrant IS NOT NULL) AS nums"+
			" ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId AND keys.ColumnId <> nums.ColumnId"+
			" GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId"+
			" ORDER BY ABS(qcr) DESC, TableId ASC",
		cond, h, quoteList(all), rw.predicate("TableId"), h)
}

func (s *CorrelationSeeker) run(ctx context.Context, v *view, rw Rewrite) (Hits, RunStats, error) {
	stats := RunStats{Kind: C, Rewritten: rw.active(), Path: PathSQL}
	if len(s.Keys) == 0 {
		return nil, stats, nil
	}
	h := v.SampleH
	if h <= 0 {
		h = DefaultSampleH
	}
	if v.nativeServes(C) {
		k0, k1 := s.split()
		if len(k0)+len(k1) > 0 {
			start := time.Now()
			hits, groups, err := v.runNativeCorrelation(ctx, k0, k1, s.K, int32(h), rw)
			if err != nil {
				return nil, stats, err
			}
			stats.Path = PathNative
			stats.Duration = time.Since(start)
			stats.SQLRows = groups
			return hits, stats, nil
		}
		// Every key is empty: fall through so both paths degenerate
		// identically (the SQL renders `CellValue IN ()`).
	}
	res, dur, err := v.execSQL(ctx, s.sqlWithH(rw, h))
	if err != nil {
		return nil, stats, err
	}
	stats.Duration = dur
	stats.SQLRows = res.NumRows()
	hits := make(Hits, 0, res.NumRows())
	for i := 0; i < res.NumRows(); i++ {
		tid, _ := res.Cell(i, 0).AsInt()
		score, _ := res.Cell(i, 1).AsFloat()
		if score < 0 {
			score = -score
		}
		hits = append(hits, TableHit{TableID: int32(tid), Score: score})
	}
	return topK(dedupeBest(hits), s.K), stats, nil
}
