package core

import (
	"context"
	"time"

	"blend/internal/costmodel"
	"blend/internal/embed"
	"blend/internal/hnsw"
	"blend/internal/storage"
)

// Semantic is the seeker kind of the SemanticSeeker extension.
const Semantic = costmodel.KindSemantic

// SemanticSeeker implements the paper's future-work extension (§X):
// discovery by semantic rather than syntactic similarity, through
// high-dimensional column embeddings and an HNSW index built over the
// unified index's contents. The first semantic query on an engine builds
// the embedding index lazily from AllTables; subsequent queries reuse it.
//
// Because ANN search is approximate, the optimizer never reorders a
// semantic seeker against others in an execution group; rewrites are
// applied as post-filters so intermediate results still narrow the output
// without touching the ANN search itself (the result-set stability concern
// the paper raises for approximate operators).
type SemanticSeeker struct {
	// Values is the query column content to embed.
	Values []string
	K      int
	// Probe is how many ANN neighbours to fetch before table dedup and
	// rewrite filtering; defaults to 4·K.
	Probe int
	// MinSupport, when positive, drops ANN candidates whose table shares
	// fewer than MinSupport distinct query values with the lake — the
	// native posting validation fused onto the ANN funnel. Zero (the
	// default) keeps validation observational: support is still counted
	// into RunStats.Validated, but no candidate is dropped, so results
	// match a pure ANN search.
	MinSupport int
}

// NewSemantic builds a semantic seeker over a query column's values.
func NewSemantic(values []string, k int) *SemanticSeeker {
	return &SemanticSeeker{Values: append([]string(nil), values...), K: k}
}

// Kind implements Seeker.
func (s *SemanticSeeker) Kind() SeekerKind { return Semantic }

// TopK implements Seeker.
func (s *SemanticSeeker) TopK() int { return s.K }

// Features implements Seeker. ANN cost scales with the probe width, not
// the lake, so the features describe the query only.
func (s *SemanticSeeker) Features(store storage.Reader) costmodel.Features {
	return costmodel.Features{Card: float64(len(s.Values)), Cols: 1, AvgFreq: 1}
}

// SQL implements Seeker. The semantic seeker runs against the embedding
// side-index, not the relational one; it has no SQL form.
func (s *SemanticSeeker) SQL(Rewrite) string { return "" }

func (s *SemanticSeeker) run(ctx context.Context, v *view, rw Rewrite) (Hits, RunStats, error) {
	stats := RunStats{Kind: Semantic, Rewritten: rw.active(), Path: PathANN}
	if len(s.Values) == 0 {
		return nil, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	start := time.Now()
	idx := v.semanticIndex()
	vec := embed.Column(s.Values)
	if vec.IsZero() {
		stats.Duration = time.Since(start)
		return nil, stats, nil
	}
	probe := s.Probe
	if probe <= 0 {
		probe = 4 * s.K
	}
	if probe < s.K {
		probe = s.K
	}
	results := idx.ann.Search(vec, probe)
	stats.SQLRows = len(results)

	allowed, excluded := rw.filterSets()
	best := make(map[int32]float64)
	for _, r := range results {
		tid := idx.refs[r.ID]
		if allowed != nil {
			if _, ok := allowed[tid]; !ok {
				continue
			}
		}
		if excluded != nil {
			if _, ok := excluded[tid]; ok {
				continue
			}
		}
		sim := float64(r.Similarity)
		if cur, ok := best[tid]; !ok || sim > cur {
			best[tid] = sim
		}
	}

	// Native posting validation, fused onto the ANN funnel: Candidates is
	// the distinct tables surviving the rewrite post-filter, Validated the
	// subset syntactically supported by at least one exact query value in
	// the unified index. With MinSupport set the unsupported candidates are
	// dropped; otherwise validation only feeds the funnel counters.
	stats.Candidates = len(best)
	support := v.semanticSupport(s.Values, best)
	minSupport := s.MinSupport
	for tid := range best {
		if support[tid] > 0 {
			stats.Validated++
		}
		if support[tid] < minSupport {
			delete(best, tid)
		}
	}

	hits := make(Hits, 0, len(best))
	for tid, sim := range best {
		hits = append(hits, TableHit{TableID: tid, Score: sim})
	}
	stats.Duration = time.Since(start)
	return topK(hits, s.K), stats, nil
}

// semanticSupport counts, for each ANN candidate table, how many distinct
// query values appear verbatim in that table — one posting scan per
// distinct value, restricted to the candidate set. It is the exact-match
// complement of the embedding search: ANN proposes, postings corroborate.
func (v *view) semanticSupport(values []string, cand map[int32]float64) map[int32]int {
	support := make(map[int32]int, len(cand))
	if len(cand) == 0 {
		return support
	}
	seen := make(map[int32]struct{}, len(cand))
	for _, val := range distinct(values) {
		clear(seen)
		v.sn.store.ScanPostings(val, func(tid, _, _ int32) {
			if _, ok := cand[tid]; !ok {
				return
			}
			if _, dup := seen[tid]; dup {
				return
			}
			seen[tid] = struct{}{}
			support[tid]++
		})
	}
	return support
}

// filterSets converts a rewrite into post-filter sets for operators that
// cannot push the predicate into their search.
func (r Rewrite) filterSets() (allowed, excluded map[int32]struct{}) {
	switch r.mode {
	case 1:
		allowed = make(map[int32]struct{}, len(r.ids))
		for _, id := range r.ids {
			allowed[id] = struct{}{}
		}
	case 2:
		excluded = make(map[int32]struct{}, len(r.ids))
		for _, id := range r.ids {
			excluded[id] = struct{}{}
		}
	}
	return allowed, excluded
}

// semanticIdx is the lazily built embedding side-index: one vector per
// non-empty lake column.
type semanticIdx struct {
	ann *hnsw.Index
	// refs maps ANN external ids to table ids.
	refs []int32
}

// semanticIndex returns the pinned snapshot's embedding index, building it
// on first use from the snapshot's reconstructed columns. Snapshots are
// immutable, so the index is built at most once per generation and can
// never go stale — a mutation publishes a new snapshot whose first
// semantic query builds a fresh one, exactly like the result cache keys
// roll over. Retained historical generations keep theirs, so time-travel
// semantic queries stay consistent with what was served live.
func (v *view) semanticIndex() *semanticIdx {
	sn := v.sn
	sn.semMu.Lock()
	defer sn.semMu.Unlock()
	if sn.semIdx != nil {
		return sn.semIdx
	}
	idx := &semanticIdx{ann: hnsw.New(hnsw.DefaultConfig())}
	for tid := int32(0); tid < int32(sn.store.NumTables()); tid++ {
		t := sn.store.ReconstructTable(tid)
		if t == nil { // tombstoned
			continue
		}
		for c := 0; c < t.NumCols(); c++ {
			vec := embed.Column(t.ColumnValues(c))
			if vec.IsZero() {
				continue
			}
			id := len(idx.refs)
			idx.refs = append(idx.refs, tid)
			if err := idx.ann.Add(id, vec); err != nil {
				// IsZero filtered zero vectors; Add cannot fail.
				panic("core: " + err.Error())
			}
		}
	}
	sn.semIdx = idx
	return sn.semIdx
}
