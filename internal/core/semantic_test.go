package core

import (
	"context"
	"testing"

	"blend/internal/storage"
	"blend/internal/table"
)

// semanticLake builds tables with distinct vocabularies: cities versus
// person names, so embedding similarity separates them cleanly.
func semanticLake() []*table.Table {
	cities := table.New("cities", "City", "Country")
	for _, r := range [][2]string{
		{"berlin", "germany"}, {"hamburg", "germany"}, {"munich", "germany"},
		{"cologne", "germany"}, {"frankfurt", "germany"},
	} {
		cities.MustAppendRow(r[0], r[1])
	}
	people := table.New("people", "Name", "Role")
	for _, r := range [][2]string{
		{"alice cooper", "singer"}, {"brian may", "guitarist"},
		{"neil peart", "drummer"}, {"geddy lee", "bassist"},
	} {
		people.MustAppendRow(r[0], r[1])
	}
	return []*table.Table{cities, people}
}

func TestSemanticSeekerFindsSimilarColumn(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, semanticLake()))
	// Query shares tokens with the cities table but is not identical.
	hits, stats, err := e.RunSeeker(context.Background(), NewSemantic([]string{"berlin", "munich", "dresden"}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kind != Semantic {
		t.Fatalf("kind = %v", stats.Kind)
	}
	if len(hits) != 1 || e.Store().TableName(hits[0].TableID) != "cities" {
		t.Fatalf("hits = %v (%v)", hits, e.TableNames(hits))
	}
	if hits[0].Score <= 0 {
		t.Fatalf("similarity score = %v", hits[0].Score)
	}
}

func TestSemanticSeekerEmptyAndZeroInputs(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, semanticLake()))
	hits, _, err := e.RunSeeker(context.Background(), NewSemantic(nil, 5))
	if err != nil || len(hits) != 0 {
		t.Fatalf("empty input: hits=%v err=%v", hits, err)
	}
	hits, _, err = e.RunSeeker(context.Background(), NewSemantic([]string{"", ""}, 5))
	if err != nil || len(hits) != 0 {
		t.Fatalf("null-only input: hits=%v err=%v", hits, err)
	}
}

// TestSemanticFunnelAndMinSupport exercises the fused ANN + posting
// validation: the funnel counters report how many candidate tables the
// unified index corroborates, and MinSupport turns that corroboration
// into a filter.
func TestSemanticFunnelAndMinSupport(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, semanticLake()))
	// "berlin" and "munich" exist verbatim in the cities table; "dresden"
	// does not exist anywhere. The people table shares no query value.
	q := []string{"berlin", "munich", "dresden"}

	hits, stats, err := e.RunSeeker(context.Background(), NewSemantic(q, 5))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Path != PathANN {
		t.Fatalf("path = %q, want %q", stats.Path, PathANN)
	}
	if stats.Candidates != len(hits) {
		t.Fatalf("candidates = %d, hits = %d — default MinSupport must not drop", stats.Candidates, len(hits))
	}
	if stats.Validated != 1 {
		t.Fatalf("validated = %d, want 1 (only cities shares query values)", stats.Validated)
	}

	// MinSupport 2 keeps cities (berlin + munich = support 2).
	s := NewSemantic(q, 5)
	s.MinSupport = 2
	hits, stats, err = e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || e.Store().TableName(hits[0].TableID) != "cities" {
		t.Fatalf("MinSupport=2 hits = %v (%v)", hits, e.TableNames(hits))
	}
	if stats.Candidates < 1 || stats.Validated != 1 {
		t.Fatalf("MinSupport=2 funnel = %+v", stats)
	}

	// MinSupport 3 exceeds any table's support and empties the result.
	s = NewSemantic(q, 5)
	s.MinSupport = 3
	hits, _, err = e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("MinSupport=3 hits = %v", hits)
	}
}

func TestSemanticSeekerIndexReused(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, semanticLake()))
	v, release := testView(t, e)
	defer release()
	a := v.semanticIndex()
	b := v.semanticIndex()
	if a != b {
		t.Fatal("semantic index must be built once and reused")
	}
	if a.ann.Len() != 4 { // 2 tables × 2 columns
		t.Fatalf("indexed columns = %d, want 4", a.ann.Len())
	}
}

func TestSemanticSeekerRewriteIsPostFilter(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, semanticLake()))
	s := NewSemantic([]string{"berlin", "hamburg"}, 5)
	all, _, err := e.RunSeeker(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no hits")
	}
	// Excluding the best table must remove it without erroring.
	filtered, _, err := runDirect(context.Background(), e, s, ExcludeTables([]int32{all[0].TableID}))
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Contains(all[0].TableID) {
		t.Fatal("exclude rewrite ignored")
	}
	// Including only the best table must keep exactly it.
	only, _, err := runDirect(context.Background(), e, s, IncludeTables([]int32{all[0].TableID}))
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 1 || only[0].TableID != all[0].TableID {
		t.Fatalf("include rewrite wrong: %v", only)
	}
}

func TestSemanticSeekerExcludedFromExecutionGroups(t *testing.T) {
	p := NewPlan()
	p.MustAddSeeker("sem", NewSemantic([]string{"berlin"}, 5))
	p.MustAddSeeker("sc", NewSC([]string{"berlin"}, 5))
	p.MustAddSeeker("kw", NewKW([]string{"berlin"}, 5))
	p.MustAddCombiner("i", NewIntersect(5), "sem", "sc", "kw")
	groups := p.findExecutionGroups()
	if len(groups) != 1 {
		t.Fatalf("groups = %+v", groups)
	}
	for _, m := range groups[0].members {
		if m == "sem" {
			t.Fatal("semantic seeker must stay outside execution groups")
		}
	}
	if len(groups[0].members) != 2 {
		t.Fatalf("members = %v", groups[0].members)
	}
}

func TestSemanticInPlanWithExactSeekers(t *testing.T) {
	e := NewEngine(storage.Build(storage.ColumnStore, semanticLake()))
	p := NewPlan()
	p.MustAddSeeker("sem", NewSemantic([]string{"berlin", "dresden"}, 5))
	p.MustAddSeeker("sc", NewSC([]string{"germany"}, 5))
	p.MustAddCombiner("both", NewIntersect(5), "sem", "sc")
	res, err := e.Run(context.Background(), p, RunOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || res.Tables[0] != "cities" {
		t.Fatalf("plan result = %v", res.Tables)
	}
}
