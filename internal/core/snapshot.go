package core

import (
	"context"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"blend/internal/alltables"
	"blend/internal/berr"
	"blend/internal/minisql"
	"blend/internal/storage"
	"blend/internal/table"
)

// MVCC generation snapshots. Every index mutation builds a new immutable
// store view copy-on-write (storage.CowIndex) and publishes it atomically:
// the engine holds a single atomic pointer to the current snapshot, and a
// query resolves that pointer exactly once at start. From then on the query
// reads only the pinned snapshot — no lock is taken on the read path, so
// readers never wait for ingestion and ingestion never waits for readers.
//
// The last few generations are retained (SetRetention) so callers can pin a
// historical snapshot by number (time travel): RunOptions.AsOf or an
// explicit Snapshot handle. Each retained generation holds one reference;
// queries add theirs while they run. When the last reference to a snapshot
// drops, its share of the backing file mapping is released.

// DefaultRetainedGenerations is how many published generations the engine
// keeps pinnable for time travel unless SetRetention overrides it.
const DefaultRetainedGenerations = 4

// snapshot is one published, immutable generation of the index: the store
// view plus every piece of derived read state (SQL catalogs, native shard
// views, the lazily built semantic ANN side-index).
type snapshot struct {
	gen   uint64
	store storage.Index
	cat   *minisql.Catalog // serves this generation's store view
	// shardCats / nativeViews mirror the sharded fan-out state that used to
	// live on the engine (nil / single-element for monolithic stores).
	shardCats   []*minisql.Catalog
	nativeViews []storage.Reader

	// refs counts the retention list's reference (1, dropped when the
	// generation falls out of the window) plus one per in-flight pin. It
	// never goes back up from 0: pinning races a concurrent release by
	// CAS-incrementing only positive counts.
	refs atomic.Int64
	// lease shares the store lineage's file mapping; released when refs
	// hits zero. Nil for pure heap stores.
	lease *storeLease

	// Lazily built embedding side-index for the SemanticSeeker extension.
	// Snapshots are immutable, so it is built at most once per generation.
	semMu  sync.Mutex
	semIdx *semanticIdx // guarded by semMu
}

// tryPin atomically takes a reference unless the snapshot is already dead
// (refs 0 means the last release ran and the lease may be closed).
func (sn *snapshot) tryPin() bool {
	for {
		n := sn.refs.Load()
		if n <= 0 {
			return false
		}
		if sn.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// unpin drops one reference, releasing the snapshot's share of the file
// mapping when it was the last.
func (e *Engine) unpin(sn *snapshot) {
	if sn.refs.Add(-1) == 0 && sn.lease != nil {
		sn.lease.release()
	}
}

// pin resolves and references the current snapshot. It can loop: between
// loading the pointer and taking the reference, a burst of publishes may
// retire the loaded generation past the retention window; the reload then
// observes a newer pointer. Fails only once the engine is closed.
func (e *Engine) pin() (*snapshot, error) {
	for {
		if e.closed.Load() {
			return nil, berr.New(berr.CodeInternal, "engine.snapshot", "engine is closed")
		}
		if sn := e.snap.Load(); sn.tryPin() {
			return sn, nil
		}
	}
}

// pinAt references generation gen, with 0 meaning "current". A generation
// that has fallen out of (or never entered) the retention window reports a
// typed generation-gone error.
func (e *Engine) pinAt(gen uint64) (*snapshot, error) {
	if gen == 0 {
		return e.pin()
	}
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	for _, sn := range e.retained {
		if sn.gen == gen {
			// The retention list's own reference keeps refs positive while
			// we hold retainMu, so a plain increment cannot race a death.
			sn.refs.Add(1)
			return sn, nil
		}
	}
	cur := uint64(0)
	if n := len(e.retained); n > 0 {
		cur = e.retained[n-1].gen
	}
	return nil, berr.New(berr.CodeGenerationGone, "engine.snapshot",
		"generation %d is not retained (current %d, retention %d)", gen, cur, e.retention)
}

// publish installs sn as the current snapshot and retires whatever fell out
// of the retention window, sweeping their cache entries.
//
// lockguard: caller holds writeMu
func (e *Engine) publish(sn *snapshot) {
	e.snap.Store(sn)
	e.retire(sn)
}

// retire appends sn to the retention list and evicts beyond the configured
// bound.
func (e *Engine) retire(sn *snapshot) {
	e.retainMu.Lock()
	e.retained = append(e.retained, sn)
	evicted, oldest := e.evictLocked()
	e.retainMu.Unlock()
	e.releaseEvicted(evicted, oldest)
}

// evictLocked trims the retention list to the configured bound, returning
// the evicted snapshots and the oldest still-retained generation.
//
// lockguard: caller holds retainMu
func (e *Engine) evictLocked() (evicted []*snapshot, oldest uint64) {
	for len(e.retained) > e.retention {
		evicted = append(evicted, e.retained[0])
		e.retained[0] = nil // release the backing-array slot for GC
		e.retained = e.retained[1:]
	}
	if len(e.retained) > 0 {
		oldest = e.retained[0].gen
	}
	return evicted, oldest
}

// releaseEvicted drops the retention references of evicted snapshots and
// sweeps the result cache of every generation below the oldest retained one
// — the bounded sweep that keeps retained-generation memory accounted
// instead of waiting for LRU pressure.
func (e *Engine) releaseEvicted(evicted []*snapshot, oldest uint64) {
	if len(evicted) == 0 {
		return
	}
	for _, old := range evicted {
		e.unpin(old)
	}
	if c := e.cache.Load(); c != nil {
		c.sweepBelow(oldest)
	}
}

// buildSnapshot assembles the derived read state for one generation of the
// store: the unified SQL catalog, per-shard catalogs and native views when
// sharded, and a reference on the lineage's file-mapping lease.
//
// lockguard: caller holds writeMu
func (e *Engine) buildSnapshot(store storage.Index, gen uint64) *snapshot {
	cat := minisql.NewCatalog()
	cat.Register(alltables.Name, alltables.New(store))
	sn := &snapshot{gen: gen, store: store, cat: cat, lease: e.lease}
	sn.nativeViews = []storage.Reader{store}
	if sh, ok := store.(storage.Sharded); ok {
		if views := sh.ShardReaders(); len(views) > 1 {
			sn.shardCats = make([]*minisql.Catalog, len(views))
			for i, v := range views {
				c := minisql.NewCatalog()
				c.Register(alltables.Name, alltables.New(v))
				sn.shardCats[i] = c
			}
			sn.nativeViews = views
		}
	}
	sn.refs.Store(1) // the retention list's reference; see publish
	if sn.lease != nil {
		sn.lease.acquire()
	}
	return sn
}

// storeLease shares ownership of a store lineage's closeable backing (the
// mmap segment file) across the generations derived from it: every snapshot
// in the lineage holds one reference, and the file closes when the last
// referencing snapshot is released.
type storeLease struct {
	refs atomic.Int64
	c    io.Closer
	once sync.Once
	err  error // guarded by once: written inside Do, read after it returns
}

// newStoreLease wraps a store's closeable backing; nil when the store needs
// no cleanup.
func newStoreLease(store storage.Index) *storeLease {
	c, ok := store.(io.Closer)
	if !ok {
		return nil
	}
	return &storeLease{c: c}
}

func (l *storeLease) acquire() { l.refs.Add(1) }

func (l *storeLease) release() {
	if l.refs.Add(-1) == 0 {
		l.once.Do(func() { l.err = l.c.Close() })
	}
}

// closeErr reports the close error once the lease has fully released; nil
// while references remain.
func (l *storeLease) closeErr() error {
	if l.refs.Load() > 0 {
		return nil
	}
	l.once.Do(func() { l.err = l.c.Close() })
	return l.err
}

// view is the read-side execution context: the engine's immutable knobs
// (sample size, cost models, native toggle, shard semaphore) plus one
// pinned snapshot. Every seeker and executor runs against a view, so a
// query's store resolution happens exactly once — at pin time — and the
// read path never touches engine synchronization again.
type view struct {
	*Engine
	sn *snapshot
}

// Journal is the write-ahead log the engine appends to before publishing a
// mutation, so a crash between a publish and the next durable Save replays
// to the published generation on reopen. storage.WAL implements it.
type Journal interface {
	AddTables(tables []*table.Table) error
	RemoveTable(tid int32) error
	Compact() error
	Checkpoint(gen uint64) error
}

// SetJournal installs (or, with nil, removes) the mutation journal.
// Install it before mutations begin; replayed records should be applied
// through the engine first, then the journal attached.
func (e *Engine) SetJournal(j Journal) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.journal = j
}

// SeedGeneration fast-forwards the generation counter to gen and
// republishes the current store under it — used at open, when a journal
// checkpoint records the generation a saved index was persisted at, so
// numbering stays continuous across restarts. Generations at or below the
// current one are ignored.
func (e *Engine) SeedGeneration(gen uint64) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if gen <= e.gen {
		return
	}
	e.gen = gen
	e.publish(e.buildSnapshot(e.snap.Load().store, gen))
}

// Generation reports the currently published generation. Generations start
// at 1 and increase by one per committed mutation.
func (e *Engine) Generation() uint64 { return e.snap.Load().gen }

// RetainedGenerations lists the generations currently pinnable for time
// travel, oldest first; the last entry is the current generation.
func (e *Engine) RetainedGenerations() []uint64 {
	e.retainMu.Lock()
	defer e.retainMu.Unlock()
	out := make([]uint64, len(e.retained))
	for i, sn := range e.retained {
		out[i] = sn.gen
	}
	return out
}

// SetRetention bounds how many generations stay pinnable (minimum 1, the
// current one). Shrinking the window releases the excess immediately.
func (e *Engine) SetRetention(n int) {
	if n < 1 {
		n = 1
	}
	e.retainMu.Lock()
	e.retention = n
	evicted, oldest := e.evictLocked()
	e.retainMu.Unlock()
	e.releaseEvicted(evicted, oldest)
}

// Close releases every retained generation and marks the engine closed:
// new pins fail, and the backing file mapping closes as soon as the last
// in-flight query unpins. Closing twice is a no-op.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	var retained []*snapshot
	e.retainMu.Lock()
	retained, e.retained = e.retained, nil
	e.retainMu.Unlock()
	for _, sn := range retained {
		e.unpin(sn)
	}
	e.writeMu.Lock()
	l := e.lease
	e.writeMu.Unlock()
	if l != nil {
		return l.closeErr()
	}
	return nil
}

// Snapshot is a pinned generation handle: queries run through it see the
// index exactly as it was when the handle was taken, regardless of
// concurrent ingestion, until Release. A handle must be released exactly
// once; queries racing the Release are the caller's bug.
type Snapshot struct {
	e        *Engine
	sn       *snapshot
	released atomic.Bool
}

// Snapshot pins the current generation and returns its handle.
func (e *Engine) Snapshot() (*Snapshot, error) {
	sn, err := e.pin()
	if err != nil {
		return nil, err
	}
	return &Snapshot{e: e, sn: sn}, nil
}

// SnapshotAt pins retained generation gen (0 means current); a generation
// outside the retention window reports a typed generation-gone error.
func (e *Engine) SnapshotAt(gen uint64) (*Snapshot, error) {
	sn, err := e.pinAt(gen)
	if err != nil {
		return nil, err
	}
	return &Snapshot{e: e, sn: sn}, nil
}

// Generation reports the pinned generation.
func (s *Snapshot) Generation() uint64 { return s.sn.gen }

// Run executes a plan against the pinned generation. RunOptions.AsOf is
// ignored — the handle already fixes the generation.
func (s *Snapshot) Run(ctx context.Context, p *Plan, opts RunOptions) (*PlanResult, error) {
	if s.released.Load() {
		return nil, berr.New(berr.CodeBadRequest, "engine.snapshot", "snapshot already released")
	}
	return s.e.runPinned(ctx, s.sn, p, opts)
}

// RunSeeker executes one seeker against the pinned generation.
func (s *Snapshot) RunSeeker(ctx context.Context, seeker Seeker) (Hits, RunStats, error) {
	if s.released.Load() {
		return nil, RunStats{}, berr.New(berr.CodeBadRequest, "engine.snapshot", "snapshot already released")
	}
	return s.e.runSeekerPinned(ctx, s.sn, seeker)
}

// Release unpins the generation; further queries through the handle fail.
// Releasing twice is a no-op.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	s.e.unpin(s.sn)
}

// newShardSem sizes the engine-wide shard-execution semaphore.
func newShardSem() chan struct{} {
	return make(chan struct{}, runtime.GOMAXPROCS(0))
}
