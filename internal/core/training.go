package core

import (
	"context"
	"fmt"
	"math/rand"

	"blend/internal/berr"
	"blend/internal/costmodel"
	"blend/internal/table"
)

// TrainCostModels performs the offline training step of §VII-B: it samples
// random seeker inputs from the indexed lake, executes each seeker
// standalone, measures the runtime, and fits one linear model per seeker
// kind. The fitted models are installed on the engine and returned.
//
// Kinds the engine can serve natively execute every sample on both
// executors (the flag toggled per run), so the Features.Native path
// indicator varies within the training set and the fitted weight prices
// the two executors' very different cost curves; were all samples taken
// on one path, the indicator would be constant — collinear with the
// intercept — and a model trained under one path configuration would
// mis-extrapolate when loaded into the other. Because training toggles
// the engine's execution path, it must not run concurrently with queries
// (it is an offline step, like the paper's).
//
// Training is deterministic for a given seed. samplesPerKind of 1000
// matches the paper; experiments here use smaller counts because the
// synthetic lakes are smaller.
func TrainCostModels(ctx context.Context, e *Engine, samplesPerKind int, seed int64) (*costmodel.PerKind, error) {
	if samplesPerKind < 8 {
		return nil, berr.New(berr.CodeBadRequest, "core.train", "need at least 8 samples per kind, got %d", samplesPerKind)
	}
	rng := rand.New(rand.NewSource(seed))
	per := &costmodel.PerKind{}
	// Pin one snapshot for the whole training run: every sample draws from
	// and executes against the same generation, so fitted models are not
	// skewed by a concurrent ingest shifting the lake mid-training.
	sn, err := e.pin()
	if err != nil {
		return nil, err
	}
	defer e.unpin(sn)
	v := &view{Engine: e, sn: sn}
	for _, kind := range []SeekerKind{KW, SC, MC, C} {
		var feats []costmodel.Features
		var times []float64
		paths := []bool{e.NoNativeExec}
		if e.nativeServes(kind) {
			paths = []bool{false, true} // sample the native executor and the SQL fallback
		}
		for i := 0; i < samplesPerKind; i++ {
			s := sampleSeeker(v, rng, kind)
			if s == nil {
				continue
			}
			prev := e.NoNativeExec
			for _, noNative := range paths {
				e.NoNativeExec = noNative
				// Execute the seeker directly, not through RunSeeker: the
				// result cache keys by fingerprint regardless of path, so a
				// cached run would hand the second path the first path's
				// result with no measured duration — a zero-cost sample that
				// would corrupt the fitted path weight.
				_, stats, err := s.run(ctx, v, NoRewrite)
				if err != nil {
					e.NoNativeExec = prev
					return nil, berr.Wrap(berr.CodeInternal, fmt.Sprintf("core.train[%v]", kind), err)
				}
				feats = append(feats, v.seekerFeatures(s))
				times = append(times, float64(stats.Duration.Microseconds()))
			}
			e.NoNativeExec = prev
		}
		if len(feats) < 8 {
			continue // lake too small to sample this kind; keep heuristic
		}
		m, err := costmodel.Fit(feats, times)
		if err != nil {
			continue // degenerate sample; heuristic fallback stays in place
		}
		per.Set(kind, m)
	}
	e.Cost = per
	return per, nil
}

// sampleSeeker draws a random seeker input from the lake, mirroring how
// the paper samples 1000 random Qs from Gittables per seeker type. Returns
// nil when the randomly chosen table cannot supply the kind's input shape.
func sampleSeeker(v *view, rng *rand.Rand, kind SeekerKind) Seeker {
	st := v.sn.store
	if st.NumTables() == 0 {
		return nil
	}
	t := st.ReconstructTable(int32(rng.Intn(st.NumTables())))
	if t == nil || t.NumRows() == 0 || t.NumCols() == 0 {
		return nil // tombstoned or empty table; resample
	}
	k := 10
	switch kind {
	case KW:
		col := rng.Intn(t.NumCols())
		vals := t.DistinctColumnValues(col)
		if len(vals) == 0 {
			return nil
		}
		n := 1 + rng.Intn(min(5, len(vals)))
		return NewKW(sampleStrings(rng, vals, n), k)
	case SC:
		col := rng.Intn(t.NumCols())
		vals := t.DistinctColumnValues(col)
		if len(vals) == 0 {
			return nil
		}
		n := 1 + rng.Intn(len(vals))
		return NewSC(sampleStrings(rng, vals, n), k)
	case MC:
		if t.NumCols() < 2 {
			return nil
		}
		c1 := rng.Intn(t.NumCols())
		c2 := rng.Intn(t.NumCols())
		if c1 == c2 {
			c2 = (c2 + 1) % t.NumCols()
		}
		rows := min(t.NumRows(), 1+rng.Intn(8))
		tuples := make([][]string, 0, rows)
		for r := 0; r < rows; r++ {
			v1, v2 := t.Cell(r, c1), t.Cell(r, c2)
			if v1 == "" || v2 == "" {
				continue
			}
			tuples = append(tuples, []string{v1, v2})
		}
		if len(tuples) == 0 {
			return nil
		}
		return NewMC(tuples, k)
	case C:
		keyCol, numCol := -1, -1
		for c := 0; c < t.NumCols(); c++ {
			if t.Columns[c].Kind == table.KindNumeric {
				numCol = c
			} else {
				keyCol = c
			}
		}
		if keyCol < 0 || numCol < 0 {
			return nil
		}
		nums, rows := t.NumericColumnValues(numCol)
		if len(nums) < 2 {
			return nil
		}
		keys := make([]string, len(nums))
		for i, r := range rows {
			keys[i] = t.Cell(r, keyCol)
		}
		return NewCorrelation(keys, nums, k)
	}
	return nil
}

func sampleStrings(rng *rand.Rand, pool []string, n int) []string {
	idx := rng.Perm(len(pool))
	if n > len(pool) {
		n = len(pool)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[idx[i]]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
