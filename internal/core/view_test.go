package core

import (
	"context"
	"testing"
)

// testView pins the engine's current snapshot and returns the execution
// view plus a release func, for tests poking view-level internals.
func testView(t *testing.T, e *Engine) (*view, func()) {
	t.Helper()
	sn, err := e.pin()
	if err != nil {
		t.Fatal(err)
	}
	return &view{Engine: e, sn: sn}, func() { e.unpin(sn) }
}

// runDirect executes a seeker against e's current snapshot without going
// through the result cache — the per-call pin tests use to compare
// execution paths directly.
func runDirect(ctx context.Context, e *Engine, s Seeker, rw Rewrite) (Hits, RunStats, error) {
	sn, err := e.pin()
	if err != nil {
		return nil, RunStats{}, err
	}
	defer e.unpin(sn)
	return s.run(ctx, &view{Engine: e, sn: sn}, rw)
}
