// Package costmodel implements BLEND's learning-based cost estimation
// (§VII-B): one linear regression model per seeker type that predicts
// relative runtime from three features of the input Q — its cardinality,
// its number of columns, and the average index frequency of its values.
// Models are trained offline on sampled queries (ordinary least squares via
// normal equations) and consulted online to order seekers of the same type.
package costmodel

import (
	"fmt"
	"math"
)

// Features describe one seeker input, mirroring §VII-B: cardinality of Q,
// number of columns involved in Q, and the average frequency of Q's values
// in the database (for MC, the product of per-column averages). Native is
// an execution-path indicator the engine sets, not a property of Q: 1 when
// the seeker will run on the native posting-list executor, 0 for the SQL
// interpreter. It lets one trained model price the two executors of the
// same seeker kind separately (the native MC path skips SQL generation and
// interpretation entirely, so its cost curve has a different intercept).
type Features struct {
	Card    float64
	Cols    float64
	AvgFreq float64
	Native  float64
}

// vector expands features into the regression design row. Input-shape
// features are log1p-compressed (posting lengths and cardinalities are
// heavy-tailed and runtimes scale sub-linearly in them); the path
// indicator enters raw.
func (f Features) vector() [dims]float64 {
	return [dims]float64{1, math.Log1p(f.Card), math.Log1p(f.Cols), math.Log1p(f.AvgFreq), f.Native}
}

const dims = 5

// Model is a fitted linear predictor of seeker runtime (in arbitrary but
// consistent units; only the ordering matters to the optimizer).
type Model struct {
	W [dims]float64
}

// Predict estimates the runtime for the given input features.
func (m *Model) Predict(f Features) float64 {
	x := f.vector()
	var y float64
	for i := range x {
		y += m.W[i] * x[i]
	}
	return y
}

// Fit computes the ordinary-least-squares fit of y on the feature vectors.
// It returns an error when fewer samples than dimensions are supplied or
// the normal matrix is singular (degenerate training sets).
func Fit(xs []Features, ys []float64) (*Model, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("costmodel: %d feature rows vs %d targets", len(xs), len(ys))
	}
	if len(xs) < dims {
		return nil, fmt.Errorf("costmodel: need at least %d samples, got %d", dims, len(xs))
	}
	// Normal equations: (XᵀX) w = Xᵀy.
	var a [dims][dims]float64
	var b [dims]float64
	for i, f := range xs {
		x := f.vector()
		for r := 0; r < dims; r++ {
			for c := 0; c < dims; c++ {
				a[r][c] += x[r] * x[c]
			}
			b[r] += x[r] * ys[i]
		}
	}
	// Ridge damping keeps the solve stable when features are collinear
	// (e.g. all sampled queries have the same column count).
	const ridge = 1e-6
	for d := 0; d < dims; d++ {
		a[d][d] += ridge
	}
	w, ok := solve(a, b)
	if !ok {
		return nil, fmt.Errorf("costmodel: singular normal matrix")
	}
	return &Model{W: w}, nil
}

// solve performs Gaussian elimination with partial pivoting on the dims×dims
// system.
func solve(a [dims][dims]float64, b [dims]float64) ([dims]float64, bool) {
	var w [dims]float64
	for col := 0; col < dims; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < dims; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return w, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < dims; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < dims; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := dims - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < dims; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, true
}

// Kind identifies a seeker type for model selection. It mirrors core's
// seeker kinds without importing it (costmodel sits below core).
type Kind int

const (
	// KindKW is the keyword seeker.
	KindKW Kind = iota
	// KindSC is the single-column seeker.
	KindSC
	// KindMC is the multi-column seeker.
	KindMC
	// KindC is the correlation seeker.
	KindC
	// KindSemantic is the embedding-based seeker (the §X future-work
	// extension implemented in this reproduction).
	KindSemantic
	numKinds
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case KindKW:
		return "KW"
	case KindSC:
		return "SC"
	case KindMC:
		return "MC"
	case KindC:
		return "C"
	case KindSemantic:
		return "Semantic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// PerKind holds one trained model per seeker type.
type PerKind struct {
	models [numKinds]*Model
}

// Set installs the model for a kind.
func (p *PerKind) Set(k Kind, m *Model) { p.models[k] = m }

// Get returns the model for a kind, or nil when untrained.
func (p *PerKind) Get(k Kind) *Model {
	if k < 0 || k >= numKinds {
		return nil
	}
	return p.models[k]
}
