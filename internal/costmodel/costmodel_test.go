package costmodel

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFitRecoversLinearRelation(t *testing.T) {
	// Runtime = 5 + 2·log1p(card) + 0.5·log1p(freq), no column effect.
	rng := rand.New(rand.NewSource(1))
	var xs []Features
	var ys []float64
	for i := 0; i < 200; i++ {
		f := Features{
			Card:    float64(rng.Intn(1000) + 1),
			Cols:    float64(rng.Intn(5) + 1),
			AvgFreq: float64(rng.Intn(500) + 1),
		}
		y := 5 + 2*math.Log1p(f.Card) + 0.5*math.Log1p(f.AvgFreq)
		xs = append(xs, f)
		ys = append(ys, y)
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range xs[:20] {
		if got := m.Predict(f); math.Abs(got-ys[i]) > 0.05 {
			t.Fatalf("sample %d: predict %v, want %v", i, got, ys[i])
		}
	}
}

func TestFitOrdersByCost(t *testing.T) {
	// The optimizer only needs the ordering: cheap inputs must predict
	// below expensive ones.
	var xs []Features
	var ys []float64
	for card := 1; card <= 64; card *= 2 {
		f := Features{Card: float64(card), Cols: 1, AvgFreq: 10}
		xs = append(xs, f)
		ys = append(ys, math.Log1p(float64(card))*100)
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	small := m.Predict(Features{Card: 2, Cols: 1, AvgFreq: 10})
	large := m.Predict(Features{Card: 500, Cols: 1, AvgFreq: 10})
	if small >= large {
		t.Fatalf("ordering lost: small=%v large=%v", small, large)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]Features{{Card: 1, Cols: 1, AvgFreq: 1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := Fit([]Features{{Card: 1, Cols: 1, AvgFreq: 1}, {Card: 2, Cols: 2, AvgFreq: 2}}, []float64{1, 2}); err == nil {
		t.Fatal("too few samples must fail")
	}
}

func TestNativeFeatureSeparatesPaths(t *testing.T) {
	// Train on the same input shapes executed on both paths: the native
	// runs are uniformly cheaper. The fitted model must preserve that gap
	// when predicting, i.e. the path indicator carries signal.
	var xs []Features
	var ys []float64
	for card := 1; card <= 64; card *= 2 {
		shape := Features{Card: float64(card), Cols: 1, AvgFreq: 10}
		sql := shape
		xs = append(xs, sql)
		ys = append(ys, 100+math.Log1p(shape.Card)*50)
		native := shape
		native.Native = 1
		xs = append(xs, native)
		ys = append(ys, 1+math.Log1p(shape.Card))
	}
	m, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	shape := Features{Card: 16, Cols: 1, AvgFreq: 10}
	nativeShape := shape
	nativeShape.Native = 1
	if n, s := m.Predict(nativeShape), m.Predict(shape); n >= s {
		t.Fatalf("native predicted %v, sql %v: path feature lost", n, s)
	}
}

func TestFitCollinearFeaturesStillSolves(t *testing.T) {
	// All samples share Cols = 1; the ridge term keeps the solve stable.
	var xs []Features
	var ys []float64
	for i := 1; i <= 30; i++ {
		xs = append(xs, Features{Card: float64(i), Cols: 1, AvgFreq: float64(i)})
		ys = append(ys, float64(i))
	}
	if _, err := Fit(xs, ys); err != nil {
		t.Fatalf("collinear fit failed: %v", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindKW: "KW", KindSC: "SC", KindMC: "MC", KindC: "C"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v.String() = %q", int(k), k.String())
		}
	}
}

func TestPerKind(t *testing.T) {
	var p PerKind
	if p.Get(KindSC) != nil {
		t.Fatal("empty PerKind must return nil")
	}
	m := &Model{}
	p.Set(KindSC, m)
	if p.Get(KindSC) != m {
		t.Fatal("Set/Get mismatch")
	}
	if p.Get(Kind(99)) != nil {
		t.Fatal("out-of-range kind must return nil")
	}
}

func TestModelPersistenceRoundTrip(t *testing.T) {
	per := &PerKind{}
	per.Set(KindSC, &Model{W: [5]float64{1, 2, 3, 4, 5}})
	per.Set(KindMC, &Model{W: [5]float64{-1, 0.5, 0, 9, -2}})
	var buf bytes.Buffer
	if err := per.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *back.Get(KindSC) != *per.Get(KindSC) || *back.Get(KindMC) != *per.Get(KindMC) {
		t.Fatal("weights changed in round trip")
	}
	if back.Get(KindKW) != nil {
		t.Fatal("untrained kinds must stay nil")
	}
}

func TestLoadModelsVersion1(t *testing.T) {
	// Version-1 files carry four weights (no execution-path feature); they
	// must load with a zero path weight, predicting identically on both
	// paths.
	doc := `{"version": 1, "models": {"SC": [1, 2, 3, 4]}}`
	per, err := LoadModels(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	m := per.Get(KindSC)
	if m == nil {
		t.Fatal("SC model missing")
	}
	if m.W != [5]float64{1, 2, 3, 4, 0} {
		t.Fatalf("v1 weights = %v", m.W)
	}
	f := Features{Card: 10, Cols: 2, AvgFreq: 3}
	fn := f
	fn.Native = 1
	if m.Predict(f) != m.Predict(fn) {
		t.Fatal("v1 model must be path-agnostic")
	}
}

func TestLoadModelsRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"",
		"not json",
		`{"version": 99, "models": {}}`,
		`{"version": 1, "models": {"Bogus": [1,2,3,4]}}`,
		`{"version": 1, "models": {}, "extra": true}`,
		`{"version": 1, "models": {"SC": [1,2,3,4,5]}}`,
		`{"version": 2, "models": {"SC": [1,2,3,4]}}`,
	} {
		if _, err := LoadModels(strings.NewReader(doc)); err == nil {
			t.Errorf("LoadModels(%q) should fail", doc)
		}
	}
}
