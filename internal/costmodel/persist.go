package costmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON persistence for trained models, so the offline training step
// (§VII-B: "it is advisable to run the training module once upon lake
// installation") survives process restarts alongside the index file.

type persistedModels struct {
	Version int                  `json:"version"`
	Models  map[string][]float64 `json:"models"`
}

// Save writes the trained models as JSON (format version 2: one weight per
// design dimension, currently 5 — the execution-path indicator added a
// fifth weight to the version-1 quadruple).
func (p *PerKind) Save(w io.Writer) error {
	doc := persistedModels{Version: 2, Models: map[string][]float64{}}
	for k := Kind(0); k < numKinds; k++ {
		if m := p.Get(k); m != nil {
			doc.Models[k.String()] = append([]float64(nil), m.W[:]...)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadModels reads models previously written by Save. Version-1 files
// (four weights, no execution-path feature) still load: the missing path
// weight becomes zero, i.e. the model prices both executors identically —
// exactly what it observed when it was trained.
func LoadModels(r io.Reader) (*PerKind, error) {
	var doc persistedModels
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("costmodel: decode models: %w", err)
	}
	var width int
	switch doc.Version {
	case 1:
		width = 4
	case 2:
		width = dims
	default:
		return nil, fmt.Errorf("costmodel: unsupported model version %d", doc.Version)
	}
	per := &PerKind{}
	for name, w := range doc.Models {
		k, ok := kindByName(name)
		if !ok {
			return nil, fmt.Errorf("costmodel: unknown seeker kind %q", name)
		}
		if len(w) != width {
			return nil, fmt.Errorf("costmodel: model %q has %d weights, version %d requires %d",
				name, len(w), doc.Version, width)
		}
		m := &Model{}
		copy(m.W[:], w)
		per.Set(k, m)
	}
	return per, nil
}

func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}
