package costmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON persistence for trained models, so the offline training step
// (§VII-B: "it is advisable to run the training module once upon lake
// installation") survives process restarts alongside the index file.

type persistedModels struct {
	Version int                   `json:"version"`
	Models  map[string][4]float64 `json:"models"`
}

// Save writes the trained models as JSON.
func (p *PerKind) Save(w io.Writer) error {
	doc := persistedModels{Version: 1, Models: map[string][4]float64{}}
	for k := Kind(0); k < numKinds; k++ {
		if m := p.Get(k); m != nil {
			doc.Models[k.String()] = m.W
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadModels reads models previously written by Save.
func LoadModels(r io.Reader) (*PerKind, error) {
	var doc persistedModels
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("costmodel: decode models: %w", err)
	}
	if doc.Version != 1 {
		return nil, fmt.Errorf("costmodel: unsupported model version %d", doc.Version)
	}
	per := &PerKind{}
	for name, w := range doc.Models {
		k, ok := kindByName(name)
		if !ok {
			return nil, fmt.Errorf("costmodel: unknown seeker kind %q", name)
		}
		per.Set(k, &Model{W: w})
	}
	return per, nil
}

func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}
