package datalake

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"blend/internal/qcr"
	"blend/internal/table"
)

// CorrConfig shapes a correlation-discovery benchmark in the style of the
// NYC open data experiments (Table VII): tables join on a shared key
// universe and carry numeric columns, some of which are planted to
// correlate with the hidden targets behind the queries.
type CorrConfig struct {
	Name string
	// NumTables is the number of lake tables.
	NumTables int
	// Rows is the number of key rows per table.
	Rows int
	// CorrelatedShare in [0,1] is the fraction of tables planted to
	// correlate strongly with some query target.
	CorrelatedShare float64
	// NumericKeys switches the join-key universe from categorical strings
	// to numeric strings — the NYC (All) variant that breaks the sketch
	// baseline.
	NumericKeys bool
	// SortedByMetric orders each table's rows by its Metric column. Real
	// open-data tables are often stored sorted, which biases BLEND's
	// convenience sampling (rowid < h) — the effect the BLEND (rand)
	// ablation of Table VII isolates.
	SortedByMetric bool
	// Queries is the number of (key, target) query pairs.
	Queries int
	Seed    int64
}

// CorrQuery is one benchmark query: join keys paired with a numeric
// target, plus the exact-Pearson ground-truth ranking of lake tables.
type CorrQuery struct {
	Keys    []string
	Targets []float64
	// TopTables is the exact ground truth: lake tables ranked by the
	// highest |Pearson| between the query target and any of their numeric
	// columns, restricted to joined keys.
	TopTables []string
}

// CorrBenchmark is a generated correlation benchmark.
type CorrBenchmark struct {
	Config CorrConfig
	Tables []*table.Table
	// Queries holds the benchmark queries; ground truth is computed
	// exactly against the generated tables.
	Queries []CorrQuery
}

// GenCorrBenchmark builds the lake and queries. Every table keys on the
// same universe (shuffled, full coverage) and carries two numeric columns;
// in planted tables the first numeric column is a noisy linear function of
// a hidden signal that the queries' targets also follow.
func GenCorrBenchmark(cfg CorrConfig) *CorrBenchmark {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &CorrBenchmark{Config: cfg}

	keys := make([]string, cfg.Rows)
	keyVocab := vocab("k", cfg.Rows)
	for i := range keys {
		if cfg.NumericKeys {
			keys[i] = strconv.Itoa(100000 + i)
		} else {
			keys[i] = fmt.Sprintf("key_%s", keyVocab[i])
		}
	}
	// Hidden signal per key, shared by planted tables and query targets.
	signal := make(map[string]float64, cfg.Rows)
	for _, k := range keys {
		signal[k] = rng.NormFloat64()
	}

	numCorrelated := int(float64(cfg.NumTables) * cfg.CorrelatedShare)
	for t := 0; t < cfg.NumTables; t++ {
		tb := table.New(fmt.Sprintf("%s_t%03d", cfg.Name, t), "Key", "Metric", "Extra")
		perm := rng.Perm(len(keys))
		correlated := t < numCorrelated
		noise := 0.2 + rng.Float64()*0.5
		for _, i := range perm {
			k := keys[i]
			var metric float64
			if correlated {
				metric = signal[k] + noise*rng.NormFloat64()
			} else {
				metric = rng.NormFloat64()
			}
			tb.Rows = append(tb.Rows, []string{
				k,
				strconv.FormatFloat(metric, 'f', 4, 64),
				strconv.Itoa(rng.Intn(1000)),
			})
		}
		if cfg.SortedByMetric {
			sort.SliceStable(tb.Rows, func(a, b int) bool {
				fa, _ := strconv.ParseFloat(tb.Rows[a][1], 64)
				fb, _ := strconv.ParseFloat(tb.Rows[b][1], 64)
				return fa < fb
			})
		}
		tb.InferKinds()
		b.Tables = append(b.Tables, tb)
	}

	for q := 0; q < cfg.Queries; q++ {
		target := make([]float64, len(keys))
		for i, k := range keys {
			target[i] = signal[k] + 0.3*rng.NormFloat64()
		}
		b.Queries = append(b.Queries, CorrQuery{
			Keys:      append([]string(nil), keys...),
			Targets:   target,
			TopTables: b.exactTop(keys, target, 10),
		})
	}
	return b
}

// exactTop computes the ground truth for one query: tables ranked by the
// best |Pearson| between the target and any numeric column over joined
// keys.
func (b *CorrBenchmark) exactTop(keys []string, target []float64, k int) []string {
	tVal := make(map[string]float64, len(keys))
	for i, key := range keys {
		tVal[key] = target[i]
	}
	type scored struct {
		name string
		abs  float64
	}
	var all []scored
	for _, tb := range b.Tables {
		best := 0.0
		for c := 0; c < tb.NumCols(); c++ {
			if tb.Columns[c].Kind != table.KindNumeric {
				continue
			}
			var xs, ys []float64
			for _, row := range tb.Rows {
				tv, ok := tVal[row[0]]
				if !ok {
					continue
				}
				f, err := strconv.ParseFloat(row[c], 64)
				if err != nil {
					continue
				}
				xs = append(xs, tv)
				ys = append(ys, f)
			}
			p := qcr.Pearson(xs, ys)
			if p < 0 {
				p = -p
			}
			if p > best {
				best = p
			}
		}
		all = append(all, scored{name: tb.Name, abs: best})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].abs != all[b].abs {
			return all[a].abs > all[b].abs
		}
		return all[a].name < all[b].name
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.name
	}
	return out
}
