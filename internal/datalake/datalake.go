// Package datalake generates seeded synthetic data lakes with planted
// ground truth for every experiment in the paper (see DESIGN.md §3 for the
// substitution rationale). The paper's corpora — Gittables, DWTC, WDC,
// open-data portals, the TUS/SANTOS benchmarks, NYC open data — are
// multi-terabyte downloads; these generators reproduce the query-relevant
// statistics at laptop scale: Zipf-skewed value frequencies (posting-list
// shape), labeled unionable groups, and planted correlated column pairs.
package datalake

import (
	"fmt"
	"math/rand"
)

// syllables and suffixes compose deterministic word-like tokens. Web-table
// cells are words with diverse characters and lengths, which is what gives
// the XASH signature its selectivity; a hex-counter vocabulary would share
// almost all characters and make every row signature collide.
var syllables = []string{
	"al", "ber", "cron", "dez", "est", "fur", "gam", "hol", "ix", "jor",
	"kan", "lum", "mer", "nov", "oq", "pra", "quil", "ross", "stav", "tur",
	"ulm", "vex", "wyn", "xen", "yor", "zeph", "bright", "dam", "field", "gate",
}

var suffixes = []string{
	"", "a", "o", "is", "um", "er", "ton", "by", "ville", "shire", "berg", "stad",
}

// vocab produces a deterministic vocabulary of n distinct word-like
// tokens; prefix namespaces vocabularies so different domains never
// collide.
func vocab(prefix string, n int) []string {
	out := make([]string, n)
	ns, nx := len(syllables), len(suffixes)
	for i := range out {
		a := syllables[i%ns]
		b := syllables[(i/ns)%ns]
		c := suffixes[(i/(ns*ns))%nx]
		serial := i / (ns * ns * nx)
		if serial > 0 {
			out[i] = fmt.Sprintf("%s %s%s%s %d", prefix, a, b, c, serial)
		} else if prefix != "" {
			out[i] = fmt.Sprintf("%s %s%s%s", prefix, a, b, c)
		} else {
			out[i] = a + b + c
		}
	}
	return out
}

// zipfPicker draws vocabulary indices with a Zipf(s=1.3) distribution, the
// heavy tail observed in web-table value frequencies. Deterministic for a
// given rng state.
type zipfPicker struct {
	z *rand.Zipf
}

func newZipfPicker(rng *rand.Rand, n int) *zipfPicker {
	if n < 1 {
		n = 1
	}
	return &zipfPicker{z: rand.NewZipf(rng, 1.3, 1, uint64(n-1))}
}

func (p *zipfPicker) pick() int { return int(p.z.Uint64()) }
