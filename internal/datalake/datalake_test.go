package datalake

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"blend/internal/qcr"
	"blend/internal/table"
)

func TestGenJoinLakeDeterministic(t *testing.T) {
	cfg := JoinLakeConfig{Name: "x", NumTables: 5, ColsPerTable: 3, RowsPerTable: 20, VocabSize: 100, Seed: 1}
	a := GenJoinLake(cfg)
	b := GenJoinLake(cfg)
	if len(a.Tables) != 5 {
		t.Fatalf("tables = %d", len(a.Tables))
	}
	for i := range a.Tables {
		if !reflect.DeepEqual(a.Tables[i].Rows, b.Tables[i].Rows) {
			t.Fatal("same seed must generate identical lakes")
		}
	}
	c := GenJoinLake(JoinLakeConfig{Name: "x", NumTables: 5, ColsPerTable: 3, RowsPerTable: 20, VocabSize: 100, Seed: 2})
	if reflect.DeepEqual(a.Tables[0].Rows, c.Tables[0].Rows) {
		t.Fatal("different seeds should differ")
	}
}

func TestJoinLakeShape(t *testing.T) {
	lake := GenJoinLake(JoinLakeConfig{Name: "s", NumTables: 4, ColsPerTable: 4, RowsPerTable: 30, VocabSize: 50, Seed: 3})
	for _, tb := range lake.Tables {
		if tb.NumCols() != 4 || tb.NumRows() != 30 {
			t.Fatalf("table %s has wrong shape", tb.Name)
		}
		// Last column must be numeric.
		if tb.Columns[3].Kind != table.KindNumeric {
			t.Fatalf("table %s last column kind = %v", tb.Name, tb.Columns[3].Kind)
		}
	}
}

func TestJoinLakeZipfSkew(t *testing.T) {
	lake := GenJoinLake(JoinLakeConfig{Name: "z", NumTables: 20, ColsPerTable: 3, RowsPerTable: 100, VocabSize: 1000, Seed: 4})
	freq := make(map[string]int)
	for _, tb := range lake.Tables {
		for _, row := range tb.Rows {
			for c := 0; c < 2; c++ {
				freq[row[c]]++
			}
		}
	}
	// Heavy tail: the most frequent token should appear far more often
	// than the median token.
	max := 0
	for _, n := range freq {
		if n > max {
			max = n
		}
	}
	if max < 20 {
		t.Fatalf("no head token: max frequency = %d", max)
	}
	if len(freq) < 50 {
		t.Fatalf("vocabulary collapse: %d distinct tokens", len(freq))
	}
}

func TestQueryColumn(t *testing.T) {
	lake := GenJoinLake(JoinLakeConfig{Name: "q", NumTables: 5, ColsPerTable: 3, RowsPerTable: 50, VocabSize: 200, Seed: 5})
	for _, size := range []int{1, 10, 100} {
		q := lake.QueryColumn(size)
		if len(q) != size {
			t.Fatalf("query size = %d, want %d", len(q), size)
		}
		seen := map[string]bool{}
		for _, v := range q {
			if seen[v] {
				t.Fatal("query values must be distinct")
			}
			seen[v] = true
		}
	}
}

func TestQueryTuples(t *testing.T) {
	lake := GenJoinLake(JoinLakeConfig{Name: "qt", NumTables: 5, ColsPerTable: 4, RowsPerTable: 50, VocabSize: 200, Seed: 6})
	tuples, src := lake.QueryTuples(5, 2)
	if len(tuples) == 0 || src == "" {
		t.Fatal("no tuples generated")
	}
	for _, tp := range tuples {
		if len(tp) != 2 {
			t.Fatalf("tuple width = %d", len(tp))
		}
	}
}

func TestBruteForceTopOverlap(t *testing.T) {
	lake := GenJoinLake(JoinLakeConfig{Name: "bf", NumTables: 6, ColsPerTable: 3, RowsPerTable: 40, VocabSize: 100, Seed: 7})
	q := lake.QueryColumn(20)
	top := lake.BruteForceTopOverlap(q, 3)
	if len(top) == 0 {
		t.Fatal("query drawn from the lake must match something")
	}
	if len(top) > 3 {
		t.Fatal("k not respected")
	}
}

func TestGenUnionBenchmark(t *testing.T) {
	b := GenUnionBenchmark(UnionConfig{
		Name: "u", NumGroups: 3, TablesPerGroup: 4, RowsPerTable: 20,
		ColsPerTable: 3, DomainSize: 50, Queries: 6, Seed: 8,
	})
	if len(b.Tables) != 12 || len(b.Queries) != 6 {
		t.Fatalf("shape: %d tables %d queries", len(b.Tables), len(b.Queries))
	}
	for _, q := range b.Queries {
		if len(q.Relevant) != 4 {
			t.Fatalf("relevant = %d, want 4", len(q.Relevant))
		}
		// Query values must come from its group's domains: overlap with a
		// relevant table should exist, with an irrelevant one should not.
		qvals := map[string]bool{}
		for _, row := range q.Query.Rows {
			for _, v := range row {
				qvals[v] = true
			}
		}
		for _, tb := range b.Tables {
			overlap := 0
			for _, row := range tb.Rows {
				for _, v := range row {
					if qvals[v] {
						overlap++
					}
				}
			}
			if q.Relevant[tb.Name] && overlap == 0 {
				t.Fatalf("relevant table %s has zero overlap", tb.Name)
			}
			if !q.Relevant[tb.Name] && overlap > 0 {
				t.Fatalf("irrelevant table %s overlaps the query", tb.Name)
			}
		}
	}
}

func TestGenCorrBenchmark(t *testing.T) {
	b := GenCorrBenchmark(CorrConfig{
		Name: "c", NumTables: 10, Rows: 60, CorrelatedShare: 0.4,
		Queries: 3, Seed: 9,
	})
	if len(b.Tables) != 10 || len(b.Queries) != 3 {
		t.Fatal("shape wrong")
	}
	// Planted tables (t000..t003) must dominate the ground-truth top-4.
	for _, q := range b.Queries {
		if len(q.TopTables) == 0 {
			t.Fatal("no ground truth")
		}
		planted := 0
		for _, name := range q.TopTables[:4] {
			for i := 0; i < 4; i++ {
				if name == b.Tables[i].Name {
					planted++
				}
			}
		}
		if planted < 3 {
			t.Fatalf("only %d planted tables in ground-truth top-4: %v", planted, q.TopTables[:4])
		}
	}
}

func TestGenCorrBenchmarkNumericKeys(t *testing.T) {
	b := GenCorrBenchmark(CorrConfig{
		Name: "n", NumTables: 4, Rows: 30, CorrelatedShare: 0.5,
		NumericKeys: true, Queries: 1, Seed: 10,
	})
	// Keys must parse as numbers and the key column must infer numeric.
	if b.Tables[0].Columns[0].Kind != table.KindNumeric {
		t.Fatal("numeric keys should infer a numeric key column")
	}
}

func TestCorrGroundTruthMatchesPearson(t *testing.T) {
	b := GenCorrBenchmark(CorrConfig{
		Name: "gt", NumTables: 6, Rows: 80, CorrelatedShare: 0.5, Queries: 1, Seed: 11,
	})
	q := b.Queries[0]
	// Recompute the best table by hand and compare with ground truth #1.
	best, bestAbs := "", -1.0
	tVal := map[string]float64{}
	for i, k := range q.Keys {
		tVal[k] = q.Targets[i]
	}
	for _, tb := range b.Tables {
		var xs, ys []float64
		for _, row := range tb.Rows {
			if tv, ok := tVal[row[0]]; ok {
				if f, err := strconv.ParseFloat(row[1], 64); err == nil {
					xs = append(xs, tv)
					ys = append(ys, f)
				}
			}
		}
		p := qcr.Pearson(xs, ys)
		if p < 0 {
			p = -p
		}
		if p > bestAbs {
			best, bestAbs = tb.Name, p
		}
	}
	if q.TopTables[0] != best {
		t.Fatalf("ground truth %s != recomputed %s", q.TopTables[0], best)
	}
}

func TestRegistryCoversTableII(t *testing.T) {
	reg := Registry()
	if len(reg) != 11 {
		t.Fatalf("registry has %d lakes, Table II lists 11", len(reg))
	}
	names := map[string]bool{}
	for _, spec := range reg {
		if names[spec.PaperName] {
			t.Fatalf("duplicate lake %s", spec.PaperName)
		}
		names[spec.PaperName] = true
		if spec.Config.NumTables <= 0 || spec.Config.RowsPerTable <= 0 {
			t.Fatalf("lake %s has empty config", spec.PaperName)
		}
	}
	if !names["Gittables"] || !names["NYC open data"] {
		t.Fatal("key lakes missing")
	}
}

func TestLakeByName(t *testing.T) {
	tabs := LakeByName("SANTOS")
	if len(tabs) == 0 {
		t.Fatal("SANTOS lake missing")
	}
	if LakeByName("not-a-lake") != nil {
		t.Fatal("unknown lake must return nil")
	}
}

func TestZipfPickerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := newZipfPicker(rng, 10)
	for i := 0; i < 1000; i++ {
		if v := p.pick(); v < 0 || v >= 10 {
			t.Fatalf("pick out of range: %d", v)
		}
	}
	// Degenerate size.
	p1 := newZipfPicker(rng, 1)
	if p1.pick() != 0 {
		t.Fatal("single-element picker must return 0")
	}
}
