package datalake

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"blend/internal/berr"
	"blend/internal/table"
)

// The bulk-ingestion pipeline: a directory walker feeding bounded parse
// workers feeding, downstream, the engine's batched inserts. The walker
// and parsers live here (next to the synthetic lake generators) because
// they are lake-shaping concerns; the commit path — batching, duplicate
// checks, cache invalidation — lives with the engine.

// WalkCSVFiles returns every *.csv file under dir, descending into
// subdirectories, sorted by path so downstream table-id assignment is
// deterministic regardless of filesystem iteration order.
func WalkCSVFiles(dir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(strings.ToLower(d.Name()), ".csv") {
			return nil
		}
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// ParsedCSV is one pipeline result: the file it came from and either the
// parsed table or the parse failure.
type ParsedCSV struct {
	Path  string
	Table *table.Table
	Err   error
}

// ParseCSVFiles parses the given files with a bounded pool of workers
// concurrent parsers (<= 0 means GOMAXPROCS) and invokes emit once per
// file in input order — parallel parse, sequential commit, so table ids
// downstream match the sorted path order exactly like a sequential load.
// Parse failures are delivered through ParsedCSV.Err for emit to decide
// on (skip or abort); a non-nil error from emit aborts the pipeline and
// is returned. Context cancellation aborts between files with a typed
// canceled/deadline error; already-emitted files are unaffected.
func ParseCSVFiles(ctx context.Context, paths []string, workers int, emit func(ParsedCSV) error) error {
	if len(paths) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}

	// Every file gets a 1-slot result channel: workers never block on
	// delivery, and the emit loop receives in input order.
	results := make([]chan ParsedCSV, len(paths))
	for i := range results {
		results[i] = make(chan ParsedCSV, 1)
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range paths {
			select {
			case jobs <- i:
			case <-pctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if pctx.Err() != nil {
					return
				}
				t, err := table.ReadCSVFile(paths[i])
				results[i] <- ParsedCSV{Path: paths[i], Table: t, Err: err}
			}
		}()
	}
	defer wg.Wait()

	for i := range paths {
		select {
		case p := <-results[i]:
			if err := emit(p); err != nil {
				cancel()
				return err
			}
		case <-ctx.Done():
			cancel()
			return berr.FromContext("datalake.ingest", ctx.Err())
		}
	}
	return nil
}
