package datalake

import (
	"fmt"
	"math/rand"
	"sort"

	"blend/internal/table"
)

// JoinLakeConfig shapes a lake for join-discovery experiments (Fig. 5,
// Fig. 6, Table V).
type JoinLakeConfig struct {
	// Name labels the lake in experiment output.
	Name string
	// NumTables is the number of lake tables.
	NumTables int
	// ColsPerTable is the column count of each table.
	ColsPerTable int
	// RowsPerTable is the row count of each table.
	RowsPerTable int
	// VocabSize is the shared string vocabulary size; smaller values mean
	// more cross-table overlap and longer posting lists.
	VocabSize int
	// Seed drives all randomness.
	Seed int64
}

// JoinLake is a generated lake plus the vocabulary it draws from.
type JoinLake struct {
	Config JoinLakeConfig
	Tables []*table.Table
	Vocab  []string
	rng    *rand.Rand
}

// GenJoinLake builds a join-benchmark lake: every table mixes string
// columns drawn Zipf-skewed from a shared vocabulary (joinable content)
// with one numeric column (so correlation machinery has cells to index).
func GenJoinLake(cfg JoinLakeConfig) *JoinLake {
	rng := rand.New(rand.NewSource(cfg.Seed))
	voc := vocab("v", cfg.VocabSize)
	picker := newZipfPicker(rng, cfg.VocabSize)
	lake := &JoinLake{Config: cfg, Vocab: voc, rng: rng}
	for t := 0; t < cfg.NumTables; t++ {
		cols := make([]string, cfg.ColsPerTable)
		for c := range cols {
			cols[c] = fmt.Sprintf("col%d", c)
		}
		tb := table.New(fmt.Sprintf("%s_t%04d", cfg.Name, t), cols...)
		for r := 0; r < cfg.RowsPerTable; r++ {
			row := make([]string, cfg.ColsPerTable)
			for c := range row {
				if c == cfg.ColsPerTable-1 {
					// Last column is numeric.
					row[c] = fmt.Sprintf("%d", rng.Intn(100000))
					continue
				}
				row[c] = voc[picker.pick()]
			}
			tb.Rows = append(tb.Rows, row)
		}
		tb.InferKinds()
		lake.Tables = append(lake.Tables, tb)
	}
	return lake
}

// QueryColumn draws a join-search query column of the given size: values
// sampled from a random lake table column (so queries hit real content),
// padded from the vocabulary when the table column is too small — the
// protocol of §VIII-D ("3,000 query columns per data lake, 1,000 per query
// size").
func (l *JoinLake) QueryColumn(size int) []string {
	t := l.Tables[l.rng.Intn(len(l.Tables))]
	col := l.rng.Intn(t.NumCols())
	if t.Columns[col].Kind == table.KindNumeric && t.NumCols() > 1 {
		col = (col + 1) % t.NumCols()
	}
	vals := t.DistinctColumnValues(col)
	out := make([]string, 0, size)
	seen := make(map[string]struct{}, size)
	add := func(v string) {
		if _, dup := seen[v]; dup {
			return
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	for _, i := range l.rng.Perm(len(vals)) {
		if len(out) == size {
			return out
		}
		add(vals[i])
	}
	for len(out) < size {
		add(l.Vocab[l.rng.Intn(len(l.Vocab))])
	}
	return out
}

// QueryTuples draws multi-column query rows for MC-seeker experiments:
// n rows of the given width taken verbatim from one random table (so the
// planted ground truth — that source table — is always discoverable).
// It returns the tuples and the source table's name.
func (l *JoinLake) QueryTuples(n, width int) ([][]string, string) {
	t := l.Tables[l.rng.Intn(len(l.Tables))]
	if width > t.NumCols() {
		width = t.NumCols()
	}
	tuples := make([][]string, 0, n)
	for _, r := range l.rng.Perm(t.NumRows()) {
		if len(tuples) == n {
			break
		}
		row := make([]string, width)
		ok := true
		for c := 0; c < width; c++ {
			row[c] = t.Cell(r, c)
			if row[c] == table.Null {
				ok = false
				break
			}
		}
		if ok {
			tuples = append(tuples, row)
		}
	}
	return tuples, t.Name
}

// BruteForceTopOverlap computes, for a query column, the exact top-k lake
// tables by maximum per-column distinct overlap — the ground truth for the
// LakeBench-style effectiveness comparison (Fig. 6).
func (l *JoinLake) BruteForceTopOverlap(query []string, k int) []string {
	qset := make(map[string]bool, len(query))
	for _, q := range query {
		qset[q] = true
	}
	type scored struct {
		name    string
		overlap int
	}
	var all []scored
	for _, t := range l.Tables {
		best := 0
		for c := 0; c < t.NumCols(); c++ {
			n := 0
			for _, v := range t.DistinctColumnValues(c) {
				if qset[v] {
					n++
				}
			}
			if n > best {
				best = n
			}
		}
		if best > 0 {
			all = append(all, scored{name: t.Name, overlap: best})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].overlap != all[b].overlap {
			return all[a].overlap > all[b].overlap
		}
		return all[a].name < all[b].name
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.name
	}
	return out
}
