package datalake

import "blend/internal/table"

// LakeSpec describes one scaled-down stand-in for a lake of Table II.
// Scale is roughly 1:1000 against the paper's corpora: the shape (relative
// table counts, width, and skew) is preserved while absolute sizes stay
// laptop-friendly.
type LakeSpec struct {
	// PaperName is the corpus name as printed in Table II.
	PaperName string
	// PaperTables/PaperColumns/PaperRows echo the paper's reported sizes
	// (0 when the paper reports "-").
	PaperTables  int64
	PaperColumns int64
	PaperRows    int64
	// Config generates our scaled equivalent.
	Config JoinLakeConfig
}

// Registry lists the scaled stand-ins for every lake of Table II, keyed in
// the paper's row order.
func Registry() []LakeSpec {
	mk := func(paper string, pt, pc, pr int64, tables, cols, rows, vocabK int, seed int64) LakeSpec {
		return LakeSpec{
			PaperName:    paper,
			PaperTables:  pt,
			PaperColumns: pc,
			PaperRows:    pr,
			Config: JoinLakeConfig{
				Name:         paper,
				NumTables:    tables,
				ColsPerTable: cols,
				RowsPerTable: rows,
				VocabSize:    vocabK,
				Seed:         seed,
			},
		}
	}
	return []LakeSpec{
		mk("DWTC", 145_000_000, 760_000_000, 1_500_000_000, 400, 5, 120, 8000, 101),
		mk("Lakebench Webtable Large", 2_800_000, 14_800_000, 63_700_000, 250, 5, 60, 6000, 102),
		mk("Gittables", 1_500_000, 16_800_000, 345_000_000, 200, 8, 100, 5000, 103),
		mk("German Open Data", 17_144, 440_000, 62_000_000, 60, 6, 200, 3000, 104),
		mk("WDC", 0, 163_000_000, 1_600_000_000, 300, 4, 80, 7000, 105),
		mk("Canada, US, and UK Open Data", 0, 745_000, 1_100_000_000, 120, 5, 300, 4000, 106),
		mk("TUS", 1_530, 14_800, 6_800_000, 40, 6, 150, 2500, 107),
		mk("TUS Large", 5_043, 55_000, 9_600_000, 80, 6, 120, 3500, 108),
		mk("SANTOS", 550, 6_322, 3_800_000, 30, 6, 180, 2000, 109),
		mk("SANTOS Large", 11_090, 121_000, 85_000_000, 90, 7, 150, 4500, 110),
		mk("NYC open data", 1_063, 16_000, 290_000_000, 35, 8, 400, 2500, 111),
	}
}

// LakeByName generates the scaled lake for a Table II corpus name, or nil
// when unknown.
func LakeByName(name string) []*table.Table {
	for _, spec := range Registry() {
		if spec.PaperName == name {
			return GenJoinLake(spec.Config).Tables
		}
	}
	return nil
}
