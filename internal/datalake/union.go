package datalake

import (
	"fmt"
	"math/rand"

	"blend/internal/table"
)

// UnionConfig shapes a union-search benchmark lake in the style of the TUS
// and SANTOS benchmarks (Table VI, Fig. 7): tables belong to labeled
// groups; tables in a group share a schema family and draw rows from the
// same domains, so they are unionable with each other and with queries
// drawn from the group.
type UnionConfig struct {
	Name string
	// NumGroups is the number of unionable families.
	NumGroups int
	// TablesPerGroup is the number of lake tables per family.
	TablesPerGroup int
	// RowsPerTable is the row count of each table.
	RowsPerTable int
	// ColsPerTable is the column count of each family's schema.
	ColsPerTable int
	// DomainSize is the vocabulary size of each column domain.
	DomainSize int
	// Queries is the number of query tables to generate.
	Queries int
	Seed    int64
}

// UnionQuery is one benchmark query with its ground-truth unionable tables.
type UnionQuery struct {
	Query    *table.Table
	Relevant map[string]bool
}

// UnionBenchmark is a generated union-search benchmark.
type UnionBenchmark struct {
	Config  UnionConfig
	Tables  []*table.Table
	Queries []UnionQuery
}

// GenUnionBenchmark builds the lake and queries. Each group g has
// ColsPerTable domains (disjoint vocabularies across groups); every table
// of the group — and every query drawn from the group — samples rows from
// those domains, giving high value overlap within a group and none across
// groups.
func GenUnionBenchmark(cfg UnionConfig) *UnionBenchmark {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &UnionBenchmark{Config: cfg}

	domains := make([][][]string, cfg.NumGroups) // group -> column -> vocab
	groupTables := make([][]string, cfg.NumGroups)
	for g := 0; g < cfg.NumGroups; g++ {
		domains[g] = make([][]string, cfg.ColsPerTable)
		for c := 0; c < cfg.ColsPerTable; c++ {
			domains[g][c] = vocab(fmt.Sprintf("g%dc%d_", g, c), cfg.DomainSize)
		}
		for ti := 0; ti < cfg.TablesPerGroup; ti++ {
			name := fmt.Sprintf("%s_g%02d_t%02d", cfg.Name, g, ti)
			groupTables[g] = append(groupTables[g], name)
			b.Tables = append(b.Tables, genUnionTable(rng, name, domains[g], cfg.RowsPerTable))
		}
	}
	for q := 0; q < cfg.Queries; q++ {
		g := q % cfg.NumGroups
		query := genUnionTable(rng, fmt.Sprintf("query%03d", q), domains[g], cfg.RowsPerTable)
		relevant := make(map[string]bool, len(groupTables[g]))
		for _, n := range groupTables[g] {
			relevant[n] = true
		}
		b.Queries = append(b.Queries, UnionQuery{Query: query, Relevant: relevant})
	}
	return b
}

func genUnionTable(rng *rand.Rand, name string, domains [][]string, rows int) *table.Table {
	cols := make([]string, len(domains))
	for c := range cols {
		cols[c] = fmt.Sprintf("attr%d", c)
	}
	t := table.New(name, cols...)
	for r := 0; r < rows; r++ {
		row := make([]string, len(domains))
		for c := range row {
			row[c] = domains[c][rng.Intn(len(domains[c]))]
		}
		t.Rows = append(t.Rows, row)
	}
	t.InferKinds()
	return t
}
