// Package embed produces deterministic dense embeddings for table columns.
//
// It substitutes for the contrastive language models of the Starmie and
// DeepJoin baselines, which cannot be trained or shipped offline (see
// DESIGN.md §3). A column embeds as the TF-weighted feature-hashed bag of
// its cell tokens, L2-normalized — a classical semantic proxy with the
// properties the baselines rely on: columns about the same entities land
// close in cosine space even under partial value overlap, while unrelated
// columns land far apart.
package embed

import (
	"hash/fnv"
	"math"
	"strings"
)

// Dim is the embedding dimensionality.
const Dim = 64

// Vector is a dense embedding.
type Vector []float32

// Column embeds the values of one column. Tokens are lowercased words;
// each token adds hash-signed weight to one dimension (feature hashing
// with a sign hash reduces collision bias). The result is L2-normalized;
// an all-null column yields a zero vector (callers should skip it).
func Column(values []string) Vector {
	v := make(Vector, Dim)
	for _, cell := range values {
		for _, tok := range Tokenize(cell) {
			d, sign := hashToken(tok)
			v[d] += sign
		}
	}
	normalize(v)
	return v
}

// Table embeds a whole table as the mean of its column embeddings
// (re-normalized). Starmie scores table pairs from column vectors; the
// table vector is used for coarse candidate pruning.
func Table(columns []Vector) Vector {
	v := make(Vector, Dim)
	for _, c := range columns {
		for i := range v {
			if i < len(c) {
				v[i] += c[i]
			}
		}
	}
	normalize(v)
	return v
}

// Cosine returns the cosine similarity of two embeddings.
func Cosine(a, b Vector) float32 {
	var dot, na, nb float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float32(dot / math.Sqrt(na*nb))
}

// Tokenize splits a cell into lowercase word tokens (letters and digits;
// everything else separates).
func Tokenize(cell string) []string {
	cell = strings.ToLower(cell)
	var toks []string
	start := -1
	for i := 0; i <= len(cell); i++ {
		alnum := i < len(cell) && (cell[i] >= 'a' && cell[i] <= 'z' || cell[i] >= '0' && cell[i] <= '9')
		if alnum {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, cell[start:i])
			start = -1
		}
	}
	return toks
}

// hashToken maps a token to a dimension and a ±1 sign.
func hashToken(tok string) (dim int, sign float32) {
	h := fnv.New64a()
	h.Write([]byte(tok))
	s := h.Sum64()
	dim = int(s % Dim)
	if (s>>32)&1 == 1 {
		return dim, 1
	}
	return dim, -1
}

func normalize(v Vector) {
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(norm))
	for i := range v {
		v[i] *= inv
	}
}

// IsZero reports whether the vector has no signal (e.g. an all-null
// column).
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
