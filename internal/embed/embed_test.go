package embed

import (
	"math"
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("New York-City 42!")
	want := []string{"new", "york", "city", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if Tokenize("") != nil {
		t.Fatal("empty cell should yield no tokens")
	}
}

func TestColumnDeterministic(t *testing.T) {
	a := Column([]string{"alpha", "beta", "gamma"})
	b := Column([]string{"alpha", "beta", "gamma"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("embedding must be deterministic")
	}
}

func TestColumnNormalized(t *testing.T) {
	v := Column([]string{"some", "tokens", "here"})
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("norm = %v, want 1", norm)
	}
}

func TestZeroColumn(t *testing.T) {
	v := Column([]string{"", "", ""})
	if !v.IsZero() {
		t.Fatal("all-null column must embed to zero")
	}
	if Cosine(v, Column([]string{"x"})) != 0 {
		t.Fatal("cosine with zero vector must be 0")
	}
}

func TestSimilarColumnsCloser(t *testing.T) {
	cities1 := Column([]string{"new york", "boston", "chicago", "seattle"})
	cities2 := Column([]string{"boston", "chicago", "denver", "austin"})
	numbers := Column([]string{"482", "1093", "77", "2450"})
	simCities := Cosine(cities1, cities2)
	simMixed := Cosine(cities1, numbers)
	if simCities <= simMixed {
		t.Fatalf("city columns (%v) should be closer than city-number (%v)", simCities, simMixed)
	}
	if simCities <= 0 {
		t.Fatalf("overlapping columns should have positive similarity, got %v", simCities)
	}
}

func TestCosineSelf(t *testing.T) {
	v := Column([]string{"alpha", "beta"})
	if s := Cosine(v, v); math.Abs(float64(s)-1) > 1e-5 {
		t.Fatalf("self cosine = %v", s)
	}
}

func TestTableEmbedding(t *testing.T) {
	c1 := Column([]string{"a", "b"})
	c2 := Column([]string{"c", "d"})
	tv := Table([]Vector{c1, c2})
	if tv.IsZero() {
		t.Fatal("table embedding must not be zero")
	}
	var norm float64
	for _, x := range tv {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("table embedding norm = %v", norm)
	}
}
