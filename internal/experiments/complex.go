package experiments

import (
	"context"
	"time"

	"blend"
	"blend/internal/baselines/josie"
	"blend/internal/baselines/mate"
	"blend/internal/baselines/qcrsketch"
	"blend/internal/baselines/starmie"
	"blend/internal/datalake"
	"blend/internal/storage"
	"blend/internal/table"
)

// Lines-of-code accounting for Table III. The BLEND numbers count the plan
// definition statements a user writes (the calls in blend/tasks.go bodies);
// the baseline numbers count the federated implementations below
// (baselineNegative, baselineImputation, baselineFeature, baselineMulti)
// including the alignment glue, mirroring how the paper counts ad-hoc
// pipeline code.
const (
	locBlendNegative   = 5
	locBlendImputation = 5
	locBlendFeature    = 7
	locBlendMulti      = 8

	locBaseNegative   = 38
	locBaseImputation = 33
	locBaseFeature    = 41
	locBaseMulti      = 46
)

// taskResult aggregates one Table III column triple.
type taskResult struct {
	blend, bno, base  time.Duration
	locBlend, locBase int
	systems           int
	indexes           string
}

// RunComplexTasks regenerates Table III: the four complex discovery tasks,
// each implemented once with BLEND (optimized and unoptimized) and once as
// a federation of the reimplemented state-of-the-art systems.
func RunComplexTasks(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "complex", Title: "Table III: complex discovery tasks"}
	queries := 4 * scale.factor()

	results := []struct {
		name string
		res  taskResult
	}{
		{"With Negative Examples", runNegativeTask(ctx, scale, queries)},
		{"Data Imputation", runImputationTask(ctx, scale, queries)},
		{"Feature Discovery", runFeatureTask(ctx, scale, max(2, queries/2))},
		{"Multi-Objective Discovery", runMultiTask(ctx, scale, max(2, queries/2))},
	}
	r.Printf("%-26s %10s %10s %10s | %5s %5s | %8s | %8s",
		"Task", "BLEND", "B-NO", "Baseline", "LOC-B", "LOC-b", "#Systems", "#Indexes")
	for _, t := range results {
		r.Printf("%-26s %10s %10s %10s | %5d %5d | %d vs %d | %s",
			t.name, ms(t.res.blend), ms(t.res.bno), ms(t.res.base),
			t.res.locBlend, t.res.locBase, 1, t.res.systems, t.res.indexes)
	}
	return r
}

// negLake builds the lake shared by the negative-example and imputation
// tasks: a Gittables-like join lake.
func negLake(scale Scale, seed int64) *datalake.JoinLake {
	return datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "complex", NumTables: 60 * scale.factor(), ColsPerTable: 4,
		RowsPerTable: 60, VocabSize: 4000, Seed: seed,
	})
}

func runNegativeTask(ctx context.Context, scale Scale, queries int) taskResult {
	lake := negLake(scale, 21)
	d := blend.IndexTables(blend.ColumnStore, lake.Tables)
	mateIx := mate.Build(lake.Tables)
	// The baseline's "database": candidate tables must be loaded out of it
	// into the application before row-by-row validation — the federation
	// cost the paper identifies as the bottleneck (§VIII-B2).
	db := storage.Build(storage.ColumnStore, lake.Tables)

	res := taskResult{
		locBlend: locBlendNegative, locBase: locBaseNegative,
		systems: 1, indexes: "Single vs Multi",
	}
	for q := 0; q < queries; q++ {
		pos, _ := lake.QueryTuples(4, 2)
		neg, _ := lake.QueryTuples(3, 2)
		if len(pos) == 0 || len(neg) == 0 {
			continue
		}
		plan := blend.NegativeExamplesPlan(pos, neg, 10)
		res.blend += timeIt(func() { mustRun(d.Run(ctx, plan)) })
		res.bno += timeIt(func() { mustRun(d.Run(ctx, plan, blend.WithoutOptimizer())) })
		res.base += timeIt(func() { baselineNegative(mateIx, db, pos, neg, 10) })
	}
	return res
}

// baselineNegative is the federated implementation of §VIII-B2: MATE
// filters tables by the positive examples, then application code loads
// every result table from the database and validates it row by row
// against the negative examples.
func baselineNegative(ix *mate.Index, db *storage.Store, pos, neg [][]string, k int) []string {
	hits, _ := ix.Search(pos, -1)
	var out []string
	for _, h := range hits {
		t := db.ReconstructTable(h.TableID)
		contaminated := false
		// Row-by-row validation — the bottleneck the paper reports.
		for _, row := range t.Rows {
			cells := make(map[string]struct{}, len(row))
			for _, c := range row {
				cells[c] = struct{}{}
			}
			for _, nt := range neg {
				all := true
				for _, v := range nt {
					if _, ok := cells[v]; !ok {
						all = false
						break
					}
				}
				if all {
					contaminated = true
					break
				}
			}
			if contaminated {
				break
			}
		}
		if !contaminated {
			out = append(out, t.Name)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func runImputationTask(ctx context.Context, scale Scale, queries int) taskResult {
	lake := negLake(scale, 22)
	d := blend.IndexTables(blend.ColumnStore, lake.Tables)
	mateIx := mate.Build(lake.Tables)
	josieIx := josie.Build(lake.Tables)
	db := storage.Build(storage.ColumnStore, lake.Tables)

	res := taskResult{
		locBlend: locBlendImputation, locBase: locBaseImputation,
		systems: 2, indexes: "Single vs Multi",
	}
	for q := 0; q < queries; q++ {
		examples, _ := lake.QueryTuples(5, 2)
		if len(examples) == 0 {
			continue
		}
		queriesCol := lake.QueryColumn(12)
		plan := blend.ImputationPlan(examples, queriesCol, 10)
		res.blend += timeIt(func() { mustRun(d.Run(ctx, plan)) })
		res.bno += timeIt(func() { mustRun(d.Run(ctx, plan, blend.WithoutOptimizer())) })
		res.base += timeIt(func() { baselineImputation(mateIx, josieIx, db, examples, queriesCol, 10) })
	}
	return res
}

// baselineImputation is the federated implementation of §VIII-B3: MATE for
// complete rows, JOSIE for partial rows, intersected in application code;
// the intersected tables are then loaded from the database so the missing
// values can be inferred from them.
func baselineImputation(mi *mate.Index, ji *josie.Index, db *storage.Store, examples [][]string, queries []string, k int) []string {
	mateHits, _ := mi.Search(examples, -1)
	josieHits := ji.SearchTables(queries, 4*k)
	inJosie := make(map[int32]struct{}, len(josieHits))
	for _, h := range josieHits {
		inJosie[h.Column.TableID] = struct{}{}
	}
	var out []string
	for _, h := range mateHits {
		if _, ok := inJosie[h.TableID]; ok {
			// Load the table to application memory for value inference.
			_ = db.ReconstructTable(h.TableID)
			out = append(out, mi.TableName(h.TableID))
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func runFeatureTask(ctx context.Context, scale Scale, queries int) taskResult {
	bench := datalake.GenCorrBenchmark(datalake.CorrConfig{
		Name: "feat", NumTables: 16 * scale.factor(), Rows: 80,
		CorrelatedShare: 0.3, Queries: queries, Seed: 23,
	})
	d := blend.IndexTables(blend.ColumnStore, bench.Tables)
	sketchIx := qcrsketch.Build(bench.Tables, 256)
	mateIx := mate.Build(bench.Tables)
	db := storage.Build(storage.ColumnStore, bench.Tables)

	res := taskResult{
		locBlend: locBlendFeature, locBase: locBaseFeature,
		systems: 2, indexes: "Single vs Multi",
	}
	for _, q := range bench.Queries {
		// One existing feature: a shifted variant of the target acts as a
		// plausible already-owned column.
		feature := make([]float64, len(q.Targets))
		for i := range feature {
			feature[i] = float64(i%7) + 0.1*q.Targets[i]
		}
		joinTuples := make([][]string, 0, 4)
		for i := 0; i < 4 && i < len(q.Keys); i++ {
			joinTuples = append(joinTuples, []string{q.Keys[i]})
		}
		plan := blend.FeatureDiscoveryPlan(q.Keys, q.Targets, [][]float64{feature}, joinTuples, 10)
		res.blend += timeIt(func() { mustRun(d.Run(ctx, plan)) })
		res.bno += timeIt(func() { mustRun(d.Run(ctx, plan, blend.WithoutOptimizer())) })
		res.base += timeIt(func() {
			baselineFeature(sketchIx, mateIx, db, q.Keys, q.Targets, [][]float64{feature}, joinTuples, 10)
		})
	}
	return res
}

// baselineFeature is the federated implementation of §VIII-B4: repeated
// rounds of the QCR sketch (target, then each feature, filtering previous
// results) plus MATE for joinability, intersected in application code.
func baselineFeature(si *qcrsketch.Index, mi *mate.Index, db *storage.Store, keys []string, target []float64, features [][]float64, joinTuples [][]string, k int) []string {
	targetHits := si.Search(keys, target, k)
	surviving := make(map[int32]struct{}, len(targetHits))
	for _, h := range targetHits {
		surviving[h.TableID] = struct{}{}
	}
	for _, feat := range features {
		for _, h := range si.Search(keys, feat, k) {
			delete(surviving, h.TableID)
		}
	}
	mateHits, _ := mi.Search(joinTuples, -1)
	var out []string
	for _, h := range mateHits {
		if _, ok := surviving[h.TableID]; ok {
			// Load the feature table so its column can join the dataset.
			_ = db.ReconstructTable(h.TableID)
			out = append(out, mi.TableName(h.TableID))
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func runMultiTask(ctx context.Context, scale Scale, queries int) taskResult {
	lake := negLake(scale, 24)
	d := blend.IndexTables(blend.ColumnStore, lake.Tables)
	josieIx := josie.Build(lake.Tables)
	starmieIx := starmie.Build(lake.Tables)
	sketchIx := qcrsketch.Build(lake.Tables, 256)
	db := storage.Build(storage.ColumnStore, lake.Tables)

	res := taskResult{
		locBlend: locBlendMulti, locBase: locBaseMulti,
		systems: 3, indexes: "Single vs Multi",
	}
	for q := 0; q < queries; q++ {
		src := lake.Tables[q%len(lake.Tables)]
		query := sampleQueryTable(src, 8)
		keywords := lake.QueryColumn(3)
		plan, err := blend.MultiObjectivePlan(keywords, query, "col0", "col3", 10)
		if err != nil {
			panic(err)
		}
		res.blend += timeIt(func() { mustRun(d.Run(ctx, plan)) })
		res.bno += timeIt(func() { mustRun(d.Run(ctx, plan, blend.WithoutOptimizer())) })
		res.base += timeIt(func() {
			baselineMulti(josieIx, starmieIx, sketchIx, db, keywords, query, 10)
		})
	}
	return res
}

// baselineMulti is the federated implementation of §VIII-B5: JOSIE for
// keyword/join search, Starmie for union search, and the QCR sketch for
// correlation search, with application code gluing three systems and three
// index formats together.
func baselineMulti(ji *josie.Index, si *starmie.Index, qi *qcrsketch.Index, db *storage.Store, keywords []string, query *table.Table, k int) []string {
	union := make(map[string]struct{})
	// Each subsystem's results cross a system boundary: the tables are
	// loaded from the database to be merged in application memory.
	for _, h := range ji.SearchTables(keywords, k) {
		_ = db.ReconstructTable(h.Column.TableID)
		union[ji.TableName(h.Column.TableID)] = struct{}{}
	}
	for _, h := range si.Search(query, k) {
		_ = db.ReconstructTable(h.TableID)
		union[si.TableName(h.TableID)] = struct{}{}
	}
	targets, rows := query.NumericColumnValues(query.NumCols() - 1)
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = query.Cell(r, 0)
	}
	for _, h := range qi.Search(keys, targets, k) {
		_ = db.ReconstructTable(h.TableID)
		union[qi.TableName(h.TableID)] = struct{}{}
	}
	out := make([]string, 0, len(union))
	for n := range union {
		out = append(out, n)
	}
	return out
}

// sampleQueryTable copies the first n rows of src as a query table.
func sampleQueryTable(src *table.Table, n int) *table.Table {
	q := table.New("query")
	q.Columns = append(q.Columns, src.Columns...)
	for r := 0; r < n && r < src.NumRows(); r++ {
		q.Rows = append(q.Rows, src.Rows[r])
	}
	return q
}

func mustRun(res *blend.Result, err error) *blend.Result {
	if err != nil {
		panic(err)
	}
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
