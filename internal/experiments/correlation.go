package experiments

import (
	"context"
	"math/rand"
	"time"

	"blend"
	"blend/internal/baselines/qcrsketch"
	"blend/internal/datalake"
	"blend/internal/metrics"
	"blend/internal/table"
)

// RunCorrelation regenerates Table VII: correlation discovery on NYC-like
// benchmarks. NYC (All) allows numeric join keys (which the sketch
// baseline cannot index); NYC (Cat.) restricts keys to categorical
// columns. BLEND uses convenience sampling (rowid < h); BLEND (rand)
// indexes row-shuffled tables, emulating the a-priori shuffle ablation;
// the baseline is the QCR sketch with h fixed at indexing time. h = 256
// throughout, as in the paper.
func RunCorrelation(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "correlation", Title: "Table VII: correlation discovery"}
	const h = 256
	r.Printf("%-10s %-14s | %7s %7s | %10s", "Lake", "System", "P@10", "R@10", "Runtime")
	for _, spec := range []struct {
		name    string
		numeric bool
		seed    int64
	}{
		{"NYC (All)", true, 81},
		{"NYC (Cat.)", false, 82},
	} {
		bench := datalake.GenCorrBenchmark(datalake.CorrConfig{
			Name: spec.name, NumTables: 20 * scale.factor(), Rows: 400,
			CorrelatedShare: 0.4, NumericKeys: spec.numeric,
			SortedByMetric: true, Queries: 5, Seed: spec.seed,
		})
		d := blend.IndexTables(blend.ColumnStore, bench.Tables)
		d.SetCorrelationSampleSize(h)
		dRand := blend.IndexTables(blend.ColumnStore, shuffleRows(bench.Tables, spec.seed+1000))
		dRand.SetCorrelationSampleSize(h)
		sketch := qcrsketch.Build(bench.Tables, h)

		var bRuns, rRuns, sRuns []metrics.Run
		var tB, tR, tS time.Duration
		for _, q := range bench.Queries {
			truth := metrics.SetOf(q.TopTables...)
			seeker := blend.Correlation(q.Keys, q.Targets, 10)

			start := time.Now()
			hits, err := d.Seek(ctx, seeker)
			if err != nil {
				panic(err)
			}
			tB += time.Since(start)
			bRuns = append(bRuns, metrics.Run{Retrieved: d.TableNames(hits), Relevant: truth})

			start = time.Now()
			hits, err = dRand.Seek(ctx, seeker)
			if err != nil {
				panic(err)
			}
			tR += time.Since(start)
			rRuns = append(rRuns, metrics.Run{Retrieved: dRand.TableNames(hits), Relevant: truth})

			start = time.Now()
			sh := sketch.Search(q.Keys, q.Targets, 10)
			tS += time.Since(start)
			var sNames []string
			for _, s := range sh {
				sNames = append(sNames, sketch.TableName(s.TableID))
			}
			sRuns = append(sRuns, metrics.Run{Retrieved: sNames, Relevant: truth})
		}
		n := time.Duration(len(bench.Queries))
		row := func(system string, runs []metrics.Run, t time.Duration) {
			r.Printf("%-10s %-14s | %6.1f%% %6.1f%% | %10s", spec.name, system,
				100*metrics.MeanPrecisionAtK(runs, 10), 100*metrics.MeanRecallAtK(runs, 10), ms(t/n))
		}
		row("BLEND", bRuns, tB)
		row("BLEND (rand)", rRuns, tR)
		row("Baseline", sRuns, tS)
	}
	return r
}

// shuffleRows returns deep copies of the tables with rows shuffled — the
// a-priori shuffled index of the BLEND (rand) ablation.
func shuffleRows(tables []*table.Table, seed int64) []*table.Table {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*table.Table, len(tables))
	for i, t := range tables {
		c := t.Clone()
		rng.Shuffle(len(c.Rows), func(a, b int) { c.Rows[a], c.Rows[b] = c.Rows[b], c.Rows[a] })
		out[i] = c
	}
	return out
}
