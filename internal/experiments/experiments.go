// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII) against the synthetic lakes of internal/datalake. Each
// experiment returns a Report whose text output mirrors the paper's
// rows/series; EXPERIMENTS.md records the expected shape versus the
// paper's absolute numbers.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Scale selects experiment sizes. Small keeps the full suite in seconds
// for tests and CI; Full enlarges lakes and workloads for benchmarking.
type Scale int

const (
	// Small is the test-friendly default.
	Small Scale = iota
	// Full enlarges the lakes roughly 8× for more stable runtimes.
	Full
)

// factor converts the scale into a workload multiplier.
func (s Scale) factor() int {
	if s == Full {
		return 8
	}
	return 1
}

// Report is the rendered result of one experiment.
type Report struct {
	// ID is the experiment key used by the CLI (-exp flag).
	ID string
	// Title names the reproduced paper artifact.
	Title string
	lines []string
}

// Printf appends one formatted line to the report.
func (r *Report) Printf(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

// Lines returns the report body.
func (r *Report) Lines() []string { return r.lines }

// String renders the full report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	for _, l := range r.lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Experiment is one runnable reproduction. Run threads the caller's
// context through every engine invocation, so a canceled context aborts
// the reproduction mid-sweep.
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context, Scale) *Report
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"lakes", "Table II: data lakes used in the experiments", RunLakes},
		{"complex", "Table III: complex discovery tasks", RunComplexTasks},
		{"optimizer", "Table IV: optimizer effectiveness", RunOptimizer},
		{"mcprecision", "Table V: MC precision vs MATE", RunMCPrecision},
		{"sc_runtime", "Fig. 5: SC seeker runtime vs JOSIE", RunSCRuntime},
		{"lakebench", "Fig. 6: LakeBench runtime and effectiveness", RunLakeBench},
		{"unionquality", "Table VI: union search quality vs Starmie", RunUnionQuality},
		{"union_runtime", "Fig. 7: union search runtime vs Starmie", RunUnionRuntime},
		{"correlation", "Table VII: correlation discovery", RunCorrelation},
		{"h_sweep", "Ablation: query-time sample size h (§VIII-G)", RunHSweep},
		{"indexsize", "Table VIII: index storage", RunIndexSize},
		{"userstudy", "Table IX: user study", RunUserStudy},
		{"sharding", "Extension: sharded index + concurrent scheduler", RunSharding},
	}
}

// ByID finds an experiment, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			exp := e
			return &exp
		}
	}
	return nil
}

// timeIt measures fn's wall-clock duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
