package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// These tests run each experiment at small scale and assert the *shape*
// invariants EXPERIMENTS.md claims — the relationships that must hold on
// any machine, not the absolute numbers.

func lines(t *testing.T, r *Report) []string {
	t.Helper()
	if r == nil || len(r.Lines()) == 0 {
		t.Fatal("empty report")
	}
	return r.Lines()
}

func TestRegistryMatchesPaperOrder(t *testing.T) {
	ids := []string{"lakes", "complex", "optimizer", "mcprecision", "sc_runtime",
		"lakebench", "unionquality", "union_runtime", "correlation", "h_sweep",
		"indexsize", "userstudy", "sharding"}
	all := All()
	if len(all) != len(ids) {
		t.Fatalf("got %d experiments, want %d", len(all), len(ids))
	}
	for i, e := range all {
		if e.ID != ids[i] {
			t.Fatalf("experiment %d = %q, want %q", i, e.ID, ids[i])
		}
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if ByID("lakes") == nil || ByID("nope") != nil {
		t.Fatal("ByID lookup wrong")
	}
}

func TestLakesCoversAllEleven(t *testing.T) {
	ls := lines(t, RunLakes(context.Background(), Small))
	if len(ls) != 12 { // header + 11 lakes
		t.Fatalf("lake rows = %d", len(ls))
	}
	body := strings.Join(ls, "\n")
	for _, name := range []string{"DWTC", "Gittables", "WDC", "TUS Large", "SANTOS", "NYC open data"} {
		if !strings.Contains(body, name) {
			t.Fatalf("missing lake %s", name)
		}
	}
}

func TestComplexTasksShape(t *testing.T) {
	// The structured invariants are easier to assert on the task results
	// than on formatted lines.
	neg := runNegativeTask(context.Background(), Small, 4)
	imp := runImputationTask(context.Background(), Small, 4)
	multi := runMultiTask(context.Background(), Small, 2)

	// Query rewriting helps the rewritable tasks: BLEND ≤ B-NO with slack
	// for timer noise.
	if float64(neg.blend) > 1.4*float64(neg.bno) {
		t.Errorf("negative: BLEND %v should not exceed B-NO %v", neg.blend, neg.bno)
	}
	if float64(imp.blend) > 1.2*float64(imp.bno) {
		t.Errorf("imputation: BLEND %v should be under B-NO %v", imp.blend, imp.bno)
	}
	// Union-combined sub-plans gain nothing (paper: equal runtimes).
	ratio := float64(multi.blend) / float64(multi.bno)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("multi-objective: BLEND %v vs B-NO %v should be comparable", multi.blend, multi.bno)
	}
	// LOC and system counts match the paper's table.
	if neg.locBlend != 5 || imp.locBlend != 5 {
		t.Error("plan LOC wrong")
	}
	if neg.locBase <= neg.locBlend || imp.locBase <= imp.locBlend {
		t.Error("baselines must need more code")
	}
	if multi.systems != 3 || imp.systems != 2 {
		t.Error("system counts wrong")
	}
}

func TestOptimizerShape(t *testing.T) {
	ls := lines(t, RunOptimizer(context.Background(), Small))
	if len(ls) != 5 { // header + 4 seeker categories
		t.Fatalf("optimizer rows = %d: %v", len(ls), ls)
	}
	for _, cat := range []string{"Mixed", "SC", "MC", "C"} {
		found := false
		for _, l := range ls {
			if strings.HasPrefix(l, cat+" ") {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing category %s", cat)
		}
	}
}

func TestMCPrecisionShape(t *testing.T) {
	ls := lines(t, RunMCPrecision(context.Background(), Small))
	// Parse TP/FP columns: BLEND's FP must not exceed MATE's on each lake
	// (the SQL join prunes before XASH).
	var blendFP, mateFP []float64
	for _, l := range ls[1:] {
		f := strings.Fields(l)
		// Locate the system token; lake names may contain spaces.
		sys := -1
		for i, tok := range f {
			if tok == "BLEND" || tok == "MATE" {
				sys = i
				break
			}
		}
		if sys < 0 || sys+2 >= len(f) {
			continue
		}
		var fp float64
		if _, err := sscanF(f[sys+2], &fp); err != nil {
			continue
		}
		if f[sys] == "BLEND" {
			blendFP = append(blendFP, fp)
		} else {
			mateFP = append(mateFP, fp)
		}
	}
	if len(blendFP) != 2 || len(mateFP) != 2 {
		t.Fatalf("parse failure: %v", ls)
	}
	for i := range blendFP {
		if blendFP[i] > mateFP[i] {
			t.Errorf("lake %d: BLEND FP %v exceeds MATE FP %v", i, blendFP[i], mateFP[i])
		}
	}
}

func TestUnionQualityShape(t *testing.T) {
	ls := lines(t, RunUnionQuality(context.Background(), Small))
	// SANTOS Large must be excluded (no ground truth in the paper).
	for _, l := range ls {
		if strings.Contains(l, "SANTOS Large") {
			t.Fatal("SANTOS Large must not appear in the quality table")
		}
	}
	// TUS rows must include k=50 and k=100.
	body := strings.Join(ls, "\n")
	if !strings.Contains(body, "TUS             100") && !strings.Contains(body, "TUS            100") {
		t.Fatalf("missing k=100 TUS row:\n%s", body)
	}
}

func TestCorrelationShape(t *testing.T) {
	ls := lines(t, RunCorrelation(context.Background(), Small))
	// The sketch baseline must collapse to 0% on the numeric-key lake and
	// be competitive on the categorical one.
	var allBaseline, catBaseline string
	for _, l := range ls {
		if strings.Contains(l, "NYC (All)") && strings.Contains(l, "Baseline") {
			allBaseline = l
		}
		if strings.Contains(l, "NYC (Cat.)") && strings.Contains(l, "Baseline") {
			catBaseline = l
		}
	}
	if !strings.Contains(allBaseline, " 0.0%") {
		t.Errorf("numeric-key baseline should collapse: %q", allBaseline)
	}
	if strings.Contains(catBaseline, "|    0.0%") {
		t.Errorf("categorical baseline should work: %q", catBaseline)
	}
}

func TestIndexSizeShape(t *testing.T) {
	ls := lines(t, RunIndexSize(context.Background(), Small))
	// The TOTAL row must show the SOTA combination larger than BLEND.
	var total string
	for _, l := range ls {
		if strings.HasPrefix(l, "TOTAL") {
			total = l
		}
	}
	if total == "" {
		t.Fatal("no TOTAL row")
	}
	f := strings.Fields(total)
	var blendB, sotaB float64
	if _, err := sscanF(f[1], &blendB); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanF(f[2], &sotaB); err != nil {
		t.Fatal(err)
	}
	if sotaB <= blendB {
		t.Errorf("combined SOTA (%v) must exceed BLEND (%v)", sotaB, blendB)
	}
}

func TestSCRuntimeShape(t *testing.T) {
	ls := lines(t, RunSCRuntime(context.Background(), Small))
	if len(ls) != 10 { // header + 3 lakes × 3 sizes
		t.Fatalf("rows = %d", len(ls))
	}
}

func TestLakeBenchShape(t *testing.T) {
	ls := lines(t, RunLakeBench(context.Background(), Small))
	body := strings.Join(ls, "\n")
	// BLEND and JOSIE return identical exact-overlap results: both should
	// report the same effectiveness columns.
	if !strings.Contains(body, "Runtime") || !strings.Contains(body, "Effectiveness") {
		t.Fatalf("missing sections:\n%s", body)
	}
	for _, l := range ls {
		f := strings.Fields(l)
		// Effectiveness rows: k | P_B P_B | P_J R_J | P_D R_D
		if len(f) == 10 && f[1] == "|" {
			if f[2] != f[5] || f[3] != f[6] {
				t.Errorf("BLEND and JOSIE effectiveness must be identical: %q", l)
			}
		}
	}
}

func TestUnionRuntimeShape(t *testing.T) {
	ls := lines(t, RunUnionRuntime(context.Background(), Small))
	if len(ls) != 5 { // header + 4 lakes
		t.Fatalf("rows = %d", len(ls))
	}
}

func TestUserStudyReport(t *testing.T) {
	ls := lines(t, RunUserStudy(context.Background(), Small))
	body := strings.Join(ls, "\n")
	for _, want := range []string{"Participants", "Q7", "BLEND"} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in user study output", want)
		}
	}
}

// sscanF parses a float from a token like "1234", "95.42%", or "1.45x".
func sscanF(tok string, out *float64) (int, error) {
	tok = strings.TrimSuffix(tok, "%")
	tok = strings.TrimSuffix(tok, "x")
	f, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, err
	}
	*out = f
	return 1, nil
}

func TestHSweepShape(t *testing.T) {
	ls := lines(t, RunHSweep(context.Background(), Small))
	if len(ls) < 7 { // header + 5 h values + note
		t.Fatalf("rows = %d", len(ls))
	}
	// BLEND pays zero re-index cost at every h.
	for _, l := range ls[1:6] {
		if !strings.Contains(l, "0ms") {
			t.Fatalf("BLEND should never re-index: %q", l)
		}
	}
}

func TestShardingExperimentShape(t *testing.T) {
	body := strings.Join(lines(t, RunSharding(context.Background(), Small)), "\n")
	if strings.Contains(body, "identical results: false") {
		t.Fatalf("sharded or scheduled execution diverged:\n%s", body)
	}
	for _, want := range []string{"identical results: true", "peak concurrency"} {
		if !strings.Contains(body, want) {
			t.Fatalf("sharding report missing %q:\n%s", want, body)
		}
	}
}
