package experiments

import (
	"context"
	"time"

	"blend"
	"blend/internal/baselines/qcrsketch"
	"blend/internal/datalake"
	"blend/internal/metrics"
)

// RunHSweep is the sketch-size ablation behind the closing claim of
// §VIII-G: BLEND's correlation seeker samples h rows *at query time*
// (one predicate change), while the sketch baseline fixes h at indexing
// time — changing it means re-indexing the lake. The sweep reports, per h,
// BLEND's quality with zero re-index cost versus the baseline's quality
// plus the re-index time it must pay.
func RunHSweep(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "h_sweep", Title: "Ablation: query-time sample size h (§VIII-G)"}
	bench := datalake.GenCorrBenchmark(datalake.CorrConfig{
		Name: "hsweep", NumTables: 16 * scale.factor(), Rows: 600,
		CorrelatedShare: 0.4, SortedByMetric: false, Queries: 4, Seed: 85,
	})
	d := blend.IndexTables(blend.ColumnStore, bench.Tables)

	r.Printf("%6s | %12s %12s | %12s %12s", "h", "BLEND P@10", "re-index", "Sketch P@10", "re-index")
	for _, h := range []int{32, 64, 128, 256, 512} {
		d.SetCorrelationSampleSize(h)
		var bRuns, sRuns []metrics.Run
		// Baseline must rebuild its index for this h.
		start := time.Now()
		sketch := qcrsketch.Build(bench.Tables, h)
		rebuild := time.Since(start)
		for _, q := range bench.Queries {
			truth := metrics.SetOf(q.TopTables...)
			hits, err := d.Seek(ctx, blend.Correlation(q.Keys, q.Targets, 10))
			if err != nil {
				panic(err)
			}
			bRuns = append(bRuns, metrics.Run{Retrieved: d.TableNames(hits), Relevant: truth})
			var sNames []string
			for _, s := range sketch.Search(q.Keys, q.Targets, 10) {
				sNames = append(sNames, sketch.TableName(s.TableID))
			}
			sRuns = append(sRuns, metrics.Run{Retrieved: sNames, Relevant: truth})
		}
		r.Printf("%6d | %11.1f%% %12s | %11.1f%% %12s",
			h, 100*metrics.MeanPrecisionAtK(bRuns, 10), "0ms",
			100*metrics.MeanPrecisionAtK(sRuns, 10), ms(rebuild))
	}
	r.Printf("BLEND reuses one index across all h values; the baseline re-indexes per h.")
	return r
}
