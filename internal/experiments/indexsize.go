package experiments

import (
	"context"

	"blend/internal/baselines/dataxformer"
	"blend/internal/baselines/josie"
	"blend/internal/baselines/mate"
	"blend/internal/baselines/qcrsketch"
	"blend/internal/baselines/starmie"
	"blend/internal/datalake"
	"blend/internal/storage"
)

// RunIndexSize regenerates Table VIII: the storage footprint of BLEND's
// unified index versus the sum of the state-of-the-art indexes it replaces
// (JOSIE posting lists, MATE's XASH postings, the QCR pair sketches, and
// Starmie's vectors + HNSW graph) on each Table II lake stand-in. The
// paper reports BLEND needing 57% less storage on average; the unified
// layout wins because locations, super keys, and quadrant bits share one
// dictionary-encoded relation instead of four redundant structures.
func RunIndexSize(_ context.Context, scale Scale) *Report {
	r := &Report{ID: "indexsize", Title: "Table VIII: index storage"}
	r.Printf("%-30s %14s %14s %8s", "Lake", "BLEND", "Σ S.O.T.A.", "ratio")
	var sumB, sumS int64
	for _, spec := range datalake.Registry() {
		cfg := spec.Config
		cfg.NumTables *= scale.factor()
		lake := datalake.GenJoinLake(cfg)
		blendSize := storage.Build(storage.ColumnStore, lake.Tables).SizeBytes()
		sota := dataxformer.Build(lake.Tables).SizeBytes() +
			josie.Build(lake.Tables).SizeBytes() +
			mate.Build(lake.Tables).SizeBytes() +
			qcrsketch.Build(lake.Tables, 256).SizeBytes() +
			starmie.Build(lake.Tables).SizeBytes()
		sumB += blendSize
		sumS += sota
		r.Printf("%-30s %14d %14d %7.2fx", spec.PaperName, blendSize, sota,
			float64(sota)/float64(blendSize))
	}
	r.Printf("%-30s %14d %14d %7.2fx", "TOTAL", sumB, sumS, float64(sumS)/float64(sumB))
	r.Printf("BLEND saves %.0f%% storage versus the combined state-of-the-art indexes.",
		100*(1-float64(sumB)/float64(sumS)))
	return r
}
