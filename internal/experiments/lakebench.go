package experiments

import (
	"context"
	"time"

	"blend"
	"blend/internal/baselines/deepjoin"
	"blend/internal/baselines/josie"
	"blend/internal/datalake"
	"blend/internal/metrics"
)

// RunLakeBench regenerates Fig. 6: the LakeBench-style join-search
// comparison on a Webtable-Large-like lake — (a) average runtime of JOSIE,
// DeepJoin, and BLEND; (b) precision@k and recall@k against exact-overlap
// ground truth for k ∈ {5, 10, 15, 20}. BLEND and JOSIE return identical
// result sets (both compute exact overlap); DeepJoin is fastest but
// diverges because its similarity is semantic.
func RunLakeBench(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "lakebench", Title: "Fig. 6: LakeBench runtime and effectiveness"}
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "webtable", NumTables: 60 * scale.factor(), ColsPerTable: 4,
		RowsPerTable: 100, VocabSize: 5000, Seed: 61,
	})
	d := blend.IndexTables(blend.ColumnStore, lake.Tables)
	josieIx := josie.Build(lake.Tables)
	djIx := deepjoin.Build(lake.Tables)

	queries := 8 * scale.factor()
	ks := []int{5, 10, 15, 20}
	var tBlend, tJosie, tDJ time.Duration
	runs := map[string][]metrics.Run{"BLEND": nil, "JOSIE": nil, "DeepJoin": nil}
	for q := 0; q < queries; q++ {
		col := lake.QueryColumn(30)
		truth := metrics.SetOf(lake.BruteForceTopOverlap(col, 20)...)

		start := time.Now()
		hits, err := d.Seek(ctx, blend.SC(col, 20))
		if err != nil {
			panic(err)
		}
		tBlend += time.Since(start)
		runs["BLEND"] = append(runs["BLEND"], metrics.Run{Retrieved: d.TableNames(hits), Relevant: truth})

		start = time.Now()
		jh := josieIx.SearchTables(col, 20)
		tJosie += time.Since(start)
		var jNames []string
		for _, h := range jh {
			jNames = append(jNames, josieIx.TableName(h.Column.TableID))
		}
		runs["JOSIE"] = append(runs["JOSIE"], metrics.Run{Retrieved: jNames, Relevant: truth})

		start = time.Now()
		dh := djIx.SearchTables(col, 20)
		tDJ += time.Since(start)
		var dNames []string
		for _, h := range dh {
			dNames = append(dNames, djIx.TableName(h.Column.TableID))
		}
		runs["DeepJoin"] = append(runs["DeepJoin"], metrics.Run{Retrieved: dNames, Relevant: truth})
	}
	n := time.Duration(queries)
	r.Printf("a) Runtime (avg per query): JOSIE %s  DeepJoin %s  BLEND %s",
		ms(tJosie/n), ms(tDJ/n), ms(tBlend/n))
	r.Printf("b) Effectiveness:")
	r.Printf("%4s | %8s %8s | %8s %8s | %8s %8s",
		"k", "P BLEND", "R BLEND", "P JOSIE", "R JOSIE", "P DeepJ", "R DeepJ")
	for _, k := range ks {
		r.Printf("%4d | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% | %7.1f%% %7.1f%%",
			k,
			100*metrics.MeanPrecisionAtK(runs["BLEND"], k), 100*metrics.MeanRecallAtK(runs["BLEND"], k),
			100*metrics.MeanPrecisionAtK(runs["JOSIE"], k), 100*metrics.MeanRecallAtK(runs["JOSIE"], k),
			100*metrics.MeanPrecisionAtK(runs["DeepJoin"], k), 100*metrics.MeanRecallAtK(runs["DeepJoin"], k))
	}
	return r
}
