package experiments

import (
	"context"
	"strconv"

	"blend/internal/datalake"
	"blend/internal/storage"
)

// RunLakes regenerates Table II: for each corpus the paper lists, the
// scaled synthetic stand-in is generated and its actual shape and index
// footprint are reported next to the paper's sizes.
func RunLakes(_ context.Context, scale Scale) *Report {
	r := &Report{ID: "lakes", Title: "Table II: data lakes used in the experiments"}
	r.Printf("%-30s %12s %12s %12s | %8s %8s %10s %12s",
		"Lake", "paper tables", "paper cols", "paper rows",
		"tables", "cols", "rows", "index bytes")
	for _, spec := range datalake.Registry() {
		cfg := spec.Config
		cfg.NumTables *= scale.factor()
		lake := datalake.GenJoinLake(cfg)
		tables, cols, rows := len(lake.Tables), 0, 0
		for _, t := range lake.Tables {
			cols += t.NumCols()
			rows += t.NumRows()
		}
		st := storage.Build(storage.ColumnStore, lake.Tables)
		r.Printf("%-30s %12s %12s %12s | %8d %8d %10d %12d",
			spec.PaperName,
			humanCount(spec.PaperTables), humanCount(spec.PaperColumns), humanCount(spec.PaperRows),
			tables, cols, rows, st.SizeBytes())
	}
	return r
}

// humanCount prints a paper-reported size, with "-" for unknown.
func humanCount(n int64) string {
	if n == 0 {
		return "-"
	}
	switch {
	case n >= 1_000_000_000:
		return strconv.FormatFloat(float64(n)/1e9, 'g', 3, 64) + "B"
	case n >= 1_000_000:
		return strconv.FormatFloat(float64(n)/1e6, 'g', 3, 64) + "M"
	case n >= 1_000:
		return strconv.FormatFloat(float64(n)/1e3, 'g', 3, 64) + "K"
	default:
		return strconv.FormatInt(n, 10)
	}
}
