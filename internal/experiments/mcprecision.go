package experiments

import (
	"context"
	"time"

	"blend"
	"blend/internal/baselines/mate"
	"blend/internal/datalake"
)

// RunMCPrecision regenerates Table V (and the §VIII-E runtime comparison):
// multi-column join discovery on DWTC- and German-Open-Data-like lakes,
// comparing BLEND's MC seeker against MATE on true positives, false
// positives, precision, and runtime. Recall is 100% for both by the XASH
// bloom-filter property.
func RunMCPrecision(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "mcprecision", Title: "Table V: MC precision vs MATE"}
	r.Printf("%-18s %-8s %8s %8s %9s %10s", "Lake", "System", "TP", "FP", "Precision", "Runtime")
	for _, spec := range []struct {
		name string
		seed int64
	}{
		{"DWTC", 41},
		{"German Open Data", 42},
	} {
		lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
			Name: spec.name, NumTables: 50 * scale.factor(), ColsPerTable: 4,
			RowsPerTable: 80, VocabSize: 1200, Seed: spec.seed,
		})
		d := blend.IndexTables(blend.ColumnStore, lake.Tables)
		e := d.Engine()
		mateIx := mate.Build(lake.Tables)

		queries := 10 * scale.factor()
		var bTP, bFP, mTP, mFP int
		var bTime, mTime time.Duration
		for q := 0; q < queries; q++ {
			tuples, _ := lake.QueryTuples(6, 2)
			if len(tuples) == 0 {
				continue
			}
			start := time.Now()
			_, stats, err := e.RunSeeker(ctx, blend.MC(tuples, 10))
			if err != nil {
				panic(err)
			}
			bTime += time.Since(start)
			bTP += stats.Validated
			bFP += stats.Candidates - stats.Validated

			start = time.Now()
			_, mst := mateIx.Search(tuples, 10)
			mTime += time.Since(start)
			mTP += mst.TruePositives
			mFP += mst.FalsePositives
		}
		prec := func(tp, fp int) float64 {
			if tp+fp == 0 {
				return 0
			}
			return 100 * float64(tp) / float64(tp+fp)
		}
		r.Printf("%-18s %-8s %8d %8d %8.2f%% %10s", spec.name, "BLEND", bTP, bFP, prec(bTP, bFP), ms(bTime))
		r.Printf("%-18s %-8s %8d %8d %8.2f%% %10s", spec.name, "MATE", mTP, mFP, prec(mTP, mFP), ms(mTime))
	}
	return r
}
