package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"blend"
	"blend/internal/core"
	"blend/internal/datalake"
)

// RunOptimizer regenerates Table IV: random two-seeker intersection plans
// executed in random order, in the optimizer's order, and in the oracle
// (faster) order, reporting runtime gain and ordering accuracy. The lake
// and sampling protocol follow §VIII-C (Gittables as the target lake and
// the source of random inputs).
func RunOptimizer(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "optimizer", Title: "Table IV: optimizer effectiveness"}
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "opt", NumTables: 50 * scale.factor(), ColsPerTable: 4,
		RowsPerTable: 80, VocabSize: 3000, Seed: 31,
	})
	d := blend.IndexTables(blend.ColumnStore, lake.Tables)
	// Offline training step of §VII-B.
	if err := d.TrainCostModels(ctx, 24, 7); err != nil {
		panic(err)
	}
	e := d.Engine()

	plans := 12 * scale.factor()
	rng := rand.New(rand.NewSource(32))
	r.Printf("%-6s %10s %10s %10s | %9s %9s | %8s",
		"Seeker", "Rand", "BLEND", "Ideal", "gain-B", "gain-I", "Accuracy")
	for _, cat := range []string{"Mixed", "SC", "MC", "C"} {
		var randT, blendT, idealT time.Duration
		correct, total := 0, 0
		for p := 0; p < plans; p++ {
			s0, s1 := samplePair(rng, lake, cat)
			if s0 == nil || s1 == nil {
				continue
			}
			plan := core.NewPlan()
			plan.MustAddSeeker("s0", s0)
			plan.MustAddSeeker("s1", s1)
			plan.MustAddCombiner("i", core.NewIntersect(10), "s0", "s1")

			run := func(order []string) (time.Duration, error) {
				res, err := e.Run(ctx, plan, core.RunOptions{Optimize: true, ForcedOrder: order})
				if err != nil {
					return 0, err
				}
				return res.Duration, nil
			}
			tA, err := run([]string{"s0", "s1"})
			if err != nil {
				panic(err)
			}
			tB, err := run([]string{"s1", "s0"})
			if err != nil {
				panic(err)
			}
			// Rand is the expectation over the two orders; Ideal the min.
			randT += (tA + tB) / 2
			if tA < tB {
				idealT += tA
			} else {
				idealT += tB
			}
			res, err := e.Run(ctx, plan, core.RunOptions{Optimize: true})
			if err != nil {
				panic(err)
			}
			blendT += res.Duration
			fasterFirst := "s0"
			if tB < tA {
				fasterFirst = "s1"
			}
			if len(res.SeekerOrder) > 0 && res.SeekerOrder[0] == fasterFirst {
				correct++
			}
			total++
		}
		gain := func(t time.Duration) string {
			if randT == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*(1-float64(t)/float64(randT)))
		}
		acc := "-"
		if total > 0 {
			acc = fmt.Sprintf("%.1f%%", 100*float64(correct)/float64(total))
		}
		r.Printf("%-6s %10s %10s %10s | %9s %9s | %8s",
			cat, ms(randT), ms(blendT), ms(idealT), gain(blendT), gain(idealT), acc)
	}
	return r
}

// samplePair draws two seekers of the given category with deliberately
// different input sizes, so the orders differ in cost.
func samplePair(rng *rand.Rand, lake *datalake.JoinLake, cat string) (core.Seeker, core.Seeker) {
	smallCol := lake.QueryColumn(3 + rng.Intn(5))
	bigCol := lake.QueryColumn(40 + rng.Intn(60))
	switch cat {
	case "SC":
		return core.NewSC(smallCol, 10), core.NewSC(bigCol, 10)
	case "MC":
		a, _ := lake.QueryTuples(2+rng.Intn(2), 2)
		b, _ := lake.QueryTuples(8+rng.Intn(8), 3)
		if len(a) == 0 || len(b) == 0 {
			return nil, nil
		}
		return core.NewMC(a, 10), core.NewMC(b, 10)
	case "C":
		ka := lake.QueryColumn(4 + rng.Intn(4))
		kb := lake.QueryColumn(30 + rng.Intn(30))
		ta := randTargets(rng, len(ka))
		tb := randTargets(rng, len(kb))
		return core.NewCorrelation(ka, ta, 10), core.NewCorrelation(kb, tb, 10)
	default: // Mixed: one cheap kind vs one expensive kind, random split.
		tuples, _ := lake.QueryTuples(8+rng.Intn(8), 2)
		if len(tuples) == 0 {
			return nil, nil
		}
		switch rng.Intn(3) {
		case 0:
			return core.NewKW(smallCol, 10), core.NewMC(tuples, 10)
		case 1:
			return core.NewSC(bigCol, 10), core.NewMC(tuples, 10)
		default:
			return core.NewSC(smallCol, 10), core.NewCorrelation(bigCol, randTargets(rng, len(bigCol)), 10)
		}
	}
}

func randTargets(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
