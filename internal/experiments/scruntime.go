package experiments

import (
	"context"
	"time"

	"blend"
	"blend/internal/baselines/josie"
	"blend/internal/datalake"
)

// RunSCRuntime regenerates Fig. 5: average single-column join-search
// runtime for BLEND (row and column layouts) versus JOSIE across query
// sizes on WDC-, Canada-US-UK-, and Gittables-like lakes. The paper sweeps
// query sizes up to 100k on billion-row corpora; the scaled sweep keeps
// the series shape (runtime grows with query size; the column layout beats
// the row layout; JOSIE sits between them).
func RunSCRuntime(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "sc_runtime", Title: "Fig. 5: SC seeker runtime vs JOSIE"}
	lakes := []struct {
		name  string
		seed  int64
		sizes []int
	}{
		{"WDC", 51, []int{100, 1000, 10000}},
		{"Canada-US-UK", 52, []int{1000, 10000, 20000}},
		{"Gittables", 53, []int{10, 100, 1000}},
	}
	r.Printf("%-14s %8s | %14s %14s %14s", "Lake", "|Q|", "BLEND(Row)", "BLEND(Column)", "JOSIE")
	for _, spec := range lakes {
		lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
			Name: spec.name, NumTables: 40 * scale.factor(), ColsPerTable: 4,
			RowsPerTable: 150, VocabSize: 25000, Seed: spec.seed,
		})
		dRow := blend.IndexTables(blend.RowStore, lake.Tables)
		dCol := blend.IndexTables(blend.ColumnStore, lake.Tables)
		josieIx := josie.Build(lake.Tables)
		queries := 4 * scale.factor()
		for _, size := range spec.sizes {
			var tRow, tCol, tJosie time.Duration
			for q := 0; q < queries; q++ {
				col := lake.QueryColumn(size)
				seeker := blend.SC(col, 10)
				start := time.Now()
				if _, err := dRow.Seek(ctx, seeker); err != nil {
					panic(err)
				}
				tRow += time.Since(start)
				start = time.Now()
				if _, err := dCol.Seek(ctx, seeker); err != nil {
					panic(err)
				}
				tCol += time.Since(start)
				start = time.Now()
				josieIx.SearchTables(col, 10)
				tJosie += time.Since(start)
			}
			n := time.Duration(queries)
			r.Printf("%-14s %8d | %14s %14s %14s",
				spec.name, size, ms(tRow/n), ms(tCol/n), ms(tJosie/n))
		}
	}
	return r
}
