package experiments

import (
	"context"
	"reflect"
	"runtime"
	"sort"
	"time"

	"blend"
	"blend/internal/datalake"
)

// Shards is the shard count exercised by the sharding experiment; the
// blend-experiments CLI overrides it with -shards.
var Shards = 4

// Workers is the scheduler worker-pool size exercised by the sharding
// experiment (0 = GOMAXPROCS); the CLI overrides it with -workers.
var Workers = 0

// RunSharding measures the production-scaling extension: the same seeker
// workload against a monolithic index versus a hash-partitioned one with
// concurrent shard scans, and the same multi-seeker plan on the sequential
// engine versus the DAG scheduler at increasing worker counts. It also
// verifies, per configuration, that results are identical to the
// monolithic sequential reference — the invariant the scheduler and the
// shard merge are built around.
func RunSharding(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "sharding", Title: "Extension: sharded AllTables + concurrent plan scheduler"}
	lake := datalake.GenJoinLake(datalake.JoinLakeConfig{
		Name: "shard", NumTables: 80 * scale.factor(), ColsPerTable: 4,
		RowsPerTable: 100, VocabSize: 4000, Seed: 77,
	})
	mono := blend.IndexTables(blend.ColumnStore, lake.Tables)
	shard := blend.IndexTables(blend.ColumnStore, lake.Tables, blend.WithShards(Shards))

	queries := make([][]string, 0, 6)
	for i := 0; i < 6; i++ {
		queries = append(queries, lake.QueryColumn(40))
	}

	seekerBench := func(d *blend.Discovery) (time.Duration, []string) {
		var total time.Duration
		var names []string
		for _, q := range queries {
			start := time.Now()
			hits, err := d.Seek(ctx, blend.SC(q, 10))
			if err != nil {
				panic(err)
			}
			total += time.Since(start)
			names = append(names, d.TableNames(hits)...)
		}
		return total / time.Duration(len(queries)), names
	}

	tMono, refNames := seekerBench(mono)
	tShard, gotNames := seekerBench(shard)
	r.Printf("SC seeker avg over %d queries:", len(queries))
	r.Printf("  monolithic         %10v", tMono.Round(time.Microsecond))
	r.Printf("  %d shards           %10v   identical results: %v",
		Shards, tShard.Round(time.Microsecond), reflect.DeepEqual(refNames, gotNames))

	// A plan of four independent seekers joined by a Union: the shape the
	// DAG scheduler parallelizes fully.
	mkPlan := func() *blend.Plan {
		p := blend.NewPlan()
		p.MustAddSeeker("sc0", blend.SC(queries[0], 10))
		p.MustAddSeeker("sc1", blend.SC(queries[1], 10))
		p.MustAddSeeker("kw", blend.KW(queries[2][:8], 10))
		p.MustAddSeeker("sc3", blend.SC(queries[3], 10))
		p.MustAddCombiner("any", blend.Union(10), "sc0", "sc1", "kw", "sc3")
		return p
	}
	ref, err := shard.Run(ctx, mkPlan())
	if err != nil {
		panic(err)
	}
	r.Printf("4-seeker Union plan on the %d-shard index:", Shards)
	r.Printf("  sequential         %10v", ref.Duration.Round(time.Microsecond))
	maxW := Workers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	workerSteps := []int{1, 2, maxW}
	sort.Ints(workerSteps)
	for _, w := range workerSteps {
		res, err := shard.Run(ctx, mkPlan(), blend.WithMaxWorkers(w))
		if err != nil {
			panic(err)
		}
		same := reflect.DeepEqual(res.NodeHits, ref.NodeHits)
		r.Printf("  scheduler w=%-3d    %10v   peak concurrency %d, identical results: %v",
			w, res.Duration.Round(time.Microsecond), res.PeakConcurrency, same)
	}
	return r
}
