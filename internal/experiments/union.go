package experiments

import (
	"context"
	"time"

	"blend"
	"blend/internal/baselines/starmie"
	"blend/internal/datalake"
	"blend/internal/metrics"
)

// unionBenchmarks builds the four union-search lakes of §VIII-F in the
// shape of SANTOS, SANTOS Large, TUS, and TUS Large. TUS-style lakes have
// many unionable tables per group, which caps achievable recall at small k
// exactly as the paper observes.
func unionBenchmarks(scale Scale) []*datalake.UnionBenchmark {
	f := scale.factor()
	return []*datalake.UnionBenchmark{
		datalake.GenUnionBenchmark(datalake.UnionConfig{
			Name: "SANTOS", NumGroups: 5, TablesPerGroup: 4 * f, RowsPerTable: 40,
			ColsPerTable: 4, DomainSize: 120, Queries: 6, Seed: 71,
		}),
		datalake.GenUnionBenchmark(datalake.UnionConfig{
			Name: "SANTOS Large", NumGroups: 8, TablesPerGroup: 6 * f, RowsPerTable: 40,
			ColsPerTable: 4, DomainSize: 150, Queries: 6, Seed: 72,
		}),
		datalake.GenUnionBenchmark(datalake.UnionConfig{
			Name: "TUS", NumGroups: 3, TablesPerGroup: 20 * f, RowsPerTable: 30,
			ColsPerTable: 4, DomainSize: 100, Queries: 6, Seed: 73,
		}),
		datalake.GenUnionBenchmark(datalake.UnionConfig{
			Name: "TUS Large", NumGroups: 4, TablesPerGroup: 30 * f, RowsPerTable: 30,
			ColsPerTable: 4, DomainSize: 120, Queries: 6, Seed: 74,
		}),
	}
}

// RunUnionQuality regenerates Table VI: union-search quality (P@k, recall,
// MAP@k) of BLEND's union plan versus Starmie on the SANTOS/TUS-style
// benchmarks, at k = 10 and 20 (plus 50 and 100 for the TUS-style lakes,
// as in the paper). SANTOS Large is runtime-only in the paper (no ground
// truth) and is therefore skipped here too.
func RunUnionQuality(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "unionquality", Title: "Table VI: union search quality vs Starmie"}
	r.Printf("%-14s %4s | %8s %8s %8s | %8s %8s %8s",
		"Lake", "k", "P BLEND", "R BLEND", "MAP BLD", "P Starm", "R Starm", "MAP Starm")
	for _, bench := range unionBenchmarks(scale) {
		if bench.Config.Name == "SANTOS Large" {
			continue
		}
		d := blend.IndexTables(blend.ColumnStore, bench.Tables)
		st := starmie.Build(bench.Tables)
		ks := []int{10, 20}
		if bench.Config.Name == "TUS" || bench.Config.Name == "TUS Large" {
			ks = []int{10, 20, 50, 100}
		}
		maxK := ks[len(ks)-1]
		var bRuns, sRuns []metrics.Run
		for _, q := range bench.Queries {
			plan := blend.UnionSearchPlan(q.Query, 10*maxK, maxK)
			res, err := d.Run(ctx, plan)
			if err != nil {
				panic(err)
			}
			bRuns = append(bRuns, metrics.Run{Retrieved: res.Tables, Relevant: q.Relevant})
			var sNames []string
			for _, h := range st.Search(q.Query, maxK) {
				sNames = append(sNames, st.TableName(h.TableID))
			}
			sRuns = append(sRuns, metrics.Run{Retrieved: sNames, Relevant: q.Relevant})
		}
		for _, k := range ks {
			r.Printf("%-14s %4d | %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %7.1f%% %7.1f%%",
				bench.Config.Name, k,
				100*metrics.MeanPrecisionAtK(bRuns, k), 100*metrics.MeanRecallAtK(bRuns, k),
				100*metrics.MeanAveragePrecisionAtK(bRuns, k),
				100*metrics.MeanPrecisionAtK(sRuns, k), 100*metrics.MeanRecallAtK(sRuns, k),
				100*metrics.MeanAveragePrecisionAtK(sRuns, k))
		}
	}
	return r
}

// RunUnionRuntime regenerates Fig. 7: union-search runtime of Starmie,
// BLEND (row layout), and BLEND (column layout) on the four benchmarks.
func RunUnionRuntime(ctx context.Context, scale Scale) *Report {
	r := &Report{ID: "union_runtime", Title: "Fig. 7: union search runtime vs Starmie"}
	r.Printf("%-14s | %12s %12s %12s", "Lake", "STARMIE", "BLEND(Row)", "BLEND(Col)")
	for _, bench := range unionBenchmarks(scale) {
		dRow := blend.IndexTables(blend.RowStore, bench.Tables)
		dCol := blend.IndexTables(blend.ColumnStore, bench.Tables)
		st := starmie.Build(bench.Tables)
		var tS, tRow, tCol time.Duration
		for _, q := range bench.Queries {
			start := time.Now()
			st.Search(q.Query, 10)
			tS += time.Since(start)

			plan := blend.UnionSearchPlan(q.Query, 100, 10)
			start = time.Now()
			if _, err := dRow.Run(ctx, plan); err != nil {
				panic(err)
			}
			tRow += time.Since(start)
			start = time.Now()
			if _, err := dCol.Run(ctx, plan); err != nil {
				panic(err)
			}
			tCol += time.Since(start)
		}
		n := time.Duration(len(bench.Queries))
		r.Printf("%-14s | %12s %12s %12s",
			bench.Config.Name, ms(tS/n), ms(tRow/n), ms(tCol/n))
	}
	return r
}
