package experiments

import (
	"context"

	"blend/internal/userstudy"
)

// RunUserStudy regenerates Table IX from the embedded per-participant
// response dataset (see internal/userstudy for the substitution note).
func RunUserStudy(_ context.Context, _ Scale) *Report {
	r := &Report{ID: "userstudy", Title: "Table IX: user study"}
	s := userstudy.Aggregate(userstudy.Responses())
	for _, line := range splitLines(s.Format()) {
		r.Printf("%s", line)
	}
	return r
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
