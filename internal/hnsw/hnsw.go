// Package hnsw implements a Hierarchical Navigable Small World graph for
// approximate nearest-neighbour search over dense vectors (Malkov &
// Yashunin), built from scratch on the standard library.
//
// BLEND's union- and join-search baselines (Starmie, DeepJoin) owe their
// speed to an in-memory HNSW over column embeddings; this package provides
// that substrate for the reproduced baselines. Distances are cosine
// (vectors are normalized at insert, so distance = 1 − dot product).
package hnsw

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config tunes graph construction and search.
type Config struct {
	// M is the maximum number of bidirectional links per node per layer
	// (layer 0 allows 2M).
	M int
	// EfConstruction is the candidate-list width during insertion.
	EfConstruction int
	// EfSearch is the default candidate-list width during search.
	EfSearch int
	// Seed drives the level generator; fixed seeds give reproducible
	// graphs.
	Seed int64
}

// DefaultConfig mirrors common HNSW settings for small corpora.
func DefaultConfig() Config {
	return Config{M: 8, EfConstruction: 64, EfSearch: 32, Seed: 1}
}

// Index is an HNSW graph. Not safe for concurrent mutation; concurrent
// Search calls are safe once building is done.
type Index struct {
	cfg    Config
	rng    *rand.Rand
	levelF float64

	vectors [][]float32
	ids     []int // external id per node
	// links[node][layer] lists neighbour node indices.
	links [][][]int
	// levels[node] is the node's top layer.
	levels []int

	entry    int // entry point node, -1 when empty
	maxLevel int
}

// New creates an empty index with the given vector dimensionality implied
// by the first Add.
func New(cfg Config) *Index {
	if cfg.M <= 0 {
		cfg.M = 8
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = 4 * cfg.M
	}
	if cfg.EfSearch <= 0 {
		cfg.EfSearch = 2 * cfg.M
	}
	return &Index{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		levelF: 1 / math.Log(float64(cfg.M)),
		entry:  -1,
	}
}

// Len reports the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.vectors) }

// Add inserts a vector under an external id. The vector is copied and
// L2-normalized; zero vectors are rejected.
func (ix *Index) Add(id int, vec []float32) error {
	v, ok := normalize(vec)
	if !ok {
		return fmt.Errorf("hnsw: zero vector for id %d", id)
	}
	node := len(ix.vectors)
	level := ix.randomLevel()
	ix.vectors = append(ix.vectors, v)
	ix.ids = append(ix.ids, id)
	ix.levels = append(ix.levels, level)
	nl := make([][]int, level+1)
	ix.links = append(ix.links, nl)

	if ix.entry < 0 {
		ix.entry = node
		ix.maxLevel = level
		return nil
	}

	cur := ix.entry
	// Greedy descent through layers above the new node's level.
	for l := ix.maxLevel; l > level; l-- {
		cur = ix.greedyClosest(v, cur, l)
	}
	// Insert with efConstruction candidates on each shared layer.
	for l := min(level, ix.maxLevel); l >= 0; l-- {
		cands := ix.searchLayer(v, cur, ix.cfg.EfConstruction, l)
		m := ix.cfg.M
		if l == 0 {
			m = 2 * ix.cfg.M
		}
		neighbors := ix.selectNeighbors(cands, m)
		ix.links[node][l] = neighbors
		for _, nb := range neighbors {
			ix.links[nb][l] = append(ix.links[nb][l], node)
			if len(ix.links[nb][l]) > m {
				ix.links[nb][l] = ix.shrink(nb, l, m)
			}
		}
		if len(cands) > 0 {
			cur = cands[0].node
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = node
	}
	return nil
}

// Result is one search hit.
type Result struct {
	ID int
	// Similarity is the cosine similarity in [-1, 1], higher is closer.
	Similarity float32
}

// Search returns the k approximate nearest neighbours of vec by cosine
// similarity, best first.
func (ix *Index) Search(vec []float32, k int) []Result {
	if ix.entry < 0 || k <= 0 {
		return nil
	}
	v, ok := normalize(vec)
	if !ok {
		return nil
	}
	cur := ix.entry
	for l := ix.maxLevel; l > 0; l-- {
		cur = ix.greedyClosest(v, cur, l)
	}
	ef := ix.cfg.EfSearch
	if ef < k {
		ef = k
	}
	cands := ix.searchLayer(v, cur, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: ix.ids[c.node], Similarity: 1 - c.dist}
	}
	return out
}

type scored struct {
	node int
	dist float32
}

// greedyClosest walks layer l from start towards vec until no neighbour is
// closer.
func (ix *Index) greedyClosest(vec []float32, start, l int) int {
	cur := start
	curDist := ix.distance(vec, cur)
	for {
		improved := false
		if l < len(ix.links[cur]) {
			for _, nb := range ix.links[cur][l] {
				if d := ix.distance(vec, nb); d < curDist {
					cur, curDist = nb, d
					improved = true
				}
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the ef-bounded best-first search of one layer, returning
// candidates sorted by distance ascending.
func (ix *Index) searchLayer(vec []float32, entry, ef, l int) []scored {
	visited := map[int]bool{entry: true}
	start := scored{node: entry, dist: ix.distance(vec, entry)}
	// candidates: min-heap by dist (slice-based); results: kept sorted.
	cands := []scored{start}
	results := []scored{start}
	for len(cands) > 0 {
		// Pop nearest candidate.
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].dist < cands[best].dist {
				best = i
			}
		}
		c := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		// Stop when the nearest candidate is farther than the worst
		// kept result and the result list is full.
		if len(results) >= ef && c.dist > results[len(results)-1].dist {
			break
		}
		if l < len(ix.links[c.node]) {
			for _, nb := range ix.links[c.node][l] {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				d := ix.distance(vec, nb)
				if len(results) < ef || d < results[len(results)-1].dist {
					sc := scored{node: nb, dist: d}
					cands = append(cands, sc)
					results = insertSorted(results, sc)
					if len(results) > ef {
						results = results[:ef]
					}
				}
			}
		}
	}
	return results
}

func insertSorted(rs []scored, s scored) []scored {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].dist > s.dist })
	rs = append(rs, scored{})
	copy(rs[i+1:], rs[i:])
	rs[i] = s
	return rs
}

// selectNeighbors keeps the m closest candidates (simple heuristic).
func (ix *Index) selectNeighbors(cands []scored, m int) []int {
	if len(cands) > m {
		cands = cands[:m]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// shrink re-selects the m best links of node nb on layer l.
func (ix *Index) shrink(nb, l, m int) []int {
	ls := ix.links[nb][l]
	ss := make([]scored, len(ls))
	for i, x := range ls {
		ss[i] = scored{node: x, dist: dot1(ix.vectors[nb], ix.vectors[x])}
	}
	sort.Slice(ss, func(a, b int) bool { return ss[a].dist < ss[b].dist })
	if len(ss) > m {
		ss = ss[:m]
	}
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.node
	}
	return out
}

func (ix *Index) distance(vec []float32, node int) float32 {
	return dot1(vec, ix.vectors[node])
}

// dot1 computes 1 − a·b (cosine distance for unit vectors).
func dot1(a, b []float32) float32 {
	var d float32
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d += a[i] * b[i]
	}
	return 1 - d
}

func (ix *Index) randomLevel() int {
	return int(-math.Log(ix.rng.Float64()+1e-12) * ix.levelF)
}

func normalize(vec []float32) ([]float32, bool) {
	var norm float64
	for _, x := range vec {
		norm += float64(x) * float64(x)
	}
	if norm == 0 {
		return nil, false
	}
	inv := float32(1 / math.Sqrt(norm))
	out := make([]float32, len(vec))
	for i, x := range vec {
		out[i] = x * inv
	}
	return out, true
}

// SizeBytes estimates the resident size of the graph (vectors + links),
// for the index-storage comparison of Table VIII.
func (ix *Index) SizeBytes() int64 {
	var b int64
	for _, v := range ix.vectors {
		b += int64(len(v)) * 4
	}
	for _, nl := range ix.links {
		for _, ls := range nl {
			b += int64(len(ls)) * 8
		}
	}
	b += int64(len(ix.ids)) * 16
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
