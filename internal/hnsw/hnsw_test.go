package hnsw

import (
	"math/rand"
	"sort"
	"testing"
)

func randVec(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestEmptyIndex(t *testing.T) {
	ix := New(DefaultConfig())
	if got := ix.Search([]float32{1, 0}, 3); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
	if ix.Len() != 0 {
		t.Fatal("empty index has nonzero length")
	}
}

func TestZeroVectorRejected(t *testing.T) {
	ix := New(DefaultConfig())
	if err := ix.Add(1, []float32{0, 0, 0}); err == nil {
		t.Fatal("zero vector must be rejected")
	}
}

func TestSingleElement(t *testing.T) {
	ix := New(DefaultConfig())
	if err := ix.Add(42, []float32{1, 0}); err != nil {
		t.Fatal(err)
	}
	got := ix.Search([]float32{1, 0}, 1)
	if len(got) != 1 || got[0].ID != 42 {
		t.Fatalf("got %v", got)
	}
	if got[0].Similarity < 0.999 {
		t.Fatalf("self similarity = %v", got[0].Similarity)
	}
}

func TestExactNeighborFound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix := New(DefaultConfig())
	const n, dim = 300, 16
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		vecs[i] = randVec(rng, dim)
		if err := ix.Add(i, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Searching for an indexed vector must return it first.
	for i := 0; i < 20; i++ {
		got := ix.Search(vecs[i], 1)
		if len(got) != 1 || got[0].ID != i {
			t.Fatalf("query %d returned %v", i, got)
		}
	}
}

// TestRecallAgainstBruteForce measures recall@10 versus exact search; HNSW
// is approximate, but on 500 points it should rarely miss.
func TestRecallAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig()
	cfg.EfSearch = 64
	ix := New(cfg)
	const n, dim, k, queries = 500, 12, 10, 30
	vecs := make([][]float32, n)
	for i := 0; i < n; i++ {
		vecs[i] = randVec(rng, dim)
		if err := ix.Add(i, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	norm := func(v []float32) []float32 {
		out, _ := normalize(v)
		return out
	}
	hits, total := 0, 0
	for q := 0; q < queries; q++ {
		query := randVec(rng, dim)
		qn := norm(query)
		type pair struct {
			id  int
			sim float32
		}
		exact := make([]pair, n)
		for i := 0; i < n; i++ {
			exact[i] = pair{id: i, sim: 1 - dot1(qn, norm(vecs[i]))}
		}
		sort.Slice(exact, func(a, b int) bool { return exact[a].sim > exact[b].sim })
		want := make(map[int]bool, k)
		for _, p := range exact[:k] {
			want[p.id] = true
		}
		for _, r := range ix.Search(query, k) {
			total++
			if want[r.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.8 {
		t.Fatalf("recall@10 = %.2f, want >= 0.80", recall)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	build := func() *Index {
		rng := rand.New(rand.NewSource(9))
		ix := New(DefaultConfig())
		for i := 0; i < 100; i++ {
			if err := ix.Add(i, randVec(rng, 8)); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	a, b := build(), build()
	rng := rand.New(rand.NewSource(10))
	for q := 0; q < 10; q++ {
		query := randVec(rng, 8)
		ra, rb := a.Search(query, 5), b.Search(query, 5)
		if len(ra) != len(rb) {
			t.Fatal("nondeterministic result size")
		}
		for i := range ra {
			if ra[i].ID != rb[i].ID {
				t.Fatal("nondeterministic results for fixed seed")
			}
		}
	}
}

func TestSizeBytesGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := New(DefaultConfig())
	if err := ix.Add(0, randVec(rng, 8)); err != nil {
		t.Fatal(err)
	}
	small := ix.SizeBytes()
	for i := 1; i < 50; i++ {
		if err := ix.Add(i, randVec(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.SizeBytes() <= small {
		t.Fatal("SizeBytes must grow with inserts")
	}
}

func TestSearchKLargerThanIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ix := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		if err := ix.Add(i, randVec(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	got := ix.Search(randVec(rng, 8), 50)
	if len(got) != 5 {
		t.Fatalf("got %d results from 5-element index", len(got))
	}
}
