package lint

// All returns the full blendlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Berrcheck, Ctxflow, Lockguard, Mmapref, Poolcheck}
}

// ByName resolves a comma-separated analyzer selection (for the -only
// flag); unknown names return nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
