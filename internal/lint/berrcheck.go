package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BerrcheckPackages lists the import-path suffixes whose exported
// boundaries must only emit typed berr.Error values. Overridable via
// cmd/blendlint's -berrcheck.pkgs flag (and by tests).
var BerrcheckPackages = []string{
	"internal/core",
	"internal/storage",
	"internal/minisql",
	"internal/service",
}

// Berrcheck reports raw fmt.Errorf/errors.New errors that can escape the
// exported functions of the typed-error packages.
//
// Two rules:
//
//  1. A raw constructor call lexically inside an exported function is a
//     finding unless its result is immediately handed to a berr
//     constructor (berr.Wrap(code, op, fmt.Errorf(...)) is the blessed
//     cause-wrapping idiom). A suggested fix rewrites the call to
//     berr.New(berr.CodeInternal, "<pkg>.<func>", ...).
//
//  2. An exported function must not return an error produced by a
//     same-package helper that itself returns raw errors (computed as a
//     fixed point over the package's call graph) unless the value passes
//     through berr.New/berr.Wrap/berr.FromContext on the way out.
//     Unexported helpers may keep returning raw errors — that is the
//     repo's layering (cheap internal errors, typed at the boundary) —
//     but the boundary wrap becomes machine-checked.
var Berrcheck = &Analyzer{
	Name: "berrcheck",
	Doc: "errors escaping exported functions of the typed-error packages " +
		"(internal/core, internal/storage, internal/minisql, internal/service) " +
		"must be typed berr.Error values, not raw fmt.Errorf/errors.New results",
	Run: runBerrcheck,
}

func runBerrcheck(pass *Pass) error {
	if !pathMatchesAny(pass.Pkg.Path(), BerrcheckPackages) {
		return nil
	}
	b := &berrchecker{pass: pass, errType: types.Universe.Lookup("error").Type()}
	b.collectDecls()
	b.solveRawness()
	b.report()
	return nil
}

func pathMatchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

type berrchecker struct {
	pass    *Pass
	errType types.Type

	decls  []*ast.FuncDecl
	objOf  map[*ast.FuncDecl]*types.Func
	declOf map[*types.Func]*ast.FuncDecl
	// raw marks functions that may return a raw (untyped) error.
	raw map[*types.Func]bool
}

func (b *berrchecker) collectDecls() {
	b.objOf = make(map[*ast.FuncDecl]*types.Func)
	b.declOf = make(map[*types.Func]*ast.FuncDecl)
	b.raw = make(map[*types.Func]bool)
	for _, f := range b.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := b.pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			b.decls = append(b.decls, fd)
			b.objOf[fd] = fn
			b.declOf[fn] = fd
		}
	}
}

// isRawConstructor reports whether call builds a raw error value.
func (b *berrchecker) isRawConstructor(call *ast.CallExpr) bool {
	fn := calleeFunc(b.pass.Info, call)
	return funcIs(fn, "fmt", "Errorf") || funcIs(fn, "errors", "New")
}

// isBerrCall reports whether call invokes the typed-error package (any
// berr.* constructor sanitizes what flows through it).
func (b *berrchecker) isBerrCall(call *ast.CallExpr) bool {
	fn := calleeFunc(b.pass.Info, call)
	return fn != nil && fn.Pkg() != nil && isPkgNamed(fn.Pkg(), "berr")
}

// solveRawness computes, to a fixed point, which package functions may
// return a raw error.
func (b *berrchecker) solveRawness() {
	for changed := true; changed; {
		changed = false
		for _, fd := range b.decls {
			fn := b.objOf[fd]
			if b.raw[fn] {
				continue
			}
			if w := b.walkDecl(fd, nil); w.returnsRaw {
				b.raw[fn] = true
				changed = true
			}
		}
	}
}

// rawWalk is the per-function lexical flow result.
type rawWalk struct {
	returnsRaw bool
	// rawReturns records the positions and origins of raw returns, for
	// reporting inside exported functions.
	rawReturns []rawReturn
}

type rawReturn struct {
	pos    token.Pos
	origin string
}

// walkDecl scans one function body (closures included), tracking which
// error-typed variables were last assigned a possibly-raw value. The
// tracking is lexical, not flow-sensitive: the scan visits statements in
// source order, which matches how error returns are written in practice;
// waivers cover the residue.
func (b *berrchecker) walkDecl(fd *ast.FuncDecl, report func(rawReturn)) rawWalk {
	info := b.pass.Info
	w := rawWalk{}
	tainted := make(map[types.Object]string) // var -> origin description

	// exprRaw classifies an expression appearing where an error flows out.
	exprRaw := func(e ast.Expr) (bool, string) {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if b.isBerrCall(e) {
				return false, ""
			}
			if b.isRawConstructor(e) {
				return true, "raw " + types.ExprString(e.Fun)
			}
			if fn := calleeFunc(info, e); fn != nil && b.raw[fn] {
				return true, fn.Name()
			}
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				return false, ""
			}
			if origin, ok := tainted[obj]; ok {
				return true, origin
			}
		}
		return false, ""
	}

	// callIsRawSource reports whether a call's error results are raw.
	callIsRawSource := func(call *ast.CallExpr) (bool, string) {
		if b.isBerrCall(call) {
			return false, ""
		}
		if b.isRawConstructor(call) {
			return true, "raw " + types.ExprString(call.Fun)
		}
		if fn := calleeFunc(info, call); fn != nil && b.raw[fn] {
			return true, fn.Name()
		}
		return false, ""
	}

	mark := func(lhs []ast.Expr, isRaw bool, origin string) {
		for _, l := range lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !types.Identical(obj.Type(), b.errType) {
				continue
			}
			if isRaw {
				tainted[obj] = origin
			} else {
				delete(tainted, obj)
			}
		}
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					isRaw, origin := callIsRawSource(call)
					mark(n.Lhs, isRaw, origin)
					return true
				}
			}
			// Pairwise assignment: a tainted/clean RHS ident propagates.
			if len(n.Rhs) == len(n.Lhs) {
				for i := range n.Rhs {
					isRaw, origin := exprRaw(n.Rhs[i])
					mark(n.Lhs[i:i+1], isRaw, origin)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				t := info.Types[res].Type
				if t == nil || !types.Identical(t, b.errType) {
					continue
				}
				if isRaw, origin := exprRaw(res); isRaw {
					w.returnsRaw = true
					rr := rawReturn{pos: res.Pos(), origin: origin}
					w.rawReturns = append(w.rawReturns, rr)
					if report != nil {
						report(rr)
					}
				}
			}
		}
		return true
	})
	return w
}

// report emits the final findings.
func (b *berrchecker) report() {
	info := b.pass.Info
	for _, fd := range b.decls {
		if !fd.Name.IsExported() {
			continue
		}
		// Rule 1: raw constructor call sites in exported functions, with a
		// suggested berr.New rewrite.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if b.isRawConstructor(call) && !b.insideBerrCall(fd, call) {
				d := Diagnostic{
					Pos: call.Pos(),
					Message: fmt.Sprintf("raw %s in exported %s crosses the package boundary untyped; use berr.New with a code (or wrap the cause with berr.Wrap)",
						types.ExprString(call.Fun), fd.Name.Name),
				}
				if fix, ok := b.berrNewFix(fd, call); ok {
					d.Fixes = append(d.Fixes, fix)
				}
				b.pass.Report(d)
			}
			return true
		})
		// Rule 2: returns whose error came from a raw same-package helper.
		b.walkDecl(fd, func(rr rawReturn) {
			// Skip returns Rule 1 already covers (direct constructor calls).
			if strings.HasPrefix(rr.origin, "raw ") {
				return
			}
			b.pass.Reportf(rr.pos,
				"error from %s may leave exported %s untyped; wrap it with berr.Wrap (or type %s's errors)",
				rr.origin, fd.Name.Name, rr.origin)
		})
	}
	_ = info
}

// insideBerrCall reports whether the call sits in the argument list of a
// berr constructor (lexically, anywhere up the path from fd to call).
func (b *berrchecker) insideBerrCall(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == ast.Node(call) {
			for _, anc := range stack {
				if c, ok := anc.(*ast.CallExpr); ok && b.isBerrCall(c) {
					found = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return found
}

// berrNewFix rewrites fmt.Errorf(...) to berr.New(berr.CodeInternal,
// "<pkg>.<func>", ...). Only offered when the file already imports the
// typed-error package (the fix never edits import blocks).
func (b *berrchecker) berrNewFix(fd *ast.FuncDecl, call *ast.CallExpr) (SuggestedFix, bool) {
	fn := calleeFunc(b.pass.Info, call)
	if !funcIs(fn, "fmt", "Errorf") {
		return SuggestedFix{}, false
	}
	file := b.fileOf(call.Pos())
	if file == nil || !fileImports(file, "berr") {
		return SuggestedFix{}, false
	}
	op := fmt.Sprintf("%s.%s", b.pass.Pkg.Name(), strings.ToLower(fd.Name.Name))
	return SuggestedFix{
		Message: "replace with berr.New(berr.CodeInternal, ...)",
		Edits: []TextEdit{
			{Pos: call.Fun.Pos(), End: call.Fun.End(), NewText: []byte("berr.New")},
			{Pos: call.Lparen + 1, End: call.Lparen + 1,
				NewText: []byte(fmt.Sprintf("berr.CodeInternal, %q, ", op))},
		},
	}, true
}

func (b *berrchecker) fileOf(pos token.Pos) *ast.File {
	for _, f := range b.pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// fileImports reports whether the file imports a package whose path ends
// in the given element.
func fileImports(f *ast.File, tail string) bool {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p == tail || strings.HasSuffix(p, "/"+tail) {
			return true
		}
	}
	return false
}
