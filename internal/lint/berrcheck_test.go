package lint_test

import (
	"strings"
	"testing"

	"blend/internal/lint"
	"blend/internal/lint/linttest"
)

func TestBerrcheck(t *testing.T) {
	// The import path must end in one of BerrcheckPackages for the
	// analyzer to apply.
	diags := linttest.Run(t, lint.Berrcheck, "testdata/src/berrcheck/a", "blendtest/internal/storage")

	// The direct fmt.Errorf finding must carry the berr.New rewrite.
	hasFix := false
	for _, d := range diags {
		if strings.Contains(d.Message, "fmt.Errorf") && len(d.Fixes) > 0 {
			hasFix = true
		}
	}
	if !hasFix {
		t.Errorf("expected the fmt.Errorf diagnostic to carry a suggested berr.New fix")
	}
}

func TestBerrcheckSkipsUnlistedPackages(t *testing.T) {
	diags := linttest.Diags(t, lint.Berrcheck, "testdata/src/berrcheck/b", "blendtest/pkg/other")
	if len(diags) != 0 {
		t.Errorf("berrcheck fired outside its package list: %v", diags)
	}
}
