package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow enforces the context-threading discipline: contexts are created
// at the process edge (cmd/*, examples, tests) and flow down through the
// shard fan-out and scheduler paths as explicit first parameters.
//
// Rules:
//
//  1. No context.Background()/context.TODO() outside cmd/* and examples/
//     package trees, package main, and _test.go files. The one blessed
//     in-library idiom is the nil guard
//     `if ctx == nil { ctx = context.Background() }` on a deprecated
//     compat surface.
//
//  2. When a function takes a context.Context it must be the first
//     parameter (after the receiver), per Go convention.
//
//  3. context.Context must not be stored in a struct field — contexts are
//     call-scoped; parking one in a struct detaches cancellation from the
//     call tree.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Background()/context.TODO() only at the process edge " +
		"(cmd/*, examples, tests); context.Context is the first parameter " +
		"and is forwarded, never stored in a struct field",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) error {
	if PkgPathHasDir(pass.Pkg.Path(), "cmd") ||
		PkgPathHasDir(pass.Pkg.Path(), "examples") ||
		pass.Pkg.Name() == "main" {
		return nil
	}
	inspectAll(pass.Files, func(n ast.Node, stack []ast.Node) {
		if inTestFile(pass, n) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if !funcIs(fn, "context", "Background") && !funcIs(fn, "context", "TODO") {
				return
			}
			if isNilGuardAssign(stack) {
				return
			}
			pass.Reportf(n.Pos(),
				"context.%s() in library code severs the caller's cancellation; thread the caller's ctx through instead",
				fn.Name())
		case *ast.FuncDecl:
			checkCtxFirstParam(pass, n)
		case *ast.StructType:
			checkNoCtxFields(pass, n)
		}
	})
	return nil
}

// inTestFile reports whether the node lives in a _test.go file.
func inTestFile(pass *Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// isNilGuardAssign recognizes the deprecated-surface compat idiom: the
// Background/TODO call is the RHS of an assignment to a variable that the
// directly enclosing if-statement checked against nil.
func isNilGuardAssign(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		asg, ok := stack[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(asg.Lhs) != 1 {
			return false
		}
		lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		// Find the enclosing if and require `<lhs> == nil` (either order).
		for j := i - 1; j >= 0; j-- {
			ifs, ok := stack[j].(*ast.IfStmt)
			if !ok {
				continue
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op.String() != "==" {
				return false
			}
			x, xo := ast.Unparen(cond.X).(*ast.Ident)
			y, yo := ast.Unparen(cond.Y).(*ast.Ident)
			if xo && yo {
				return (x.Name == lhs.Name && y.Name == "nil") ||
					(y.Name == lhs.Name && x.Name == "nil")
			}
			return false
		}
		return false
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFirstParam flags a context.Context parameter in any position
// but the first.
func checkCtxFirstParam(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) && idx != 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of %s", fd.Name.Name)
		}
		idx += n
	}
}

// checkNoCtxFields flags context.Context struct fields.
func checkNoCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.Info.Types[field.Type].Type
		if t != nil && isContextType(t) {
			pass.Reportf(field.Pos(),
				"context.Context stored in a struct field detaches cancellation from the call tree; pass it as a parameter")
		}
	}
}
