package lint_test

import (
	"testing"

	"blend/internal/lint"
	"blend/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, lint.Ctxflow, "testdata/src/ctxflow/a", "blendtest/internal/foo")
}

func TestCtxflowExemptsCmdTree(t *testing.T) {
	// The same sources under cmd/ are the process edge: no findings.
	diags := linttest.Diags(t, lint.Ctxflow, "testdata/src/ctxflow/a", "blendtest/cmd/foo")
	if len(diags) != 0 {
		t.Errorf("ctxflow fired inside a cmd/ tree: %v", diags)
	}
}

func TestCtxflowExemptsExamplesTree(t *testing.T) {
	diags := linttest.Diags(t, lint.Ctxflow, "testdata/src/ctxflow/a", "blendtest/examples/foo")
	if len(diags) != 0 {
		t.Errorf("ctxflow fired inside an examples/ tree: %v", diags)
	}
}
