package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"blend/internal/lint"
)

// TestRepoIsClean asserts the full suite reports nothing on the
// repository itself — the CI contract `blendlint ./...` exits 0.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, fset, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lint.Run(pkgs, fset, lint.All())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// TestSeededViolations builds a throwaway module with one violation per
// analyzer and asserts each is caught — the end-to-end "non-zero exit
// with file:line output" acceptance probe, minus the process boundary.
func TestSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module m\n\ngo 1.22\n")
	write("internal/service/svc.go", `package service

import "fmt"

func Handle(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n)
	}
	return nil
}
`)
	write("internal/core/eng.go", `package core

import (
	"context"
	"sync"
)

type engine struct {
	mu    sync.Mutex
	count int // guarded by mu
}

func (e *engine) Count() int {
	return e.count
}

func Run() error {
	ctx := context.Background()
	return ctx.Err()
}
`)

	pkgs, fset, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading seeded module: %v", err)
	}
	diags, err := lint.Run(pkgs, fset, lint.All())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if pos := fset.Position(d.Pos); !pos.IsValid() {
			t.Errorf("diagnostic without a position: %s", d.Message)
		}
	}
	for _, want := range []string{"berrcheck", "ctxflow", "lockguard"} {
		if byAnalyzer[want] == 0 {
			t.Errorf("seeded %s violation not reported; got %v", want, byAnalyzer)
		}
	}
}
