// Package lint is BLEND's in-tree static-analysis framework: a minimal
// go/analysis-shaped core (Analyzer, Pass, Diagnostic, suggested fixes)
// plus a package loader built on `go list -export` and the standard
// library's type checker, so the suite needs no dependency on
// golang.org/x/tools and runs in the offline build environment.
//
// The suite enforces the engine's machine-checkable invariants:
//
//   - berrcheck: errors crossing the exported boundaries of
//     internal/core, internal/storage, internal/minisql and
//     internal/service must be typed berr.Error values, not raw
//     fmt.Errorf/errors.New results.
//   - ctxflow: no context.Background()/context.TODO() outside cmd/*,
//     examples and tests; context.Context is the first parameter and is
//     forwarded, never stored in struct fields.
//   - lockguard: fields annotated `// guarded by <mu>` are only touched
//     by functions that hold the lock (or are annotated
//     `// lockguard: caller holds <mu>`), and every store-generation
//     bump pairs with a result-cache purge unless waived
//     `// lint:gen-lazy <reason>`.
//   - poolcheck: sync.Pool scratch is released via defer on every return
//     path (panics included) and never escapes or is used after release.
//   - mmapref: byte slices derived from mmap-backed sections (fields
//     annotated `// mmapref: mapped`, functions annotated
//     `// mmapref: returns mapped memory`) are never stored into
//     unannotated fields or returned from unannotated functions without
//     a copy — the use-after-unmap hazard of the v4 index.
//
// Any finding can be waived in place with
// `// lint:ignore <analyzer> <reason>` on the offending line or the line
// above it; the reason is mandatory. cmd/blendlint compiles the suite
// into a standalone multichecker that is also runnable as a
// `go vet -vettool` (it speaks vet's unitchecker config protocol).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate to
// the real framework if the dependency ever becomes available.
type Analyzer struct {
	// Name is the identifier used in diagnostics and waiver comments.
	Name string
	// Doc is the one-paragraph description shown by `blendlint -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// report collects diagnostics (wired by Run; waivers are applied by
	// the driver afterwards, so analyzers never see them).
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully built finding (used when attaching fixes).
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Fixes optionally carries machine-applicable edits (`blendlint -fix`).
	Fixes []SuggestedFix
}

// SuggestedFix is one alternative machine edit resolving a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics (waivers already applied), sorted by position.
func Run(pkgs []*Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, fset, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// runPackage applies every analyzer to one package and filters waivers.
func runPackage(pkg *Package, fset *token.FileSet, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Syntax,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	w := collectWaivers(fset, pkg.Syntax)
	diags := raw[:0]
	for _, d := range raw {
		// Tests are exempt from the invariants suite-wide: the standalone
		// loader never feeds them in, but vet's unitchecker units do.
		if strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go") {
			continue
		}
		if !w.covers(fset, d) {
			diags = append(diags, d)
		}
	}
	diags = append(diags, w.malformed...)
	return diags, nil
}

// inspectAll walks every file, tracking the enclosing node stack. The
// callback's stack slice is reused between calls; copy it to retain it.
func inspectAll(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			fn(n, stack)
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingFuncDecl returns the innermost FuncDecl on the stack, nil at
// package scope.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package functions and methods; nil for builtins, conversions and
// indirect calls through variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcIs reports whether fn is the named function of the package whose
// path is pkgPath (e.g. funcIs(fn, "fmt", "Errorf")).
func funcIs(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isPkgNamed reports whether pkg is the package identified by the given
// import-path tail (matching "berr" against both "blend/internal/berr"
// and a test fixture's local "berr" package).
func isPkgNamed(pkg *types.Package, tail string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == tail || len(p) > len(tail) && p[len(p)-len(tail)-1] == '/' && p[len(p)-len(tail):] == tail
}
