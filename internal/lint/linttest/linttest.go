// Package linttest is the analysistest-style harness for the blendlint
// suite: it type-checks a golden package from testdata/src, runs one
// analyzer over it, and asserts the reported diagnostics against
// `// want "regexp"` comments in the sources.
//
// Standard-library imports are resolved by compiling them from source
// (go/importer's "source" compiler), and imports naming a sibling
// directory under testdata/src (e.g. the stub berr package) are
// type-checked from those files — the harness therefore needs neither
// network access nor prebuilt export data.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"blend/internal/lint"
)

var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// Run type-checks the package in dir (relative to the test's working
// directory) under the given import path, applies the analyzer, and
// matches diagnostics against the `// want` expectations.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) []lint.Diagnostic {
	t.Helper()
	fset, syntax, diags := analyze(t, a, dir, pkgPath)
	match(t, fset, syntax, diags)
	return diags
}

// Diags runs the analyzer without asserting `// want` comments — for
// exemption tests, where the same golden sources must produce nothing
// under a different import path and the wants intentionally go unhit.
func Diags(t *testing.T, a *lint.Analyzer, dir, pkgPath string) []lint.Diagnostic {
	t.Helper()
	_, _, diags := analyze(t, a, dir, pkgPath)
	return diags
}

func analyze(t *testing.T, a *lint.Analyzer, dir, pkgPath string) (*token.FileSet, []*ast.File, []lint.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		t:    t,
		fset: fset,
		src:  filepath.Dir(filepath.Clean(dir)), // testdata/src root is dir's parent... adjusted below
	}
	// Local sibling packages live under the same testdata/src root; walk
	// up from dir until the directory is named "src".
	root := filepath.Clean(dir)
	for root != "." && root != string(filepath.Separator) && filepath.Base(root) != "src" {
		root = filepath.Dir(root)
	}
	ld.src = root
	ld.built = make(map[string]*types.Package)

	pkg, syntax := ld.check(dir, pkgPath)
	diags, err := lint.Run([]*lint.Package{{
		PkgPath: pkgPath,
		Name:    pkg.Name(),
		Dir:     dir,
		Syntax:  syntax,
		Types:   pkg,
		Info:    ld.infos[pkgPath],
	}}, fset, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return fset, syntax, diags
}

// loader type-checks testdata packages with srcimporter-backed std deps.
type loader struct {
	t     *testing.T
	fset  *token.FileSet
	src   string // testdata/src root for local sibling imports
	built map[string]*types.Package
	infos map[string]*types.Info
	std   types.Importer
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.built[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(l.src, path); dirExists(dir) {
		pkg, _ := l.check(dir, path)
		return pkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// check parses and type-checks one testdata package.
func (l *loader) check(dir, pkgPath string) (*types.Package, []*ast.File) {
	l.t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("reading %s: %v", dir, err)
	}
	var syntax []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		syntax = append(syntax, af)
	}
	if len(syntax) == 0 {
		l.t.Fatalf("no Go files in %s", dir)
	}
	info := lint.NewInfo()
	conf := &types.Config{Importer: l, Error: func(error) {}}
	pkg, err := conf.Check(pkgPath, l.fset, syntax, info)
	if err != nil {
		l.t.Fatalf("typecheck %s: %v", pkgPath, err)
	}
	if l.infos == nil {
		l.infos = make(map[string]*types.Info)
	}
	l.infos[pkgPath] = info
	l.built[pkgPath] = pkg
	return pkg, syntax
}

// expectation is one `// want` assertion.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// match compares diagnostics against want comments.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}
