package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package of the analyzed module.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	GoFiles []string
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load resolves the patterns (e.g. "./...") in dir into type-checked
// packages ready for analysis. It shells out to `go list -export
// -json -deps`, which compiles export data for every dependency, then
// type-checks the matched packages from source — the same split vet's
// unitchecker uses, with no dependency beyond the go tool itself.
// Test files are not loaded: the invariants police production code, and
// tests are an explicit exemption of the context-flow rules.
func Load(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	exports := make(map[string]string) // import path -> export data file
	goVersion := ""
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Module != nil && lp.Module.GoVersion != "" && goVersion == "" {
			goVersion = "go" + lp.Module.GoVersion
		}
	}
	checker := newChecker(fset, exports, goVersion)

	var pkgs []*Package
	// go list -deps emits dependencies before dependents, so checking in
	// output order resolves intra-module imports from source.
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		pkg, err := checker.check(lp.ImportPath, lp.Name, lp.Dir, absFiles(lp.Dir, lp.GoFiles))
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, fset, nil
}

func absFiles(dir string, files []string) []string {
	out := make([]string, len(files))
	for i, f := range files {
		if filepath.IsAbs(f) {
			out[i] = f
		} else {
			out[i] = filepath.Join(dir, f)
		}
	}
	return out
}

// checker type-checks module packages from source, resolving external
// imports through gc export data and already-checked module packages by
// identity.
type checker struct {
	fset      *token.FileSet
	gc        types.Importer
	built     map[string]*types.Package
	goVersion string
}

func newChecker(fset *token.FileSet, exports map[string]string, goVersion string) *checker {
	c := &checker{fset: fset, built: make(map[string]*types.Package), goVersion: goVersion}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	c.gc = importer.ForCompiler(fset, "gc", lookup)
	return c
}

// Import implements types.Importer: source-checked module packages win,
// everything else comes from export data.
func (c *checker) Import(path string) (*types.Package, error) {
	if pkg, ok := c.built[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return c.gc.Import(path)
}

// check parses and type-checks one package from source.
func (c *checker) check(path, name, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(c.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	info := NewInfo()
	conf := &types.Config{
		Importer: c,
		Error:    func(error) {}, // collect via the returned error only
	}
	if c.goVersion != "" {
		conf.GoVersion = c.goVersion
	}
	tpkg, err := conf.Check(path, c.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	c.built[path] = tpkg
	return &Package{
		PkgPath: path,
		Name:    name,
		Dir:     dir,
		GoFiles: files,
		Syntax:  syntax,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// PkgPathHasDir reports whether any path element of the package's import
// path equals elem — how ctxflow recognizes cmd/ and examples/ trees.
func PkgPathHasDir(pkgPath, elem string) bool {
	for _, p := range strings.Split(pkgPath, "/") {
		if p == elem {
			return true
		}
	}
	return false
}
