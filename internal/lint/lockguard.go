package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard enforces the annotated lock discipline.
//
// A struct field carrying a `// guarded by <name>` comment (doc or
// trailing) may only be accessed by functions that demonstrably hold the
// guard, where <name> is a sibling sync.Mutex/sync.RWMutex/sync.Once
// field. A function holds the guard when its body (closures included)
// contains a `<x>.<name>.Lock()` / `.RLock()` / `.Do(...)` call, or when
// its doc comment says `// lockguard: caller holds <name>` (the
// repo-wide convention for helpers called under an already-held lock).
// Writes under an RWMutex require the write lock; RLock only satisfies
// reads. Composite-literal construction and assignments to freshly built
// local values are exempt — initialization precedes sharing.
//
// Additionally, a guarded field named `gen` is treated as the engine's
// store generation: every `gen++` must appear in a function that also
// publishes a snapshot or invalidates the result cache (a `.publish(...)`,
// `.sweepBelow(...)`, or legacy `.purge(...)` call), unless the bump
// carries an explicit `// lint:gen-lazy <reason>` comment. The reason is
// mandatory, exactly as for lint:ignore waivers.
//
// Finally, a snapshot publish — a `.Store(...)` call whose receiver is a
// field named `snap` — must pair with a retire call in the same function
// (`.retire(...)`), so published generations always enter the retention
// window and dead ones are swept; `// lint:gen-lazy <reason>` waives this
// too.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` are only accessed while " +
		"holding the lock (or under `// lockguard: caller holds <mu>`); " +
		"store-generation bumps pair with a snapshot publish or cache " +
		"sweep, and snap.Store pairs with retire, or waive with " +
		"`// lint:gen-lazy <reason>`",
	Run: runLockguard,
}

var (
	guardedByRe   = regexp.MustCompile(`guarded by (\w+)`)
	callerHoldsRe = regexp.MustCompile(`lockguard: caller holds ([\w, ]+)`)
)

const genLazyPrefix = "lint:gen-lazy"

func runLockguard(pass *Pass) error {
	g := &lockguarder{pass: pass}
	g.collectGuards()
	if len(g.guards) == 0 {
		return nil
	}
	g.collectGenLazy()
	g.checkAccesses()
	return nil
}

type guardInfo struct {
	name string // sibling guard field name
	once bool   // guard is a sync.Once rather than a mutex
}

type lockguarder struct {
	pass   *Pass
	guards map[*types.Var]guardInfo
	// genLazy maps filename -> lines covered by a lint:gen-lazy comment.
	genLazy map[string]map[int]bool
}

// collectGuards maps annotated fields to their guards.
func (g *lockguarder) collectGuards() {
	g.guards = make(map[*types.Var]guardInfo)
	for _, f := range g.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := fieldGuardName(field)
				if guard == "" {
					continue
				}
				once := structHasOnceField(g.pass, st, guard)
				for _, name := range field.Names {
					if v, ok := g.pass.Info.Defs[name].(*types.Var); ok {
						g.guards[v] = guardInfo{name: guard, once: once}
					}
				}
			}
			return true
		})
	}
}

func fieldGuardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structHasOnceField reports whether the guard field of the struct is a
// sync.Once (which changes what "holding" means).
func structHasOnceField(pass *Pass, st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			t := pass.Info.Types[field.Type].Type
			named, ok := t.(*types.Named)
			if !ok {
				return false
			}
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Once"
		}
	}
	return false
}

// collectGenLazy indexes `// lint:gen-lazy <reason>` comments; like
// waivers, one covers its own line and the next.
func (g *lockguarder) collectGenLazy() {
	g.genLazy = make(map[string]map[int]bool)
	for _, f := range g.pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, genLazyPrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(text, genLazyPrefix))
				if reason == "" {
					g.pass.Reportf(c.Pos(),
						"malformed gen-lazy waiver: want `// lint:gen-lazy <reason>` with a non-empty reason")
					continue
				}
				pos := g.pass.Fset.Position(c.Pos())
				lm := g.genLazy[pos.Filename]
				if lm == nil {
					lm = make(map[int]bool)
					g.genLazy[pos.Filename] = lm
				}
				lm[pos.Line] = true
				lm[pos.Line+1] = true
			}
		}
	}
}

func (g *lockguarder) genLazyCovers(pos token.Pos) bool {
	p := g.pass.Fset.Position(pos)
	return g.genLazy[p.Filename][p.Line]
}

// holdKinds records how a function acquires a given guard name.
type holdKinds struct{ lock, rlock, do bool }

// holdsGuard scans fd for acquisitions of the named guard.
func (g *lockguarder) holdsGuard(fd *ast.FuncDecl, guard string) holdKinds {
	var h holdKinds
	if fd == nil {
		return h
	}
	if fd.Doc != nil {
		if m := callerHoldsRe.FindStringSubmatch(fd.Doc.Text()); m != nil {
			for _, name := range strings.Split(m[1], ",") {
				if strings.TrimSpace(name) == guard {
					h.lock, h.rlock, h.do = true, true, true
				}
			}
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Match <...>.<guard>.Lock() etc. — the receiver's final selector
		// (or bare identifier) must be the guard's field name.
		recvName := ""
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			recvName = recv.Sel.Name
		case *ast.Ident:
			recvName = recv.Name
		}
		if recvName != guard {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			h.lock = true
		case "RLock":
			h.rlock = true
		case "Do":
			h.do = true
		}
		return true
	})
	return h
}

// checkAccesses walks every selector touching a guarded field.
func (g *lockguarder) checkAccesses() {
	type key struct {
		fd    *ast.FuncDecl
		guard string
	}
	holdCache := make(map[key]holdKinds)
	holds := func(fd *ast.FuncDecl, guard string) holdKinds {
		k := key{fd, guard}
		if h, ok := holdCache[k]; ok {
			return h
		}
		h := g.holdsGuard(fd, guard)
		holdCache[k] = h
		return h
	}

	inspectAll(g.pass.Files, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection := g.pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		v, ok := selection.Obj().(*types.Var)
		if !ok {
			return
		}
		gi, guarded := g.guards[v]
		if !guarded {
			return
		}
		fd := enclosingFuncDecl(stack)
		if fd == nil {
			return
		}
		write := isWriteAccess(sel, stack)
		if g.freshLocal(fd, sel) {
			return
		}
		h := holds(fd, gi.name)
		held := h.lock || h.do || (!write && h.rlock)
		if !held {
			verb := "read"
			if write {
				verb = "write to"
			}
			g.pass.Reportf(sel.Sel.Pos(),
				"%s %s without holding %s (annotate the caller `// lockguard: caller holds %s` if the lock is held upstream)",
				verb, v.Name(), gi.name, gi.name)
		}
		// Generation bump pairing: gen++ must publish (MVCC path), sweep,
		// or purge (legacy path) — or be waived lazy.
		if write && v.Name() == "gen" && isIncrement(sel, stack) {
			if !g.genLazyCovers(sel.Pos()) && !fdCallsAny(fd, "publish", "sweepBelow", "purge") {
				g.pass.Reportf(sel.Sel.Pos(),
					"store-generation bump without a snapshot publish or cache sweep; call publish()/sweepBelow()/purge() in the same critical section or waive with `// lint:gen-lazy <reason>`")
			}
		}
	})

	// Snapshot publish pairing: snap.Store must retire in the same
	// function so the retention window advances with every publish.
	inspectAll(g.pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSnapStore(call) {
			return
		}
		fd := enclosingFuncDecl(stack)
		if fd == nil {
			return
		}
		if !g.genLazyCovers(call.Pos()) && !fdCallsAny(fd, "retire") {
			g.pass.Reportf(call.Pos(),
				"snapshot publish without retiring into the retention window; call retire() in the same function or waive with `// lint:gen-lazy <reason>`")
		}
	})
}

// isSnapStore reports whether call is `<...>.snap.Store(...)` — the
// atomic publish of a new generation snapshot.
func isSnapStore(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return recv.Sel.Name == "snap"
	case *ast.Ident:
		return recv.Name == "snap"
	}
	return false
}

// isWriteAccess reports whether sel is assigned or incremented.
func isWriteAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, l := range parent.Lhs {
			if ast.Unparen(l) == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(parent.X) == ast.Expr(sel)
	case *ast.UnaryExpr:
		// &x.f leaks a writable reference; treat as write.
		return parent.Op == token.AND && ast.Unparen(parent.X) == ast.Expr(sel)
	}
	return false
}

func isIncrement(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	inc, ok := stack[len(stack)-1].(*ast.IncDecStmt)
	return ok && inc.Tok == token.INC && ast.Unparen(inc.X) == ast.Expr(sel)
}

// freshLocal exempts accesses through a local variable the function built
// itself (composite literal or new) — initialization before sharing.
func (g *lockguarder) freshLocal(fd *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := g.pass.Info.Uses[base]
	if obj == nil {
		return false
	}
	fresh := false
	ast.Inspect(fd, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok || g.pass.Info.Defs[id] != obj {
			return true
		}
		rhs := ast.Unparen(asg.Rhs[0])
		if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
			rhs = ast.Unparen(u.X)
		}
		switch rhs := rhs.(type) {
		case *ast.CompositeLit:
			fresh = true
		case *ast.CallExpr:
			if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "new" {
				fresh = true
			}
		}
		return true
	})
	return fresh
}

// fdCallsAny reports whether fd's body calls a method with one of the
// given names.
func fdCallsAny(fd *ast.FuncDecl, names ...string) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			for _, name := range names {
				if sel.Sel.Name == name {
					found = true
				}
			}
		}
		return true
	})
	return found
}
