package lint_test

import (
	"testing"

	"blend/internal/lint"
	"blend/internal/lint/linttest"
)

func TestLockguard(t *testing.T) {
	linttest.Run(t, lint.Lockguard, "testdata/src/lockguard/a", "blendtest/internal/engine")
}
