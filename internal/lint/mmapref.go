package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mmapref polices the lifetime of byte slices backed by mmap'd index
// sections — the PR 6 use-after-unmap hazard: a slice into a mapped
// segment faults (or silently reads remapped bytes) once Close or
// Compact unmaps the file, so mapped memory must never outlive the
// function that borrowed it without an explicit copy.
//
// The analysis is annotation-driven:
//
//   - a struct field commented `// mmapref: mapped` holds mapped memory
//     (segFile.data, segDecoder.b);
//   - a function commented `// mmapref: returns mapped memory` is a
//     blessed accessor whose []byte result is mapped (segFile.section).
//
// Within each unannotated function, values read from annotated fields or
// accessor calls — and any subslice of them — are tainted. Returning a
// tainted []byte, or storing one into an unannotated struct field, is a
// finding. Copies launder the taint: string(b) conversions,
// append(dst, b...), and copy(dst, b) all materialize heap-owned bytes.
var Mmapref = &Analyzer{
	Name: "mmapref",
	Doc: "byte slices derived from mmap'd sections (fields annotated " +
		"`// mmapref: mapped`, accessors annotated `// mmapref: returns " +
		"mapped memory`) must not be stored into unannotated fields or " +
		"returned from unannotated functions without a copy",
	Run: runMmapref,
}

const (
	mappedFieldMark  = "mmapref: mapped"
	mappedReturnMark = "mmapref: returns mapped memory"
)

func runMmapref(pass *Pass) error {
	m := &mmapchecker{pass: pass}
	m.collectAnnotations()
	if len(m.mappedFields) == 0 && len(m.mappedFuncs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				m.checkFunc(fd)
			}
		}
	}
	return nil
}

type mmapchecker struct {
	pass         *Pass
	mappedFields map[*types.Var]bool
	mappedFuncs  map[types.Object]bool
}

func (m *mmapchecker) collectAnnotations() {
	m.mappedFields = make(map[*types.Var]bool)
	m.mappedFuncs = make(map[types.Object]bool)
	for _, f := range m.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if !fieldHasMark(field, mappedFieldMark) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := m.pass.Info.Defs[name].(*types.Var); ok {
							m.mappedFields[v] = true
						}
					}
				}
			case *ast.FuncDecl:
				if n.Doc != nil && strings.Contains(n.Doc.Text(), mappedReturnMark) {
					if obj := m.pass.Info.Defs[n.Name]; obj != nil {
						m.mappedFuncs[obj] = true
					}
				}
				return false
			}
			return true
		})
	}
}

func fieldHasMark(field *ast.Field, mark string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(cg.Text(), mark) {
			return true
		}
	}
	return false
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// checkFunc runs the per-function lexical taint walk.
func (m *mmapchecker) checkFunc(fd *ast.FuncDecl) {
	info := m.pass.Info
	annotated := fd.Doc != nil && strings.Contains(fd.Doc.Text(), mappedReturnMark)
	tainted := make(map[types.Object]bool)

	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[info.Uses[e]]
		case *ast.SelectorExpr:
			if sel := info.Selections[e]; sel != nil {
				if v, ok := sel.Obj().(*types.Var); ok && m.mappedFields[v] {
					return true
				}
			}
			return false
		case *ast.SliceExpr:
			return exprTainted(e.X)
		case *ast.CallExpr:
			// string(b), append, copy, and clone helpers launder taint.
			if fn := calleeFunc(info, e); fn != nil {
				return m.mappedFuncs[fn]
			}
			return false
		}
		return false
	}

	inspectAll([]*ast.File{fileOfDecl(m.pass, fd)}, func(n ast.Node, stack []ast.Node) {
		if !withinNode(fd, n) {
			return
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				} else {
					continue
				}
				taint := exprTainted(rhs)
				switch lhs := ast.Unparen(l).(type) {
				case *ast.Ident:
					obj := info.Defs[lhs]
					if obj == nil {
						obj = info.Uses[lhs]
					}
					if obj == nil || !isByteSlice(obj.Type()) {
						continue
					}
					if taint {
						tainted[obj] = true
					} else {
						delete(tainted, obj)
					}
				case *ast.SelectorExpr:
					if !taint {
						continue
					}
					sel := info.Selections[lhs]
					if sel == nil {
						continue
					}
					if v, ok := sel.Obj().(*types.Var); ok && !m.mappedFields[v] {
						m.pass.Reportf(rhs.Pos(),
							"mmap-backed bytes stored into field %s outlive the mapping; copy with append/string, or annotate the field `// mmapref: mapped`",
							v.Name())
					}
				}
			}
		case *ast.ReturnStmt:
			if annotated {
				return
			}
			for _, res := range n.Results {
				t := info.Types[res].Type
				if t == nil || !isByteSlice(t) {
					continue
				}
				if exprTainted(res) {
					m.pass.Reportf(res.Pos(),
						"mmap-backed bytes returned from %s escape the mapping's lifetime; return a copy, or annotate the function `// mmapref: returns mapped memory`",
						fd.Name.Name)
				}
			}
		}
	})
}

// fileOfDecl finds the file containing the declaration.
func fileOfDecl(pass *Pass, fd *ast.FuncDecl) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= fd.Pos() && fd.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// withinNode reports whether n lies inside decl's source range.
func withinNode(decl *ast.FuncDecl, n ast.Node) bool {
	return n.Pos() >= decl.Pos() && n.End() <= decl.End()
}
