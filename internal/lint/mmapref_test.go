package lint_test

import (
	"testing"

	"blend/internal/lint"
	"blend/internal/lint/linttest"
)

func TestMmapref(t *testing.T) {
	linttest.Run(t, lint.Mmapref, "testdata/src/mmapref/a", "blendtest/internal/segread")
}
