package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolcheck enforces the sync.Pool scratch-buffer discipline of the
// native execution paths.
//
// A package-level sync.Pool defines two blessed roles: getter functions
// (whose bodies call pool.Get — e.g. grabScratch) and releaser
// functions/methods (whose bodies call pool.Put — e.g. release). Every
// other function that acquires a pooled value through a getter must:
//
//   - release it via `defer`, so the Put happens on every return path,
//     panics included;
//   - not touch the value after a non-deferred release (use-after-Put is
//     a data race with the next Get);
//   - not let the value escape: returning it or storing it into a struct
//     field retains a reference the pool may hand to another goroutine.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc: "sync.Pool Get/Put pair on all return paths (release via defer, " +
		"panics included); no pooled-buffer reference used or retained " +
		"after Put",
	Run: runPoolcheck,
}

func runPoolcheck(pass *Pass) error {
	p := &poolchecker{pass: pass}
	p.collectPools()
	if len(p.pools) == 0 {
		return nil
	}
	p.collectAccessors()
	p.checkUsers()
	return nil
}

type poolchecker struct {
	pass      *Pass
	pools     map[types.Object]bool // package-level sync.Pool vars
	getters   map[types.Object]bool // funcs whose body calls pool.Get
	releasers map[types.Object]bool // funcs whose body calls pool.Put
}

func isSyncPool(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

func (p *poolchecker) collectPools() {
	p.pools = make(map[types.Object]bool)
	scope := p.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if v, ok := scope.Lookup(name).(*types.Var); ok && isSyncPool(v.Type()) {
			p.pools[v] = true
		}
	}
}

// poolMethodCall reports whether call is <pool>.<method>() on a tracked
// package-level pool.
func (p *poolchecker) poolMethodCall(call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return p.pools[p.pass.Info.Uses[id]]
}

// collectAccessors classifies the package's functions into getters and
// releasers by whether their bodies touch a pool directly.
func (p *poolchecker) collectAccessors() {
	p.getters = make(map[types.Object]bool)
	p.releasers = make(map[types.Object]bool)
	for _, f := range p.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := p.pass.Info.Defs[fd.Name]
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if p.poolMethodCall(call, "Get") {
					p.getters[fn] = true
				}
				if p.poolMethodCall(call, "Put") {
					p.releasers[fn] = true
				}
				return true
			})
		}
	}
}

// releaseCallOn reports whether call releases the given pooled object:
// v.release(), release(v), or pool.Put(v).
func (p *poolchecker) releaseCallOn(call *ast.CallExpr, obj types.Object) bool {
	if p.poolMethodCall(call, "Put") {
		return len(call.Args) == 1 && identObjIs(p.pass.Info, call.Args[0], obj)
	}
	fn := calleeFunc(p.pass.Info, call)
	if fn == nil || !p.releasers[fn] {
		return false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return identObjIs(p.pass.Info, sel.X, obj)
	}
	return len(call.Args) == 1 && identObjIs(p.pass.Info, call.Args[0], obj)
}

func identObjIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// checkUsers verifies every non-accessor function that acquires pooled
// scratch through a getter.
func (p *poolchecker) checkUsers() {
	for _, f := range p.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := p.pass.Info.Defs[fd.Name]
			if p.getters[fn] || p.releasers[fn] {
				continue // accessors are the blessed pool surface
			}
			p.checkFunc(fd)
		}
	}
}

func (p *poolchecker) checkFunc(fd *ast.FuncDecl) {
	info := p.pass.Info
	// Pooled objects acquired in this function: obj -> acquisition pos.
	acquired := make(map[types.Object]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !p.getters[fn] {
			return true
		}
		for _, l := range asg.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil {
					acquired[obj] = id.Pos()
				} else if obj := info.Uses[id]; obj != nil {
					acquired[obj] = id.Pos()
				}
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	for obj, pos := range acquired {
		var (
			deferredRelease bool
			plainReleasePos token.Pos
		)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if p.releaseCallOn(n.Call, obj) {
					deferredRelease = true
					return false
				}
				// defer func() { ... v.release() ... }()
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						if c, ok := m.(*ast.CallExpr); ok && p.releaseCallOn(c, obj) {
							deferredRelease = true
						}
						return true
					})
					if deferredRelease {
						return false
					}
				}
			case *ast.ExprStmt:
				if c, ok := n.X.(*ast.CallExpr); ok && p.releaseCallOn(c, obj) {
					if !plainReleasePos.IsValid() {
						plainReleasePos = c.Pos()
					}
					return false
				}
			}
			return true
		})

		switch {
		case deferredRelease:
			// The good path; nothing more to prove for pairing.
		case plainReleasePos.IsValid():
			p.pass.Reportf(plainReleasePos,
				"pooled %s released without defer: a panic between Get and Put leaks the buffer; use `defer %s`",
				obj.Name(), releaseHint(obj))
			p.checkUseAfter(fd, obj, plainReleasePos)
		default:
			p.pass.Reportf(pos,
				"pooled %s acquired but never released in %s; add `defer %s`",
				obj.Name(), fd.Name.Name, releaseHint(obj))
		}
		p.checkEscapes(fd, obj)
	}
}

func releaseHint(obj types.Object) string {
	return obj.Name() + ".release()"
}

// checkUseAfter flags lexical uses of obj after a non-deferred release.
func (p *poolchecker) checkUseAfter(fd *ast.FuncDecl, obj types.Object, after token.Pos) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() <= after || p.pass.Info.Uses[id] != obj {
			return true
		}
		p.pass.Reportf(id.Pos(),
			"pooled %s used after Put: the pool may have handed it to another goroutine",
			obj.Name())
		return true
	})
}

// checkEscapes flags the pooled value being returned or stored into a
// struct field.
func (p *poolchecker) checkEscapes(fd *ast.FuncDecl, obj types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if identObjIs(p.pass.Info, res, obj) {
					p.pass.Reportf(res.Pos(),
						"pooled %s escapes via return; copy the data out before release",
						obj.Name())
				}
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, ok := ast.Unparen(l).(*ast.SelectorExpr); ok &&
					identObjIs(p.pass.Info, n.Rhs[i], obj) {
					p.pass.Reportf(n.Rhs[i].Pos(),
						"pooled %s stored into a field outlives its release; copy instead",
						obj.Name())
				}
			}
		}
		return true
	})
}
