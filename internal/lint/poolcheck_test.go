package lint_test

import (
	"testing"

	"blend/internal/lint"
	"blend/internal/lint/linttest"
)

func TestPoolcheck(t *testing.T) {
	linttest.Run(t, lint.Poolcheck, "testdata/src/poolcheck/a", "blendtest/internal/native")
}
