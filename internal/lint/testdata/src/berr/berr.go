// Package berr is a minimal stub of blend/internal/berr for the analyzer
// golden tests: berrcheck recognizes the package by import-path tail, so
// the stub only needs the constructor shapes, not the behavior.
package berr

// Code classifies an error.
type Code int

// Stub codes.
const (
	CodeUnknown Code = iota
	CodeInternal
	CodeBadRequest
)

// Error is the typed error.
type Error struct {
	Code Code
	Op   string
	Err  error
}

func (e *Error) Error() string { return e.Op }

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// New builds a typed error.
func New(code Code, op, format string, args ...any) *Error {
	_ = format
	_ = args
	return &Error{Code: code, Op: op}
}

// Wrap types a cause.
func Wrap(code Code, op string, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Code: code, Op: op, Err: err}
}
