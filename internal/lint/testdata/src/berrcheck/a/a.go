// Package a is the berrcheck golden package; the test loads it under an
// import path ending in internal/storage so the analyzer applies.
package a

import (
	"errors"
	"fmt"

	"berr"
)

// Exported returns raw constructor results directly — both flavors flag.
func Exported(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n) // want "raw fmt.Errorf in exported Exported"
	}
	if n == 0 {
		return errors.New("zero") // want "raw errors.New in exported Exported"
	}
	return nil
}

// Wrapped is clean: the raw cause is an argument of a berr constructor.
func Wrapped(n int) error {
	if n < 0 {
		return berr.Wrap(berr.CodeInternal, "a.wrapped", fmt.Errorf("bad n %d", n))
	}
	return nil
}

// helper returns raw errors — allowed, it is unexported.
func helper() error { return errors.New("inner") }

// helper2 propagates helper's rawness through the fixed point.
func helper2() error { return helper() }

// Boundary leaks helper's raw error across the exported boundary.
func Boundary() error {
	err := helper()
	if err != nil {
		return err // want "error from helper may leave exported Boundary untyped"
	}
	return nil
}

// Chain leaks through the transitive helper.
func Chain() error {
	return helper2() // want "error from helper2 may leave exported Chain untyped"
}

// BoundaryWrapped types the helper error at the boundary — clean.
func BoundaryWrapped() error {
	if err := helper(); err != nil {
		return berr.Wrap(berr.CodeInternal, "a.boundary", err)
	}
	return nil
}

// Reassigned shows taint clearing: the raw value is replaced by a typed
// one before returning.
func Reassigned() error {
	err := helper()
	err = berr.Wrap(berr.CodeInternal, "a.reassigned", err)
	return err
}

// Waived demonstrates the explicit escape hatch.
func Waived() error {
	return errors.New("special") // lint:ignore berrcheck golden waiver case
}
