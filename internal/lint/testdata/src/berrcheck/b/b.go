// Package b carries raw errors in an exported function but is loaded
// under an import path outside BerrcheckPackages — the analyzer must
// stay silent (no `// want` comments here on purpose).
package b

import "errors"

// Exported may return raw errors: this package is not a typed-error
// boundary.
func Exported() error {
	return errors.New("raw is fine here")
}
