// Package a is the ctxflow golden package; the test loads it under a
// library import path (not cmd/*, not examples), so the edge exemptions
// do not apply.
package a

import "context"

type holder struct {
	ctx context.Context // want "context.Context stored in a struct field"
	n   int
}

// Background flags: library code must thread the caller's context.
func Background() {
	_ = context.Background() // want "context.Background\(\) in library code"
}

// Todo flags the same way.
func Todo() {
	ctx := context.TODO() // want "context.TODO\(\) in library code"
	_ = ctx
}

// NilGuard is the one blessed in-library idiom (deprecated surfaces).
func NilGuard(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Forwarded is the discipline the analyzer wants.
func Forwarded(ctx context.Context, n int) error {
	return work(ctx, n)
}

func work(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

func badOrder(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = n
	return ctx.Err()
}

// Waived demonstrates the explicit escape hatch.
func Waived() {
	_ = context.Background() // lint:ignore ctxflow golden waiver case
}

var _ = holder{}
var _ = badOrder
