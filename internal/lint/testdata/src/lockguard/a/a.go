// Package a is the lockguard golden package: an engine-shaped struct
// with `// guarded by mu` fields, a sync.Once slot, and the
// gen-bump/purge pairing rule.
package a

import "sync"

type cache struct{ n int }

func (c *cache) purge() { c.n = 0 }

type engine struct {
	mu    sync.RWMutex
	store map[string]int // guarded by mu
	gen   uint64         // guarded by mu
	cache *cache         // guarded by mu
}

// newEngine builds a fresh engine; initialization precedes sharing, so
// unlocked field writes here are exempt.
func newEngine() *engine {
	e := &engine{store: make(map[string]int), cache: &cache{}}
	e.store["seed"] = 1
	return e
}

// Good reads under the read lock.
func (e *engine) Good() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.store)
}

// Bad reads without any lock.
func (e *engine) Bad() int {
	return len(e.store) // want "read store without holding mu"
}

// BadWrite writes under only the read lock.
func (e *engine) BadWrite() {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.store = nil // want "write to store without holding mu"
}

// size is a helper invoked with the lock already held.
//
// lockguard: caller holds mu
func (e *engine) size() int { return len(e.store) }

// GenGood bumps the generation and purges in the same critical section.
func (e *engine) GenGood() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gen++
	e.cache.purge()
}

// GenBad bumps the generation without purging the cache.
func (e *engine) GenBad() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gen++ // want "store-generation bump without a snapshot publish or cache sweep"
}

// GenLazy carries the explicit lazy-invalidation waiver.
func (e *engine) GenLazy() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gen++ // lint:gen-lazy golden lazy-invalidation case
}

// Waived demonstrates the generic lint:ignore escape hatch.
func (e *engine) Waived() int {
	return len(e.store) // lint:ignore lockguard golden waiver case
}

// slot mirrors the sharded-store lazy slot: the error is written inside
// the Once and read after it returns.
type slot struct {
	once sync.Once
	err  error // guarded by once
}

// init materializes the slot exactly once.
func (s *slot) init() {
	s.once.Do(func() {
		s.err = nil
	})
}

// Peek reads the slot error without going through the Once.
func (s *slot) Peek() error {
	return s.err // want "read err without holding once"
}

// snapPtr mirrors atomic.Pointer[snapshot] shape-wise: the lockguard
// publish rule keys on a Store call through a field named snap.
type snapPtr struct{ v any }

func (p *snapPtr) Store(v any) { p.v = v }

// mvcc is the MVCC-engine golden shape: gen bumps pair with publish
// (which itself pairs snap.Store with retire).
type mvcc struct {
	mu   sync.Mutex
	gen  uint64 // guarded by mu
	snap snapPtr
}

func (m *mvcc) retire(v any) {}

// publish is the good pairing: Store plus retire in one function.
func (m *mvcc) publish(v any) {
	m.snap.Store(v)
	m.retire(v)
}

// GenPublish bumps the generation and publishes — the MVCC pairing.
func (m *mvcc) GenPublish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gen++
	m.publish(nil)
}

// PublishBad stores a snapshot without retiring the window.
func (m *mvcc) PublishBad(v any) {
	m.snap.Store(v) // want "snapshot publish without retiring into the retention window"
}

// PublishWaived carries the lazy waiver on the raw store.
func (m *mvcc) PublishWaived(v any) {
	m.snap.Store(v) // lint:gen-lazy golden raw-publish case
}

var _ = newEngine
var _ = (*engine).size
var _ = (*slot).init
var _ = (*mvcc).GenPublish
var _ = (*mvcc).PublishBad
var _ = (*mvcc).PublishWaived
