// Package a is the mmapref golden package: a segment-file shape whose
// mapped bytes must not outlive the mapping without a copy.
package a

type segFile struct {
	data []byte // mmapref: mapped
	name string
}

// section returns a window of the mapping.
//
// mmapref: returns mapped memory
func (f *segFile) section(off, n int) []byte {
	return f.data[off : off+n]
}

// Leak returns the raw mapping from an unannotated function.
func Leak(f *segFile) []byte {
	return f.data // want "mmap-backed bytes returned from Leak"
}

// LeakSlice shows taint propagating through a subslice.
func LeakSlice(f *segFile) []byte {
	b := f.section(0, 8)
	return b[2:4] // want "mmap-backed bytes returned from LeakSlice"
}

// Copied launders the taint with an explicit append copy.
func Copied(f *segFile) []byte {
	b := f.section(0, 8)
	return append([]byte(nil), b...)
}

// Recycled shows the taint clearing when the variable is reassigned to a
// heap-owned copy.
func Recycled(f *segFile) []byte {
	b := f.section(0, 8)
	b = append([]byte(nil), b...)
	return b
}

// StringCopy materializes heap bytes via string conversion.
func StringCopy(f *segFile) string {
	return string(f.section(0, 4))
}

type cachedBlock struct {
	buf []byte
	key string
}

// Store parks mapped bytes in an unannotated field.
func Store(c *cachedBlock, f *segFile) {
	c.buf = f.section(0, 8) // want "mmap-backed bytes stored into field buf"
}

type window struct {
	view []byte // mmapref: mapped
}

// StoreAnnotated is clean: the destination field is annotated mapped.
func StoreAnnotated(w *window, f *segFile) {
	w.view = f.section(0, 8)
}

// Waived demonstrates the explicit escape hatch.
func Waived(f *segFile) []byte {
	return f.data // lint:ignore mmapref golden waiver case
}
