// Package a is the poolcheck golden package: a scratch-buffer pool with
// blessed getter/releaser accessors and every user-side failure mode.
package a

import "sync"

type scratch struct{ b []byte }

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// grab is the blessed getter.
func grab() *scratch { return scratchPool.Get().(*scratch) }

// release is the blessed releaser.
func (s *scratch) release() {
	s.b = s.b[:0]
	scratchPool.Put(s)
}

// Good releases via defer — the Put runs on every return path.
func Good() int {
	s := grab()
	defer s.release()
	s.b = append(s.b, 1)
	return len(s.b)
}

// GoodClosure releases inside a deferred closure.
func GoodClosure() {
	s := grab()
	defer func() {
		s.release()
	}()
	s.b = append(s.b, 2)
}

// Missing never returns the buffer to the pool.
func Missing() {
	s := grab() // want "pooled s acquired but never released in Missing"
	s.b = append(s.b, 3)
}

// NotDeferred releases on the happy path only, then touches the buffer
// after the Put.
func NotDeferred() int {
	s := grab()
	s.b = append(s.b, 4)
	s.release()     // want "pooled s released without defer"
	return len(s.b) // want "pooled s used after Put"
}

// Escapes hands the pooled value to the caller.
func Escapes() *scratch {
	s := grab() // want "pooled s acquired but never released in Escapes"
	return s    // want "pooled s escapes via return"
}

type holder struct{ s *scratch }

// Stored parks the pooled value in a struct field that outlives it.
func Stored(h *holder) {
	s := grab()
	defer s.release()
	h.s = s // want "pooled s stored into a field outlives its release"
}

// Waived demonstrates the explicit escape hatch.
func Waived() {
	s := grab() // lint:ignore poolcheck golden waiver case
	s.b = append(s.b, 5)
}
