package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Waiver syntax: `// lint:ignore <analyzer>[,<analyzer>...] <reason>`.
// The waiver covers findings of the named analyzers on the comment's own
// line, or — when the comment stands alone on its line — on the next
// source line. The reason is mandatory: a waiver without one is itself a
// finding, so every suppressed invariant is explained in the diff.

const ignorePrefix = "lint:ignore"

// waiverSet indexes the waivers of one package by file and line.
type waiverSet struct {
	// byLine maps filename -> line -> analyzer names waived on that line.
	byLine map[string]map[int]map[string]bool
	// malformed collects diagnostics for waivers missing their reason.
	malformed []Diagnostic
}

// collectWaivers scans the comments of every file.
func collectWaivers(fset *token.FileSet, files []*ast.File) *waiverSet {
	w := &waiverSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if names == "" || strings.TrimSpace(reason) == "" {
					w.malformed = append(w.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed waiver: want `// lint:ignore <analyzer> <reason>` with a non-empty reason",
					})
					continue
				}
				// A trailing comment waives its own line; a comment
				// standing alone waives the line below. The AST does not
				// retain raw source, so the waiver covers both — the
				// over-coverage is one line and always explicit in review.
				fm := w.byLine[pos.Filename]
				if fm == nil {
					fm = make(map[int]map[string]bool)
					w.byLine[pos.Filename] = fm
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					lm := fm[line]
					if lm == nil {
						lm = make(map[string]bool)
						fm[line] = lm
					}
					for _, n := range strings.Split(names, ",") {
						lm[strings.TrimSpace(n)] = true
					}
				}
			}
		}
	}
	return w
}

// covers reports whether d is waived.
func (w *waiverSet) covers(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	fm := w.byLine[pos.Filename]
	if fm == nil {
		return false
	}
	lm := fm[pos.Line]
	if lm == nil {
		return false
	}
	return lm[d.Analyzer] || lm["all"]
}
