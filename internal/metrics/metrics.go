// Package metrics implements the retrieval-quality measures used across
// the paper's evaluation: precision@k, recall@k, and mean average
// precision@k, plus small aggregation helpers for runtime series.
package metrics

// PrecisionAtK returns |retrieved[:k] ∩ relevant| / min(k, len(retrieved[:k])).
// An empty retrieval yields 0.
func PrecisionAtK(retrieved []string, relevant map[string]bool, k int) float64 {
	cut := retrieved
	if k >= 0 && len(cut) > k {
		cut = cut[:k]
	}
	if len(cut) == 0 {
		return 0
	}
	hits := 0
	for _, r := range cut {
		if relevant[r] {
			hits++
		}
	}
	return float64(hits) / float64(len(cut))
}

// RecallAtK returns |retrieved[:k] ∩ relevant| / |relevant|. With no
// relevant items the recall is 0.
func RecallAtK(retrieved []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	cut := retrieved
	if k >= 0 && len(cut) > k {
		cut = cut[:k]
	}
	hits := 0
	for _, r := range cut {
		if relevant[r] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// AveragePrecisionAtK returns the average of precision@i over the ranks
// i ≤ k where a relevant item appears, normalized by min(k, |relevant|) —
// the AP variant behind the paper's MAP@k.
func AveragePrecisionAtK(retrieved []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	cut := retrieved
	if k >= 0 && len(cut) > k {
		cut = cut[:k]
	}
	hits := 0
	sum := 0.0
	for i, r := range cut {
		if relevant[r] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	norm := len(relevant)
	if k >= 0 && k < norm {
		norm = k
	}
	if norm == 0 {
		return 0
	}
	return sum / float64(norm)
}

// MeanAveragePrecisionAtK averages AP@k across queries. Each element of
// runs pairs one query's ranking with its relevant set.
func MeanAveragePrecisionAtK(runs []Run, k int) float64 {
	if len(runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range runs {
		sum += AveragePrecisionAtK(r.Retrieved, r.Relevant, k)
	}
	return sum / float64(len(runs))
}

// Run pairs a retrieved ranking with its ground-truth relevant set.
type Run struct {
	Retrieved []string
	Relevant  map[string]bool
}

// MeanPrecisionAtK averages precision@k across runs.
func MeanPrecisionAtK(runs []Run, k int) float64 {
	if len(runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range runs {
		sum += PrecisionAtK(r.Retrieved, r.Relevant, k)
	}
	return sum / float64(len(runs))
}

// MeanRecallAtK averages recall@k across runs.
func MeanRecallAtK(runs []Run, k int) float64 {
	if len(runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range runs {
		sum += RecallAtK(r.Retrieved, r.Relevant, k)
	}
	return sum / float64(len(runs))
}

// Mean returns the arithmetic mean of xs, 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SetOf builds a membership set from names.
func SetOf(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
