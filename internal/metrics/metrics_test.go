package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPrecisionAtK(t *testing.T) {
	rel := SetOf("a", "b", "c")
	retrieved := []string{"a", "x", "b", "y"}
	if got := PrecisionAtK(retrieved, rel, 2); got != 0.5 {
		t.Fatalf("P@2 = %v", got)
	}
	if got := PrecisionAtK(retrieved, rel, 4); got != 0.5 {
		t.Fatalf("P@4 = %v", got)
	}
	if got := PrecisionAtK(nil, rel, 5); got != 0 {
		t.Fatalf("empty retrieval = %v", got)
	}
	// k beyond the retrieval length divides by the actual length.
	if got := PrecisionAtK([]string{"a"}, rel, 10); got != 1 {
		t.Fatalf("short retrieval = %v", got)
	}
	// k < 0 means no cut.
	if got := PrecisionAtK(retrieved, rel, -1); got != 0.5 {
		t.Fatalf("no cut = %v", got)
	}
}

func TestRecallAtK(t *testing.T) {
	rel := SetOf("a", "b", "c", "d")
	retrieved := []string{"a", "x", "b"}
	if got := RecallAtK(retrieved, rel, 3); got != 0.5 {
		t.Fatalf("R@3 = %v", got)
	}
	if got := RecallAtK(retrieved, rel, 1); got != 0.25 {
		t.Fatalf("R@1 = %v", got)
	}
	if got := RecallAtK(retrieved, nil, 3); got != 0 {
		t.Fatalf("no relevant = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	rel := SetOf("a", "b")
	// Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
	got := AveragePrecisionAtK([]string{"a", "x", "b"}, rel, 10)
	want := (1.0 + 2.0/3.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AP = %v, want %v", got, want)
	}
	// Perfect ranking has AP 1.
	if got := AveragePrecisionAtK([]string{"a", "b"}, rel, 10); got != 1 {
		t.Fatalf("perfect AP = %v", got)
	}
	// Nothing relevant retrieved is 0.
	if got := AveragePrecisionAtK([]string{"x", "y"}, rel, 10); got != 0 {
		t.Fatalf("miss AP = %v", got)
	}
	// Normalization uses min(k, |relevant|).
	if got := AveragePrecisionAtK([]string{"a"}, rel, 1); got != 1 {
		t.Fatalf("k-normalized AP = %v", got)
	}
}

func TestMeanMetrics(t *testing.T) {
	runs := []Run{
		{Retrieved: []string{"a", "b"}, Relevant: SetOf("a", "b")},
		{Retrieved: []string{"x", "y"}, Relevant: SetOf("a", "b")},
	}
	if got := MeanPrecisionAtK(runs, 2); got != 0.5 {
		t.Fatalf("mean P = %v", got)
	}
	if got := MeanRecallAtK(runs, 2); got != 0.5 {
		t.Fatalf("mean R = %v", got)
	}
	if got := MeanAveragePrecisionAtK(runs, 2); got != 0.5 {
		t.Fatalf("MAP = %v", got)
	}
	if MeanPrecisionAtK(nil, 2) != 0 || MeanRecallAtK(nil, 2) != 0 || MeanAveragePrecisionAtK(nil, 2) != 0 {
		t.Fatal("empty runs should be 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}

// Metric bounds: all measures live in [0, 1] for arbitrary inputs.
func TestBoundsQuick(t *testing.T) {
	f := func(retrieved []string, relevant []string, k int) bool {
		rel := SetOf(relevant...)
		k = k % 50
		p := PrecisionAtK(retrieved, rel, k)
		r := RecallAtK(retrieved, rel, k)
		ap := AveragePrecisionAtK(retrieved, rel, k)
		ok := func(x float64) bool { return x >= 0 && x <= 1 }
		return ok(p) && ok(r) && ok(ap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetOf(t *testing.T) {
	s := SetOf("a", "b", "a")
	if len(s) != 2 || !s["a"] || !s["b"] || s["c"] {
		t.Fatalf("SetOf = %v", s)
	}
}
