package minisql

import (
	"strconv"
	"strings"
)

// Query is a parsed SELECT statement.
type Query struct {
	// Distinct is true for SELECT DISTINCT: duplicate output rows are
	// removed after projection.
	Distinct bool
	// Star is true for SELECT *.
	Star    bool
	Select  []SelectItem
	From    FromItem
	Joins   []Join
	Where   Expr // nil when absent
	GroupBy []Expr
	// Having filters groups after aggregation; nil when absent.
	Having  Expr
	OrderBy []OrderItem
	// Limit is the row limit, or -1 when absent.
	Limit int
}

// SelectItem is one projection expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// FromItem is a base table or a parenthesized subquery, with an optional
// alias.
type FromItem struct {
	Table string // base relation name; empty when Sub != nil
	Sub   *Query
	Alias string
}

// Join is an INNER JOIN clause.
type Join struct {
	Right FromItem
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a SQL expression node.
type Expr interface {
	String() string
}

// ColRef references a column, optionally qualified by a relation alias.
type ColRef struct {
	Qual string // "" when unqualified
	Name string
}

func (c *ColRef) String() string {
	if c.Qual != "" {
		return c.Qual + "." + c.Name
	}
	return c.Name
}

// Lit is a literal value.
type Lit struct{ V Value }

func (l *Lit) String() string {
	switch l.V.K {
	case KStr:
		return "'" + strings.ReplaceAll(l.V.S, "'", "''") + "'"
	case KNull:
		return "NULL"
	case KBool:
		if l.V.B {
			return "TRUE"
		}
		return "FALSE"
	case KInt:
		return strconv.FormatInt(l.V.I, 10)
	default:
		return strconv.FormatFloat(l.V.F, 'g', -1, 64)
	}
}

// Bin is a binary operation: comparison, logical, or arithmetic.
type Bin struct {
	Op   string // "OR","AND","=","<>","<","<=",">",">=","+","-","*","/","%"
	L, R Expr
}

func (b *Bin) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Un is a unary operation: NOT or numeric negation.
type Un struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (u *Un) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.String() + ")"
	}
	return "(-" + u.X.String() + ")"
}

// In is `x [NOT] IN (e1, e2, …)`.
type In struct {
	X    Expr
	List []Expr
	Neg  bool

	// litSet caches the GroupKeys of an all-literal list so membership is
	// a hash probe instead of a scan — the engine's hash semi-join.
	// Computed lazily on first evaluation; nil until then, and left nil
	// (with litSetInit true) when the list has non-literal elements.
	litSet     map[string]struct{}
	litSetInit bool
	// litSetNumStr records whether the list holds string literals that
	// parse as numbers; such literals can equal numeric probes under SQL
	// coercion, so a hash miss must fall back to the scan.
	litSetNumStr bool
	// litSetNums records whether the list holds numeric literals, which
	// can equal numeric-parsable string probes.
	litSetNums bool
}

func (in *In) String() string {
	var sb strings.Builder
	sb.WriteString(in.X.String())
	if in.Neg {
		sb.WriteString(" NOT IN (")
	} else {
		sb.WriteString(" IN (")
	}
	for i, e := range in.List {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// IsNull is `x IS [NOT] NULL`.
type IsNull struct {
	X   Expr
	Neg bool
}

func (n *IsNull) String() string {
	if n.Neg {
		return n.X.String() + " IS NOT NULL"
	}
	return n.X.String() + " IS NULL"
}

// Call is an aggregate or scalar function call.
type Call struct {
	Fn       string // upper case: COUNT, SUM, MIN, MAX, AVG, ABS
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Args     []Expr
}

func (c *Call) String() string {
	var sb strings.Builder
	sb.WriteString(c.Fn)
	sb.WriteString("(")
	if c.Star {
		sb.WriteString("*")
	} else {
		if c.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range c.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// Cast is the PostgreSQL-style `expr::type` cast; BLEND uses `::int` to
// turn booleans into 0/1 inside SUM (Listing 3).
type Cast struct {
	X    Expr
	Type string // "int" or "float"
}

func (c *Cast) String() string { return c.X.String() + "::" + c.Type }

// aggregateFns lists functions computed over groups.
var aggregateFns = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// hasAggregate reports whether e contains an aggregate call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Call:
		if aggregateFns[x.Fn] {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *Bin:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *Un:
		return hasAggregate(x.X)
	case *Cast:
		return hasAggregate(x.X)
	case *In:
		if hasAggregate(x.X) {
			return true
		}
		for _, e := range x.List {
			if hasAggregate(e) {
				return true
			}
		}
	case *IsNull:
		return hasAggregate(x.X)
	}
	return false
}

// String renders the query back to SQL. The output re-parses to an
// equivalent AST (property-tested).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if q.Star {
		sb.WriteString("*")
	} else {
		for i, it := range q.Select {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(it.Expr.String())
			if it.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(it.Alias)
			}
		}
	}
	sb.WriteString(" FROM ")
	sb.WriteString(q.From.sqlString())
	for _, j := range q.Joins {
		sb.WriteString(" INNER JOIN ")
		sb.WriteString(j.Right.sqlString())
		sb.WriteString(" ON ")
		sb.WriteString(j.On.String())
	}
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
	}
	if q.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(q.Having.String())
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			} else {
				sb.WriteString(" ASC")
			}
		}
	}
	if q.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.Itoa(q.Limit))
	}
	return sb.String()
}

func (f *FromItem) sqlString() string {
	var sb strings.Builder
	if f.Sub != nil {
		sb.WriteString("(")
		sb.WriteString(f.Sub.String())
		sb.WriteString(")")
	} else {
		sb.WriteString(f.Table)
	}
	if f.Alias != "" {
		sb.WriteString(" AS ")
		sb.WriteString(f.Alias)
	}
	return sb.String()
}
