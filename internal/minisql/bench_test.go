package minisql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Ablation benchmarks for the engine's design choices: the memoized IN
// hash set versus a literal scan, index access paths versus full scans,
// and parse cost as query literals grow.

func benchRelation(rows int) *MemRelation {
	rng := rand.New(rand.NewSource(1))
	m := NewMemRelation("v", "n")
	for i := 0; i < rows; i++ {
		m.Append(Str(fmt.Sprintf("tok%05d", rng.Intn(rows))), Int(int64(i)))
	}
	m.BuildIndex(0)
	return m
}

func inList(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("'tok%05d'", i)
	}
	return strings.Join(parts, ", ")
}

// BenchmarkInMemoized measures the IN fast path: with the literal set
// cached, each probe is one hash lookup regardless of list size.
func BenchmarkInMemoized(b *testing.B) {
	m := benchRelation(5000)
	sql := "SELECT COUNT(*) FROM r WHERE n >= 0 AND n IN (" + intList(500) + ")"
	q, err := Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	cat := catWith("r", m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(cat, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInFreshParse includes the parse + first-evaluation cost of the
// same query (the set is rebuilt every iteration) — the gap to
// BenchmarkInMemoized is the ablation.
func BenchmarkInFreshParse(b *testing.B) {
	m := benchRelation(5000)
	sql := "SELECT COUNT(*) FROM r WHERE n >= 0 AND n IN (" + intList(500) + ")"
	cat := catWith("r", m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecSQL(cat, sql); err != nil {
			b.Fatal(err)
		}
	}
}

func intList(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = fmt.Sprintf("%d", i)
	}
	return strings.Join(parts, ", ")
}

// BenchmarkIndexPath vs BenchmarkFullScan isolates the inverted-index
// access path against the fallback scan on the same predicate. The scan
// variant queries an unindexed copy of the relation.
func BenchmarkIndexPath(b *testing.B) {
	m := benchRelation(20000)
	sql := "SELECT v, n FROM r WHERE v IN (" + inList(8) + ")"
	cat := catWith("r", m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecSQL(cat, sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMemRelation("v", "n") // no index built
	for i := 0; i < 20000; i++ {
		m.Append(Str(fmt.Sprintf("tok%05d", rng.Intn(20000))), Int(int64(i)))
	}
	sql := "SELECT v, n FROM r WHERE v IN (" + inList(8) + ")"
	cat := catWith("r", m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecSQL(cat, sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse tracks parser throughput as the literal list grows (the
// dominant parse cost for large seeker inputs).
func BenchmarkParse(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		sql := "SELECT TableId FROM AllTables WHERE CellValue IN (" + inList(n) + ") GROUP BY TableId ORDER BY COUNT(DISTINCT CellValue) DESC"
		b.Run(fmt.Sprintf("lits=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Parse(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoin measures the subquery join at Listing 2 scale.
func BenchmarkHashJoin(b *testing.B) {
	m := benchRelation(10000)
	sql := `SELECT a.n FROM
		(SELECT * FROM r WHERE v IN (` + inList(16) + `)) AS a
		INNER JOIN
		(SELECT * FROM r WHERE v IN (` + inList(16) + `)) AS b
		ON a.n = b.n`
	cat := catWith("r", m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecSQL(cat, sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupBy measures aggregation over a full table.
func BenchmarkGroupBy(b *testing.B) {
	m := benchRelation(20000)
	sql := "SELECT v, COUNT(*), SUM(n) FROM r GROUP BY v ORDER BY COUNT(*) DESC LIMIT 10"
	cat := catWith("r", m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecSQL(cat, sql); err != nil {
			b.Fatal(err)
		}
	}
}
