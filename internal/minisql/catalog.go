package minisql

import "sort"

// Relation is a readable table the engine can query. Implementations must
// be safe for concurrent readers.
type Relation interface {
	// Columns returns the column names in position order.
	Columns() []string
	// NumRows returns the row count.
	NumRows() int
	// Cell returns the value at (row, col).
	Cell(row, col int) Value
}

// Tombstoned is a Relation whose rows can be logically deleted in place:
// scans skip rows RowVisible rejects, so deletion needs no physical row
// renumbering. The AllTables relation implements it to hide entries of
// removed-but-not-compacted tables from full scans.
type Tombstoned interface {
	Relation
	// HasTombstones reports whether any row is currently invisible; scans
	// skip the per-row visibility check entirely when false.
	HasTombstones() bool
	// RowVisible reports whether row r is live.
	RowVisible(r int) bool
}

// IndexedRelation is a Relation with value-index access paths. The engine
// uses LookupIn to avoid full scans for `col IN (…)` predicates — this is
// how the AllTables inverted index and TableId index accelerate seekers.
type IndexedRelation interface {
	Relation
	// LookupIn returns the sorted row positions where column col equals
	// any of vals, and whether the column has an index at all. When ok is
	// false the engine falls back to a scan.
	LookupIn(col int, vals []Value) (rows []int, ok bool)
}

// Catalog names the relations available to queries.
type Catalog struct {
	rels map[string]Relation
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]Relation)}
}

// Register adds or replaces a named relation.
func (c *Catalog) Register(name string, r Relation) { c.rels[name] = r }

// Lookup finds a relation by name.
func (c *Catalog) Lookup(name string) (Relation, bool) {
	r, ok := c.rels[name]
	return r, ok
}

// MemRelation is an in-memory Relation useful for tests and small data.
type MemRelation struct {
	cols    []string
	rows    [][]Value
	indexes map[int]map[string][]int
}

// NewMemRelation creates a relation with the given columns.
func NewMemRelation(cols ...string) *MemRelation {
	return &MemRelation{cols: cols}
}

// Append adds a row. It panics on width mismatch (test helper semantics).
func (m *MemRelation) Append(vals ...Value) {
	if len(vals) != len(m.cols) {
		panic("minisql: MemRelation row width mismatch")
	}
	m.rows = append(m.rows, append([]Value(nil), vals...))
}

// BuildIndex creates a value index on column col; subsequent LookupIn calls
// on that column use it.
func (m *MemRelation) BuildIndex(col int) {
	if m.indexes == nil {
		m.indexes = make(map[int]map[string][]int)
	}
	idx := make(map[string][]int)
	for r, row := range m.rows {
		k := row[col].GroupKey()
		idx[k] = append(idx[k], r)
	}
	m.indexes[col] = idx
}

// Columns implements Relation.
func (m *MemRelation) Columns() []string { return m.cols }

// NumRows implements Relation.
func (m *MemRelation) NumRows() int { return len(m.rows) }

// Cell implements Relation.
func (m *MemRelation) Cell(row, col int) Value { return m.rows[row][col] }

// LookupIn implements IndexedRelation.
func (m *MemRelation) LookupIn(col int, vals []Value) ([]int, bool) {
	idx, ok := m.indexes[col]
	if !ok {
		return nil, false
	}
	var out []int
	for _, v := range vals {
		out = append(out, idx[v.GroupKey()]...)
	}
	sort.Ints(out)
	// Deduplicate (duplicate literals in the IN list).
	out = dedupSortedInts(out)
	return out, true
}

func dedupSortedInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
