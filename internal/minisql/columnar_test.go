package minisql

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential testing of the columnar executor against the frozen
// row-at-a-time reference (rowexec.go): every query must produce
// cell-identical results through both pipelines. Queries without ORDER BY
// are included deliberately — both executors emit rows in the same
// deterministic first-seen order, and the comparison pins that.

// compareExecutors runs sql through both executors and requires identical
// headers, row counts, and cells.
func compareExecutors(t *testing.T, cat *Catalog, sql string) {
	t.Helper()
	col, cerr := ExecSQL(cat, sql)
	row, rerr := ExecSQLRowAtATime(cat, sql)
	if (cerr != nil) != (rerr != nil) {
		t.Fatalf("%s:\n columnar err = %v\n row-at-a-time err = %v", sql, cerr, rerr)
	}
	if cerr != nil {
		return // both failed identically enough
	}
	if got, want := col.NumRows(), row.NumRows(); got != want {
		t.Fatalf("%s:\n columnar %d rows, row-at-a-time %d rows", sql, got, want)
	}
	if got, want := len(col.Columns()), len(row.Columns()); got != want {
		t.Fatalf("%s:\n columnar %d cols, row-at-a-time %d cols", sql, got, want)
	}
	for c, name := range col.Columns() {
		if row.Columns()[c] != name {
			t.Fatalf("%s:\n column %d named %q vs %q", sql, c, name, row.Columns()[c])
		}
	}
	for r := 0; r < col.NumRows(); r++ {
		for c := range col.Columns() {
			g, w := col.Cell(r, c), row.Cell(r, c)
			if g.IsNull() != w.IsNull() || (!g.IsNull() && g.GroupKey() != w.GroupKey()) {
				t.Fatalf("%s:\n cell (%d,%d): columnar %v, row-at-a-time %v", sql, r, c, g, w)
			}
		}
	}
}

// TestColumnarMatchesRowAtATimeCorpus covers every operator the executor
// implements with a fixed query corpus: scans (index and full), filters,
// projections with expressions, DISTINCT, implicit and grouped
// aggregation with HAVING, ORDER BY with LIMIT pushdown, hash joins with
// residuals, nested-loop joins, and subqueries.
func TestColumnarMatchesRowAtATimeCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := genRel(rng)
	cat := catWith("r", m)
	corpus := []string{
		"SELECT * FROM r",
		"SELECT s FROM r",
		"SELECT s, i, f FROM r WHERE s IN ('red', 'blue', '42')",
		"SELECT i, f FROM r WHERE i >= 0 AND f < 20",
		"SELECT * FROM r WHERE s IS NULL OR i IS NOT NULL",
		"SELECT i + f AS x, ABS(i) FROM r WHERE f IS NOT NULL ORDER BY x DESC LIMIT 5",
		"SELECT i FROM r ORDER BY i ASC",
		"SELECT DISTINCT s FROM r",
		"SELECT DISTINCT s FROM r ORDER BY s ASC LIMIT 3",
		"SELECT COUNT(*) FROM r",
		"SELECT COUNT(*), COUNT(i), SUM(i), AVG(f), MIN(i), MAX(f) FROM r WHERE i <> 3",
		"SELECT s, COUNT(*) AS c, SUM(i) FROM r GROUP BY s ORDER BY c DESC, s ASC",
		"SELECT s, COUNT(DISTINCT i) AS d FROM r GROUP BY s HAVING COUNT(*) > 1 ORDER BY d DESC LIMIT 2",
		"SELECT s, i FROM r WHERE i % 2 = 0 ORDER BY s DESC, i ASC LIMIT 7",
		"SELECT a.s, a.i, b.f FROM (SELECT * FROM r WHERE i >= 0) AS a" +
			" INNER JOIN (SELECT * FROM r WHERE f IS NOT NULL) AS b ON a.s = b.s",
		"SELECT a.s, b.i FROM (SELECT * FROM r WHERE i >= -5) AS a" +
			" INNER JOIN (SELECT * FROM r) AS b ON a.s = b.s AND a.i < b.i ORDER BY a.s ASC, b.i ASC",
		"SELECT a.i, b.i FROM (SELECT * FROM r WHERE i > 2) AS a" +
			" INNER JOIN (SELECT * FROM r WHERE i < 2) AS b ON a.i > b.i LIMIT 20",
		"SELECT t.s, COUNT(*) FROM (SELECT s, i FROM r WHERE i IS NOT NULL) AS t GROUP BY t.s",
	}
	for _, sql := range corpus {
		compareExecutors(t, cat, sql)
	}
}

// TestColumnarMatchesRowAtATimeRandom fuzzes the pair over random
// relations, predicates, and query shapes.
func TestColumnarMatchesRowAtATimeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	shapes := []string{
		"SELECT s, i, f FROM r WHERE %s",
		"SELECT i, f FROM r WHERE %s ORDER BY i DESC, f ASC LIMIT 4",
		"SELECT DISTINCT s FROM r WHERE %s",
		"SELECT s, COUNT(*) AS c, SUM(i) FROM r WHERE %s GROUP BY s ORDER BY c DESC, s ASC",
		"SELECT COUNT(*), MIN(f), MAX(i) FROM r WHERE %s",
	}
	for trial := 0; trial < 150; trial++ {
		m := genRel(rng)
		cat := catWith("r", m)
		pred := genPredicate(rng, 2)
		shape := shapes[rng.Intn(len(shapes))]
		compareExecutors(t, cat, fmt.Sprintf(shape, pred))
	}
}

// benchQueries is the ablation workload: the three shapes the seekers'
// generated SQL exercises — filtered scan + projection, subquery hash
// join, and grouped aggregation with a pushed LIMIT.
func benchQueries(b *testing.B) (*Catalog, []*Query) {
	b.Helper()
	m := benchRelation(20000)
	cat := catWith("r", m)
	sqls := []string{
		"SELECT v, n FROM r WHERE v IN (" + inList(64) + ")",
		"SELECT a.n FROM (SELECT * FROM r WHERE v IN (" + inList(32) + ")) AS a" +
			" INNER JOIN (SELECT * FROM r WHERE v IN (" + inList(32) + ")) AS b ON a.n = b.n",
		"SELECT v, COUNT(*), SUM(n) FROM r GROUP BY v ORDER BY COUNT(*) DESC LIMIT 10",
	}
	qs := make([]*Query, len(sqls))
	for i, sql := range sqls {
		q, err := Parse(sql)
		if err != nil {
			b.Fatal(err)
		}
		qs[i] = q
	}
	return cat, qs
}

// BenchmarkMinisqlColumnar / BenchmarkMinisqlRowAtATime is the honest A/B
// pair behind BENCH.json's minisql_columnar_speedup: the same pre-parsed
// workload through the live columnar executor and the frozen row-at-a-time
// reference. The headline metric is the allocation reduction.
func BenchmarkMinisqlColumnar(b *testing.B) {
	cat, qs := benchQueries(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := Exec(cat, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMinisqlRowAtATime(b *testing.B) {
	cat, qs := benchQueries(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := execRow(cat, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}
