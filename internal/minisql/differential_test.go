package minisql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Differential testing: random single-table queries run through the full
// engine (with index access paths and the memoized IN fast path) must
// agree with a naive reference evaluation that scans and filters by
// directly interpreting the AST.

// genRel builds a random relation over columns s (string), i (int),
// f (float) with occasional NULLs, plus a value index on s.
func genRel(rng *rand.Rand) *MemRelation {
	m := NewMemRelation("s", "i", "f")
	vocab := []string{"red", "green", "blue", "cyan", "42", "7"}
	rows := 5 + rng.Intn(40)
	for r := 0; r < rows; r++ {
		var sv, iv, fv Value
		if rng.Intn(10) == 0 {
			sv = Null
		} else {
			sv = Str(vocab[rng.Intn(len(vocab))])
		}
		if rng.Intn(10) == 0 {
			iv = Null
		} else {
			iv = Int(int64(rng.Intn(20) - 10))
		}
		if rng.Intn(10) == 0 {
			fv = Null
		} else {
			fv = Float(float64(rng.Intn(100)) / 4)
		}
		m.Append(sv, iv, fv)
	}
	m.BuildIndex(0)
	return m
}

// genPredicate builds a random WHERE clause as SQL text.
func genPredicate(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		// Leaf predicate.
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("s IN (%s)", genStrList(rng))
		case 1:
			return fmt.Sprintf("s NOT IN (%s)", genStrList(rng))
		case 2:
			return fmt.Sprintf("i %s %d", genCmpOp(rng), rng.Intn(20)-10)
		case 3:
			return fmt.Sprintf("f %s %g", genCmpOp(rng), float64(rng.Intn(100))/4)
		case 4:
			if rng.Intn(2) == 0 {
				return "s IS NULL"
			}
			return "i IS NOT NULL"
		default:
			return fmt.Sprintf("i IN (%d, %d)", rng.Intn(10)-5, rng.Intn(10)-5)
		}
	}
	l := genPredicate(rng, depth-1)
	r := genPredicate(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return "(" + l + " AND " + r + ")"
	case 1:
		return "(" + l + " OR " + r + ")"
	default:
		return "NOT " + l
	}
}

func genStrList(rng *rand.Rand) string {
	vocab := []string{"red", "green", "blue", "42", "nope"}
	n := 1 + rng.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = "'" + vocab[rng.Intn(len(vocab))] + "'"
	}
	return strings.Join(parts, ", ")
}

func genCmpOp(rng *rand.Rand) string {
	return []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)]
}

// referenceFilter evaluates the WHERE AST against every row with a direct
// call to eval — no index paths, no projections, no caches beyond what a
// fresh parse provides.
func referenceFilter(t *testing.T, m *MemRelation, where Expr) []int {
	t.Helper()
	src := &rowResult{cols: m.cols, quals: make([]string, len(m.cols)), rows: m.rows}
	ctx := &evalCtx{res: src}
	var keep []int
	for r := range m.rows {
		ctx.row = r
		v, err := eval(where, ctx)
		if err != nil {
			t.Fatalf("reference eval: %v", err)
		}
		if v.Truthy() {
			keep = append(keep, r)
		}
	}
	return keep
}

func TestDifferentialWhere(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		m := genRel(rng)
		pred := genPredicate(rng, 2)
		sql := "SELECT s, i, f FROM r WHERE " + pred
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		// Engine result (index paths + IN memoization).
		res, err := Exec(catWith("r", m), q)
		if err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
		// Reference result from a *fresh* parse (no shared caches).
		q2, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFilter(t, m, q2.Where)
		if res.NumRows() != len(want) {
			t.Fatalf("trial %d: engine %d rows, reference %d rows\nquery: %s",
				trial, res.NumRows(), len(want), sql)
		}
		for i, r := range want {
			for c := 0; c < 3; c++ {
				got, exp := res.Cell(i, c), m.rows[r][c]
				if got.IsNull() != exp.IsNull() || (!got.IsNull() && !got.Equal(exp) && got.GroupKey() != exp.GroupKey()) {
					t.Fatalf("trial %d row %d col %d: %v != %v (query %s)",
						trial, i, c, got, exp, sql)
				}
			}
		}
	}
}

// TestDifferentialAggregates compares grouped aggregates against manual
// accumulation.
func TestDifferentialAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 50; trial++ {
		m := genRel(rng)
		res, err := ExecSQL(catWith("r", m),
			"SELECT s, COUNT(*), COUNT(i), SUM(i) FROM r GROUP BY s ORDER BY s")
		if err != nil {
			t.Fatal(err)
		}
		type agg struct {
			count, countI, sumI int64
		}
		ref := map[string]*agg{}
		for _, row := range m.rows {
			k := row[0].GroupKey()
			a := ref[k]
			if a == nil {
				a = &agg{}
				ref[k] = a
			}
			a.count++
			if !row[1].IsNull() {
				a.countI++
				a.sumI += row[1].I
			}
		}
		if res.NumRows() != len(ref) {
			t.Fatalf("trial %d: %d groups, want %d", trial, res.NumRows(), len(ref))
		}
		for i := 0; i < res.NumRows(); i++ {
			k := res.Cell(i, 0).GroupKey()
			a := ref[k]
			if a == nil {
				t.Fatalf("trial %d: unexpected group %v", trial, res.Cell(i, 0))
			}
			c, _ := res.Cell(i, 1).AsInt()
			ci, _ := res.Cell(i, 2).AsInt()
			if c != a.count || ci != a.countI {
				t.Fatalf("trial %d group %v: counts %d/%d want %d/%d",
					trial, res.Cell(i, 0), c, ci, a.count, a.countI)
			}
			if a.countI > 0 {
				si, _ := res.Cell(i, 3).AsInt()
				if si != a.sumI {
					t.Fatalf("trial %d group %v: sum %d want %d", trial, res.Cell(i, 0), si, a.sumI)
				}
			} else if !res.Cell(i, 3).IsNull() {
				t.Fatalf("trial %d group %v: SUM over no values must be NULL", trial, res.Cell(i, 0))
			}
		}
	}
}

// TestDifferentialOrderLimit compares ORDER BY … LIMIT against reference
// sorting.
func TestDifferentialOrderLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		m := genRel(rng)
		k := 1 + rng.Intn(5)
		res, err := ExecSQL(catWith("r", m),
			fmt.Sprintf("SELECT i FROM r WHERE i IS NOT NULL ORDER BY i DESC LIMIT %d", k))
		if err != nil {
			t.Fatal(err)
		}
		var all []int64
		for _, row := range m.rows {
			if !row[1].IsNull() {
				all = append(all, row[1].I)
			}
		}
		// Reference: selection sort the top k.
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j] > all[i] {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		want := len(all)
		if k < want {
			want = k
		}
		if res.NumRows() != want {
			t.Fatalf("trial %d: rows %d want %d", trial, res.NumRows(), want)
		}
		for i := 0; i < want; i++ {
			if got, _ := res.Cell(i, 0).AsInt(); got != all[i] {
				t.Fatalf("trial %d rank %d: %d want %d", trial, i, got, all[i])
			}
		}
	}
}
