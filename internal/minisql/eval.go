package minisql

import "math"

// evalSrc is the surface the evaluator reads rows through. The columnar
// executor's *Result implements it over column vectors; the scan and join
// operators implement it over single-row staging buffers so predicates run
// before any output materialization; the frozen row-at-a-time reference
// executor implements it over row slices.
type evalSrc interface {
	// NumRows bounds the implicit aggregation group.
	NumRows() int
	// at returns the value at (row, col) without bounds or NULL-column
	// checks beyond what the implementation needs.
	at(row, col int) Value
	// resolve finds the position of a (possibly qualified) column name.
	resolve(qual, name string) (int, error)
}

// evalCtx carries the row (or group of rows) an expression is evaluated
// against, plus name resolution.
type evalCtx struct {
	res evalSrc
	// row is the current row for scalar contexts.
	row int
	// group, when non-nil, holds the row positions of the current group;
	// aggregates range over it and bare column references bind to its
	// first row.
	group []int
	// aliases maps select-list aliases to their expressions, used when
	// ORDER BY or GROUP BY names an output column.
	aliases map[string]Expr
}

func (c *evalCtx) firstRow() int {
	if c.group != nil {
		if len(c.group) == 0 {
			return -1
		}
		return c.group[0]
	}
	return c.row
}

// eval evaluates e in ctx.
func eval(e Expr, ctx *evalCtx) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.V, nil
	case *ColRef:
		if x.Qual == "" && ctx.aliases != nil {
			if ae, ok := ctx.aliases[x.Name]; ok {
				// Alias bodies are evaluated in the same context but must
				// not recurse through aliases again (SQL aliases cannot be
				// self-referential in this dialect).
				sub := *ctx
				sub.aliases = nil
				return eval(ae, &sub)
			}
		}
		col, err := ctx.res.resolve(x.Qual, x.Name)
		if err != nil {
			return Null, err
		}
		r := ctx.firstRow()
		if r < 0 {
			return Null, nil
		}
		return ctx.res.at(r, col), nil
	case *Bin:
		return evalBin(x, ctx)
	case *Un:
		v, err := eval(x.X, ctx)
		if err != nil {
			return Null, err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return Null, nil
			}
			return Bool(!v.Truthy()), nil
		}
		// Numeric negation.
		if v.IsNull() {
			return Null, nil
		}
		if v.K == KInt {
			return Int(-v.I), nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return Null, errorf("cannot negate %v", v)
		}
		return Float(-f), nil
	case *In:
		return evalIn(x, ctx)
	case *IsNull:
		v, err := eval(x.X, ctx)
		if err != nil {
			return Null, err
		}
		return Bool(v.IsNull() != x.Neg), nil
	case *Cast:
		v, err := eval(x.X, ctx)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		if x.Type == "int" {
			i, ok := v.AsInt()
			if !ok {
				return Null, errorf("cannot cast %v to int", v)
			}
			return Int(i), nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return Null, errorf("cannot cast %v to float", v)
		}
		return Float(f), nil
	case *Call:
		return evalCall(x, ctx)
	}
	return Null, errorf("unsupported expression %T", e)
}

func evalBin(b *Bin, ctx *evalCtx) (Value, error) {
	switch b.Op {
	case "AND":
		l, err := eval(b.L, ctx)
		if err != nil {
			return Null, err
		}
		if !l.Truthy() {
			return Bool(false), nil
		}
		r, err := eval(b.R, ctx)
		if err != nil {
			return Null, err
		}
		return Bool(r.Truthy()), nil
	case "OR":
		l, err := eval(b.L, ctx)
		if err != nil {
			return Null, err
		}
		if l.Truthy() {
			return Bool(true), nil
		}
		r, err := eval(b.R, ctx)
		if err != nil {
			return Null, err
		}
		return Bool(r.Truthy()), nil
	}
	l, err := eval(b.L, ctx)
	if err != nil {
		return Null, err
	}
	r, err := eval(b.R, ctx)
	if err != nil {
		return Null, err
	}
	switch b.Op {
	case "=", "<>":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		eq := l.Equal(r)
		if b.Op == "<>" {
			eq = !eq
		}
		return Bool(eq), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c := l.Compare(r)
		var ok bool
		switch b.Op {
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return Bool(ok), nil
	case "+", "-", "*", "/", "%":
		return evalArith(b.Op, l, r)
	}
	return Null, errorf("unsupported operator %q", b.Op)
}

// evalArith implements SQL arithmetic. Unlike PostgreSQL, "/" always
// divides as float: the paper's QCR formula (2·SUM−COUNT)/COUNT relies on a
// cast in the original SQL; float division keeps the formula exact without
// sprinkling casts through generated queries.
func evalArith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}
	if op == "%" {
		a, aok := l.AsInt()
		b, bok := r.AsInt()
		if !aok || !bok || b == 0 {
			return Null, nil
		}
		return Int(a % b), nil
	}
	bothInt := l.K == KInt && r.K == KInt
	a, aok := l.AsFloat()
	b, bok := r.AsFloat()
	if !aok || !bok {
		return Null, errorf("non-numeric operand for %q: %v, %v", op, l, r)
	}
	switch op {
	case "+":
		if bothInt {
			return Int(l.I + r.I), nil
		}
		return Float(a + b), nil
	case "-":
		if bothInt {
			return Int(l.I - r.I), nil
		}
		return Float(a - b), nil
	case "*":
		if bothInt {
			return Int(l.I * r.I), nil
		}
		return Float(a * b), nil
	case "/":
		if b == 0 {
			return Null, nil
		}
		return Float(a / b), nil
	}
	return Null, errorf("unsupported arithmetic %q", op)
}

func evalIn(in *In, ctx *evalCtx) (Value, error) {
	v, err := eval(in.X, ctx)
	if err != nil {
		return Null, err
	}
	if v.IsNull() {
		return Null, nil
	}
	if !in.litSetInit {
		in.litSetInit = true
		allLit := true
		for _, le := range in.List {
			if _, ok := le.(*Lit); !ok {
				allLit = false
				break
			}
		}
		if allLit {
			in.litSet = make(map[string]struct{}, len(in.List))
			for _, le := range in.List {
				lv := le.(*Lit).V
				in.litSet[lv.GroupKey()] = struct{}{}
				switch {
				case lv.K == KStr:
					if _, ok := lv.AsFloat(); ok {
						in.litSetNumStr = true
					}
				case lv.K != KNull:
					in.litSetNums = true
				}
			}
		}
	}
	if in.litSet != nil {
		// Hash probe. GroupKey canonicalizes all numeric kinds, so the
		// probe decides membership exactly unless string/number coercion
		// could still apply — then fall through to the Equal scan.
		if _, ok := in.litSet[v.GroupKey()]; ok {
			return Bool(!in.Neg), nil
		}
		mixedPossible := false
		if v.K == KStr {
			if _, numeric := v.AsFloat(); numeric && in.litSetNums {
				mixedPossible = true
			}
		} else if in.litSetNumStr {
			mixedPossible = true
		}
		if !mixedPossible {
			return Bool(in.Neg), nil
		}
	}
	found := false
	for _, le := range in.List {
		lv, err := eval(le, ctx)
		if err != nil {
			return Null, err
		}
		if v.Equal(lv) {
			found = true
			break
		}
	}
	return Bool(found != in.Neg), nil
}

func evalCall(c *Call, ctx *evalCtx) (Value, error) {
	if !aggregateFns[c.Fn] {
		// Scalar function.
		v, err := eval(c.Args[0], ctx)
		if err != nil {
			return Null, err
		}
		switch c.Fn {
		case "ABS":
			if v.IsNull() {
				return Null, nil
			}
			if v.K == KInt {
				if v.I < 0 {
					return Int(-v.I), nil
				}
				return v, nil
			}
			f, ok := v.AsFloat()
			if !ok {
				return Null, errorf("ABS of non-numeric %v", v)
			}
			return Float(math.Abs(f)), nil
		}
		return Null, errorf("unknown function %s", c.Fn)
	}
	// Aggregate: needs a group context; outside GROUP BY the whole result
	// is one implicit group.
	group := ctx.group
	if group == nil {
		group = make([]int, ctx.res.NumRows())
		for i := range group {
			group[i] = i
		}
	}
	if c.Fn == "COUNT" && c.Star {
		return Int(int64(len(group))), nil
	}
	arg := c.Args[0]
	rowCtx := &evalCtx{res: ctx.res, aliases: ctx.aliases}
	switch c.Fn {
	case "COUNT":
		if c.Distinct {
			seen := make(map[string]struct{})
			for _, r := range group {
				rowCtx.row = r
				v, err := eval(arg, rowCtx)
				if err != nil {
					return Null, err
				}
				if v.IsNull() {
					continue
				}
				seen[v.GroupKey()] = struct{}{}
			}
			return Int(int64(len(seen))), nil
		}
		n := int64(0)
		for _, r := range group {
			rowCtx.row = r
			v, err := eval(arg, rowCtx)
			if err != nil {
				return Null, err
			}
			if !v.IsNull() {
				n++
			}
		}
		return Int(n), nil
	case "SUM", "AVG":
		var sum float64
		n := 0
		allInt := true
		var isum int64
		for _, r := range group {
			rowCtx.row = r
			v, err := eval(arg, rowCtx)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				continue
			}
			f, ok := v.AsFloat()
			if !ok {
				return Null, errorf("%s of non-numeric %v", c.Fn, v)
			}
			if v.K == KInt || v.K == KBool {
				iv, _ := v.AsInt()
				isum += iv
			} else {
				allInt = false
			}
			sum += f
			n++
		}
		if n == 0 {
			return Null, nil
		}
		if c.Fn == "AVG" {
			return Float(sum / float64(n)), nil
		}
		if allInt {
			return Int(isum), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		var best Value
		first := true
		for _, r := range group {
			rowCtx.row = r
			v, err := eval(arg, rowCtx)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				continue
			}
			if first {
				best = v
				first = false
				continue
			}
			cv := v.Compare(best)
			if (c.Fn == "MIN" && cv < 0) || (c.Fn == "MAX" && cv > 0) {
				best = v
			}
		}
		if first {
			return Null, nil
		}
		return best, nil
	}
	return Null, errorf("unknown aggregate %s", c.Fn)
}
