package minisql

import (
	"strings"
	"testing"
)

// evalOne parses `SELECT <expr> FROM t LIMIT 1` over a one-row relation
// and returns the value.
func evalOne(t *testing.T, expr string) Value {
	t.Helper()
	m := NewMemRelation("a", "b", "s", "n")
	m.Append(Int(2), Int(3), Str("hello"), Null)
	cat := catWith("t", m)
	res, err := ExecSQL(cat, "SELECT "+expr+" FROM t")
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return res.Cell(0, 0)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"1 + 2", Int(3)},
		{"a + b", Int(5)},
		{"a - b", Int(-1)},
		{"a * b", Int(6)},
		{"7 / 2", Float(3.5)},
		{"7 % 2", Int(1)},
		{"1.5 + 1", Float(2.5)},
		{"-a", Int(-2)},
		{"-(a + b)", Int(-5)},
		{"2 * 3 - 1", Int(5)},
		{"2 + 3 * 4", Int(14)},
		{"(2 + 3) * 4", Int(20)},
		{"ABS(a - b)", Int(1)},
		{"ABS(0 - 1.5)", Float(1.5)},
	}
	for _, c := range cases {
		got := evalOne(t, c.expr)
		if got.K != c.want.K || !got.Equal(c.want) {
			t.Errorf("%q = %#v, want %#v", c.expr, got, c.want)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	for _, expr := range []string{"n + 1", "n * 2", "-n", "1 / 0", "n = 1", "n < 1", "ABS(n)", "n::int", "7 % 0"} {
		if got := evalOne(t, expr); !got.IsNull() {
			t.Errorf("%q = %v, want NULL", expr, got)
		}
	}
	// IS NULL / IS NOT NULL are the only null-aware predicates.
	if got := evalOne(t, "n IS NULL"); !got.B {
		t.Error("n IS NULL should be true")
	}
	if got := evalOne(t, "a IS NOT NULL"); !got.B {
		t.Error("a IS NOT NULL should be true")
	}
}

func TestLogic(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"TRUE AND TRUE", true},
		{"TRUE AND FALSE", false},
		{"FALSE OR TRUE", true},
		{"NOT FALSE", true},
		{"a = 2 AND b = 3", true},
		{"a = 2 OR b = 99", true},
		{"NOT a = 2", false},
		{"a <> b", true},
		{"a <= 2 AND a >= 2", true},
		{"s = 'hello'", true},
		{"s < 'world'", true},
	}
	for _, c := range cases {
		got := evalOne(t, c.expr)
		if got.K != KBool || got.B != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestInSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"a IN (1, 2, 3)", true},
		{"a IN (4, 5)", false},
		{"a NOT IN (4, 5)", true},
		{"s IN ('hello', 'x')", true},
		{"s NOT IN ('hello')", false},
		// Cross-kind coercion: the numeric string '2' matches column a=2.
		{"a IN ('2')", true},
		{"s IN (1, 2)", false},
		{"a IN ()", false},
		{"a NOT IN ()", true},
	}
	for _, c := range cases {
		got := evalOne(t, c.expr)
		if got.K != KBool || got.B != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
	// NULL probe yields NULL (falsy), for IN and NOT IN alike.
	if got := evalOne(t, "n IN (1)"); !got.IsNull() {
		t.Error("NULL IN (…) must be NULL")
	}
	if got := evalOne(t, "n NOT IN (1)"); !got.IsNull() {
		t.Error("NULL NOT IN (…) must be NULL")
	}
}

// TestInHashMatchesScan cross-checks the memoized literal-set fast path
// against fresh scans: the same IN expression evaluated twice (second time
// using the cached set) must agree, across kind mixes.
func TestInHashMatchesScan(t *testing.T) {
	m := NewMemRelation("v")
	probes := []Value{Int(5), Float(5), Str("5"), Str("5.0"), Str("abc"), Bool(true), Int(1), Null}
	for _, p := range probes {
		m.Append(p)
	}
	cat := catWith("t", m)
	for _, list := range []string{"(5)", "('5')", "(5.0)", "(1, 'abc')", "(TRUE)", "('5.0')"} {
		sql := "SELECT v IN " + list + " FROM t"
		r1, err := ExecSQL(cat, sql)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ExecSQL(cat, sql) // fresh parse, fresh cache
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < r1.NumRows(); i++ {
			a, b := r1.Cell(i, 0), r2.Cell(i, 0)
			if a.K != b.K || a.B != b.B {
				t.Fatalf("IN %s row %d: %v vs %v", list, i, a, b)
			}
			// Reference: brute-force Equal over the literal list.
			q, _ := Parse(sql)
			in := q.Select[0].Expr.(*In)
			want := false
			probe := probes[i]
			if !probe.IsNull() {
				for _, le := range in.List {
					if probe.Equal(le.(*Lit).V) {
						want = true
					}
				}
				if a.K != KBool || a.B != want {
					t.Fatalf("IN %s probe %v: got %v, want %v", list, probe, a, want)
				}
			}
		}
	}
}

func TestCastSemantics(t *testing.T) {
	if got := evalOne(t, "(a = 2)::int"); got.K != KInt || got.I != 1 {
		t.Fatalf("bool cast = %#v", got)
	}
	if got := evalOne(t, "(a = 99)::int"); got.I != 0 {
		t.Fatalf("false cast = %#v", got)
	}
	if got := evalOne(t, "a::float"); got.K != KFloat || got.F != 2 {
		t.Fatalf("float cast = %#v", got)
	}
	if got := evalOne(t, "'3'::int"); got.K != KInt || got.I != 3 {
		t.Fatalf("string cast = %#v", got)
	}
	if _, err := ExecSQL(catWith("t", NewMemRelation("v")), "SELECT 's'::int FROM t"); err != nil {
		t.Fatal("cast error on empty relation should not fire (no rows)")
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	m := NewMemRelation("v")
	for _, s := range []string{"pear", "apple", "quince"} {
		m.Append(Str(s))
	}
	res, err := ExecSQL(catWith("t", m), "SELECT MIN(v), MAX(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).S != "apple" || res.Cell(0, 1).S != "quince" {
		t.Fatalf("min/max = %v %v", res.Cell(0, 0), res.Cell(0, 1))
	}
}

func TestAvgMixedIntFloat(t *testing.T) {
	m := NewMemRelation("v")
	m.Append(Int(1))
	m.Append(Float(2.5))
	m.Append(Null) // ignored
	res, err := ExecSQL(catWith("t", m), "SELECT AVG(v), SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).F != 1.75 {
		t.Fatalf("avg = %v", res.Cell(0, 0))
	}
	if res.Cell(0, 1).F != 3.5 {
		t.Fatalf("sum = %v", res.Cell(0, 1))
	}
}

func TestGroupByAlias(t *testing.T) {
	m := NewMemRelation("v", "n")
	m.Append(Str("x"), Int(1))
	m.Append(Str("x"), Int(2))
	m.Append(Str("y"), Int(3))
	res, err := ExecSQL(catWith("t", m),
		"SELECT v AS grp, SUM(n) AS total FROM t GROUP BY grp ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.Cell(0, 0).S != "x" || res.Cell(0, 1).I != 3 {
		t.Fatalf("grouped = %v %v", res.Cell(0, 0), res.Cell(0, 1))
	}
}

func TestAggregateInsideExpression(t *testing.T) {
	m := NewMemRelation("q", "v")
	// Mirror the QCR score shape: (2*SUM(cond::int) - COUNT(*)) / COUNT(*).
	m.Append(Int(1), Int(1))
	m.Append(Int(1), Int(1))
	m.Append(Int(0), Int(1))
	m.Append(Int(0), Int(1))
	res, err := ExecSQL(catWith("t", m),
		"SELECT (2 * SUM((q = 1)::int) - COUNT(*)) / COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cell(0, 0).F != 0 { // 2 agree of 4 → QCR 0
		t.Fatalf("qcr = %v", res.Cell(0, 0))
	}
}

func TestErrorMessagesActionable(t *testing.T) {
	m := NewMemRelation("v")
	m.Append(Str("x")) // name resolution happens per row; need one
	cat := catWith("t", m)
	_, err := ExecSQL(cat, "SELECT missing FROM t")
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v", err)
	}
	_, err = ExecSQL(cat, "SELECT v FROM ghost")
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v", err)
	}
}
