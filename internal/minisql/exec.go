package minisql

import (
	"sort"
	"strings"
)

// Result is a materialized query result. It implements Relation, so results
// can feed further queries.
type Result struct {
	cols  []string
	quals []string
	rows  [][]Value
}

// Columns implements Relation.
func (r *Result) Columns() []string { return r.cols }

// NumRows implements Relation.
func (r *Result) NumRows() int { return len(r.rows) }

// Cell implements Relation.
func (r *Result) Cell(row, col int) Value { return r.rows[row][col] }

// Row returns the raw values of one result row (shared, do not modify).
func (r *Result) Row(row int) []Value { return r.rows[row] }

// resolve finds the position of a (possibly qualified) column name,
// case-insensitively. Unqualified names matching several columns are
// ambiguous unless all matches share the position.
func (r *Result) resolve(qual, name string) (int, error) {
	found := -1
	for i := range r.cols {
		if !strings.EqualFold(r.cols[i], name) {
			continue
		}
		if qual != "" && !strings.EqualFold(r.quals[i], qual) {
			continue
		}
		if found >= 0 {
			return 0, errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, errorf("unknown column %s.%s", qual, name)
		}
		return 0, errorf("unknown column %s", name)
	}
	return found, nil
}

// MergeResults concatenates partial results produced by executing the same
// statement against disjoint partitions of a relation (the engine's sharded
// scan path). Rows are appended in argument order, so a deterministic shard
// order yields a deterministic merged result; callers re-apply any ORDER BY
// / LIMIT semantics across partitions themselves. Nil parts are skipped;
// merging zero non-nil parts returns an empty result.
func MergeResults(parts ...*Result) *Result {
	merged := &Result{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if merged.cols == nil {
			merged.cols = p.cols
			merged.quals = p.quals
		}
		merged.rows = append(merged.rows, p.rows...)
	}
	return merged
}

// ExecSQL parses and executes a statement against the catalog.
func ExecSQL(cat *Catalog, sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Exec(cat, q)
}

// Exec executes a parsed query against the catalog.
func Exec(cat *Catalog, q *Query) (*Result, error) {
	src, err := execSource(cat, q)
	if err != nil {
		return nil, err
	}
	needsAgg := len(q.GroupBy) > 0
	if !needsAgg {
		for _, it := range q.Select {
			if hasAggregate(it.Expr) {
				needsAgg = true
				break
			}
		}
	}
	var out *Result
	if needsAgg {
		out, err = execAggregate(q, src)
	} else {
		out, err = execProject(q, src)
	}
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		out.rows = dedupeRows(out.rows)
	}
	if q.Limit >= 0 && len(out.rows) > q.Limit {
		out.rows = out.rows[:q.Limit]
	}
	return out, nil
}

// dedupeRows removes duplicate output rows (SELECT DISTINCT), keeping the
// first occurrence so ORDER BY ranking is preserved. Keys are built in one
// reused buffer; only first-seen rows pay a key-string allocation (map
// lookups with string(kb) convert without allocating).
func dedupeRows(rows [][]Value) [][]Value {
	if len(rows) == 0 {
		return rows
	}
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	var kb []byte
	for _, row := range rows {
		kb = kb[:0]
		for _, v := range row {
			kb = v.AppendGroupKey(kb)
			kb = append(kb, 0x1f)
		}
		if _, dup := seen[string(kb)]; dup {
			continue
		}
		seen[string(kb)] = struct{}{}
		out = append(out, row)
	}
	return out
}

// execSource evaluates FROM, JOINs, and WHERE, returning the filtered
// source relation with qualified columns.
func execSource(cat *Catalog, q *Query) (*Result, error) {
	if len(q.Joins) == 0 {
		// Projection pushdown: a single-source query only touches the
		// columns it references, so the scan can skip materializing the
		// rest — the physical advantage of the column layout.
		return execFromItem(cat, q.From, q.Where, collectNeeded(q))
	}
	left, err := execFromItem(cat, q.From, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, j := range q.Joins {
		right, err := execFromItem(cat, j.Right, nil, nil)
		if err != nil {
			return nil, err
		}
		left, err = hashJoin(left, right, j.On)
		if err != nil {
			return nil, err
		}
	}
	if q.Where == nil {
		return left, nil
	}
	return filterResult(left, q.Where)
}

// neededCols names the columns a query references; nil means "all".
type neededCols map[string]struct{}

// collectNeeded gathers every column name referenced anywhere in q, or nil
// when SELECT * forces full materialization. Qualifiers are dropped: a
// single-source query has one qualifier, so names suffice.
func collectNeeded(q *Query) neededCols {
	if q.Star {
		return nil
	}
	need := make(neededCols)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *ColRef:
			need[strings.ToLower(x.Name)] = struct{}{}
		case *Bin:
			walk(x.L)
			walk(x.R)
		case *Un:
			walk(x.X)
		case *Cast:
			walk(x.X)
		case *IsNull:
			walk(x.X)
		case *In:
			walk(x.X)
			for _, le := range x.List {
				walk(le)
			}
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	for _, it := range q.Select {
		walk(it.Expr)
	}
	walk(q.Where)
	walk(q.Having)
	for _, g := range q.GroupBy {
		walk(g)
	}
	for _, o := range q.OrderBy {
		walk(o.Expr)
	}
	return need
}

func execFromItem(cat *Catalog, f FromItem, where Expr, need neededCols) (*Result, error) {
	if f.Sub != nil {
		res, err := Exec(cat, f.Sub)
		if err != nil {
			return nil, err
		}
		// Requalify all output columns with the subquery alias.
		quals := make([]string, len(res.cols))
		for i := range quals {
			quals[i] = f.Alias
		}
		res = &Result{cols: res.cols, quals: quals, rows: res.rows}
		if where == nil {
			return res, nil
		}
		return filterResult(res, where)
	}
	rel, ok := cat.Lookup(f.Table)
	if !ok {
		return nil, errorf("unknown relation %q", f.Table)
	}
	qual := f.Alias
	if qual == "" {
		qual = f.Table
	}
	return scanBase(rel, qual, where, need)
}

// scanBase materializes the rows of a base relation that satisfy where,
// using an index access path for `col IN (literals)` conjuncts when the
// relation supports one. When need is non-nil, only the named columns are
// materialized; unreferenced positions stay NULL and are never read from
// the relation (projection pushdown).
func scanBase(rel Relation, qual string, where Expr, need neededCols) (*Result, error) {
	cols := rel.Columns()
	quals := make([]string, len(cols))
	for i := range quals {
		quals[i] = qual
	}
	out := &Result{cols: append([]string(nil), cols...), quals: quals}
	wanted := make([]bool, len(cols))
	for i, c := range cols {
		if need == nil {
			wanted[i] = true
			continue
		}
		_, wanted[i] = need[strings.ToLower(c)]
	}

	var candidates []int
	fullScan := true
	if where != nil {
		if ix, ok := rel.(IndexedRelation); ok {
			if rows, ok := bestIndexPath(ix, cols, qual, where); ok {
				candidates = rows
				fullScan = false
			}
		}
	}

	// Materialization cost control: when the emitted row count is known up
	// front (index access path: the posting lengths bound it; unfiltered
	// scan: the relation size), out.rows gets an exact capacity hint, and
	// row copies are carved out of chunked arenas — one bulk allocation
	// per chunk instead of one per row.
	nc := len(cols)
	expect := -1
	if !fullScan {
		expect = len(candidates)
	} else if where == nil {
		expect = rel.NumRows()
	}
	if expect >= 0 {
		out.rows = make([][]Value, 0, expect)
	}
	const arenaChunkRows = 512
	var arena []Value
	takeRow := func() []Value {
		if len(arena) < nc || nc == 0 {
			chunk := arenaChunkRows
			if expect >= 0 && expect < chunk {
				chunk = expect
			}
			if chunk < 1 {
				chunk = 1
			}
			arena = make([]Value, nc*chunk)
		}
		row := arena[:nc:nc]
		arena = arena[nc:]
		return row
	}

	// Tombstone visibility: rows a Tombstoned relation marks dead are
	// skipped on every access path, so logically deleted data can never
	// satisfy a predicate or reach a result.
	var visible func(int) bool
	if tr, ok := rel.(Tombstoned); ok && tr.HasTombstones() {
		visible = tr.RowVisible
	}

	buf := make([]Value, len(cols))
	scratch := &Result{cols: out.cols, quals: out.quals, rows: [][]Value{buf}}
	ctx := &evalCtx{res: scratch}
	emit := func(r int) error {
		if visible != nil && !visible(r) {
			return nil
		}
		for c := range cols {
			if wanted[c] {
				buf[c] = rel.Cell(r, c)
			} else {
				buf[c] = Null
			}
		}
		if where != nil {
			v, err := eval(where, ctx)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		row := takeRow()
		copy(row, buf)
		out.rows = append(out.rows, row)
		return nil
	}
	if fullScan {
		n := rel.NumRows()
		for r := 0; r < n; r++ {
			if err := emit(r); err != nil {
				return nil, err
			}
		}
	} else {
		for _, r := range candidates {
			if err := emit(r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// bestIndexPath inspects the conjuncts of where for `col IN (lit,…)`
// predicates on indexed columns of rel and returns the smallest candidate
// row set among them.
func bestIndexPath(rel IndexedRelation, cols []string, qual string, where Expr) ([]int, bool) {
	var best []int
	found := false
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Bin:
			if x.Op == "AND" {
				walk(x.L)
				walk(x.R)
				return
			}
			if x.Op != "=" {
				return
			}
			// col = literal is a one-element IN.
			cr, okc := x.L.(*ColRef)
			lit, okl := x.R.(*Lit)
			if !okc || !okl {
				cr, okc = x.R.(*ColRef)
				lit, okl = x.L.(*Lit)
			}
			if !okc || !okl {
				return
			}
			tryIndex(rel, cols, qual, cr, []Value{lit.V}, &best, &found)
		case *In:
			if x.Neg {
				return
			}
			cr, ok := x.X.(*ColRef)
			if !ok {
				return
			}
			vals := make([]Value, 0, len(x.List))
			for _, le := range x.List {
				l, ok := le.(*Lit)
				if !ok {
					return
				}
				vals = append(vals, l.V)
			}
			tryIndex(rel, cols, qual, cr, vals, &best, &found)
		}
	}
	walk(where)
	return best, found
}

func tryIndex(rel IndexedRelation, cols []string, qual string, cr *ColRef, vals []Value, best *[]int, found *bool) {
	if cr.Qual != "" && !strings.EqualFold(cr.Qual, qual) {
		return
	}
	col := -1
	for i, c := range cols {
		if strings.EqualFold(c, cr.Name) {
			col = i
			break
		}
	}
	if col < 0 {
		return
	}
	rows, ok := rel.LookupIn(col, vals)
	if !ok {
		return
	}
	if !*found || len(rows) < len(*best) {
		*best = rows
		*found = true
	}
}

func filterResult(src *Result, where Expr) (*Result, error) {
	out := &Result{cols: src.cols, quals: src.quals}
	ctx := &evalCtx{res: src}
	for r := range src.rows {
		ctx.row = r
		v, err := eval(where, ctx)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			out.rows = append(out.rows, src.rows[r])
		}
	}
	return out, nil
}

// hashJoin executes an inner join. Equality conjuncts between the two
// sides become the hash key; remaining conjuncts are evaluated as a
// residual filter on each joined row.
func hashJoin(left, right *Result, on Expr) (*Result, error) {
	type eqPair struct{ l, r int }
	var eqs []eqPair
	var residual []Expr
	var collect func(e Expr) error
	collect = func(e Expr) error {
		if b, ok := e.(*Bin); ok {
			if b.Op == "AND" {
				if err := collect(b.L); err != nil {
					return err
				}
				return collect(b.R)
			}
			if b.Op == "=" {
				lc, lok := b.L.(*ColRef)
				rc, rok := b.R.(*ColRef)
				if lok && rok {
					li, lerr := left.resolve(lc.Qual, lc.Name)
					ri, rerr := right.resolve(rc.Qual, rc.Name)
					if lerr == nil && rerr == nil {
						eqs = append(eqs, eqPair{li, ri})
						return nil
					}
					// Maybe the sides are swapped.
					li2, lerr2 := left.resolve(rc.Qual, rc.Name)
					ri2, rerr2 := right.resolve(lc.Qual, lc.Name)
					if lerr2 == nil && rerr2 == nil {
						eqs = append(eqs, eqPair{li2, ri2})
						return nil
					}
				}
			}
		}
		residual = append(residual, e)
		return nil
	}
	if err := collect(on); err != nil {
		return nil, err
	}

	out := &Result{
		cols:  append(append([]string(nil), left.cols...), right.cols...),
		quals: append(append([]string(nil), left.quals...), right.quals...),
	}
	var resid Expr
	for _, e := range residual {
		if resid == nil {
			resid = e
		} else {
			resid = &Bin{Op: "AND", L: resid, R: e}
		}
	}
	ctx := &evalCtx{res: out}
	emit := func(lr, rr []Value) error {
		row := make([]Value, 0, len(lr)+len(rr))
		row = append(row, lr...)
		row = append(row, rr...)
		if resid != nil {
			out.rows = append(out.rows, row) // temporarily visible to ctx
			ctx.row = len(out.rows) - 1
			v, err := eval(resid, ctx)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				out.rows = out.rows[:len(out.rows)-1]
			}
			return nil
		}
		out.rows = append(out.rows, row)
		return nil
	}

	if len(eqs) == 0 {
		// Nested loop for pure residual joins (rare in our dialect).
		for lr := range left.rows {
			for rr := range right.rows {
				if err := emit(left.rows[lr], right.rows[rr]); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	// Build on the smaller side, probe with the larger.
	buildLeft := len(left.rows) < len(right.rows)
	build, probe := right, left
	if buildLeft {
		build, probe = left, right
	}
	key := func(res *Result, r int) (string, bool) {
		var sb strings.Builder
		for _, eq := range eqs {
			col := eq.r
			if res == left {
				col = eq.l
			}
			v := res.rows[r][col]
			if v.IsNull() {
				return "", false // NULL never joins
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0x1f)
		}
		return sb.String(), true
	}
	ht := make(map[string][]int, len(build.rows))
	for r := range build.rows {
		if k, ok := key(build, r); ok {
			ht[k] = append(ht[k], r)
		}
	}
	for pr := range probe.rows {
		k, ok := key(probe, pr)
		if !ok {
			continue
		}
		for _, br := range ht[k] {
			lr, rr := pr, br
			if buildLeft {
				lr, rr = br, pr
			}
			if err := emit(left.rows[lr], right.rows[rr]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// execProject evaluates the select list per source row, applies ORDER BY
// (which may reference source columns or select aliases), and returns the
// projected rows.
func execProject(q *Query, src *Result) (*Result, error) {
	aliases := aliasMap(q)
	if q.Star {
		ordered, err := orderRows(q, src, len(src.rows), nil, aliases, pushableLimit(q))
		if err != nil {
			return nil, err
		}
		out := &Result{cols: src.cols, quals: src.quals}
		for _, r := range ordered {
			out.rows = append(out.rows, src.rows[r])
		}
		return out, nil
	}
	cols, quals := outputColumns(q)
	proj := make([][]Value, len(src.rows))
	ctx := &evalCtx{res: src}
	for r := range src.rows {
		ctx.row = r
		row := make([]Value, len(q.Select))
		for i, it := range q.Select {
			v, err := eval(it.Expr, ctx)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		proj[r] = row
	}
	ordered, err := orderRows(q, src, len(src.rows), nil, aliases, pushableLimit(q))
	if err != nil {
		return nil, err
	}
	out := &Result{cols: cols, quals: quals}
	for _, r := range ordered {
		out.rows = append(out.rows, proj[r])
	}
	return out, nil
}

// execAggregate groups source rows by the GROUP BY keys (or one implicit
// group) and evaluates select and order expressions per group.
func execAggregate(q *Query, src *Result) (*Result, error) {
	if q.Star {
		return nil, errorf("SELECT * cannot be combined with aggregation")
	}
	aliases := aliasMap(q)
	ctx := &evalCtx{res: src, aliases: aliases}

	// Form groups preserving first-seen order for determinism.
	var groups [][]int
	if len(q.GroupBy) == 0 {
		groups = [][]int{identityIndices(len(src.rows))}
	} else {
		index := make(map[string]int)
		for r := range src.rows {
			ctx.row = r
			var kb strings.Builder
			for _, ge := range q.GroupBy {
				v, err := eval(ge, ctx)
				if err != nil {
					return nil, err
				}
				kb.WriteString(v.GroupKey())
				kb.WriteByte(0x1f)
			}
			k := kb.String()
			gi, ok := index[k]
			if !ok {
				gi = len(groups)
				index[k] = gi
				groups = append(groups, nil)
			}
			groups[gi] = append(groups[gi], r)
		}
	}

	// HAVING: drop groups whose predicate is not satisfied before
	// projecting and ordering.
	if q.Having != nil {
		kept := groups[:0]
		for _, g := range groups {
			gctx := &evalCtx{res: src, group: g, aliases: aliases}
			v, err := eval(q.Having, gctx)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, g)
			}
		}
		groups = kept
	}

	cols, quals := outputColumns(q)
	out := &Result{cols: cols, quals: quals}
	rows := make([][]Value, len(groups))
	for gi, g := range groups {
		gctx := &evalCtx{res: src, group: g, aliases: aliases}
		row := make([]Value, len(q.Select))
		for i, it := range q.Select {
			v, err := eval(it.Expr, gctx)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rows[gi] = row
	}
	order, err := orderRows(q, src, len(groups), groups, aliases, pushableLimit(q))
	if err != nil {
		return nil, err
	}
	for _, gi := range order {
		out.rows = append(out.rows, rows[gi])
	}
	return out, nil
}

// orderRows returns the permutation of unit indices 0..n-1 sorted by the
// query's ORDER BY keys. In grouped mode groups[i] gives the member rows of
// unit i; otherwise each unit is the source row with the same index.
//
// limit, when in [0, n), is the query's LIMIT: only that many best units
// are selected (with a bounded heap, O(n log limit)) instead of sorting
// all n — the seekers' `ORDER BY overlap DESC … LIMIT k` stops paying a
// full sort of every candidate table to return k of them. limit < 0 (or
// >= n) keeps the full sort.
//
// Ties under the ORDER BY keys break by ascending unit index — the
// first-seen row/group order — which both the full sort and the partial
// selection apply identically, so results are deterministic and
// limit-insensitive. (The seekers' generated SQL additionally orders by
// TableId ASC explicitly; the index tie-break covers every other query.)
func orderRows(q *Query, src *Result, n int, groups [][]int, aliases map[string]Expr, limit int) ([]int, error) {
	if len(q.OrderBy) == 0 {
		return identityIndices(n), nil
	}
	keys := make([][]Value, n)
	flat := make([]Value, n*len(q.OrderBy))
	for unit := 0; unit < n; unit++ {
		ctx := &evalCtx{res: src, aliases: aliases}
		if groups != nil {
			ctx.group = groups[unit]
		} else {
			ctx.row = unit
		}
		ks := flat[unit*len(q.OrderBy) : (unit+1)*len(q.OrderBy)]
		for j, ob := range q.OrderBy {
			v, err := eval(ob.Expr, ctx)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		keys[unit] = ks
	}
	// less is a total order — ORDER BY keys, then unit index — so plain
	// sorting reproduces exactly what a stable sort on the keys alone
	// would, and the heap selection below agrees with the sort.
	less := func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		for j, ob := range q.OrderBy {
			c := ka[j].Compare(kb[j])
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return a < b
	}
	if limit >= 0 && limit < n {
		return selectTopUnits(n, limit, less), nil
	}
	perm := identityIndices(n)
	sort.Slice(perm, func(a, b int) bool { return less(perm[a], perm[b]) })
	return perm, nil
}

// selectTopUnits picks the k first units under less out of 0..n-1 and
// returns them in sorted order, using a bounded max-heap (the root is the
// worst retained unit) so only k units are ever held.
func selectTopUnits(n, k int, less func(a, b int) bool) []int {
	if k == 0 {
		return nil
	}
	h := make([]int, 0, k)
	siftDown := func(i int) {
		for {
			worst := i
			if l := 2*i + 1; l < len(h) && less(h[worst], h[l]) {
				worst = l
			}
			if r := 2*i + 2; r < len(h) && less(h[worst], h[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	for unit := 0; unit < n; unit++ {
		if len(h) < k {
			h = append(h, unit)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !less(h[p], h[i]) {
					break
				}
				h[p], h[i] = h[i], h[p]
				i = p
			}
			continue
		}
		if less(unit, h[0]) {
			h[0] = unit
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// pushableLimit returns the LIMIT that may be pushed into orderRows' unit
// selection. DISTINCT dedupes after ordering, so its queries must keep the
// full order; Exec re-applies LIMIT after projection either way.
func pushableLimit(q *Query) int {
	if q.Distinct {
		return -1
	}
	return q.Limit
}

func aliasMap(q *Query) map[string]Expr {
	m := make(map[string]Expr)
	for _, it := range q.Select {
		if it.Alias != "" {
			m[it.Alias] = it.Expr
		}
	}
	return m
}

func outputColumns(q *Query) (cols, quals []string) {
	cols = make([]string, len(q.Select))
	quals = make([]string, len(q.Select))
	for i, it := range q.Select {
		if it.Alias != "" {
			cols[i] = it.Alias
		} else if cr, ok := it.Expr.(*ColRef); ok {
			cols[i] = cr.Name
		} else {
			cols[i] = it.Expr.String()
		}
	}
	return cols, quals
}

func identityIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
