package minisql

import (
	"sort"
	"strings"
)

// Result is a materialized query result in columnar form: one Value vector
// per output column plus a row count. The batched executor below builds
// these vectors directly — predicates run against single-row staging
// buffers and survivors append column-wise, so a filtered scan allocates a
// handful of vectors instead of one slice per row. It implements Relation,
// so results can feed further queries, and evalSrc, so expressions read it
// directly.
//
// A nil column vector is a NULL column: projection pushdown leaves the
// positions a query never references unmaterialized, and every read path
// treats them as uniformly NULL.
type Result struct {
	cols  []string
	quals []string
	vals  [][]Value // vals[col][row]; nil vector = all-NULL column
	n     int
}

// Columns implements Relation.
func (r *Result) Columns() []string { return r.cols }

// NumRows implements Relation.
func (r *Result) NumRows() int { return r.n }

// Cell implements Relation.
func (r *Result) Cell(row, col int) Value {
	if v := r.vals[col]; v != nil {
		return v[row]
	}
	return Null
}

// at implements evalSrc.
func (r *Result) at(row, col int) Value { return r.Cell(row, col) }

// resolve implements evalSrc.
func (r *Result) resolve(qual, name string) (int, error) {
	return resolveCol(r.cols, r.quals, qual, name)
}

// resolveCol finds the position of a (possibly qualified) column name,
// case-insensitively. Unqualified names matching several columns are
// ambiguous unless all matches share the position.
func resolveCol(cols, quals []string, qual, name string) (int, error) {
	found := -1
	for i := range cols {
		if !strings.EqualFold(cols[i], name) {
			continue
		}
		if qual != "" && !strings.EqualFold(quals[i], qual) {
			continue
		}
		if found >= 0 {
			return 0, errorf("ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, errorf("unknown column %s.%s", qual, name)
		}
		return 0, errorf("unknown column %s", name)
	}
	return found, nil
}

// newResult allocates an empty columnar result with the given header.
func newResult(cols, quals []string) *Result {
	return &Result{cols: cols, quals: quals, vals: make([][]Value, len(cols))}
}

// appendRow appends one staged row, materializing only the columns the
// mask wants (nil mask = all).
func (r *Result) appendRow(buf []Value, wanted []bool) {
	for c := range r.vals {
		if wanted == nil || wanted[c] {
			r.vals[c] = append(r.vals[c], buf[c])
		}
	}
	r.n++
}

// gatherRows materializes the selected rows, in selection order, as a new
// result. NULL columns stay unmaterialized.
func (r *Result) gatherRows(sel []int) *Result {
	out := &Result{cols: r.cols, quals: r.quals, vals: make([][]Value, len(r.vals)), n: len(sel)}
	for c, v := range r.vals {
		if v == nil {
			continue
		}
		g := make([]Value, len(sel))
		for i, row := range sel {
			g[i] = v[row]
		}
		out.vals[c] = g
	}
	return out
}

// truncate returns the first n rows. Column vectors are re-sliced, not
// copied — results are never mutated in place, so sharing is safe.
func (r *Result) truncate(n int) *Result {
	out := &Result{cols: r.cols, quals: r.quals, vals: make([][]Value, len(r.vals)), n: n}
	for c, v := range r.vals {
		if v != nil {
			out.vals[c] = v[:n]
		}
	}
	return out
}

// MergeResults concatenates partial results produced by executing the same
// statement against disjoint partitions of a relation (the engine's sharded
// scan path). Rows are appended in argument order, so a deterministic shard
// order yields a deterministic merged result; callers re-apply any ORDER BY
// / LIMIT semantics across partitions themselves. Nil parts are skipped;
// merging zero non-nil parts returns an empty result.
func MergeResults(parts ...*Result) *Result {
	merged := &Result{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if merged.cols == nil {
			merged.cols = p.cols
			merged.quals = p.quals
			merged.vals = make([][]Value, len(p.cols))
		}
		for c := range merged.vals {
			pv := p.vals[c]
			if pv == nil {
				// A NULL column stays nil until some part materializes the
				// position; then the gap is padded explicitly.
				if merged.vals[c] != nil {
					for i := 0; i < p.n; i++ {
						merged.vals[c] = append(merged.vals[c], Null)
					}
				}
				continue
			}
			if merged.vals[c] == nil && merged.n > 0 {
				pad := make([]Value, merged.n, merged.n+len(pv))
				for i := range pad {
					pad[i] = Null
				}
				merged.vals[c] = pad
			}
			merged.vals[c] = append(merged.vals[c], pv...)
		}
		merged.n += p.n
	}
	return merged
}

// ExecSQL parses and executes a statement against the catalog.
func ExecSQL(cat *Catalog, sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Exec(cat, q)
}

// Exec executes a parsed query against the catalog with the batched
// columnar pipeline. ExecSQLRowAtATime runs the same query through the
// frozen row-at-a-time reference executor (rowexec.go); the two must agree
// exactly.
func Exec(cat *Catalog, q *Query) (*Result, error) {
	src, err := execSource(cat, q)
	if err != nil {
		return nil, err
	}
	needsAgg := len(q.GroupBy) > 0
	if !needsAgg {
		for _, it := range q.Select {
			if hasAggregate(it.Expr) {
				needsAgg = true
				break
			}
		}
	}
	var out *Result
	if needsAgg {
		out, err = execAggregate(q, src)
	} else {
		out, err = execProject(q, src)
	}
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		out = dedupeResult(out)
	}
	if q.Limit >= 0 && out.n > q.Limit {
		out = out.truncate(q.Limit)
	}
	return out, nil
}

// dedupeResult removes duplicate output rows (SELECT DISTINCT), keeping
// the first occurrence so ORDER BY ranking is preserved. Keys are built in
// one reused buffer; only first-seen rows pay a key-string allocation (map
// lookups with string(kb) convert without allocating).
func dedupeResult(res *Result) *Result {
	if res.n == 0 {
		return res
	}
	seen := make(map[string]struct{}, res.n)
	sel := make([]int, 0, res.n)
	var kb []byte
	for r := 0; r < res.n; r++ {
		kb = kb[:0]
		for c := range res.vals {
			kb = res.Cell(r, c).AppendGroupKey(kb)
			kb = append(kb, 0x1f)
		}
		if _, dup := seen[string(kb)]; dup {
			continue
		}
		seen[string(kb)] = struct{}{}
		sel = append(sel, r)
	}
	if len(sel) == res.n {
		return res
	}
	return res.gatherRows(sel)
}

// execSource evaluates FROM, JOINs, and WHERE, returning the filtered
// source relation with qualified columns.
func execSource(cat *Catalog, q *Query) (*Result, error) {
	if len(q.Joins) == 0 {
		// Projection pushdown: a single-source query only touches the
		// columns it references, so the scan can skip materializing the
		// rest — the physical advantage of the column layout.
		return execFromItem(cat, q.From, q.Where, collectNeeded(q))
	}
	left, err := execFromItem(cat, q.From, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, j := range q.Joins {
		right, err := execFromItem(cat, j.Right, nil, nil)
		if err != nil {
			return nil, err
		}
		left, err = hashJoin(left, right, j.On)
		if err != nil {
			return nil, err
		}
	}
	if q.Where == nil {
		return left, nil
	}
	return filterResult(left, q.Where)
}

// neededCols names the columns a query references; nil means "all".
type neededCols map[string]struct{}

// collectNeeded gathers every column name referenced anywhere in q, or nil
// when SELECT * forces full materialization. Qualifiers are dropped: a
// single-source query has one qualifier, so names suffice.
func collectNeeded(q *Query) neededCols {
	if q.Star {
		return nil
	}
	need := make(neededCols)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *ColRef:
			need[strings.ToLower(x.Name)] = struct{}{}
		case *Bin:
			walk(x.L)
			walk(x.R)
		case *Un:
			walk(x.X)
		case *Cast:
			walk(x.X)
		case *IsNull:
			walk(x.X)
		case *In:
			walk(x.X)
			for _, le := range x.List {
				walk(le)
			}
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	for _, it := range q.Select {
		walk(it.Expr)
	}
	walk(q.Where)
	walk(q.Having)
	for _, g := range q.GroupBy {
		walk(g)
	}
	for _, o := range q.OrderBy {
		walk(o.Expr)
	}
	return need
}

func execFromItem(cat *Catalog, f FromItem, where Expr, need neededCols) (*Result, error) {
	if f.Sub != nil {
		res, err := Exec(cat, f.Sub)
		if err != nil {
			return nil, err
		}
		// Requalify all output columns with the subquery alias.
		quals := make([]string, len(res.cols))
		for i := range quals {
			quals[i] = f.Alias
		}
		res = &Result{cols: res.cols, quals: quals, vals: res.vals, n: res.n}
		if where == nil {
			return res, nil
		}
		return filterResult(res, where)
	}
	rel, ok := cat.Lookup(f.Table)
	if !ok {
		return nil, errorf("unknown relation %q", f.Table)
	}
	qual := f.Alias
	if qual == "" {
		qual = f.Table
	}
	return scanBase(rel, qual, where, need)
}

// rowView is the single-row staging surface of the batched scan: the
// predicate evaluates against the buffer the current candidate row was
// staged into, before any output materialization.
type rowView struct {
	cols, quals []string
	buf         []Value
}

func (v *rowView) NumRows() int        { return 1 }
func (v *rowView) at(_, col int) Value { return v.buf[col] }
func (v *rowView) resolve(qual, name string) (int, error) {
	return resolveCol(v.cols, v.quals, qual, name)
}

// scanBase materializes the rows of a base relation that satisfy where
// into column vectors, using an index access path for `col IN (literals)`
// conjuncts when the relation supports one. When need is non-nil, only the
// named columns are materialized; unreferenced positions stay NULL columns
// and are never read from the relation (projection pushdown).
func scanBase(rel Relation, qual string, where Expr, need neededCols) (*Result, error) {
	cols := rel.Columns()
	quals := make([]string, len(cols))
	for i := range quals {
		quals[i] = qual
	}
	out := newResult(append([]string(nil), cols...), quals)
	wanted := make([]bool, len(cols))
	for i, c := range cols {
		if need == nil {
			wanted[i] = true
			continue
		}
		_, wanted[i] = need[strings.ToLower(c)]
	}

	var candidates []int
	fullScan := true
	if where != nil {
		if ix, ok := rel.(IndexedRelation); ok {
			if rows, ok := bestIndexPath(ix, cols, qual, where); ok {
				candidates = rows
				fullScan = false
			}
		}
	}

	// Materialization cost control: when the emitted row count is known up
	// front (index access path: the posting lengths bound it; unfiltered
	// scan: the relation size), each wanted column vector gets an exact
	// capacity hint — the columnar counterpart of the old executor's
	// chunked row arenas, with one allocation per column instead of one
	// arena chunk per 512 rows.
	expect := -1
	if !fullScan {
		expect = len(candidates)
	} else if where == nil {
		expect = rel.NumRows()
	}
	if expect > 0 {
		for c := range cols {
			if wanted[c] {
				out.vals[c] = make([]Value, 0, expect)
			}
		}
	}

	// Tombstone visibility: rows a Tombstoned relation marks dead are
	// skipped on every access path, so logically deleted data can never
	// satisfy a predicate or reach a result.
	var visible func(int) bool
	if tr, ok := rel.(Tombstoned); ok && tr.HasTombstones() {
		visible = tr.RowVisible
	}

	buf := make([]Value, len(cols))
	ctx := &evalCtx{res: &rowView{cols: out.cols, quals: out.quals, buf: buf}}
	emit := func(r int) error {
		if visible != nil && !visible(r) {
			return nil
		}
		for c := range cols {
			if wanted[c] {
				buf[c] = rel.Cell(r, c)
			} else {
				buf[c] = Null
			}
		}
		if where != nil {
			v, err := eval(where, ctx)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		out.appendRow(buf, wanted)
		return nil
	}
	if fullScan {
		n := rel.NumRows()
		for r := 0; r < n; r++ {
			if err := emit(r); err != nil {
				return nil, err
			}
		}
	} else {
		for _, r := range candidates {
			if err := emit(r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// bestIndexPath inspects the conjuncts of where for `col IN (lit,…)`
// predicates on indexed columns of rel and returns the smallest candidate
// row set among them.
func bestIndexPath(rel IndexedRelation, cols []string, qual string, where Expr) ([]int, bool) {
	var best []int
	found := false
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Bin:
			if x.Op == "AND" {
				walk(x.L)
				walk(x.R)
				return
			}
			if x.Op != "=" {
				return
			}
			// col = literal is a one-element IN.
			cr, okc := x.L.(*ColRef)
			lit, okl := x.R.(*Lit)
			if !okc || !okl {
				cr, okc = x.R.(*ColRef)
				lit, okl = x.L.(*Lit)
			}
			if !okc || !okl {
				return
			}
			tryIndex(rel, cols, qual, cr, []Value{lit.V}, &best, &found)
		case *In:
			if x.Neg {
				return
			}
			cr, ok := x.X.(*ColRef)
			if !ok {
				return
			}
			vals := make([]Value, 0, len(x.List))
			for _, le := range x.List {
				l, ok := le.(*Lit)
				if !ok {
					return
				}
				vals = append(vals, l.V)
			}
			tryIndex(rel, cols, qual, cr, vals, &best, &found)
		}
	}
	walk(where)
	return best, found
}

func tryIndex(rel IndexedRelation, cols []string, qual string, cr *ColRef, vals []Value, best *[]int, found *bool) {
	if cr.Qual != "" && !strings.EqualFold(cr.Qual, qual) {
		return
	}
	col := -1
	for i, c := range cols {
		if strings.EqualFold(c, cr.Name) {
			col = i
			break
		}
	}
	if col < 0 {
		return
	}
	rows, ok := rel.LookupIn(col, vals)
	if !ok {
		return
	}
	if !*found || len(rows) < len(*best) {
		*best = rows
		*found = true
	}
}

// filterResult evaluates where per row into a selection vector and gathers
// the survivors column-wise.
func filterResult(src *Result, where Expr) (*Result, error) {
	ctx := &evalCtx{res: src}
	sel := make([]int, 0, src.n)
	for r := 0; r < src.n; r++ {
		ctx.row = r
		v, err := eval(where, ctx)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			sel = append(sel, r)
		}
	}
	if len(sel) == src.n {
		return src, nil
	}
	return src.gatherRows(sel), nil
}

// pairView is the staging surface of the join's residual filter: one
// candidate (left row, right row) pair, read through the concatenated
// output schema without materializing the joined row.
type pairView struct {
	cols, quals []string
	left, right *Result
	lr, rr      int
}

func (v *pairView) NumRows() int { return 1 }
func (v *pairView) at(_, col int) Value {
	if col < len(v.left.cols) {
		return v.left.Cell(v.lr, col)
	}
	return v.right.Cell(v.rr, col-len(v.left.cols))
}
func (v *pairView) resolve(qual, name string) (int, error) {
	return resolveCol(v.cols, v.quals, qual, name)
}

// hashJoin executes an inner join. Equality conjuncts between the two
// sides become the hash key; remaining conjuncts are evaluated as a
// residual filter on each candidate pair. Matching pairs accumulate as two
// selection vectors and the output gathers both sides column-wise — no
// per-row slice is ever allocated.
func hashJoin(left, right *Result, on Expr) (*Result, error) {
	type eqPair struct{ l, r int }
	var eqs []eqPair
	var residual []Expr
	var collect func(e Expr) error
	collect = func(e Expr) error {
		if b, ok := e.(*Bin); ok {
			if b.Op == "AND" {
				if err := collect(b.L); err != nil {
					return err
				}
				return collect(b.R)
			}
			if b.Op == "=" {
				lc, lok := b.L.(*ColRef)
				rc, rok := b.R.(*ColRef)
				if lok && rok {
					li, lerr := left.resolve(lc.Qual, lc.Name)
					ri, rerr := right.resolve(rc.Qual, rc.Name)
					if lerr == nil && rerr == nil {
						eqs = append(eqs, eqPair{li, ri})
						return nil
					}
					// Maybe the sides are swapped.
					li2, lerr2 := left.resolve(rc.Qual, rc.Name)
					ri2, rerr2 := right.resolve(lc.Qual, lc.Name)
					if lerr2 == nil && rerr2 == nil {
						eqs = append(eqs, eqPair{li2, ri2})
						return nil
					}
				}
			}
		}
		residual = append(residual, e)
		return nil
	}
	if err := collect(on); err != nil {
		return nil, err
	}

	cols := append(append([]string(nil), left.cols...), right.cols...)
	quals := append(append([]string(nil), left.quals...), right.quals...)
	var resid Expr
	for _, e := range residual {
		if resid == nil {
			resid = e
		} else {
			resid = &Bin{Op: "AND", L: resid, R: e}
		}
	}
	pv := &pairView{cols: cols, quals: quals, left: left, right: right}
	ctx := &evalCtx{res: pv}
	var lsel, rsel []int
	emit := func(lr, rr int) error {
		if resid != nil {
			pv.lr, pv.rr = lr, rr
			v, err := eval(resid, ctx)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		lsel = append(lsel, lr)
		rsel = append(rsel, rr)
		return nil
	}

	if len(eqs) == 0 {
		// Nested loop for pure residual joins (rare in our dialect).
		for lr := 0; lr < left.n; lr++ {
			for rr := 0; rr < right.n; rr++ {
				if err := emit(lr, rr); err != nil {
					return nil, err
				}
			}
		}
		return gatherJoin(cols, quals, left, right, lsel, rsel), nil
	}

	// Build on the smaller side, probe with the larger. Keys are built in
	// one reused buffer and interned once per distinct key: lookups with
	// string(kb) convert without allocating, so probe rows and repeated
	// build keys cost no key allocation at all.
	buildLeft := left.n < right.n
	build, probe := right, left
	if buildLeft {
		build, probe = left, right
	}
	var kb []byte
	key := func(res *Result, r int) bool {
		kb = kb[:0]
		for _, eq := range eqs {
			col := eq.r
			if res == left {
				col = eq.l
			}
			v := res.Cell(r, col)
			if v.IsNull() {
				return false // NULL never joins
			}
			kb = v.AppendGroupKey(kb)
			kb = append(kb, 0x1f)
		}
		return true
	}
	ids := make(map[string]int, build.n)
	var lists [][]int
	for r := 0; r < build.n; r++ {
		if !key(build, r) {
			continue
		}
		id, ok := ids[string(kb)]
		if !ok {
			id = len(lists)
			ids[string(kb)] = id
			lists = append(lists, nil)
		}
		lists[id] = append(lists[id], r)
	}
	for pr := 0; pr < probe.n; pr++ {
		if !key(probe, pr) {
			continue
		}
		id, ok := ids[string(kb)]
		if !ok {
			continue
		}
		for _, br := range lists[id] {
			lr, rr := pr, br
			if buildLeft {
				lr, rr = br, pr
			}
			if err := emit(lr, rr); err != nil {
				return nil, err
			}
		}
	}
	return gatherJoin(cols, quals, left, right, lsel, rsel), nil
}

// gatherJoin materializes the joined output from the two sides' selection
// vectors, column-wise. NULL columns of either side stay unmaterialized.
func gatherJoin(cols, quals []string, left, right *Result, lsel, rsel []int) *Result {
	out := &Result{cols: cols, quals: quals, vals: make([][]Value, len(cols)), n: len(lsel)}
	for c, v := range left.vals {
		if v == nil {
			continue
		}
		g := make([]Value, len(lsel))
		for i, r := range lsel {
			g[i] = v[r]
		}
		out.vals[c] = g
	}
	lc := len(left.cols)
	for c, v := range right.vals {
		if v == nil {
			continue
		}
		g := make([]Value, len(rsel))
		for i, r := range rsel {
			g[i] = v[r]
		}
		out.vals[lc+c] = g
	}
	return out
}

// execProject evaluates the select list per source row into per-item
// column vectors, applies ORDER BY (which may reference source columns or
// select aliases), and returns the projected result.
func execProject(q *Query, src *Result) (*Result, error) {
	aliases := aliasMap(q)
	if q.Star {
		if len(q.OrderBy) == 0 {
			return src, nil
		}
		ordered, err := orderRows(q, src, src.n, nil, aliases, pushableLimit(q))
		if err != nil {
			return nil, err
		}
		return src.gatherRows(ordered), nil
	}
	cols, quals := outputColumns(q)
	proj := make([][]Value, len(q.Select))
	for i := range proj {
		proj[i] = make([]Value, src.n)
	}
	ctx := &evalCtx{res: src}
	for r := 0; r < src.n; r++ {
		ctx.row = r
		for i, it := range q.Select {
			v, err := eval(it.Expr, ctx)
			if err != nil {
				return nil, err
			}
			proj[i][r] = v
		}
	}
	out := &Result{cols: cols, quals: quals, vals: make([][]Value, len(cols)), n: src.n}
	if len(q.OrderBy) == 0 {
		copy(out.vals, proj)
		return out, nil
	}
	ordered, err := orderRows(q, src, src.n, nil, aliases, pushableLimit(q))
	if err != nil {
		return nil, err
	}
	out.n = len(ordered)
	for i := range proj {
		g := make([]Value, len(ordered))
		for j, r := range ordered {
			g[j] = proj[i][r]
		}
		out.vals[i] = g
	}
	return out, nil
}

// execAggregate groups source rows by the GROUP BY keys (or one implicit
// group) and evaluates select and order expressions per group. Group keys
// are built in one reused buffer; only first-seen groups pay a key-string
// allocation.
func execAggregate(q *Query, src *Result) (*Result, error) {
	if q.Star {
		return nil, errorf("SELECT * cannot be combined with aggregation")
	}
	aliases := aliasMap(q)
	ctx := &evalCtx{res: src, aliases: aliases}

	// Form groups preserving first-seen order for determinism.
	var groups [][]int
	if len(q.GroupBy) == 0 {
		groups = [][]int{identityIndices(src.n)}
	} else {
		index := make(map[string]int)
		var kb []byte
		for r := 0; r < src.n; r++ {
			ctx.row = r
			kb = kb[:0]
			for _, ge := range q.GroupBy {
				v, err := eval(ge, ctx)
				if err != nil {
					return nil, err
				}
				kb = v.AppendGroupKey(kb)
				kb = append(kb, 0x1f)
			}
			gi, ok := index[string(kb)]
			if !ok {
				gi = len(groups)
				index[string(kb)] = gi
				groups = append(groups, nil)
			}
			groups[gi] = append(groups[gi], r)
		}
	}

	// HAVING: drop groups whose predicate is not satisfied before
	// projecting and ordering.
	if q.Having != nil {
		kept := groups[:0]
		for _, g := range groups {
			gctx := &evalCtx{res: src, group: g, aliases: aliases}
			v, err := eval(q.Having, gctx)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, g)
			}
		}
		groups = kept
	}

	cols, quals := outputColumns(q)
	proj := make([][]Value, len(q.Select))
	for i := range proj {
		proj[i] = make([]Value, len(groups))
	}
	for gi, g := range groups {
		gctx := &evalCtx{res: src, group: g, aliases: aliases}
		for i, it := range q.Select {
			v, err := eval(it.Expr, gctx)
			if err != nil {
				return nil, err
			}
			proj[i][gi] = v
		}
	}
	order, err := orderRows(q, src, len(groups), groups, aliases, pushableLimit(q))
	if err != nil {
		return nil, err
	}
	out := &Result{cols: cols, quals: quals, vals: make([][]Value, len(cols)), n: len(order)}
	if len(q.OrderBy) == 0 {
		copy(out.vals, proj)
		return out, nil
	}
	for i := range proj {
		g := make([]Value, len(order))
		for j, gi := range order {
			g[j] = proj[i][gi]
		}
		out.vals[i] = g
	}
	return out, nil
}

// orderRows returns the permutation of unit indices 0..n-1 sorted by the
// query's ORDER BY keys. In grouped mode groups[i] gives the member rows of
// unit i; otherwise each unit is the source row with the same index.
//
// limit, when in [0, n), is the query's LIMIT: only that many best units
// are selected (with a bounded heap, O(n log limit)) instead of sorting
// all n — the seekers' `ORDER BY overlap DESC … LIMIT k` stops paying a
// full sort of every candidate table to return k of them. limit < 0 (or
// >= n) keeps the full sort.
//
// Ties under the ORDER BY keys break by ascending unit index — the
// first-seen row/group order — which both the full sort and the partial
// selection apply identically, so results are deterministic and
// limit-insensitive. (The seekers' generated SQL additionally orders by
// TableId ASC explicitly; the index tie-break covers every other query.)
func orderRows(q *Query, src evalSrc, n int, groups [][]int, aliases map[string]Expr, limit int) ([]int, error) {
	if len(q.OrderBy) == 0 {
		return identityIndices(n), nil
	}
	keys := make([][]Value, n)
	flat := make([]Value, n*len(q.OrderBy))
	for unit := 0; unit < n; unit++ {
		ctx := &evalCtx{res: src, aliases: aliases}
		if groups != nil {
			ctx.group = groups[unit]
		} else {
			ctx.row = unit
		}
		ks := flat[unit*len(q.OrderBy) : (unit+1)*len(q.OrderBy)]
		for j, ob := range q.OrderBy {
			v, err := eval(ob.Expr, ctx)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		keys[unit] = ks
	}
	// less is a total order — ORDER BY keys, then unit index — so plain
	// sorting reproduces exactly what a stable sort on the keys alone
	// would, and the heap selection below agrees with the sort.
	less := func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		for j, ob := range q.OrderBy {
			c := ka[j].Compare(kb[j])
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return a < b
	}
	if limit >= 0 && limit < n {
		return selectTopUnits(n, limit, less), nil
	}
	perm := identityIndices(n)
	sort.Slice(perm, func(a, b int) bool { return less(perm[a], perm[b]) })
	return perm, nil
}

// selectTopUnits picks the k first units under less out of 0..n-1 and
// returns them in sorted order, using a bounded max-heap (the root is the
// worst retained unit) so only k units are ever held.
func selectTopUnits(n, k int, less func(a, b int) bool) []int {
	if k == 0 {
		return nil
	}
	h := make([]int, 0, k)
	siftDown := func(i int) {
		for {
			worst := i
			if l := 2*i + 1; l < len(h) && less(h[worst], h[l]) {
				worst = l
			}
			if r := 2*i + 2; r < len(h) && less(h[worst], h[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			h[i], h[worst] = h[worst], h[i]
			i = worst
		}
	}
	for unit := 0; unit < n; unit++ {
		if len(h) < k {
			h = append(h, unit)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !less(h[p], h[i]) {
					break
				}
				h[p], h[i] = h[i], h[p]
				i = p
			}
			continue
		}
		if less(unit, h[0]) {
			h[0] = unit
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// pushableLimit returns the LIMIT that may be pushed into orderRows' unit
// selection. DISTINCT dedupes after ordering, so its queries must keep the
// full order; Exec re-applies LIMIT after projection either way.
func pushableLimit(q *Query) int {
	if q.Distinct {
		return -1
	}
	return q.Limit
}

func aliasMap(q *Query) map[string]Expr {
	m := make(map[string]Expr)
	for _, it := range q.Select {
		if it.Alias != "" {
			m[it.Alias] = it.Expr
		}
	}
	return m
}

func outputColumns(q *Query) (cols, quals []string) {
	cols = make([]string, len(q.Select))
	quals = make([]string, len(q.Select))
	for i, it := range q.Select {
		if it.Alias != "" {
			cols[i] = it.Alias
		} else if cr, ok := it.Expr.(*ColRef); ok {
			cols[i] = cr.Name
		} else {
			cols[i] = it.Expr.String()
		}
	}
	return cols, quals
}

func identityIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
