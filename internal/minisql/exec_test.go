package minisql

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// deptRelation builds a small indexed relation mimicking an AllTables-ish
// schema for executor tests.
func deptRelation() *MemRelation {
	m := NewMemRelation("dep", "head", "size", "tid")
	rows := []struct {
		dep, head string
		size      int64
		tid       int64
	}{
		{"HR", "Firenze", 33, 1},
		{"Marketing", "Draco", 28, 1},
		{"Finance", "Harry", 31, 1},
		{"IT", "Tom", 92, 2},
		{"HR", "Firenze", 35, 2},
		{"Sales", "Luna", 80, 3},
		{"HR", "", 0, 3},
	}
	for _, r := range rows {
		head := Str(r.head)
		if r.head == "" {
			head = Null
		}
		m.Append(Str(r.dep), head, Int(r.size), Int(r.tid))
	}
	m.BuildIndex(0)
	return m
}

func exec(t *testing.T, cat *Catalog, sql string) *Result {
	t.Helper()
	res, err := ExecSQL(cat, sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return res
}

func catWith(name string, r Relation) *Catalog {
	cat := NewCatalog()
	cat.Register(name, r)
	return cat
}

func col0Strings(res *Result) []string {
	out := make([]string, res.NumRows())
	for i := range out {
		out[i] = res.Cell(i, 0).String()
	}
	return out
}

func TestSelectStar(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT * FROM d")
	if res.NumRows() != 7 || len(res.Columns()) != 4 {
		t.Fatalf("got %dx%d", res.NumRows(), len(res.Columns()))
	}
}

func TestWhereIn(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT dep, tid FROM d WHERE dep IN ('HR', 'Sales')")
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestWhereNotIn(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT dep FROM d WHERE dep NOT IN ('HR')")
	for i := 0; i < res.NumRows(); i++ {
		if res.Cell(i, 0).S == "HR" {
			t.Fatal("NOT IN leaked HR")
		}
	}
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestWhereComparisonsAndNull(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT dep FROM d WHERE size >= 33 AND head IS NOT NULL")
	got := col0Strings(res)
	want := []string{"HR", "IT", "HR", "Sales"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// NULL comparisons are falsy: head = NULL matches nothing.
	res = exec(t, cat, "SELECT dep FROM d WHERE head = NULL")
	if res.NumRows() != 0 {
		t.Fatal("= NULL must match nothing")
	}
	res = exec(t, cat, "SELECT dep FROM d WHERE head IS NULL")
	if res.NumRows() != 1 {
		t.Fatal("IS NULL should match the one null head")
	}
}

func TestGroupByCountOrder(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, `SELECT tid, COUNT(*) AS n FROM d GROUP BY tid ORDER BY n DESC, tid ASC`)
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	// tid 1 has 3 rows; tids 2 and 3 have 2 each, tie broken by tid.
	if res.Cell(0, 0).I != 1 || res.Cell(0, 1).I != 3 {
		t.Fatalf("first group = %v %v", res.Cell(0, 0), res.Cell(0, 1))
	}
	if res.Cell(1, 0).I != 2 || res.Cell(2, 0).I != 3 {
		t.Fatal("tie break by tid failed")
	}
}

func TestCountDistinctAndNulls(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT COUNT(DISTINCT dep), COUNT(head), COUNT(*) FROM d")
	if res.Cell(0, 0).I != 5 {
		t.Fatalf("distinct deps = %v", res.Cell(0, 0))
	}
	if res.Cell(0, 1).I != 6 {
		t.Fatalf("COUNT(head) should skip the null, got %v", res.Cell(0, 1))
	}
	if res.Cell(0, 2).I != 7 {
		t.Fatalf("COUNT(*) = %v", res.Cell(0, 2))
	}
}

func TestAggregates(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT SUM(size), MIN(size), MAX(size), AVG(size) FROM d WHERE tid = 1")
	if res.Cell(0, 0).I != 92 || res.Cell(0, 1).I != 28 || res.Cell(0, 2).I != 33 {
		t.Fatalf("sum/min/max wrong: %v %v %v", res.Cell(0, 0), res.Cell(0, 1), res.Cell(0, 2))
	}
	avg := res.Cell(0, 3).F
	if avg < 30.6 || avg > 30.7 {
		t.Fatalf("avg = %v", avg)
	}
}

func TestSumOverEmptyGroupIsNull(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT SUM(size) FROM d WHERE dep IN ('nope')")
	if !res.Cell(0, 0).IsNull() {
		t.Fatalf("SUM over empty = %v, want NULL", res.Cell(0, 0))
	}
}

func TestLimit(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT dep FROM d ORDER BY size DESC LIMIT 2")
	got := col0Strings(res)
	if !reflect.DeepEqual(got, []string{"IT", "Sales"}) {
		t.Fatalf("got %v", got)
	}
	res = exec(t, cat, "SELECT dep FROM d LIMIT 0")
	if res.NumRows() != 0 {
		t.Fatal("LIMIT 0 should return nothing")
	}
}

func TestOrderBySourceColumnNotProjected(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT dep FROM d WHERE tid = 1 ORDER BY size ASC")
	got := col0Strings(res)
	if !reflect.DeepEqual(got, []string{"Marketing", "Finance", "HR"}) {
		t.Fatalf("got %v", got)
	}
}

func TestSubqueryAndAlias(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, `SELECT s.dep FROM (SELECT dep, size FROM d WHERE size > 30) AS s WHERE s.size < 40 ORDER BY s.size`)
	got := col0Strings(res)
	if !reflect.DeepEqual(got, []string{"Finance", "HR", "HR"}) {
		t.Fatalf("got %v", got)
	}
}

func TestJoin(t *testing.T) {
	people := NewMemRelation("name", "dept")
	people.Append(Str("ann"), Str("HR"))
	people.Append(Str("bob"), Str("IT"))
	people.Append(Str("cat"), Str("Legal")) // no match
	cat := NewCatalog()
	cat.Register("d", deptRelation())
	cat.Register("p", people)
	res := exec(t, cat, `SELECT p.name, d.tid FROM p INNER JOIN d ON p.dept = d.dep ORDER BY p.name, d.tid`)
	// ann joins 3 HR rows; bob joins 1 IT row; cat joins none.
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Cell(3, 0).S != "bob" || res.Cell(3, 1).I != 2 {
		t.Fatalf("last row = %v %v", res.Cell(3, 0), res.Cell(3, 1))
	}
}

func TestJoinWithResidual(t *testing.T) {
	cat := NewCatalog()
	cat.Register("d", deptRelation())
	res := exec(t, cat, `SELECT a.dep FROM d AS a INNER JOIN d AS b
		ON a.dep = b.dep AND a.size < b.size ORDER BY a.dep, a.size`)
	// HR sizes 33,35,0: pairs (33<35), (0<33), (0<35) → three rows.
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestJoinOnSubqueries(t *testing.T) {
	cat := catWith("AllTables", deptRelation())
	res := exec(t, cat, `SELECT q1.tid FROM
		(SELECT * FROM AllTables WHERE dep IN ('HR')) AS q1
		INNER JOIN
		(SELECT * FROM AllTables WHERE dep IN ('IT')) AS q2
		ON q1.tid = q2.tid`)
	// Only tid 2 has both HR and IT.
	got := col0Strings(res)
	if !reflect.DeepEqual(got, []string{"2"}) {
		t.Fatalf("got %v", got)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := NewCatalog()
	cat.Register("d", deptRelation())
	_, err := ExecSQL(cat, "SELECT dep FROM d AS a INNER JOIN d AS b ON a.tid = b.tid")
	if err == nil {
		t.Fatal("want ambiguity error")
	}
}

func TestUnknownRelationAndColumn(t *testing.T) {
	cat := catWith("d", deptRelation())
	if _, err := ExecSQL(cat, "SELECT * FROM nope"); err == nil {
		t.Fatal("want unknown relation error")
	}
	if _, err := ExecSQL(cat, "SELECT nope FROM d"); err == nil {
		t.Fatal("want unknown column error")
	}
	if _, err := ExecSQL(cat, "SELECT x.dep FROM d"); err == nil {
		t.Fatal("want unknown qualifier error")
	}
}

func TestCastInSum(t *testing.T) {
	cat := catWith("d", deptRelation())
	// The QCR pattern: SUM of a boolean cast to int.
	res := exec(t, cat, "SELECT SUM((dep = 'HR')::int) FROM d")
	if res.Cell(0, 0).I != 3 {
		t.Fatalf("sum of casts = %v", res.Cell(0, 0))
	}
}

func TestDivisionIsFloat(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT (2 * 3 - 7) / 2 FROM d LIMIT 1")
	if res.Cell(0, 0).F != -0.5 {
		t.Fatalf("division = %v, want -0.5", res.Cell(0, 0))
	}
	res = exec(t, cat, "SELECT 1 / 0 FROM d LIMIT 1")
	if !res.Cell(0, 0).IsNull() {
		t.Fatal("divide by zero should be NULL")
	}
}

func TestAbs(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT ABS(-4), ABS(4), ABS(-1.5) FROM d LIMIT 1")
	if res.Cell(0, 0).I != 4 || res.Cell(0, 1).I != 4 || res.Cell(0, 2).F != 1.5 {
		t.Fatal("ABS wrong")
	}
}

func TestSelectStarWithGroupByFails(t *testing.T) {
	cat := catWith("d", deptRelation())
	if _, err := ExecSQL(cat, "SELECT * FROM d GROUP BY dep"); err == nil {
		t.Fatal("want error")
	}
}

func TestModulo(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT 7 % 3 FROM d LIMIT 1")
	if res.Cell(0, 0).I != 1 {
		t.Fatalf("modulo = %v", res.Cell(0, 0))
	}
}

// TestIndexPathMatchesScan is the key access-path property: using the value
// index must return exactly the same rows as a full scan, for random IN
// predicates over random data.
func TestIndexPathMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 30; trial++ {
		indexed := NewMemRelation("v", "n")
		plain := NewMemRelation("v", "n")
		rows := 20 + rng.Intn(80)
		for i := 0; i < rows; i++ {
			v := Str(vocab[rng.Intn(len(vocab))])
			num := Int(int64(rng.Intn(10)))
			indexed.Append(v, num)
			plain.Append(v, num)
		}
		indexed.BuildIndex(0)
		inSize := 1 + rng.Intn(4)
		list := ""
		for i := 0; i < inSize; i++ {
			if i > 0 {
				list += ", "
			}
			list += "'" + vocab[rng.Intn(len(vocab))] + "'"
		}
		sql := fmt.Sprintf("SELECT v, n FROM r WHERE v IN (%s) AND n < 7 ORDER BY v, n", list)
		r1 := exec(t, catWith("r", indexed), sql)
		r2 := exec(t, catWith("r", plain), sql)
		if r1.NumRows() != r2.NumRows() {
			t.Fatalf("index path returned %d rows, scan %d (query %s)", r1.NumRows(), r2.NumRows(), sql)
		}
		for i := 0; i < r1.NumRows(); i++ {
			if r1.Cell(i, 0).S != r2.Cell(i, 0).S || r1.Cell(i, 1).I != r2.Cell(i, 1).I {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestResultImplementsRelation(t *testing.T) {
	cat := catWith("d", deptRelation())
	res := exec(t, cat, "SELECT dep, size FROM d WHERE tid = 1")
	cat.Register("sub", res)
	res2 := exec(t, cat, "SELECT COUNT(*) FROM sub")
	if res2.Cell(0, 0).I != 3 {
		t.Fatal("result-as-relation failed")
	}
}

func TestSelectDistinct(t *testing.T) {
	m := NewMemRelation("v", "n")
	m.Append(Str("x"), Int(1))
	m.Append(Str("x"), Int(1))
	m.Append(Str("x"), Int(2))
	m.Append(Str("y"), Int(1))
	cat := catWith("d", m)
	res := exec(t, cat, "SELECT DISTINCT v FROM d ORDER BY v")
	if got := col0Strings(res); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("distinct v = %v", got)
	}
	res = exec(t, cat, "SELECT DISTINCT v, n FROM d")
	if res.NumRows() != 3 {
		t.Fatalf("distinct pairs = %d, want 3", res.NumRows())
	}
	// DISTINCT respects LIMIT after deduplication.
	res = exec(t, cat, "SELECT DISTINCT v, n FROM d LIMIT 2")
	if res.NumRows() != 2 {
		t.Fatalf("limit after distinct = %d", res.NumRows())
	}
	// Round trip through the printer.
	q := mustParse(t, "SELECT DISTINCT v FROM d")
	if q2 := mustParse(t, q.String()); !q2.Distinct {
		t.Fatal("DISTINCT lost in round trip")
	}
}

func TestHaving(t *testing.T) {
	cat := catWith("d", deptRelation())
	// Only tid 1 has three rows.
	res := exec(t, cat, "SELECT tid FROM d GROUP BY tid HAVING COUNT(*) >= 3")
	if res.NumRows() != 1 || res.Cell(0, 0).I != 1 {
		t.Fatalf("having = %v", col0Strings(res))
	}
	// HAVING may reference aggregates absent from the select list.
	res = exec(t, cat, "SELECT tid FROM d GROUP BY tid HAVING SUM(size) > 100 ORDER BY tid")
	if res.NumRows() != 1 || res.Cell(0, 0).I != 2 { // tid 2: 92+35
		t.Fatalf("having sum = %v", col0Strings(res))
	}
	// HAVING without GROUP BY is rejected.
	if _, err := ExecSQL(cat, "SELECT COUNT(*) FROM d HAVING COUNT(*) > 1"); err == nil {
		t.Fatal("HAVING without GROUP BY must fail")
	}
	// Round trip.
	q := mustParse(t, "SELECT tid FROM d GROUP BY tid HAVING COUNT(*) >= 3")
	if q2 := mustParse(t, q.String()); q2.Having == nil {
		t.Fatal("HAVING lost in round trip")
	}
}
