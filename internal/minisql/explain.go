package minisql

import (
	"fmt"
	"strings"
)

// Explain describes how the engine would execute q against the catalog:
// the access path of every base scan (index probe with its candidate count
// versus full scan), join strategy, aggregation, ordering, and limits.
// It inspects the same decision logic the executor uses — including live
// index lookups for candidate counts — without materializing results.
func Explain(cat *Catalog, q *Query) (string, error) {
	var sb strings.Builder
	if err := explainQuery(cat, q, &sb, 0); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// ExplainSQL parses and explains a statement.
func ExplainSQL(cat *Catalog, sql string) (string, error) {
	q, err := Parse(sql)
	if err != nil {
		return "", err
	}
	return Explain(cat, q)
}

func explainQuery(cat *Catalog, q *Query, sb *strings.Builder, depth int) error {
	pad := strings.Repeat("  ", depth)
	write := func(format string, args ...any) {
		sb.WriteString(pad)
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}

	// FROM and joins.
	if err := explainFrom(cat, q.From, q, len(q.Joins) == 0, sb, depth); err != nil {
		return err
	}
	for _, j := range q.Joins {
		write("hash join ON %s", j.On.String())
		if err := explainFrom(cat, j.Right, q, false, sb, depth+1); err != nil {
			return err
		}
	}
	if q.Where != nil && len(q.Joins) > 0 {
		write("filter: %s", q.Where.String())
	}

	// Aggregation / projection.
	needsAgg := len(q.GroupBy) > 0
	for _, it := range q.Select {
		if hasAggregate(it.Expr) {
			needsAgg = true
		}
	}
	if needsAgg {
		if len(q.GroupBy) > 0 {
			keys := make([]string, len(q.GroupBy))
			for i, g := range q.GroupBy {
				keys[i] = g.String()
			}
			write("group by [%s]", strings.Join(keys, ", "))
			if q.Having != nil {
				write("having: %s", q.Having.String())
			}
		} else {
			write("aggregate over all rows")
		}
	}
	if q.Star {
		write("project *")
	} else {
		items := make([]string, len(q.Select))
		for i, it := range q.Select {
			items[i] = it.Expr.String()
			if it.Alias != "" {
				items[i] += " AS " + it.Alias
			}
		}
		write("project [%s]", strings.Join(items, ", "))
	}
	if q.Distinct {
		write("distinct")
	}
	if len(q.OrderBy) > 0 {
		keys := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			dir := "ASC"
			if o.Desc {
				dir = "DESC"
			}
			keys[i] = o.Expr.String() + " " + dir
		}
		write("order by [%s]", strings.Join(keys, ", "))
	}
	if q.Limit >= 0 {
		write("limit %d", q.Limit)
	}
	return nil
}

func explainFrom(cat *Catalog, f FromItem, q *Query, whereApplies bool, sb *strings.Builder, depth int) error {
	pad := strings.Repeat("  ", depth)
	write := func(format string, args ...any) {
		sb.WriteString(pad)
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}
	if f.Sub != nil {
		write("subquery %s:", f.Alias)
		return explainQuery(cat, f.Sub, sb, depth+1)
	}
	rel, ok := cat.Lookup(f.Table)
	if !ok {
		return errorf("unknown relation %q", f.Table)
	}
	qual := f.Alias
	if qual == "" {
		qual = f.Table
	}
	var where Expr
	if whereApplies {
		where = q.Where
	}
	if where != nil {
		if ix, isIx := rel.(IndexedRelation); isIx {
			if rows, usable := bestIndexPath(ix, rel.Columns(), qual, where); usable {
				write("index scan %s (%d candidate rows of %d) filter: %s",
					f.Table, len(rows), rel.NumRows(), where.String())
				return nil
			}
		}
		write("full scan %s (%d rows) filter: %s", f.Table, rel.NumRows(), where.String())
		return nil
	}
	write("full scan %s (%d rows)", f.Table, rel.NumRows())
	return nil
}
