package minisql

import (
	"strings"
	"testing"
)

func TestExplainIndexScan(t *testing.T) {
	cat := catWith("d", deptRelation())
	out, err := ExplainSQL(cat, "SELECT dep FROM d WHERE dep IN ('HR', 'Sales') ORDER BY dep LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"index scan d (4 candidate rows of 7)",
		"project [dep]",
		"order by [dep ASC]",
		"limit 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainFullScan(t *testing.T) {
	cat := catWith("d", deptRelation())
	out, err := ExplainSQL(cat, "SELECT dep FROM d WHERE size > 50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "full scan d (7 rows)") {
		t.Fatalf("explain missing full scan:\n%s", out)
	}
}

func TestExplainJoinAndAgg(t *testing.T) {
	cat := catWith("AllTables", deptRelation())
	out, err := ExplainSQL(cat, `SELECT q1.tid, COUNT(*) FROM
		(SELECT * FROM AllTables WHERE dep IN ('HR')) AS q1
		INNER JOIN
		(SELECT * FROM AllTables WHERE dep IN ('IT')) AS q2
		ON q1.tid = q2.tid
		GROUP BY q1.tid ORDER BY COUNT(*) DESC`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"subquery q1:",
		"hash join ON",
		"index scan AllTables",
		"group by [q1.tid]",
		"order by [COUNT(*) DESC]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainDistinctAndStar(t *testing.T) {
	cat := catWith("d", deptRelation())
	out, err := ExplainSQL(cat, "SELECT DISTINCT dep FROM d")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "distinct") {
		t.Fatalf("missing distinct:\n%s", out)
	}
	out, err = ExplainSQL(cat, "SELECT * FROM d")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "project *") {
		t.Fatalf("missing star projection:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	cat := NewCatalog()
	if _, err := ExplainSQL(cat, "SELECT * FROM ghost"); err == nil {
		t.Fatal("unknown relation must fail")
	}
	if _, err := ExplainSQL(cat, "not sql"); err == nil {
		t.Fatal("parse error must propagate")
	}
}
