package minisql

import (
	"errors"
	"strings"
	"testing"

	"blend/internal/berr"
)

// FuzzMinisqlParse fuzzes the parser's error contract: it never panics,
// and every rejection is a typed berr error carrying CodeBadQuery — the
// classification the HTTP service maps to a 4xx status, so an untyped
// parse error would surface to clients as a spurious 500. (FuzzParse below
// additionally checks the print/parse fixed point for accepted inputs.)
func FuzzMinisqlParse(f *testing.F) {
	seeds := []string{
		"SELECT TableId FROM AllTables WHERE CellValue IN ('a') GROUP BY TableId",
		"SELECT q0.TableId FROM (SELECT * FROM AllTables) AS q0 INNER JOIN (SELECT * FROM AllTables) AS q1 ON q0.TableId = q1.TableId AND q0.RowId = q1.RowId",
		"SELECT * FROM t WHERE v IN ()",
		"SELECT 'unterminated",
		"\x00\x01\x02",
		"SELECT ~!@#$%^&*",
		")))(((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return // bound work per case
		}
		q, err := Parse(input)
		if err != nil {
			if !errors.Is(err, berr.ErrBadQuery) {
				t.Fatalf("parse error for %q is not berr-typed bad_query: %v", input, err)
			}
			return
		}
		_ = q.String() // printing an accepted query must not panic either
	})
}

// FuzzParse asserts the parser never panics and that anything it accepts
// round-trips through the printer to an equivalent AST.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT TableId FROM AllTables WHERE CellValue IN ('a','b') GROUP BY TableId ORDER BY COUNT(DISTINCT CellValue) DESC LIMIT 10",
		"SELECT * FROM (SELECT * FROM t WHERE x = 1) AS s INNER JOIN u ON s.a = u.b",
		"SELECT (a = 1)::int, ABS(-2.5e3), 'it''s' FROM t",
		"SELECT a FROM t WHERE a IS NOT NULL AND b NOT IN (1, 2)",
		"select 1 from t -- comment",
		"SELECT",
		"",
		"SELECT * FROM t WHERE ((((((((x))))))))",
		"SELECT ~ FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted unparsable SQL %q from input %q: %v", printed, input, err)
		}
		if q2.String() != printed {
			t.Fatalf("print/parse not a fixed point:\n1: %s\n2: %s", printed, q2.String())
		}
	})
}

// FuzzExec runs accepted queries against a small catalog: execution must
// never panic, whatever the query shape.
func FuzzExec(f *testing.F) {
	seeds := []string{
		"SELECT v FROM r",
		"SELECT COUNT(*) FROM r GROUP BY v",
		"SELECT v FROM r WHERE n IN (1,2) ORDER BY v DESC LIMIT 3",
		"SELECT SUM(n) / COUNT(*) FROM r",
		"SELECT a.v FROM r AS a INNER JOIN r AS b ON a.n = b.n",
		"SELECT MIN(v), MAX(n) FROM r WHERE v IS NOT NULL",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	m := NewMemRelation("v", "n")
	m.Append(Str("x"), Int(1))
	m.Append(Str("y"), Int(2))
	m.Append(Null, Null)
	m.BuildIndex(0)
	cat := catWith("r", m)
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 4096 {
			return // bound work per case
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("exec panicked on %q: %v", input, r)
			}
		}()
		res, err := ExecSQL(cat, input)
		if err != nil {
			return
		}
		// Touch every cell: materialized results must be well-formed.
		for r := 0; r < res.NumRows(); r++ {
			for c := range res.Columns() {
				_ = res.Cell(r, c).String()
			}
		}
	})
}

// TestFuzzCorpusSmoke runs a few handcrafted adversarial inputs through
// both fuzz targets' logic in regular test mode (fuzzing itself is opt-in
// via `go test -fuzz`).
func TestFuzzCorpusSmoke(t *testing.T) {
	adversarial := []string{
		strings.Repeat("(", 2000) + "1" + strings.Repeat(")", 2000),
		"SELECT " + strings.Repeat("a+", 500) + "a FROM t",
		"SELECT * FROM t WHERE a IN (" + strings.Repeat("'x',", 999) + "'x')",
		"SELECT '" + strings.Repeat("''", 500) + "' FROM t",
		"SELECT -- only a comment",
		"SELECT * FROM t LIMIT 99999999999999999999",
	}
	for _, input := range adversarial {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %.60q…: %v", input, r)
				}
			}()
			if q, err := Parse(input); err == nil {
				_ = q.String()
			}
		}()
	}
}
