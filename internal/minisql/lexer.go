package minisql

import (
	"strings"
	"unicode"

	"blend/internal/berr"
)

// tokenType enumerates lexical token classes.
type tokenType int

const (
	tokEOF tokenType = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokSymbol // punctuation and operators
)

type token struct {
	typ tokenType
	// text is the token's canonical text: upper-case for keywords,
	// verbatim for identifiers/symbols, unquoted for strings.
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "HAVING": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "IS": true, "NULL": true, "INNER": true,
	"JOIN": true, "ON": true, "ASC": true, "DESC": true, "DISTINCT": true,
	"TRUE": true, "FALSE": true, "COUNT": true, "SUM": true, "ABS": true,
	"MIN": true, "MAX": true, "AVG": true,
}

// lexer splits a SQL string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.lexWord(start)
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(typ tokenType, text string, pos int) {
	l.toks = append(l.toks, token{typ: typ, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.emit(tokKeyword, upper, start)
	} else {
		l.emit(tokIdent, word, start)
	}
}

func (l *lexer) lexNumber(start int) error {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			// Exponent: e[+/-]digits
			if l.pos+1 < len(l.src) && (isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				l.pos += 2
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			break
		}
		if !isDigit(c) {
			break
		}
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return berr.New(berr.CodeBadQuery, "minisql.lex", "unterminated string literal at offset %d", start)
}

// twoCharSymbols lists multi-byte operators, longest-match-first.
var twoCharSymbols = []string{"::", "<=", ">=", "<>", "!="}

func (l *lexer) lexSymbol(start int) error {
	rest := l.src[l.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			l.pos += len(s)
			l.emit(tokSymbol, s, start)
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.':
		l.pos++
		l.emit(tokSymbol, string(c), start)
		return nil
	}
	return berr.New(berr.CodeBadQuery, "minisql.lex", "unexpected character %q at offset %d", c, l.pos)
}
