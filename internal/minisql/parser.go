package minisql

import (
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errorf("trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token   { return p.toks[p.i] }
func (p *parser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool   { return p.peek().typ == tokEOF }
func (p *parser) save() int     { return p.i }
func (p *parser) restore(m int) { p.i = m }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.typ == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errorf("expected %s at offset %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.typ == tokSymbol && t.text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return errorf("expected %q at offset %d, got %q", sym, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	q.Distinct = p.acceptKeyword("DISTINCT")
	if p.acceptSymbol("*") {
		q.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				t := p.next()
				if t.typ != tokIdent && t.typ != tokKeyword {
					return nil, errorf("expected alias at offset %d", t.pos)
				}
				item.Alias = t.text
			} else if t := p.peek(); t.typ == tokIdent {
				item.Alias = t.text
				p.i++
			}
			q.Select = append(q.Select, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	q.From = from
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		right, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, Join{Right: right, On: cond})
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if len(q.GroupBy) == 0 {
			return nil, errorf("HAVING requires GROUP BY")
		}
		q.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.typ != tokNumber {
			return nil, errorf("expected LIMIT count at offset %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errorf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	var f FromItem
	if p.acceptSymbol("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return f, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return f, err
		}
		f.Sub = sub
	} else {
		t := p.next()
		if t.typ != tokIdent {
			return f, errorf("expected table name at offset %d, got %q", t.pos, t.text)
		}
		f.Table = t.text
	}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.typ != tokIdent {
			return f, errorf("expected alias at offset %d", t.pos)
		}
		f.Alias = t.text
	} else if t := p.peek(); t.typ == tokIdent {
		f.Alias = t.text
		p.i++
	}
	if f.Sub != nil && f.Alias == "" {
		return f, errorf("subquery in FROM requires an alias")
	}
	return f, nil
}

// Expression grammar, loosest to tightest:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add (( = | <> | != | < | <= | > | >= ) add
//	               | [NOT] IN ( expr, … )
//	               | IS [NOT] NULL)?
//	add    := mul (( + | - ) mul)*
//	mul    := unary (( * | / | % ) unary)*
//	unary  := - unary | postfix
//	postfix:= primary ( :: ident )*
//	primary:= literal | call | colref | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Un{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// [NOT] IN
	neg := false
	m := p.save()
	if p.acceptKeyword("NOT") {
		if p.peek().typ == tokKeyword && p.peek().text == "IN" {
			neg = true
		} else {
			p.restore(m)
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		if !p.acceptSymbol(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		return &In{X: l, List: list, Neg: neg}, nil
	}
	if p.acceptKeyword("IS") {
		negNull := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Neg: negNull}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.acceptSymbol(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Bin{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSymbol("+"):
			op = "+"
		case p.acceptSymbol("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSymbol("*"):
			op = "*"
		case p.acceptSymbol("/"):
			op = "/"
		case p.acceptSymbol("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: "-", X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("::") {
		t := p.next()
		if t.typ != tokIdent && t.typ != tokKeyword {
			return nil, errorf("expected cast type at offset %d", t.pos)
		}
		typ := strings.ToLower(t.text)
		if typ != "int" && typ != "float" && typ != "integer" {
			return nil, errorf("unsupported cast ::%s", t.text)
		}
		if typ == "integer" {
			typ = "int"
		}
		x = &Cast{X: x, Type: typ}
	}
	return x, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.typ {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errorf("bad number %q", t.text)
			}
			return &Lit{V: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errorf("bad number %q", t.text)
		}
		return &Lit{V: Int(n)}, nil
	case tokString:
		p.i++
		return &Lit{V: Str(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.i++
			return &Lit{V: Null}, nil
		case "TRUE":
			p.i++
			return &Lit{V: Bool(true)}, nil
		case "FALSE":
			p.i++
			return &Lit{V: Bool(false)}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG", "ABS":
			p.i++
			return p.parseCall(t.text)
		}
		return nil, errorf("unexpected keyword %q at offset %d", t.text, t.pos)
	case tokIdent:
		p.i++
		name := t.text
		if p.acceptSymbol(".") {
			t2 := p.next()
			if t2.typ != tokIdent && t2.typ != tokKeyword {
				return nil, errorf("expected column after %q. at offset %d", name, t2.pos)
			}
			return &ColRef{Qual: name, Name: t2.text}, nil
		}
		if p.peek().typ == tokSymbol && p.peek().text == "(" {
			// Function-call syntax on a plain identifier is unsupported:
			// all functions in the dialect are keywords.
			return nil, errorf("unknown function %q at offset %d", name, t.pos)
		}
		return &ColRef{Name: name}, nil
	case tokSymbol:
		if t.text == "(" {
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errorf("unexpected token %q at offset %d", t.text, t.pos)
}

func (p *parser) parseCall(fn string) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	c := &Call{Fn: fn}
	if p.acceptSymbol("*") {
		if fn != "COUNT" {
			return nil, errorf("%s(*) is not valid", fn)
		}
		c.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return c, nil
	}
	if p.acceptKeyword("DISTINCT") {
		c.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, e)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if len(c.Args) != 1 {
		return nil, errorf("%s takes exactly one argument", fn)
	}
	return c, nil
}
