package minisql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, 'it''s', 1.5e3 FROM t -- comment\nWHERE x <= 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.typ == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "1.5e3", "FROM", "t", "WHERE", "x", "<=", "2"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("want unterminated string error")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("want unexpected character error")
	}
}

func TestParseListing1(t *testing.T) {
	// The SC seeker of the paper (Listing 1).
	q := mustParse(t, `SELECT TableId FROM AllTables
		WHERE CellValue IN ('HR', 'Marketing', 'Finance')
		GROUP BY TableId, ColumnId
		ORDER BY COUNT(DISTINCT CellValue) DESC
		LIMIT 10`)
	if len(q.Select) != 1 || q.Select[0].Expr.String() != "TableId" {
		t.Fatalf("select = %+v", q.Select)
	}
	if q.From.Table != "AllTables" {
		t.Fatal("from wrong")
	}
	in, ok := q.Where.(*In)
	if !ok || len(in.List) != 3 || in.Neg {
		t.Fatalf("where = %#v", q.Where)
	}
	if len(q.GroupBy) != 2 {
		t.Fatal("group by wrong")
	}
	ob := q.OrderBy[0]
	if !ob.Desc {
		t.Fatal("order should be DESC")
	}
	call, ok := ob.Expr.(*Call)
	if !ok || call.Fn != "COUNT" || !call.Distinct {
		t.Fatalf("order expr = %#v", ob.Expr)
	}
	if q.Limit != 10 {
		t.Fatal("limit wrong")
	}
}

func TestParseListing2(t *testing.T) {
	// The MC seeker's first phase (Listing 2): join of two subqueries.
	q := mustParse(t, `SELECT * FROM
		(SELECT * FROM AllTables WHERE CellValue IN ('HR')) AS Q1_index_hits
		INNER JOIN
		(SELECT * FROM AllTables WHERE CellValue IN ('Firenze')) AS Q2_index_hits
		ON Q1_index_hits.TableId = Q2_index_hits.TableId
		AND Q1_index_hits.RowId = Q2_index_hits.RowId`)
	if !q.Star {
		t.Fatal("want SELECT *")
	}
	if q.From.Sub == nil || q.From.Alias != "Q1_index_hits" {
		t.Fatal("left subquery wrong")
	}
	if len(q.Joins) != 1 || q.Joins[0].Right.Alias != "Q2_index_hits" {
		t.Fatal("join wrong")
	}
}

func TestParseListing3Score(t *testing.T) {
	// The correlation seeker's QCR score expression (§VI).
	q := mustParse(t, `SELECT keys.TableId FROM
		(SELECT * FROM AllTables WHERE RowId < 256 AND CellValue IN ('a','b')) keys
		INNER JOIN
		(SELECT * FROM AllTables WHERE RowId < 256 AND Quadrant IS NOT NULL) nums
		ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId
		GROUP BY keys.TableId, nums.ColumnId, keys.ColumnId
		ORDER BY ABS((2 * SUM(((keys.CellValue IN ('a') AND nums.Quadrant = 0)
			OR (keys.CellValue IN ('b') AND nums.Quadrant = 1))::int) - COUNT(*)) / COUNT(*)) DESC
		LIMIT 10`)
	if len(q.GroupBy) != 3 {
		t.Fatal("group by wrong")
	}
	if !hasAggregate(q.OrderBy[0].Expr) {
		t.Fatal("order expr must contain aggregates")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM (SELECT * FROM t)", // subquery needs alias
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t trailing garbage (",
		"SELECT x() FROM t",
		"SELECT COUNT(a, b) FROM t",
		"SELECT SUM(*) FROM t",
		"SELECT a::text FROM t",
		"SELECT * FROM t WHERE a IN (1,",
		"SELECT * FROM t ORDER",
		"SELECT * FROM t GROUP x",
		"SELECT * FROM t INNER t2 ON a = b",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	q := mustParse(t, "SELECT a + b * c FROM t")
	want := "(a + (b * c))"
	if got := q.Select[0].Expr.String(); got != want {
		t.Fatalf("precedence: got %s, want %s", got, want)
	}
	q = mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	wantW := "((a = 1) OR ((b = 2) AND (c = 3)))"
	if got := q.Where.String(); got != wantW {
		t.Fatalf("precedence: got %s, want %s", got, wantW)
	}
}

func TestParseNotIn(t *testing.T) {
	q := mustParse(t, "SELECT * FROM t WHERE a NOT IN (1, 2)")
	in, ok := q.Where.(*In)
	if !ok || !in.Neg {
		t.Fatalf("where = %#v", q.Where)
	}
	// NOT followed by something other than IN is a plain negation.
	q = mustParse(t, "SELECT * FROM t WHERE NOT a = 1")
	if _, ok := q.Where.(*Un); !ok {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestParseIsNull(t *testing.T) {
	q := mustParse(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
	b := q.Where.(*Bin)
	l := b.L.(*IsNull)
	r := b.R.(*IsNull)
	if l.Neg || !r.Neg {
		t.Fatal("IS NULL parse wrong")
	}
}

func TestParseCast(t *testing.T) {
	q := mustParse(t, "SELECT (a = 1)::int FROM t")
	c, ok := q.Select[0].Expr.(*Cast)
	if !ok || c.Type != "int" {
		t.Fatalf("cast = %#v", q.Select[0].Expr)
	}
	// ::integer is normalized to ::int.
	q = mustParse(t, "SELECT a::integer FROM t")
	if q.Select[0].Expr.(*Cast).Type != "int" {
		t.Fatal("integer alias not normalized")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q := mustParse(t, "SELECT -3, -x, 2 - -1 FROM t")
	if q.Select[0].Expr.String() != "(-3)" {
		t.Fatalf("got %s", q.Select[0].Expr)
	}
}

// TestPrinterRoundTrip ensures every parsed query prints back to SQL that
// re-parses to the identical printed form (fixed point after one cycle).
func TestPrinterRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT TableId FROM AllTables WHERE CellValue IN ('a', 'b') GROUP BY TableId, ColumnId ORDER BY COUNT(DISTINCT CellValue) DESC LIMIT 10",
		"SELECT * FROM (SELECT * FROM T WHERE x = 1) AS s INNER JOIN u AS v ON s.a = v.b WHERE s.c <> 2",
		"SELECT a AS x, SUM(b) AS total FROM t GROUP BY a ORDER BY total DESC, x ASC LIMIT 5",
		"SELECT ABS(a - b) FROM t WHERE a IS NOT NULL AND b NOT IN (1, 2, 3)",
		"SELECT (a = 1)::int FROM t WHERE NOT (a OR b)",
		"SELECT COUNT(*) FROM t",
		"SELECT a FROM t WHERE a IN ()",
	}
	for _, sql := range queries {
		q1 := mustParse(t, sql)
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("round trip not stable:\n  1: %s\n  2: %s", printed, q2.String())
		}
	}
}
