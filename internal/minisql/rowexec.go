package minisql

import "strings"

// This file is the frozen row-at-a-time reference executor: the exact
// pipeline the engine ran before the columnar rewrite in exec.go, kept as
// an independently-executable oracle. It exists for two reasons:
//
//   - Differential safety net: columnar_test.go runs every query through
//     both executors and requires cell-identical results, so any batching
//     bug surfaces as a divergence from this simpler implementation.
//   - Honest ablation: the BenchmarkMinisqlRowAtATime /
//     BenchmarkMinisqlColumnar pair measures the columnar rewrite against
//     the real former executor — per-row slice materialization, chunked
//     row arenas, strings.Builder keys and all — not against a strawman.
//
// It shares the planning helpers (collectNeeded, bestIndexPath, orderRows,
// selectTopUnits, aliasMap, outputColumns) with the live executor so the
// two differ only in data representation, and it must not be "improved":
// its value is staying byte-for-byte faithful to the old execution
// strategy.

// rowResult is the row-major result representation of the reference
// executor. It implements evalSrc, so both executors share eval.
type rowResult struct {
	cols  []string
	quals []string
	rows  [][]Value
}

func (r *rowResult) NumRows() int          { return len(r.rows) }
func (r *rowResult) at(row, col int) Value { return r.rows[row][col] }
func (r *rowResult) resolve(qual, name string) (int, error) {
	return resolveCol(r.cols, r.quals, qual, name)
}

// toColumnar converts the reference representation into the public Result
// form so callers can compare the two executors' outputs directly.
func (r *rowResult) toColumnar() *Result {
	out := &Result{cols: r.cols, quals: r.quals, vals: make([][]Value, len(r.cols)), n: len(r.rows)}
	for c := range r.cols {
		v := make([]Value, len(r.rows))
		for i, row := range r.rows {
			v[i] = row[c]
		}
		out.vals[c] = v
	}
	return out
}

// ExecSQLRowAtATime parses and executes a statement with the frozen
// row-at-a-time reference executor. Production code uses ExecSQL; this
// entry point exists for differential tests and ablation benchmarks.
func ExecSQLRowAtATime(cat *Catalog, sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	res, err := execRow(cat, q)
	if err != nil {
		return nil, err
	}
	return res.toColumnar(), nil
}

// execRow is the reference counterpart of Exec.
func execRow(cat *Catalog, q *Query) (*rowResult, error) {
	src, err := execSourceRow(cat, q)
	if err != nil {
		return nil, err
	}
	needsAgg := len(q.GroupBy) > 0
	if !needsAgg {
		for _, it := range q.Select {
			if hasAggregate(it.Expr) {
				needsAgg = true
				break
			}
		}
	}
	var out *rowResult
	if needsAgg {
		out, err = execAggregateRow(q, src)
	} else {
		out, err = execProjectRow(q, src)
	}
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		out.rows = dedupeRowsRow(out.rows)
	}
	if q.Limit >= 0 && len(out.rows) > q.Limit {
		out.rows = out.rows[:q.Limit]
	}
	return out, nil
}

// dedupeRowsRow removes duplicate output rows, keeping the first
// occurrence so ORDER BY ranking is preserved.
func dedupeRowsRow(rows [][]Value) [][]Value {
	if len(rows) == 0 {
		return rows
	}
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	var kb []byte
	for _, row := range rows {
		kb = kb[:0]
		for _, v := range row {
			kb = v.AppendGroupKey(kb)
			kb = append(kb, 0x1f)
		}
		if _, dup := seen[string(kb)]; dup {
			continue
		}
		seen[string(kb)] = struct{}{}
		out = append(out, row)
	}
	return out
}

func execSourceRow(cat *Catalog, q *Query) (*rowResult, error) {
	if len(q.Joins) == 0 {
		return execFromItemRow(cat, q.From, q.Where, collectNeeded(q))
	}
	left, err := execFromItemRow(cat, q.From, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, j := range q.Joins {
		right, err := execFromItemRow(cat, j.Right, nil, nil)
		if err != nil {
			return nil, err
		}
		left, err = hashJoinRow(left, right, j.On)
		if err != nil {
			return nil, err
		}
	}
	if q.Where == nil {
		return left, nil
	}
	return filterResultRow(left, q.Where)
}

func execFromItemRow(cat *Catalog, f FromItem, where Expr, need neededCols) (*rowResult, error) {
	if f.Sub != nil {
		res, err := execRow(cat, f.Sub)
		if err != nil {
			return nil, err
		}
		quals := make([]string, len(res.cols))
		for i := range quals {
			quals[i] = f.Alias
		}
		res = &rowResult{cols: res.cols, quals: quals, rows: res.rows}
		if where == nil {
			return res, nil
		}
		return filterResultRow(res, where)
	}
	rel, ok := cat.Lookup(f.Table)
	if !ok {
		return nil, errorf("unknown relation %q", f.Table)
	}
	qual := f.Alias
	if qual == "" {
		qual = f.Table
	}
	return scanBaseRow(rel, qual, where, need)
}

// scanBaseRow materializes matching rows one slice at a time, carving
// copies out of chunked arenas — the old executor's materialization
// strategy, preserved for the ablation.
func scanBaseRow(rel Relation, qual string, where Expr, need neededCols) (*rowResult, error) {
	cols := rel.Columns()
	quals := make([]string, len(cols))
	for i := range quals {
		quals[i] = qual
	}
	out := &rowResult{cols: append([]string(nil), cols...), quals: quals}
	wanted := make([]bool, len(cols))
	for i, c := range cols {
		if need == nil {
			wanted[i] = true
			continue
		}
		_, wanted[i] = need[strings.ToLower(c)]
	}

	var candidates []int
	fullScan := true
	if where != nil {
		if ix, ok := rel.(IndexedRelation); ok {
			if rows, ok := bestIndexPath(ix, cols, qual, where); ok {
				candidates = rows
				fullScan = false
			}
		}
	}

	nc := len(cols)
	expect := -1
	if !fullScan {
		expect = len(candidates)
	} else if where == nil {
		expect = rel.NumRows()
	}
	if expect >= 0 {
		out.rows = make([][]Value, 0, expect)
	}
	const arenaChunkRows = 512
	var arena []Value
	takeRow := func() []Value {
		if len(arena) < nc || nc == 0 {
			chunk := arenaChunkRows
			if expect >= 0 && expect < chunk {
				chunk = expect
			}
			if chunk < 1 {
				chunk = 1
			}
			arena = make([]Value, nc*chunk)
		}
		row := arena[:nc:nc]
		arena = arena[nc:]
		return row
	}

	var visible func(int) bool
	if tr, ok := rel.(Tombstoned); ok && tr.HasTombstones() {
		visible = tr.RowVisible
	}

	buf := make([]Value, len(cols))
	scratch := &rowResult{cols: out.cols, quals: out.quals, rows: [][]Value{buf}}
	ctx := &evalCtx{res: scratch}
	emit := func(r int) error {
		if visible != nil && !visible(r) {
			return nil
		}
		for c := range cols {
			if wanted[c] {
				buf[c] = rel.Cell(r, c)
			} else {
				buf[c] = Null
			}
		}
		if where != nil {
			v, err := eval(where, ctx)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		row := takeRow()
		copy(row, buf)
		out.rows = append(out.rows, row)
		return nil
	}
	if fullScan {
		n := rel.NumRows()
		for r := 0; r < n; r++ {
			if err := emit(r); err != nil {
				return nil, err
			}
		}
	} else {
		for _, r := range candidates {
			if err := emit(r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func filterResultRow(src *rowResult, where Expr) (*rowResult, error) {
	out := &rowResult{cols: src.cols, quals: src.quals}
	ctx := &evalCtx{res: src}
	for r := range src.rows {
		ctx.row = r
		v, err := eval(where, ctx)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			out.rows = append(out.rows, src.rows[r])
		}
	}
	return out, nil
}

// hashJoinRow materializes one joined slice per emitted row and builds
// hash keys with strings.Builder — the old executor's join, preserved for
// the ablation.
func hashJoinRow(left, right *rowResult, on Expr) (*rowResult, error) {
	type eqPair struct{ l, r int }
	var eqs []eqPair
	var residual []Expr
	var collect func(e Expr) error
	collect = func(e Expr) error {
		if b, ok := e.(*Bin); ok {
			if b.Op == "AND" {
				if err := collect(b.L); err != nil {
					return err
				}
				return collect(b.R)
			}
			if b.Op == "=" {
				lc, lok := b.L.(*ColRef)
				rc, rok := b.R.(*ColRef)
				if lok && rok {
					li, lerr := left.resolve(lc.Qual, lc.Name)
					ri, rerr := right.resolve(rc.Qual, rc.Name)
					if lerr == nil && rerr == nil {
						eqs = append(eqs, eqPair{li, ri})
						return nil
					}
					li2, lerr2 := left.resolve(rc.Qual, rc.Name)
					ri2, rerr2 := right.resolve(lc.Qual, lc.Name)
					if lerr2 == nil && rerr2 == nil {
						eqs = append(eqs, eqPair{li2, ri2})
						return nil
					}
				}
			}
		}
		residual = append(residual, e)
		return nil
	}
	if err := collect(on); err != nil {
		return nil, err
	}

	out := &rowResult{
		cols:  append(append([]string(nil), left.cols...), right.cols...),
		quals: append(append([]string(nil), left.quals...), right.quals...),
	}
	var resid Expr
	for _, e := range residual {
		if resid == nil {
			resid = e
		} else {
			resid = &Bin{Op: "AND", L: resid, R: e}
		}
	}
	ctx := &evalCtx{res: out}
	emit := func(lr, rr []Value) error {
		row := make([]Value, 0, len(lr)+len(rr))
		row = append(row, lr...)
		row = append(row, rr...)
		if resid != nil {
			out.rows = append(out.rows, row) // temporarily visible to ctx
			ctx.row = len(out.rows) - 1
			v, err := eval(resid, ctx)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				out.rows = out.rows[:len(out.rows)-1]
			}
			return nil
		}
		out.rows = append(out.rows, row)
		return nil
	}

	if len(eqs) == 0 {
		for lr := range left.rows {
			for rr := range right.rows {
				if err := emit(left.rows[lr], right.rows[rr]); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	buildLeft := len(left.rows) < len(right.rows)
	build, probe := right, left
	if buildLeft {
		build, probe = left, right
	}
	key := func(res *rowResult, r int) (string, bool) {
		var sb strings.Builder
		for _, eq := range eqs {
			col := eq.r
			if res == left {
				col = eq.l
			}
			v := res.rows[r][col]
			if v.IsNull() {
				return "", false // NULL never joins
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0x1f)
		}
		return sb.String(), true
	}
	ht := make(map[string][]int, len(build.rows))
	for r := range build.rows {
		if k, ok := key(build, r); ok {
			ht[k] = append(ht[k], r)
		}
	}
	for pr := range probe.rows {
		k, ok := key(probe, pr)
		if !ok {
			continue
		}
		for _, br := range ht[k] {
			lr, rr := pr, br
			if buildLeft {
				lr, rr = br, pr
			}
			if err := emit(left.rows[lr], right.rows[rr]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func execProjectRow(q *Query, src *rowResult) (*rowResult, error) {
	aliases := aliasMap(q)
	if q.Star {
		ordered, err := orderRows(q, src, len(src.rows), nil, aliases, pushableLimit(q))
		if err != nil {
			return nil, err
		}
		out := &rowResult{cols: src.cols, quals: src.quals}
		for _, r := range ordered {
			out.rows = append(out.rows, src.rows[r])
		}
		return out, nil
	}
	cols, quals := outputColumns(q)
	proj := make([][]Value, len(src.rows))
	ctx := &evalCtx{res: src}
	for r := range src.rows {
		ctx.row = r
		row := make([]Value, len(q.Select))
		for i, it := range q.Select {
			v, err := eval(it.Expr, ctx)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		proj[r] = row
	}
	ordered, err := orderRows(q, src, len(src.rows), nil, aliases, pushableLimit(q))
	if err != nil {
		return nil, err
	}
	out := &rowResult{cols: cols, quals: quals}
	for _, r := range ordered {
		out.rows = append(out.rows, proj[r])
	}
	return out, nil
}

// execAggregateRow groups with per-row strings.Builder keys — the old
// executor's aggregation, preserved for the ablation.
func execAggregateRow(q *Query, src *rowResult) (*rowResult, error) {
	if q.Star {
		return nil, errorf("SELECT * cannot be combined with aggregation")
	}
	aliases := aliasMap(q)
	ctx := &evalCtx{res: src, aliases: aliases}

	var groups [][]int
	if len(q.GroupBy) == 0 {
		groups = [][]int{identityIndices(len(src.rows))}
	} else {
		index := make(map[string]int)
		for r := range src.rows {
			ctx.row = r
			var kb strings.Builder
			for _, ge := range q.GroupBy {
				v, err := eval(ge, ctx)
				if err != nil {
					return nil, err
				}
				kb.WriteString(v.GroupKey())
				kb.WriteByte(0x1f)
			}
			k := kb.String()
			gi, ok := index[k]
			if !ok {
				gi = len(groups)
				index[k] = gi
				groups = append(groups, nil)
			}
			groups[gi] = append(groups[gi], r)
		}
	}

	if q.Having != nil {
		kept := groups[:0]
		for _, g := range groups {
			gctx := &evalCtx{res: src, group: g, aliases: aliases}
			v, err := eval(q.Having, gctx)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, g)
			}
		}
		groups = kept
	}

	cols, quals := outputColumns(q)
	out := &rowResult{cols: cols, quals: quals}
	rows := make([][]Value, len(groups))
	for gi, g := range groups {
		gctx := &evalCtx{res: src, group: g, aliases: aliases}
		row := make([]Value, len(q.Select))
		for i, it := range q.Select {
			v, err := eval(it.Expr, gctx)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rows[gi] = row
	}
	order, err := orderRows(q, src, len(groups), groups, aliases, pushableLimit(q))
	if err != nil {
		return nil, err
	}
	for _, gi := range order {
		out.rows = append(out.rows, rows[gi])
	}
	return out, nil
}
