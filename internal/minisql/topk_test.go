package minisql

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// rowsOf flattens a columnar result back into row slices for test
// comparisons.
func rowsOf(r *Result) [][]Value {
	if r.NumRows() == 0 {
		return nil
	}
	out := make([][]Value, r.NumRows())
	for i := range out {
		row := make([]Value, len(r.Columns()))
		for c := range row {
			row[c] = r.Cell(i, c)
		}
		out[i] = row
	}
	return out
}

// TestOrderByLimitMatchesFullSort is the partial-selection property test:
// for random data, random ORDER BY directions, and every limit, a LIMIT k
// query must return exactly the first k rows of the unlimited query —
// including ties, which both code paths break by first-seen row/group
// order.
func TestOrderByLimitMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := NewMemRelation("grp", "score", "id")
	n := 200
	for i := 0; i < n; i++ {
		// Few distinct scores so ties are common.
		m.Append(
			Str(fmt.Sprintf("g%d", rng.Intn(8))),
			Int(int64(rng.Intn(5))),
			Int(int64(i)),
		)
	}
	m.BuildIndex(0)
	cat := catWith("t", m)

	queries := []string{
		"SELECT id, score FROM t ORDER BY score DESC",
		"SELECT id, score FROM t ORDER BY score ASC, grp DESC",
		"SELECT grp, COUNT(*) AS c FROM t GROUP BY grp ORDER BY c DESC",
		"SELECT grp, COUNT(DISTINCT score) AS c FROM t GROUP BY grp ORDER BY c DESC, grp ASC",
	}
	for _, q := range queries {
		full := exec(t, cat, q)
		for _, k := range []int{0, 1, 2, 3, 7, full.NumRows() - 1, full.NumRows(), full.NumRows() + 5} {
			if k < 0 {
				continue
			}
			limited := exec(t, cat, fmt.Sprintf("%s LIMIT %d", q, k))
			want := rowsOf(full)
			if k < len(want) {
				want = want[:k]
			}
			got := rowsOf(limited)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s LIMIT %d:\n got %v\nwant %v", q, k, got, want)
			}
		}
	}
}

// TestDistinctWithLimitUnaffected guards the pushdown's exclusion rule:
// DISTINCT dedupes after ordering, so LIMIT must apply to the deduped
// rows, not the sorted ones.
func TestDistinctWithLimitUnaffected(t *testing.T) {
	m := NewMemRelation("v")
	for _, v := range []string{"b", "b", "b", "a", "a", "c"} {
		m.Append(Str(v))
	}
	cat := catWith("t", m)
	res := exec(t, cat, "SELECT DISTINCT v FROM t ORDER BY v ASC LIMIT 2")
	if got := col0Strings(res); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("got %v, want [a b]", got)
	}
}
