// Package minisql is an embedded SQL engine covering exactly the dialect
// BLEND's seekers emit against the AllTables index (Listings 1–3 of the
// paper plus the optimizer's rewritten predicates): SELECT with expressions
// and aggregates, FROM over base relations, subqueries and INNER JOINs,
// WHERE with IN / NOT IN / comparisons / IS NULL, GROUP BY, ORDER BY with
// ASC/DESC, LIMIT, and boolean-to-int casts. Queries are parsed to an AST,
// lightly planned (index access paths, hash joins), and executed against
// relations registered in a Catalog.
package minisql

import (
	"strconv"
	"strings"

	"blend/internal/berr"
)

// Kind tags the runtime type of a Value.
type Kind int

const (
	// KNull is the SQL NULL.
	KNull Kind = iota
	// KStr is a string value.
	KStr
	// KInt is a 64-bit integer.
	KInt
	// KFloat is a 64-bit float.
	KFloat
	// KBool is a boolean.
	KBool
)

// Value is a runtime SQL value. The zero Value is NULL.
type Value struct {
	K Kind
	S string
	I int64
	F float64
	B bool
}

// Null is the SQL NULL value.
var Null = Value{K: KNull}

// Str makes a string value.
func Str(s string) Value { return Value{K: KStr, S: s} }

// Int makes an integer value.
func Int(i int64) Value { return Value{K: KInt, I: i} }

// Float makes a float value.
func Float(f float64) Value { return Value{K: KFloat, F: f} }

// Bool makes a boolean value.
func Bool(b bool) Value { return Value{K: KBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KNull }

// AsFloat coerces v to a float64; booleans become 0/1, strings are parsed.
// The second result is false when coercion is impossible (including NULL).
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case KInt:
		return float64(v.I), true
	case KFloat:
		return v.F, true
	case KBool:
		if v.B {
			return 1, true
		}
		return 0, true
	case KStr:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsInt coerces v to an int64, truncating floats.
func (v Value) AsInt() (int64, bool) {
	switch v.K {
	case KInt:
		return v.I, true
	case KFloat:
		return int64(v.F), true
	case KBool:
		if v.B {
			return 1, true
		}
		return 0, true
	case KStr:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		return i, err == nil
	default:
		return 0, false
	}
}

// Truthy reports whether v counts as true in a WHERE clause. NULL is falsy.
func (v Value) Truthy() bool {
	switch v.K {
	case KBool:
		return v.B
	case KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KStr:
		return v.S != ""
	default:
		return false
	}
}

// Equal reports SQL equality. NULL never equals anything (NULL = NULL is
// not true). Numeric kinds compare numerically across int/float.
func (v Value) Equal(o Value) bool {
	if v.K == KNull || o.K == KNull {
		return false
	}
	if v.numericKind() && o.numericKind() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.K == KStr && o.K == KStr {
		return v.S == o.S
	}
	if v.K == KBool && o.K == KBool {
		return v.B == o.B
	}
	// Mixed string/number: compare as strings if numeric parse fails.
	a, aok := v.AsFloat()
	b, bok := o.AsFloat()
	if aok && bok {
		return a == b
	}
	return v.text() == o.text()
}

// Compare orders two non-null values: -1, 0, or 1. NULLs sort first.
func (v Value) Compare(o Value) int {
	if v.K == KNull && o.K == KNull {
		return 0
	}
	if v.K == KNull {
		return -1
	}
	if o.K == KNull {
		return 1
	}
	if v.numericKind() && o.numericKind() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.text(), o.text())
}

func (v Value) numericKind() bool { return v.K == KInt || v.K == KFloat || v.K == KBool }

func (v Value) text() string {
	switch v.K {
	case KStr:
		return v.S
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// String renders v for diagnostics and result printing.
func (v Value) String() string {
	if v.K == KNull {
		return "NULL"
	}
	if v.K == KStr {
		return v.S
	}
	return v.text()
}

// GroupKey renders v into a canonical string usable as a map key for
// GROUP BY, DISTINCT, and hashed IN probes. Numeric kinds (including
// booleans, which compare as 0/1 under Equal) share one canonical form so
// grouping matches Equal's cross-kind numeric semantics.
func (v Value) GroupKey() string { return string(v.AppendGroupKey(nil)) }

// AppendGroupKey appends v's GroupKey bytes to buf, letting hot loops
// (DISTINCT, GROUP BY) build composite keys in one reused buffer instead
// of allocating a string per value.
func (v Value) AppendGroupKey(buf []byte) []byte {
	switch v.K {
	case KNull:
		return append(buf, 0, 'N')
	case KStr:
		return append(append(buf, 0, 'S'), v.S...)
	case KInt:
		// AppendInt matches AppendFloat(…, 'g') for integral values, so
		// Int(5) and Float(5) share a key without the float formatter.
		return strconv.AppendInt(append(buf, 0, 'F'), v.I, 10)
	case KBool:
		if v.B {
			return append(buf, 0, 'F', '1')
		}
		return append(buf, 0, 'F', '0')
	default:
		if v.F == float64(int64(v.F)) {
			return strconv.AppendInt(append(buf, 0, 'F'), int64(v.F), 10)
		}
		return strconv.AppendFloat(append(buf, 0, 'F'), v.F, 'g', -1, 64)
	}
}

// errorf builds engine errors as typed bad-query errors: everything the
// SQL layer rejects — at parse time or mid-execution — traces back to the
// statement the caller supplied.
func errorf(format string, args ...any) error {
	return berr.New(berr.CodeBadQuery, "minisql", format, args...)
}
