package minisql

import (
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	if !Null.IsNull() || Str("x").IsNull() || Int(0).IsNull() {
		t.Fatal("IsNull wrong")
	}
	if Str("a").S != "a" || Int(7).I != 7 || Float(1.5).F != 1.5 || !Bool(true).B {
		t.Fatal("constructors wrong")
	}
}

func TestAsFloat(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{Int(3), 3, true},
		{Float(2.5), 2.5, true},
		{Bool(true), 1, true},
		{Bool(false), 0, true},
		{Str("4.5"), 4.5, true},
		{Str(" 7 "), 7, true},
		{Str("abc"), 0, false},
		{Null, 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("AsFloat(%v) = %v,%v want %v,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestAsInt(t *testing.T) {
	if got, ok := Float(3.9).AsInt(); !ok || got != 3 {
		t.Fatal("float truncation wrong")
	}
	if _, ok := Str("x").AsInt(); ok {
		t.Fatal("non-numeric string should fail")
	}
	if got, ok := Str("12").AsInt(); !ok || got != 12 {
		t.Fatal("numeric string should parse")
	}
}

func TestTruthy(t *testing.T) {
	for _, v := range []Value{Bool(true), Int(1), Float(0.5), Str("x")} {
		if !v.Truthy() {
			t.Fatalf("%v should be truthy", v)
		}
	}
	for _, v := range []Value{Bool(false), Int(0), Float(0), Str(""), Null} {
		if v.Truthy() {
			t.Fatalf("%v should be falsy", v)
		}
	}
}

func TestEqualSemantics(t *testing.T) {
	if Null.Equal(Null) {
		t.Fatal("NULL = NULL must not be true")
	}
	if !Int(5).Equal(Float(5.0)) {
		t.Fatal("cross-kind numeric equality")
	}
	if !Str("5").Equal(Int(5)) {
		t.Fatal("numeric string equals number")
	}
	if Str("5.0").Equal(Str("5")) {
		t.Fatal("two strings compare as text")
	}
	if !Bool(true).Equal(Int(1)) {
		t.Fatal("bool compares as 0/1 against numbers")
	}
	if Str("abc").Equal(Int(5)) {
		t.Fatal("non-numeric string never equals a number")
	}
}

func TestCompareOrdering(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(2).Compare(Float(2)) != 0 {
		t.Fatal("numeric compare wrong")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Fatal("string compare wrong")
	}
	// NULLs sort first.
	if Null.Compare(Int(0)) != -1 || Int(0).Compare(Null) != 1 || Null.Compare(Null) != 0 {
		t.Fatal("null ordering wrong")
	}
}

// TestGroupKeyConsistentWithEqual: equal values must share a group key for
// every kind combination GroupKey canonicalizes (numeric cross-kind).
func TestGroupKeyConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{Int(5), Float(5)},
		{Bool(true), Int(1)},
		{Bool(false), Float(0)},
		{Int(-3), Float(-3)},
	}
	for _, p := range pairs {
		if p[0].GroupKey() != p[1].GroupKey() {
			t.Fatalf("GroupKey(%v) != GroupKey(%v)", p[0], p[1])
		}
	}
	// Distinct values must (very likely) have distinct keys.
	if Int(1).GroupKey() == Int(2).GroupKey() || Str("a").GroupKey() == Str("b").GroupKey() {
		t.Fatal("distinct values collide")
	}
	// Strings and numbers never share keys even when numerically equal —
	// the IN evaluator handles that coercion case by scan.
	if Str("5").GroupKey() == Int(5).GroupKey() {
		t.Fatal("string and number must not share a group key")
	}
}

func TestGroupKeyQuickProperties(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := Int(a).GroupKey(), Int(b).GroupKey()
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	g := func(a, b string) bool {
		return (a == b) == (Str(a).GroupKey() == Str(b).GroupKey())
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	if Null.String() != "NULL" || Str("x").String() != "x" ||
		Int(3).String() != "3" || Bool(true).String() != "true" {
		t.Fatal("String rendering wrong")
	}
}
