// Package qcr implements the Quadrant Count Ratio statistic (Holmes 2001)
// used by BLEND's correlation seeker to approximate Pearson correlation
// inside the database (§V of the paper, adapting the QCR index of Santos et
// al., ICDE 2022).
//
// Given paired observations (x_i, y_i), each pair is assigned to a quadrant
// by comparing x_i and y_i to their respective means. The QCR is
//
//	QCR = (n_I + n_III − n_II − n_IV) / N
//
// which, since n_II + n_IV = N − (n_I + n_III), BLEND computes in one pass as
// (2·(n_I + n_III) − N) / N.
//
// BLEND's index stores a single Quadrant bit per numeric cell: 1 when the
// cell is ≥ its column mean, 0 otherwise, and null for non-numeric cells
// (Fig. 3). Pairing a query-side bit with an indexed bit reduces quadrant
// counting to bit agreement: a pair is in Quadrant I or III exactly when the
// two bits are equal.
package qcr

import "math"

// QuadrantBit reports whether v falls in the upper half-plane relative to
// mean: 1 when v >= mean, 0 otherwise.
func QuadrantBit(v, mean float64) int8 {
	if v >= mean {
		return 1
	}
	return 0
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Bits computes the quadrant bit of every value against the slice mean.
func Bits(xs []float64) []int8 {
	m := Mean(xs)
	out := make([]int8, len(xs))
	for i, x := range xs {
		out[i] = QuadrantBit(x, m)
	}
	return out
}

// FromAgreement computes QCR from the number of agreeing pairs (both bits
// equal: quadrants I and III) out of n total pairs, using the one-pass
// formula (2·agree − n)/n. It returns 0 when n == 0.
func FromAgreement(agree, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(2*agree-n) / float64(n)
}

// Score computes the QCR of two paired bit vectors. Vectors must have equal
// length; extra elements of the longer one are ignored.
func Score(a, b []int8) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	agree := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			agree++
		}
	}
	return FromAgreement(agree, n)
}

// Pearson computes the exact Pearson correlation coefficient of paired
// observations. It returns 0 when either side has zero variance or fewer
// than two pairs are given. It is used to build experiment ground truth.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
