package qcr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuadrantBit(t *testing.T) {
	if QuadrantBit(5, 3) != 1 || QuadrantBit(3, 3) != 1 || QuadrantBit(2, 3) != 0 {
		t.Fatal("quadrant bit wrong")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestBits(t *testing.T) {
	bits := Bits([]float64{1, 2, 3, 4})
	want := []int8{0, 0, 1, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v, want %v", bits, want)
		}
	}
}

func TestFromAgreement(t *testing.T) {
	if FromAgreement(0, 0) != 0 {
		t.Fatal("empty should be 0")
	}
	if FromAgreement(10, 10) != 1 {
		t.Fatal("all agree should be 1")
	}
	if FromAgreement(0, 10) != -1 {
		t.Fatal("none agree should be -1")
	}
	if FromAgreement(5, 10) != 0 {
		t.Fatal("half agree should be 0")
	}
}

func TestScorePerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{10, 20, 30, 40, 50, 60}
	if got := Score(Bits(xs), Bits(ys)); got != 1 {
		t.Fatalf("QCR of perfectly correlated = %v, want 1", got)
	}
	// Anti-correlation.
	zs := []float64{60, 50, 40, 30, 20, 10}
	if got := Score(Bits(xs), Bits(zs)); got != -1 {
		t.Fatalf("QCR of anti-correlated = %v, want -1", got)
	}
}

func TestScoreBounds(t *testing.T) {
	f := func(raw []float64, raw2 []float64) bool {
		n := len(raw)
		if len(raw2) < n {
			n = len(raw2)
		}
		s := Score(Bits(raw[:n]), Bits(raw2[:n]))
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("single pair should be 0")
	}
	if Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("zero variance should be 0")
	}
}

// TestQCRApproximatesPearson checks the statistical claim behind the index:
// on linearly related data with noise, QCR tracks the sign and rough
// magnitude of Pearson.
func TestQCRApproximatesPearson(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.8*xs[i] + 0.4*rng.NormFloat64()
	}
	p := Pearson(xs, ys)
	q := Score(Bits(xs), Bits(ys))
	if p < 0.7 {
		t.Fatalf("test setup wrong, Pearson = %v", p)
	}
	if q < 0.4 {
		t.Fatalf("QCR = %v does not track strong positive Pearson %v", q, p)
	}
	// Uncorrelated data should give small QCR.
	zs := make([]float64, n)
	for i := range zs {
		zs[i] = rng.NormFloat64()
	}
	if q := Score(Bits(xs), Bits(zs)); math.Abs(q) > 0.15 {
		t.Fatalf("QCR of independent data = %v, want near 0", q)
	}
}

func TestScoreUnequalLengths(t *testing.T) {
	a := []int8{1, 1, 0}
	b := []int8{1, 1, 0, 0, 1}
	if Score(a, b) != Score(b, a) {
		t.Fatal("Score must truncate to the shorter vector symmetrically")
	}
}
