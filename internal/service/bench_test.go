package service

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"blend"
)

// benchDiscovery builds a synthetic lake big enough that /v1/query does
// real index work: nTables tables of 40 rows with overlapping city
// vocabularies, sharded for concurrent scans.
func benchDiscovery(nTables, shards int) *blend.Discovery {
	rng := rand.New(rand.NewSource(42))
	tables := make([]*blend.Table, nTables)
	for i := range tables {
		t := blend.NewTable(fmt.Sprintf("t%03d", i), "City", "Code", "Metric")
		for r := 0; r < 40; r++ {
			c := rng.Intn(200)
			t.MustAppendRow(
				fmt.Sprintf("city_%03d", c),
				fmt.Sprintf("code_%03d", (c+i)%200),
				fmt.Sprintf("%d", rng.Intn(1000)))
		}
		t.InferKinds()
		tables[i] = t
	}
	return blend.IndexTables(blend.ColumnStore, tables, blend.WithShards(shards))
}

// benchQueryBody is a three-seeker plan with a Union head: independent
// sub-trees, so the scheduler overlaps them under max_workers.
func benchQueryBody(workers int) string {
	var vals []string
	for i := 0; i < 24; i++ {
		vals = append(vals, fmt.Sprintf("%q", fmt.Sprintf("city_%03d", i*7%200)))
	}
	list := strings.Join(vals, ",")
	return fmt.Sprintf(`{
	  "plan": {"nodes": [
	    {"id": "sc", "seeker": {"kind": "sc", "values": [%s], "k": 10}},
	    {"id": "kw", "seeker": {"kind": "kw", "values": [%s], "k": 10}},
	    {"id": "mc", "seeker": {"kind": "mc", "tuples": [["city_007","code_007"]], "k": 10}},
	    {"id": "any", "combiner": {"kind": "union", "k": 10}, "inputs": ["sc", "kw", "mc"]}
	  ]},
	  "options": {"max_workers": %d}
	}`, list, list, workers)
}

// BenchmarkServeQuery is the end-to-end service benchmark: concurrent
// POST /v1/query load against an indexed lake, through real HTTP
// (connection handling, JSON decode, plan parse, engine run, JSON
// encode). Run with -cpu to scale client concurrency.
func BenchmarkServeQuery(b *testing.B) {
	for _, cfg := range []struct {
		name            string
		shards, workers int
	}{
		{"mono-seq", 1, 0},
		{"sharded4-workers4", 4, 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			srv := newTestServer(b, benchDiscovery(120, cfg.shards))
			client := srv.Client()
			client.Timeout = 30 * time.Second
			body := benchQueryBody(cfg.workers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := client.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
			})
		})
	}
}

// BenchmarkServeSeek measures the cheapest round trip: one keyword
// seeker per request.
func BenchmarkServeSeek(b *testing.B) {
	srv := newTestServer(b, benchDiscovery(120, 1))
	client := srv.Client()
	body := `{"seeker": {"kind": "kw", "values": ["city_007", "city_014"], "k": 10}}`
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Post(srv.URL+"/v1/seek", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
}
