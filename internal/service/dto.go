// Package service is BLEND's transport layer: versioned request/response
// DTOs for discovery over the wire, their validation, and the HTTP
// handlers mounted by cmd/blend-serve. The DTOs deliberately carry the
// same declarative plan-JSON documents the CLI executes, so a plan moves
// between `blend plan -file`, the Go API, and `POST /v1/query` unchanged.
package service

import (
	"encoding/json"

	"blend/internal/berr"
)

// QueryRequest is the body of POST /v1/query: a declarative plan document
// plus execution options.
type QueryRequest struct {
	// Plan is the plan-JSON document (see internal/core/planjson.go):
	// {"output": ..., "nodes": [...]}.
	Plan json.RawMessage `json:"plan"`
	// Options tunes execution; omitted fields keep server defaults.
	Options *RunOptionsDTO `json:"options,omitempty"`
}

// SeekRequest is the body of POST /v1/seek: one seeker document executed
// standalone (the paper's "simple task" mode).
type SeekRequest struct {
	// Seeker is a seeker document, e.g.
	// {"kind": "sc", "values": ["HR"], "k": 10}.
	Seeker json.RawMessage `json:"seeker"`
	// Options tunes execution; only TimeoutMillis applies to a seek.
	Options *RunOptionsDTO `json:"options,omitempty"`
}

// SQLRequest is the body of POST /v1/sql: raw SQL over the AllTables
// relation.
type SQLRequest struct {
	Query string `json:"query"`
	// MaxRows caps the rows returned (0 means the server default).
	MaxRows int `json:"max_rows,omitempty"`
}

// RunOptionsDTO mirrors the library's functional options on the wire.
type RunOptionsDTO struct {
	// MaxWorkers > 0 executes the plan on the concurrent DAG scheduler
	// with that worker-pool bound. 0 (or omitted) falls back to the
	// server's configured default; negative explicitly requests the
	// server's width. Plans run sequentially only when neither side
	// asks for workers.
	MaxWorkers int `json:"max_workers,omitempty"`
	// TimeoutMillis bounds this request's execution; capped by (and
	// defaulting to) the server's per-request timeout.
	TimeoutMillis int `json:"timeout_millis,omitempty"`
	// NoOptimize disables the two-phase optimizer (the paper's B-NO).
	NoOptimize bool `json:"no_optimize,omitempty"`
	// Explain records the executed SQL per seeker into the response.
	Explain bool `json:"explain,omitempty"`
	// AsOfGeneration executes the request against the retained historical
	// generation instead of the current index (time travel). Zero or
	// omitted means current; a generation that already left the retention
	// window fails with generation_gone (HTTP 410).
	AsOfGeneration uint64 `json:"as_of_generation,omitempty"`
}

// Hit is one scored table.
type Hit struct {
	TableID int32   `json:"table_id"`
	Table   string  `json:"table"`
	Score   float64 `json:"score"`
}

// QueryResponse is the body of a successful /v1/query.
type QueryResponse struct {
	// Hits are the output node's scored tables, best first.
	Hits []Hit `json:"hits"`
	// SeekerOrder is the deterministic execution order.
	SeekerOrder []string `json:"seeker_order,omitempty"`
	// CompletionOrder is the order seekers actually finished in
	// (timing-dependent under concurrent execution).
	CompletionOrder []string `json:"completion_order,omitempty"`
	// PeakConcurrency is the maximum number of seekers observed running
	// simultaneously.
	PeakConcurrency int `json:"peak_concurrency"`
	// SeekerMicros maps seeker node ids to their execution time in
	// microseconds.
	SeekerMicros map[string]int64 `json:"seeker_micros,omitempty"`
	// SQLByNode maps seeker node ids to the SQL executed — or, for nodes
	// the native fast path served, the SQL it made unnecessary (only with
	// options.explain).
	SQLByNode map[string]string `json:"sql_by_node,omitempty"`
	// PathByNode maps seeker node ids to the execution path that served
	// them — "native", "sql", or "ann", with " (cached)" appended for
	// result-cache hits (only with options.explain).
	PathByNode map[string]string `json:"path_by_node,omitempty"`
	// DurationMicros is the total execution time in microseconds,
	// optimizer included.
	DurationMicros int64 `json:"duration_micros"`
}

// SeekResponse is the body of a successful /v1/seek.
type SeekResponse struct {
	Hits           []Hit `json:"hits"`
	DurationMicros int64 `json:"duration_micros"`
}

// SQLResponse is the body of a successful /v1/sql.
type SQLResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// TotalRows is the full result size before MaxRows truncation.
	TotalRows int `json:"total_rows"`
}

// IngestDirRequest is the JSON body of POST /v1/tables when Content-Type
// is application/json: a server-side bulk ingest of a CSV directory the
// server can read (gated by the server's allow-dir-ingest setting).
type IngestDirRequest struct {
	// Dir is the directory to walk for *.csv files (recursive).
	Dir string `json:"dir"`
	// Workers bounds concurrent CSV parsers and per-shard inserts
	// (0 = server default).
	Workers int `json:"workers,omitempty"`
	// BatchSize is the number of tables per atomic commit batch
	// (0 = server default).
	BatchSize int `json:"batch_size,omitempty"`
	// SkipBad skips unparseable files instead of aborting the ingest.
	SkipBad bool `json:"skip_bad,omitempty"`
}

// IngestResponse is the body of a successful POST /v1/tables — both for
// CSV uploads and for server-side directory ingests.
type IngestResponse struct {
	// TableIDs are the assigned table ids in committed order.
	TableIDs []int32 `json:"table_ids"`
	// TablesAdded / RowsAdded count what was committed.
	TablesAdded int `json:"tables_added"`
	RowsAdded   int `json:"rows_added"`
	// Batches is the number of atomic commit batches.
	Batches int `json:"batches"`
	// SkippedFiles lists files skipped under skip_bad.
	SkippedFiles []string `json:"skipped_files,omitempty"`
	// DurationMicros is the ingest wall-clock time; TablesPerSec the
	// resulting throughput.
	DurationMicros int64   `json:"duration_micros"`
	TablesPerSec   float64 `json:"tables_per_sec"`
}

// RemoveResponse is the body of a successful DELETE /v1/tables/{id}.
type RemoveResponse struct {
	ID      int32 `json:"id"`
	Removed bool  `json:"removed"`
	// Tombstones is the lake's removed-but-not-compacted table count
	// after this removal (compaction reclaims their space).
	Tombstones int `json:"tombstones"`
}

// CompactResponse is the body of a successful POST /v1/compact.
type CompactResponse struct {
	// RemovedTables is how many tombstoned tables were reclaimed.
	RemovedTables int `json:"removed_tables"`
}

// validateIngestDirRequest checks the server-side ingest DTO shape.
func validateIngestDirRequest(req *IngestDirRequest) error {
	if req.Dir == "" {
		return berr.New(berr.CodeBadRequest, "service.ingest", "request carries no dir")
	}
	if req.Workers < 0 || req.BatchSize < 0 {
		return berr.New(berr.CodeBadRequest, "service.ingest", "workers and batch_size must not be negative")
	}
	return nil
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Layout           string  `json:"layout"`
	Shards           int     `json:"shards"`
	Tables           int     `json:"tables"`
	Tombstones       int     `json:"tombstones"`
	Entries          int     `json:"entries"`
	DistinctValues   int     `json:"distinct_values"`
	NumericCells     int     `json:"numeric_cells"`
	AvgPostingLength float64 `json:"avg_posting_length"`
	MaxPostingLength int     `json:"max_posting_length"`
	DictBytes        int64   `json:"dict_bytes"`
	EstimatedBytes   int64   `json:"estimated_bytes"`
	AvgColumnsPerTbl float64 `json:"avg_columns_per_table"`
	AvgRowsPerTable  float64 `json:"avg_rows_per_table"`
	// Lazy-mapping figures (v4 indexes opened with mmap): how many shards
	// are heap-resident and how large the mapped file is. For heap-built
	// or eagerly loaded indexes resident_shards == shards and
	// mapped_bytes == 0. Content stats (distinct values, postings, dict)
	// cover resident shards only when the index is partially mapped, so
	// this probe never forces the whole lake resident; estimated_bytes is
	// the resident heap footprint.
	ResidentShards int   `json:"resident_shards"`
	MappedBytes    int64 `json:"mapped_bytes"`
	// Result-cache counters (all zero when the cache is disabled; see
	// blend-serve's -cache flag).
	CacheCapacity      int    `json:"cache_capacity"`
	CacheEntries       int    `json:"cache_entries"`
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheInvalidations uint64 `json:"cache_invalidations"`

	// Generation counters: the current published generation and the
	// window of retained ones still addressable by as_of_generation.
	CurrentGeneration   uint64   `json:"current_generation"`
	RetainedGenerations []uint64 `json:"retained_generations"`

	// Ingest progress/throughput counters (see POST /v1/tables).
	IngestBatches        uint64 `json:"ingest_batches"`
	IngestTablesAdded    uint64 `json:"ingest_tables_added"`
	IngestRowsAdded      uint64 `json:"ingest_rows_added"`
	IngestTablesRemoved  uint64 `json:"ingest_tables_removed"`
	IngestCompactions    uint64 `json:"ingest_compactions"`
	IngestLastBatchTbls  int    `json:"ingest_last_batch_tables"`
	IngestLastBatchUsecs int64  `json:"ingest_last_batch_micros"`
	// IngestLastBatchPerSec is the last committed batch's throughput in
	// tables per second.
	IngestLastBatchPerSec float64 `json:"ingest_last_batch_tables_per_sec"`
}

// TableResponse is the body of GET /v1/tables/{id}: one table
// reconstructed from the unified index.
type TableResponse struct {
	ID      int32      `json:"id"`
	Name    string     `json:"name"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// ErrorBody is the JSON shape of every non-2xx response:
// {"error": {"code": "bad_plan", "op": "...", "detail": "..."}}.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo carries the typed error on the wire; Code is the stable name
// of the library's error code.
type ErrorInfo struct {
	Code   string `json:"code"`
	Op     string `json:"op,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// validateQueryRequest checks the DTO shape. Everything inside the plan
// document — well-formedness, node ids, k > 0, unknown node references,
// cycles — is validated by the core parser, which reports the typed
// bad_plan / unknown_node codes the handlers pass through.
func validateQueryRequest(req *QueryRequest) error {
	if len(req.Plan) == 0 {
		return berr.New(berr.CodeBadRequest, "service.query", "request carries no plan document")
	}
	return nil
}

// validateSeekRequest checks the seek DTO shape; the seeker document
// itself is validated by the core parser.
func validateSeekRequest(req *SeekRequest) error {
	if len(req.Seeker) == 0 {
		return berr.New(berr.CodeBadRequest, "service.seek", "request carries no seeker document")
	}
	return nil
}

// validateSQLRequest checks the raw SQL DTO shape.
func validateSQLRequest(req *SQLRequest) error {
	if req.Query == "" {
		return berr.New(berr.CodeBadRequest, "service.sql", "request carries no query")
	}
	if req.MaxRows < 0 {
		return berr.New(berr.CodeBadRequest, "service.sql", "max_rows must not be negative, got %d", req.MaxRows)
	}
	return nil
}
