package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"blend/internal/berr"
)

// httpStatus maps typed error codes onto HTTP statuses. Client-side plan
// and query defects are 4xx; cancellation distinguishes the client going
// away (499, nginx's convention) from the server-imposed deadline (504).
func httpStatus(code berr.Code) int {
	switch code {
	case berr.CodeBadPlan, berr.CodeUnknownNode, berr.CodeBadQuery, berr.CodeBadRequest:
		return http.StatusBadRequest
	case berr.CodeNotFound:
		return http.StatusNotFound
	case berr.CodeCanceled:
		return 499 // client closed request
	case berr.CodeDeadline:
		return http.StatusGatewayTimeout
	case berr.CodeNoCostModel, berr.CodeDuplicateTable:
		return http.StatusConflict
	case berr.CodeGenerationGone:
		return http.StatusGone
	default:
		return http.StatusInternalServerError
	}
}

// writeError renders any error as the structured JSON body, deriving the
// status from the typed code. Errors without a code are 500 internals.
func writeError(w http.ResponseWriter, err error) {
	code := berr.CodeOf(err)
	info := ErrorInfo{Code: code.String(), Detail: err.Error()}
	var te *berr.Error
	if errors.As(err, &te) {
		info.Op = te.Op
		info.Detail = te.Detail
		// Keep the wrapped cause visible when the typed error carries no
		// detail of its own (e.g. wrapped context errors).
		if info.Detail == "" && te.Err != nil {
			info.Detail = te.Err.Error()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(code))
	json.NewEncoder(w).Encode(ErrorBody{Error: info})
}
