package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blend"
)

// Tests for the table-lifecycle endpoints: POST /v1/tables (CSV upload +
// server-side dir ingest), DELETE /v1/tables/{id}, POST /v1/compact, and
// the ingest counters in /v1/stats.

func newIngestServer(t testing.TB, d *blend.Discovery, opts Options) *httptest.Server {
	t.Helper()
	if opts.DefaultTimeout == 0 {
		opts.DefaultTimeout = 30 * time.Second
	}
	srv := httptest.NewServer(New(d, opts).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func doReq(t testing.TB, method, url, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServiceCSVUpload(t *testing.T) {
	d := fig1Discovery()
	srv := newIngestServer(t, d, Options{})

	csv := "Team,Metric\nHR,7\nOps,9\n"
	resp, body := doReq(t, "POST", srv.URL+"/v1/tables?name=metrics", "text/csv", csv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.TablesAdded != 1 || ir.RowsAdded != 2 || len(ir.TableIDs) != 1 {
		t.Fatalf("ingest response = %+v", ir)
	}
	if d.TableIDByName("metrics") != ir.TableIDs[0] {
		t.Fatal("uploaded table not resolvable")
	}

	// Missing name: 400.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/tables", "text/csv", csv)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing name status %d", resp.StatusCode)
	}
	// Unparseable body: 400.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/tables?name=bad", "text/csv", "a,b\n\"unclosed\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload status %d", resp.StatusCode)
	}
	// Duplicate name: 409 with the typed code.
	resp, body = doReq(t, "POST", srv.URL+"/v1/tables?name=metrics", "text/csv", csv)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate status %d: %s", resp.StatusCode, body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "duplicate_table" {
		t.Fatalf("duplicate code = %q", eb.Error.Code)
	}
	// Non-CSV content falls through to the dir-ingest handler, which this
	// server has disabled: 400 either way, with a JSON error body.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/tables", "application/xml", "<x/>")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad content-type status %d", resp.StatusCode)
	}
}

func TestServiceDirIngest(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf("team,size\nHR,%d\nSrv%d,%d\n", i, i, 30+i)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("srv%02d.csv", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d := fig1Discovery()
	srv := newIngestServer(t, d, Options{AllowDirIngest: true})

	req := fmt.Sprintf(`{"dir": %q, "workers": 2, "batch_size": 2}`, dir)
	resp, body := doReq(t, "POST", srv.URL+"/v1/tables", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dir ingest status %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.TablesAdded != 5 || ir.Batches != 3 {
		t.Fatalf("dir ingest response = %+v", ir)
	}
	if d.NumTables() != 3+5 {
		t.Fatalf("NumTables = %d", d.NumTables())
	}

	// Stats expose the ingest counters.
	resp, body = doReq(t, "GET", srv.URL+"/v1/stats", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.IngestTablesAdded != 5 || st.IngestBatches != 3 || st.IngestRowsAdded != 10 {
		t.Fatalf("stats ingest counters = %+v", st)
	}
	if st.IngestLastBatchTbls != 1 { // 5 tables in batches of 2 → last holds 1
		t.Fatalf("last batch tables = %d", st.IngestLastBatchTbls)
	}

	// Missing dir field: 400.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/tables", "application/json", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty dir status %d", resp.StatusCode)
	}

	// Disabled server: 400 with explanation.
	srv2 := newIngestServer(t, fig1Discovery(), Options{AllowDirIngest: false})
	resp, _ = doReq(t, "POST", srv2.URL+"/v1/tables", "application/json", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("disabled dir ingest status %d", resp.StatusCode)
	}
}

func TestServiceRemoveAndCompact(t *testing.T) {
	d := fig1Discovery()
	srv := newIngestServer(t, d, Options{})

	id := d.TableIDByName("T2")
	resp, body := doReq(t, "DELETE", fmt.Sprintf("%s/v1/tables/%d", srv.URL, id), "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d: %s", resp.StatusCode, body)
	}
	var rr RemoveResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Removed || rr.Tombstones != 1 {
		t.Fatalf("remove response = %+v", rr)
	}
	// The removed table 404s on GET and on a second DELETE.
	resp, _ = doReq(t, "GET", fmt.Sprintf("%s/v1/tables/%d", srv.URL, id), "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get removed table status %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "DELETE", fmt.Sprintf("%s/v1/tables/%d", srv.URL, id), "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d", resp.StatusCode)
	}
	// Bad id: 400.
	resp, _ = doReq(t, "DELETE", srv.URL+"/v1/tables/xyz", "", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", resp.StatusCode)
	}

	// healthz agrees with /v1/stats while the tombstone is pending.
	resp, body = doReq(t, "GET", srv.URL+"/healthz", "", "")
	var hz struct {
		Tables int `json:"tables"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Tables != 2 {
		t.Fatalf("healthz tables = %d, want 2 live", hz.Tables)
	}

	// Compact reclaims the tombstone.
	resp, body = doReq(t, "POST", srv.URL+"/v1/compact", "application/json", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d", resp.StatusCode)
	}
	var cr CompactResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.RemovedTables != 1 {
		t.Fatalf("compact response = %+v", cr)
	}
	if d.NumTables() != 2 || d.Stats().Tombstones != 0 {
		t.Fatalf("post-compact lake: %d tables, %d tombstones", d.NumTables(), d.Stats().Tombstones)
	}
}
