package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"blend"
	"blend/internal/berr"
)

// Options configure a Service.
type Options struct {
	// DefaultTimeout bounds every request's execution; a request's
	// timeout_millis may shorten but never extend it. Zero means no
	// server-side bound.
	DefaultTimeout time.Duration
	// MaxWorkers, when positive, runs every plan on the concurrent DAG
	// scheduler with this worker-pool bound unless the request picks its
	// own width. Zero leaves unconfigured requests sequential.
	MaxWorkers int
	// MaxSQLRows caps /v1/sql responses (default 1000).
	MaxSQLRows int
	// AllowDirIngest enables the server-side directory form of
	// POST /v1/tables (JSON {"dir": …}), which makes the server read CSV
	// files from its own filesystem. CSV uploads are always enabled.
	AllowDirIngest bool
	// IngestWorkers bounds concurrent CSV parsers and per-shard inserts
	// for ingest requests that do not pick their own width (0 =
	// GOMAXPROCS).
	IngestWorkers int
	// IngestBatchSize is the default number of tables per atomic commit
	// batch (0 = the library default).
	IngestBatchSize int
	// MaxUploadBytes caps the request body of a CSV upload (default
	// 64 MiB).
	MaxUploadBytes int64
}

// Service exposes one Discovery over HTTP: the versioned discovery API of
// cmd/blend-serve. All handlers execute under the request's context, so a
// disconnecting client or an expired deadline cancels the plan mid-run,
// and all of them run concurrently — each query pins a generation
// snapshot at entry and executes lock-free against it, so any number of
// simultaneous queries (and ingests) proceed without blocking each other.
type Service struct {
	d    *blend.Discovery
	opts Options
}

// New wraps a Discovery for serving.
func New(d *blend.Discovery, opts Options) *Service {
	if opts.MaxSQLRows <= 0 {
		opts.MaxSQLRows = 1000
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 64 << 20
	}
	return &Service{d: d, opts: opts}
}

// Handler returns the versioned route table.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/seek", s.handleSeek)
	mux.HandleFunc("POST /v1/sql", s.handleSQL)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/tables", s.handleIngest)
	mux.HandleFunc("GET /v1/tables/{id}", s.handleTable)
	mux.HandleFunc("DELETE /v1/tables/{id}", s.handleRemoveTable)
	mux.HandleFunc("POST /v1/compact", s.handleCompact)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// LiveTables, so the probe agrees with /v1/stats' tables field
		// while tombstones await compaction.
		json.NewEncoder(w).Encode(map[string]any{"ok": true, "tables": s.d.LiveTables()})
	})
	return mux
}

// decodeJSON strictly decodes a request body into dst, rejecting unknown
// fields so DTO typos fail loudly instead of being ignored.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return berr.New(berr.CodeBadRequest, "service.decode", "malformed request body: %v", err)
	}
	return nil
}

// requestContext derives the execution context for one request: the
// request's own context (canceled when the client disconnects) bounded by
// the effective timeout.
func (s *Service) requestContext(r *http.Request, dto *RunOptionsDTO) (context.Context, context.CancelFunc) {
	timeout := s.opts.DefaultTimeout
	if dto != nil && dto.TimeoutMillis > 0 {
		req := time.Duration(dto.TimeoutMillis) * time.Millisecond
		if timeout == 0 || req < timeout {
			timeout = req
		}
	}
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return r.Context(), func() {}
}

// runOptions folds a DTO into library run options. Worker resolution: a
// positive request value wins, a zero (or absent) one falls back to the
// server's -workers default, and a negative one explicitly asks for the
// server's width; only when both request and server are unset does the
// plan run sequentially.
func (s *Service) runOptions(dto *RunOptionsDTO) []blend.RunOption {
	var opts []blend.RunOption
	if dto != nil && dto.NoOptimize {
		opts = append(opts, blend.WithoutOptimizer())
	}
	switch {
	case dto != nil && dto.MaxWorkers > 0:
		opts = append(opts, blend.WithMaxWorkers(dto.MaxWorkers))
	case dto != nil && dto.MaxWorkers < 0:
		opts = append(opts, blend.WithMaxWorkers(s.opts.MaxWorkers))
	case s.opts.MaxWorkers > 0:
		opts = append(opts, blend.WithMaxWorkers(s.opts.MaxWorkers))
	}
	if dto != nil && dto.Explain {
		opts = append(opts, blend.WithExplain())
	}
	if dto != nil && dto.AsOfGeneration > 0 {
		opts = append(opts, blend.WithAsOf(dto.AsOfGeneration))
	}
	return opts
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateQueryRequest(&req); err != nil {
		writeError(w, err)
		return
	}
	plan, err := blend.ParsePlanJSON(bytes.NewReader(req.Plan))
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.Options)
	defer cancel()
	res, err := s.d.Run(ctx, plan, s.runOptions(req.Options)...)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := QueryResponse{
		Hits:            s.hits(res.Output),
		SeekerOrder:     res.SeekerOrder,
		CompletionOrder: res.CompletionOrder,
		PeakConcurrency: res.PeakConcurrency,
		SQLByNode:       res.SQLByNode,
		PathByNode:      res.PathByNode,
		DurationMicros:  res.Duration.Microseconds(),
	}
	if len(res.Stats) > 0 {
		resp.SeekerMicros = make(map[string]int64, len(res.Stats))
		for id, st := range res.Stats {
			resp.SeekerMicros[id] = st.Duration.Microseconds()
		}
	}
	writeJSON(w, resp)
}

func (s *Service) handleSeek(w http.ResponseWriter, r *http.Request) {
	var req SeekRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateSeekRequest(&req); err != nil {
		writeError(w, err)
		return
	}
	seeker, err := blend.ParseSeekerJSON(bytes.NewReader(req.Seeker))
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.Options)
	defer cancel()
	start := time.Now()
	var seekOpts []blend.RunOption
	if req.Options != nil && req.Options.AsOfGeneration > 0 {
		seekOpts = append(seekOpts, blend.WithAsOf(req.Options.AsOfGeneration))
	}
	hits, err := s.d.Seek(ctx, seeker, seekOpts...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, SeekResponse{Hits: s.hits(hits), DurationMicros: time.Since(start).Microseconds()})
}

func (s *Service) handleSQL(w http.ResponseWriter, r *http.Request) {
	var req SQLRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateSQLRequest(&req); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, nil)
	defer cancel()
	res, err := s.d.Engine().ExecRawSQL(ctx, req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	limit := req.MaxRows
	if limit <= 0 || limit > s.opts.MaxSQLRows {
		limit = s.opts.MaxSQLRows
	}
	resp := SQLResponse{Columns: res.Columns(), TotalRows: res.NumRows(), Rows: [][]string{}}
	for i := 0; i < res.NumRows() && i < limit; i++ {
		row := make([]string, len(resp.Columns))
		for c := range row {
			row[c] = res.Cell(i, c).String()
		}
		resp.Rows = append(resp.Rows, row)
	}
	writeJSON(w, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.d.Stats()
	cs := s.d.CacheStats()
	ms := s.d.MaintStats()
	writeJSON(w, StatsResponse{
		Layout:           st.Layout.String(),
		Shards:           st.Shards,
		Tables:           st.Tables,
		Tombstones:       st.Tombstones,
		Entries:          st.Entries,
		DistinctValues:   st.DistinctValues,
		NumericCells:     st.NumericCells,
		AvgPostingLength: st.AvgPostingLength,
		MaxPostingLength: st.MaxPostingLength,
		DictBytes:        st.DictBytes,
		EstimatedBytes:   st.EstimatedBytes,
		AvgColumnsPerTbl: st.AvgColumnsPerTbl,
		AvgRowsPerTable:  st.AvgRowsPerTable,
		ResidentShards:   st.ResidentShards,
		MappedBytes:      st.MappedBytes,

		CurrentGeneration:   s.d.Generation(),
		RetainedGenerations: s.d.RetainedGenerations(),

		CacheCapacity:      cs.Capacity,
		CacheEntries:       cs.Entries,
		CacheHits:          cs.Hits,
		CacheMisses:        cs.Misses,
		CacheInvalidations: cs.Invalidations,

		IngestBatches:         ms.Batches,
		IngestTablesAdded:     ms.TablesAdded,
		IngestRowsAdded:       ms.RowsAdded,
		IngestTablesRemoved:   ms.TablesRemoved,
		IngestCompactions:     ms.Compactions,
		IngestLastBatchTbls:   ms.LastBatchTables,
		IngestLastBatchUsecs:  ms.LastBatchDuration.Microseconds(),
		IngestLastBatchPerSec: perSec(ms.LastBatchTables, ms.LastBatchDuration),
	})
}

// ingestOptions folds the server ingest defaults with per-request
// overrides into library options.
func (s *Service) ingestOptions(workers, batchSize int) []blend.IngestOption {
	if workers <= 0 {
		workers = s.opts.IngestWorkers
	}
	if batchSize <= 0 {
		batchSize = s.opts.IngestBatchSize
	}
	var opts []blend.IngestOption
	if workers > 0 {
		opts = append(opts, blend.WithIngestWorkers(workers))
	}
	if batchSize > 0 {
		opts = append(opts, blend.WithIngestBatchSize(batchSize))
	}
	return opts
}

// handleIngest serves POST /v1/tables in its two forms:
//
//   - Content-Type text/csv: the body is one CSV table, named by the
//     required ?name= query parameter.
//   - anything else (curl -d defaults included): a JSON {"dir": …}
//     document making the server bulk-load a CSV directory it can read
//     (requires AllowDirIngest). The strict decoder rejects non-JSON
//     bodies with a clear error.
//
// Both commit through the engine's batched maintenance path, so the whole
// upload (or each directory batch) is atomic and publishes one generation.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.TrimSpace(ct) == "text/csv" {
		s.handleIngestCSV(w, r)
		return
	}
	s.handleIngestDir(w, r)
}

func (s *Service) handleIngestCSV(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, berr.New(berr.CodeBadRequest, "service.ingest",
			"csv upload requires a ?name= query parameter"))
		return
	}
	start := time.Now()
	t, err := blend.ReadCSV(name, http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		writeError(w, berr.New(berr.CodeBadRequest, "service.ingest", "parse csv upload: %v", err))
		return
	}
	ids, err := s.d.AddTables(r.Context(), []*blend.Table{t}, s.ingestOptions(0, 0)...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, IngestResponse{
		TableIDs:       ids,
		TablesAdded:    len(ids),
		RowsAdded:      t.NumRows(),
		Batches:        1,
		DurationMicros: time.Since(start).Microseconds(),
		TablesPerSec:   perSec(len(ids), time.Since(start)),
	})
}

func (s *Service) handleIngestDir(w http.ResponseWriter, r *http.Request) {
	if !s.opts.AllowDirIngest {
		writeError(w, berr.New(berr.CodeBadRequest, "service.ingest",
			"server-side directory ingest is disabled (start the server with dir ingest allowed)"))
		return
	}
	var req IngestDirRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := validateIngestDirRequest(&req); err != nil {
		writeError(w, err)
		return
	}
	opts := s.ingestOptions(req.Workers, req.BatchSize)
	if req.SkipBad {
		opts = append(opts, blend.WithSkipBadFiles())
	}
	report, err := s.d.IngestCSVDir(r.Context(), req.Dir, opts...)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, IngestResponse{
		TableIDs:       report.TableIDs,
		TablesAdded:    report.TablesAdded,
		RowsAdded:      report.RowsAdded,
		Batches:        report.Batches,
		SkippedFiles:   report.SkippedFiles,
		DurationMicros: report.Duration.Microseconds(),
		TablesPerSec:   report.Throughput(),
	})
}

func (s *Service) handleRemoveTable(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, berr.New(berr.CodeBadRequest, "service.tables", "table id %q is not a number", r.PathValue("id")))
		return
	}
	if err := s.d.RemoveTable(int32(id)); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, RemoveResponse{ID: int32(id), Removed: true, Tombstones: s.d.Stats().Tombstones})
}

func (s *Service) handleCompact(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, CompactResponse{RemovedTables: s.d.Compact()})
}

// perSec converts a count over a duration into a rate (0 when either is).
func perSec(n int, d time.Duration) float64 {
	if n == 0 || d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

func (s *Service) handleTable(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, berr.New(berr.CodeBadRequest, "service.tables", "table id %q is not a number", r.PathValue("id")))
		return
	}
	t := s.d.TableByID(int32(id))
	if t == nil {
		writeError(w, berr.New(berr.CodeNotFound, "service.tables", "no table with id %d", id))
		return
	}
	resp := TableResponse{ID: int32(id), Name: t.Name, Rows: [][]string{}}
	for c := 0; c < t.NumCols(); c++ {
		resp.Columns = append(resp.Columns, t.Columns[c].Name)
	}
	for row := 0; row < t.NumRows(); row++ {
		cells := make([]string, t.NumCols())
		for c := range cells {
			cells[c] = t.Cell(row, c)
		}
		resp.Rows = append(resp.Rows, cells)
	}
	writeJSON(w, resp)
}

// hits maps engine hits to wire hits, resolving table names.
func (s *Service) hits(h blend.Hits) []Hit {
	names := s.d.TableNames(h)
	out := make([]Hit, len(h))
	for i, t := range h {
		out[i] = Hit{TableID: t.TableID, Table: names[i], Score: t.Score}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
