package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"blend"
)

// fig1Discovery indexes the paper's Fig. 1 lake.
func fig1Discovery(opts ...blend.IndexOption) *blend.Discovery {
	t1 := blend.NewTable("T1", "Team", "Size")
	for _, r := range [][2]string{
		{"Finance", "31"}, {"Marketing", "28"}, {"HR", "33"}, {"IT", "92"}, {"Sales", "80"},
	} {
		t1.MustAppendRow(r[0], r[1])
	}
	mk := func(name, year, itLead string) *blend.Table {
		t := blend.NewTable(name, "Lead", "Year", "Team")
		for _, r := range [][2]string{
			{itLead, "IT"}, {"Draco Malfoy", "Marketing"}, {"Harry Potter", "Finance"},
			{"Cho Chang", "R&D"}, {"Luna Lovegood", "Sales"}, {"Firenze", "HR"},
		} {
			t.MustAppendRow(r[0], year, r[1])
		}
		return t
	}
	lake := []*blend.Table{t1, mk("T2", "2022", "Tom Riddle"), mk("T3", "2024", "Ronald Weasley")}
	for _, t := range lake {
		t.InferKinds()
	}
	return blend.IndexTables(blend.ColumnStore, lake, opts...)
}

const example1Plan = `{
  "output": "intersect",
  "nodes": [
    {"id": "P_examples", "seeker": {"kind": "mc", "tuples": [["HR","Firenze"]], "k": 10}},
    {"id": "N_examples", "seeker": {"kind": "mc", "tuples": [["IT","Tom Riddle"]], "k": 10}},
    {"id": "exclude", "combiner": {"kind": "difference", "k": 10},
     "inputs": ["P_examples", "N_examples"]},
    {"id": "dep", "seeker": {"kind": "sc",
     "values": ["HR","Marketing","Finance","IT","R&D","Sales"], "k": 10}},
    {"id": "intersect", "combiner": {"kind": "intersect", "k": 10},
     "inputs": ["exclude", "dep"]}
  ]
}`

func newTestServer(t testing.TB, d *blend.Discovery) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(d, Options{DefaultTimeout: 30 * time.Second}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestQueryMatchesInProcessRun is the acceptance check: /v1/query answers
// a plan-JSON document with the same hits as an in-process Run.
func TestQueryMatchesInProcessRun(t *testing.T) {
	d := fig1Discovery()
	srv := newTestServer(t, d)

	plan, err := blend.ParsePlanJSON(strings.NewReader(example1Plan))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, srv.URL+"/v1/query", fmt.Sprintf(`{"plan": %s}`, example1Plan))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got QueryResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Hits) != len(ref.Output) {
		t.Fatalf("hits = %v, want %v", got.Hits, ref.Output)
	}
	for i, h := range got.Hits {
		if h.TableID != ref.Output[i].TableID || h.Score != ref.Output[i].Score || h.Table != ref.Tables[i] {
			t.Fatalf("hit %d = %+v, want %+v (%s)", i, h, ref.Output[i], ref.Tables[i])
		}
	}
	if !reflect.DeepEqual(got.SeekerOrder, ref.SeekerOrder) {
		t.Fatalf("seeker order %v, want %v", got.SeekerOrder, ref.SeekerOrder)
	}
	if len(got.SeekerMicros) != 3 {
		t.Fatalf("seeker timings = %v", got.SeekerMicros)
	}
}

// TestQueryConcurrentRequests exercises concurrent request handling over
// a sharded store with the parallel scheduler.
func TestQueryConcurrentRequests(t *testing.T) {
	srv := newTestServer(t, fig1Discovery(blend.WithShards(2)))
	body := fmt.Sprintf(`{"plan": %s, "options": {"max_workers": 4, "explain": true}}`, example1Plan)
	type result struct {
		qr  QueryResponse
		err error
	}
	done := make(chan result, 8)
	for i := 0; i < 8; i++ {
		go func() {
			var res result
			resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
			if err != nil {
				res.err = err
				done <- res
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				res.err = fmt.Errorf("status %d", resp.StatusCode)
			} else {
				res.err = json.NewDecoder(resp.Body).Decode(&res.qr)
			}
			done <- res
		}()
	}
	for i := 0; i < 8; i++ {
		res := <-done
		if res.err != nil {
			t.Fatalf("concurrent request %d: %v", i, res.err)
		}
		if len(res.qr.Hits) == 0 || res.qr.Hits[0].Table != "T3" {
			t.Fatalf("concurrent response %d = %+v", i, res.qr)
		}
		if len(res.qr.SQLByNode) != 3 {
			t.Fatalf("explain missing: %+v", res.qr.SQLByNode)
		}
	}
}

// TestQueryExplainReportsMCNativePath pins the explain attribution over
// HTTP: with explain on, /v1/query reports path=native for the plan's MC
// (and SC) seeker nodes, and path=sql on a service whose engine forces
// the SQL fallback.
func TestQueryExplainReportsMCNativePath(t *testing.T) {
	body := fmt.Sprintf(`{"plan": %s, "options": {"explain": true}}`, example1Plan)
	for _, tc := range []struct {
		name string
		opts []blend.IndexOption
		want string
	}{
		{"native", nil, "native"},
		{"sql-fallback", []blend.IndexOption{blend.WithoutNativeExec()}, "sql"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := newTestServer(t, fig1Discovery(tc.opts...))
			resp, raw := postJSON(t, srv.URL+"/v1/query", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			var qr QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatal(err)
			}
			for _, node := range []string{"P_examples", "N_examples", "dep"} {
				if got := qr.PathByNode[node]; got != tc.want {
					t.Fatalf("path_by_node[%s] = %q, want %q (full: %v)",
						node, got, tc.want, qr.PathByNode)
				}
			}
		})
	}
}

// TestQueryExplainReportsCorrAndSemanticPaths completes the per-kind path
// attribution over HTTP: a plan mixing a correlation and a semantic node
// must report path=native (resp. path=sql under the forced fallback) for
// the correlation node, while the semantic node reports path=ann on both
// engines — ANN has no SQL form to fall back to.
func TestQueryExplainReportsCorrAndSemanticPaths(t *testing.T) {
	const plan = `{
	  "output": "merge",
	  "nodes": [
	    {"id": "corr", "seeker": {"kind": "correlation",
	     "keys": ["Finance","Marketing","HR","IT","Sales"],
	     "targets": [31, 28, 33, 92, 80], "k": 5}},
	    {"id": "sem", "seeker": {"kind": "semantic",
	     "values": ["Harry Potter","Luna Lovegood"], "k": 5}},
	    {"id": "merge", "combiner": {"kind": "union", "k": 5},
	     "inputs": ["corr", "sem"]}
	  ]
	}`
	body := fmt.Sprintf(`{"plan": %s, "options": {"explain": true}}`, plan)
	for _, tc := range []struct {
		name     string
		opts     []blend.IndexOption
		wantCorr string
	}{
		{"native", nil, "native"},
		{"sql-fallback", []blend.IndexOption{blend.WithoutNativeExec()}, "sql"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := newTestServer(t, fig1Discovery(tc.opts...))
			resp, raw := postJSON(t, srv.URL+"/v1/query", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			var qr QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatal(err)
			}
			if got := qr.PathByNode["corr"]; got != tc.wantCorr {
				t.Fatalf("path_by_node[corr] = %q, want %q (full: %v)", got, tc.wantCorr, qr.PathByNode)
			}
			if got := qr.PathByNode["sem"]; got != "ann" {
				t.Fatalf("path_by_node[sem] = %q, want %q (full: %v)", got, "ann", qr.PathByNode)
			}
		})
	}
}

func errorCode(t *testing.T, body []byte) string {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %s", body)
	}
	return eb.Error.Code
}

// TestQueryValidation covers the DTO validation matrix: malformed plan,
// unknown node id, k <= 0, plus request-shape errors.
func TestQueryValidation(t *testing.T) {
	srv := newTestServer(t, fig1Discovery())
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed body", `{`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"plam": {}}`, http.StatusBadRequest, "bad_request"},
		{"no plan", `{}`, http.StatusBadRequest, "bad_request"},
		{"malformed plan", `{"plan": "nope"}`, http.StatusBadRequest, "bad_plan"},
		{"empty plan", `{"plan": {"nodes": []}}`, http.StatusBadRequest, "bad_plan"},
		{"k zero", `{"plan": {"nodes": [{"id": "a", "seeker": {"kind": "sc", "values": ["x"], "k": 0}}]}}`,
			http.StatusBadRequest, "bad_plan"},
		{"k negative combiner", `{"plan": {"nodes": [
			{"id": "a", "seeker": {"kind": "sc", "values": ["x"], "k": 5}},
			{"id": "c", "combiner": {"kind": "union", "k": -1}, "inputs": ["a"]}]}}`,
			http.StatusBadRequest, "bad_plan"},
		{"unknown node id", `{"plan": {"nodes": [
			{"id": "a", "seeker": {"kind": "sc", "values": ["x"], "k": 5}},
			{"id": "c", "combiner": {"kind": "union", "k": 5}, "inputs": ["a", "ghost"]}]}}`,
			http.StatusBadRequest, "unknown_node"},
		{"unknown output", fmt.Sprintf(`{"plan": {"output": "ghost", "nodes": [
			{"id": "a", "seeker": {"kind": "sc", "values": ["x"], "k": 5}}]}}`),
			http.StatusBadRequest, "unknown_node"},
		{"unknown seeker kind", `{"plan": {"nodes": [{"id": "a", "seeker": {"kind": "warp", "k": 5}}]}}`,
			http.StatusBadRequest, "bad_plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, srv.URL+"/v1/query", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if code := errorCode(t, body); code != tc.code {
				t.Fatalf("code = %q, want %q (%s)", code, tc.code, body)
			}
		})
	}
}

func TestSeekEndpoint(t *testing.T) {
	d := fig1Discovery()
	srv := newTestServer(t, d)
	resp, body := postJSON(t, srv.URL+"/v1/seek",
		`{"seeker": {"kind": "kw", "values": ["Firenze"], "k": 5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SeekResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	ref, err := d.Seek(context.Background(), blend.KW([]string{"Firenze"}, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) != len(ref) {
		t.Fatalf("seek hits = %v, want %v", sr.Hits, ref)
	}
	// Bad seeker documents carry typed codes.
	resp, body = postJSON(t, srv.URL+"/v1/seek", `{"seeker": {"kind": "kw", "values": ["x"], "k": 0}}`)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_plan" {
		t.Fatalf("k=0 seek: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, srv.URL+"/v1/seek", `{}`)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Fatalf("empty seek: %d %s", resp.StatusCode, body)
	}
}

func TestSQLEndpoint(t *testing.T) {
	srv := newTestServer(t, fig1Discovery())
	resp, body := postJSON(t, srv.URL+"/v1/sql",
		`{"query": "SELECT TableId, COUNT(*) AS n FROM AllTables GROUP BY TableId ORDER BY TableId ASC", "max_rows": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SQLResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TotalRows != 3 || len(sr.Rows) != 2 || len(sr.Columns) != 2 {
		t.Fatalf("sql response = %+v", sr)
	}
	resp, body = postJSON(t, srv.URL+"/v1/sql", `{"query": "SELEKT"}`)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_query" {
		t.Fatalf("bad sql: %d %s", resp.StatusCode, body)
	}
}

func TestStatsAndTables(t *testing.T) {
	srv := newTestServer(t, fig1Discovery())
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Tables != 3 || st.Shards != 1 || st.Layout == "" {
		t.Fatalf("stats = %+v", st)
	}

	resp, err = http.Get(srv.URL + "/v1/tables/0")
	if err != nil {
		t.Fatal(err)
	}
	var tr TableResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Name != "T1" || len(tr.Columns) != 2 || len(tr.Rows) != 5 {
		t.Fatalf("table = %+v", tr)
	}

	for path, wantStatus := range map[string]int{
		"/v1/tables/99":  http.StatusNotFound,
		"/v1/tables/x":   http.StatusBadRequest,
		"/v1/tables/-1":  http.StatusNotFound,
		"/v1/nosuchpath": http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s status = %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}
}

// TestRequestTimeout verifies the per-request deadline surfaces as the
// typed deadline code with a 504.
func TestRequestTimeout(t *testing.T) {
	d := fig1Discovery()
	srv := httptest.NewServer(New(d, Options{DefaultTimeout: time.Nanosecond}).Handler())
	defer srv.Close()
	resp, body := postJSON(t, srv.URL+"/v1/query", fmt.Sprintf(`{"plan": %s}`, example1Plan))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if code := errorCode(t, body); code != "deadline_exceeded" {
		t.Fatalf("code = %q", code)
	}
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t, fig1Discovery())
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}
