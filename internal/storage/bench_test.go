package storage

import (
	"fmt"
	"testing"

	"blend/internal/table"
)

func benchTables(n, rows int) []*table.Table {
	tables := make([]*table.Table, n)
	for t := 0; t < n; t++ {
		tb := table.New(fmt.Sprintf("t%03d", t), "a", "b", "num")
		for r := 0; r < rows; r++ {
			tb.MustAppendRow(
				fmt.Sprintf("alpha%04d", (t*rows+r)%500),
				fmt.Sprintf("beta%04d", (t+r)%300),
				fmt.Sprintf("%d", r*3),
			)
		}
		tb.InferKinds()
		tables[t] = tb
	}
	return tables
}

func BenchmarkBuildColumnStore(b *testing.B) {
	tables := benchTables(20, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(ColumnStore, tables)
	}
}

func BenchmarkBuildRowStore(b *testing.B) {
	tables := benchTables(20, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(RowStore, tables)
	}
}

// BenchmarkValueAccessColumn vs BenchmarkValueAccessRow isolates the
// physical layout difference: array reads with a shared dictionary versus
// packed-record deforming with a value copy per access.
func BenchmarkValueAccessColumn(b *testing.B) {
	s := Build(ColumnStore, benchTables(20, 100))
	n := int32(s.NumEntries())
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(s.Value(int32(i) % n))
	}
	_ = sink
}

func BenchmarkValueAccessRow(b *testing.B) {
	s := Build(RowStore, benchTables(20, 100))
	n := int32(s.NumEntries())
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(s.Value(int32(i) % n))
	}
	_ = sink
}

func BenchmarkPostingsLookup(b *testing.B) {
	s := Build(ColumnStore, benchTables(20, 100))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Postings(fmt.Sprintf("alpha%04d", i%500)) == nil && i%500 < 500 {
			// Some alpha values may be absent at this scale; fine.
			continue
		}
	}
}

func BenchmarkReconstructRow(b *testing.B) {
	s := Build(ColumnStore, benchTables(20, 100))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ReconstructRow(int32(i%20), int32(i%100))
	}
}
