package storage

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"blend/internal/berr"
)

// TestLoadTruncatedNeverPanics injects failure by truncating a valid index
// file at every prefix length: Load must return an error (or, never, a
// silently wrong store) without panicking.
func TestLoadTruncatedNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	orig := Build(ColumnStore, lakeFixture())
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	step := 1
	if len(full) > 2048 {
		step = len(full) / 2048 // cap the loop for big fixtures
	}
	for n := 0; n < len(full); n += step {
		func(n int) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := Load(bytes.NewReader(full[:n])); err == nil {
				t.Fatalf("Load accepted a %d-byte truncation of a %d-byte file", n, len(full))
			}
		}(n)
	}
	// The untruncated file still loads.
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("full file failed to load: %v", err)
	}
}

// TestLoadBitFlips flips single bytes across the header region; Load must
// never panic (it may succeed when the flip lands in benign payload bytes,
// e.g. inside a value string).
func TestLoadBitFlips(t *testing.T) {
	var buf bytes.Buffer
	orig := Build(RowStore, lakeFixture())
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	limit := len(full)
	if limit > 512 {
		limit = 512
	}
	for i := 0; i < limit; i++ {
		mutated := append([]byte(nil), full...)
		mutated[i] ^= 0xFF
		func(i int) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked with byte %d flipped: %v", i, r)
				}
			}()
			_, _ = Load(bytes.NewReader(mutated))
		}(i)
	}
}

// writeBytes dumps raw index bytes to a file for the path-based loaders.
func writeBytes(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMapFileTruncatedNeverPanics truncates a valid v4 file at every
// (stepped) prefix length: MapFile must return an error without
// panicking — the footer directory lives at the end of the file, so no
// truncation can look complete.
func TestMapFileTruncatedNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	orig := BuildSharded(ColumnStore, widerLake(), 4)
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	path := filepath.Join(t.TempDir(), "trunc.blend")
	step := 1
	if len(full) > 1024 {
		step = len(full) / 1024
	}
	for n := 0; n < len(full); n += step {
		writeBytes(t, path, full[:n])
		func(n int) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("MapFile panicked on %d-byte prefix: %v", n, r)
				}
			}()
			idx, err := MapFile(path)
			if err == nil {
				t.Fatalf("MapFile accepted a %d-byte truncation of a %d-byte file", n, len(full))
			}
			if idx != nil {
				t.Fatalf("MapFile returned both an index and an error at prefix %d", n)
			}
		}(n)
	}
	writeBytes(t, path, full)
	idx, err := MapFile(path)
	if err != nil {
		t.Fatalf("full file failed to map: %v", err)
	}
	idx.(*ShardedStore).Close()
}

// TestMapFileBadFooter corrupts the structures MapFile validates eagerly —
// trailer magic, footer offset, footer CRC — and checks each is rejected
// with the typed bad-index code.
func TestMapFileBadFooter(t *testing.T) {
	var buf bytes.Buffer
	orig := BuildSharded(ColumnStore, widerLake(), 4)
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	path := filepath.Join(t.TempDir(), "bad.blend")
	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"trailer-magic", func(b []byte) { b[len(b)-1] ^= 0xFF }},
		{"footer-offset-huge", func(b []byte) {
			binary.LittleEndian.PutUint64(b[len(b)-12:], uint64(len(b))*2)
		}},
		{"footer-offset-zero", func(b []byte) {
			binary.LittleEndian.PutUint64(b[len(b)-12:], 0)
		}},
		{"footer-crc", func(b []byte) {
			// A byte inside the footer directory, which the footer CRC covers.
			footerOff := binary.LittleEndian.Uint64(b[len(b)-12:])
			b[footerOff+8] ^= 0xFF
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := append([]byte(nil), full...)
			tc.mutate(mutated)
			writeBytes(t, path, mutated)
			_, err := MapFile(path)
			if err == nil {
				t.Fatal("MapFile accepted the corrupted file")
			}
			if berr.CodeOf(err) != berr.CodeBadIndex {
				t.Fatalf("error code = %v, want CodeBadIndex (%v)", berr.CodeOf(err), err)
			}
		})
	}
}

// TestMappedCorruptSectionPanicsTyped flips a byte inside a shard's body
// section. The footer stays valid, so MapFile succeeds; eager Load of the
// same bytes must return an error (it checks section CRCs up front), and
// the mapped store must panic with a typed bad-index error on first touch
// of the poisoned shard — the Reader interface has no error returns, and a
// CRC mismatch after open means the file changed underneath the mapping.
func TestMappedCorruptSectionPanicsTyped(t *testing.T) {
	orig := BuildSharded(ColumnStore, widerLake(), 4)
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.blend")
	if err := orig.SaveFile(clean); err != nil {
		t.Fatal(err)
	}
	info, err := InspectFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	dict := info.Shards[0].Sections[secDict]
	if dict.Bytes == 0 {
		t.Fatal("shard 0 has an empty dict section")
	}
	data, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	data[dict.Off+dict.Bytes/2] ^= 0xFF

	// Eager load checks every section CRC before returning.
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("eager Load accepted a corrupt dict section")
	}

	bad := filepath.Join(dir, "bad.blend")
	writeBytes(t, bad, data)
	idx, err := MapFile(bad)
	if err != nil {
		t.Fatalf("MapFile rejected a file with a valid footer: %v", err)
	}
	s := idx.(*ShardedStore)
	defer s.Close()
	touch := func() (r any) {
		defer func() { r = recover() }()
		s.Value(0) // global entry 0 lives in shard 0
		return nil
	}
	for i := 0; i < 2; i++ { // the panic must repeat, not vanish after once.Do
		r := touch()
		if r == nil {
			t.Fatalf("touch %d of corrupt shard did not panic", i)
		}
		err, ok := r.(error)
		if !ok || berr.CodeOf(err) != berr.CodeBadIndex {
			t.Fatalf("touch %d panicked with %v, want typed CodeBadIndex error", i, r)
		}
	}
}
