package storage

import (
	"bytes"
	"testing"
)

// TestLoadTruncatedNeverPanics injects failure by truncating a valid index
// file at every prefix length: Load must return an error (or, never, a
// silently wrong store) without panicking.
func TestLoadTruncatedNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	orig := Build(ColumnStore, lakeFixture())
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	step := 1
	if len(full) > 2048 {
		step = len(full) / 2048 // cap the loop for big fixtures
	}
	for n := 0; n < len(full); n += step {
		func(n int) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := Load(bytes.NewReader(full[:n])); err == nil {
				t.Fatalf("Load accepted a %d-byte truncation of a %d-byte file", n, len(full))
			}
		}(n)
	}
	// The untruncated file still loads.
	if _, err := Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("full file failed to load: %v", err)
	}
}

// TestLoadBitFlips flips single bytes across the header region; Load must
// never panic (it may succeed when the flip lands in benign payload bytes,
// e.g. inside a value string).
func TestLoadBitFlips(t *testing.T) {
	var buf bytes.Buffer
	orig := Build(RowStore, lakeFixture())
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	limit := len(full)
	if limit > 512 {
		limit = 512
	}
	for i := 0; i < limit; i++ {
		mutated := append([]byte(nil), full...)
		mutated[i] ^= 0xFF
		func(i int) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked with byte %d flipped: %v", i, r)
				}
			}()
			_, _ = Load(bytes.NewReader(mutated))
		}(i)
	}
}
