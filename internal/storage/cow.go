package storage

import (
	"blend/internal/berr"
	"blend/internal/table"
)

// Copy-on-write mutation surface. Each Clone* method leaves the receiver
// untouched and returns a derived index with the mutation applied, so an
// engine can publish immutable generation snapshots: readers keep scanning
// the old index while the writer builds the next one, with no lock between
// them.
//
// The clones share structure with their parent wherever sharing is safe:
//
//   - Append-only arrays (attribute columns, dict, tables, tableRange,
//     postings inners, shard refs) are shared outright. Writers are
//     serialized and every clone derives from the newest store, so appends
//     form a linear chain: a later generation only ever writes backing
//     array elements at indices >= the older generation's length, which
//     old readers never touch (their slice headers end earlier).
//   - Arrays mutated in place (tombstone bitmaps, postings outer spine,
//     row offsets) are copied per clone.
//   - The value dictionary map layers a per-generation delta over a shared
//     base (see Store.dictBase/dictDelta), folded back into a fresh base
//     when the delta grows past a quarter of it.
//   - Sharded stores copy only the spine: untouched shards are shared,
//     mutated shards are themselves cowCloned first. Lazy mmap slots are
//     shared across generations, so a shard materialized through any
//     generation is resident for all of them.

// CowIndex is implemented by indexes that can apply mutations
// copy-on-write, returning a derived index instead of mutating in place.
// Both Store and ShardedStore implement it.
type CowIndex interface {
	Index
	// CloneAddTable derives an index with one table appended and returns
	// it with the new table's id.
	CloneAddTable(t *table.Table) (Index, int32)
	// CloneAddTablesBatch derives an index with a batch of tables appended
	// and returns it with their ids in input order.
	CloneAddTablesBatch(tables []*table.Table, workers int) (Index, []int32)
	// CloneRemoveTable derives an index with one table tombstoned. The
	// receiver is left untouched on error.
	CloneRemoveTable(tid int32) (Index, error)
	// CloneCompact derives a fully rebuilt index without tombstoned tables
	// and reports how many were reclaimed. With no tombstones it returns
	// the receiver itself and 0. Unlike Compact it never releases the
	// parent's file mapping — older generations may still materialize
	// shards from it; the owner closes the mapping when the last
	// generation referencing it is released.
	CloneCompact() (Index, int)
}

var (
	_ CowIndex = (*Store)(nil)
	_ CowIndex = (*ShardedStore)(nil)
)

// cowClone returns a structurally shared copy of the store that is safe to
// mutate (append tables, tombstone) while readers keep using the receiver.
func (s *Store) cowClone() *Store {
	cp := *s
	// Dictionary layers: share the base read-only, give the clone its own
	// delta. Once the parent's delta outgrows a quarter of the base, fold
	// both into a fresh base so lookups stay two probes at most and old
	// deltas do not chain.
	switch {
	case s.dictDelta == nil:
		cp.dictDelta = make(map[string]int32)
	case len(s.dictDelta)*4 >= len(s.dictBase):
		base := make(map[string]int32, len(s.dictBase)+len(s.dictDelta))
		for k, v := range s.dictBase {
			base[k] = v
		}
		for k, v := range s.dictDelta {
			base[k] = v
		}
		cp.dictBase = base
		cp.dictDelta = make(map[string]int32)
	default:
		delta := make(map[string]int32, len(s.dictDelta)+8)
		for k, v := range s.dictDelta {
			delta[k] = v
		}
		cp.dictDelta = delta
	}
	// In-place-mutated state gets private copies; everything else is
	// append-only and shared (see the package comment above).
	cp.dead = append([]bool(nil), s.dead...)
	cp.postings = append([][]int32(nil), s.postings...)
	if s.layout == RowStore {
		// packRows truncates and re-extends rowOff; give the clone its own.
		cp.rowOff = append([]int64(nil), s.rowOff...)
	}
	return &cp
}

// CloneAddTable implements CowIndex.
func (s *Store) CloneAddTable(t *table.Table) (Index, int32) {
	cp := s.cowClone()
	return cp, cp.AddTable(t)
}

// CloneAddTablesBatch implements CowIndex.
func (s *Store) CloneAddTablesBatch(tables []*table.Table, workers int) (Index, []int32) {
	cp := s.cowClone()
	return cp, cp.AddTablesBatch(tables, workers)
}

// CloneRemoveTable implements CowIndex.
func (s *Store) CloneRemoveTable(tid int32) (Index, error) {
	if tid < 0 || int(tid) >= len(s.tables) {
		return nil, berr.New(berr.CodeNotFound, "storage.remove", "no table with id %d", tid)
	}
	cp := s.cowClone()
	if err := cp.RemoveTable(tid); err != nil {
		return nil, err
	}
	return cp, nil
}

// CloneCompact implements CowIndex.
func (s *Store) CloneCompact() (Index, int) {
	if s.numDead == 0 {
		return s, 0
	}
	live := make([]*table.Table, 0, len(s.tables)-s.numDead)
	for tid := range s.tables {
		if !s.dead[tid] {
			live = append(live, s.reconstructTable(int32(tid)))
		}
	}
	return Build(s.layout, live), s.numDead
}

// cowClone returns a structurally shared copy of the sharded store: the
// shard spine and per-shard global-id directory are copied (their elements
// are overwritten per mutation), everything else — including the mmap seg
// and its lazy slots — is shared.
func (s *ShardedStore) cowClone() *ShardedStore {
	cp := *s
	cp.shards = append([]*Store(nil), s.shards...)
	cp.globalTID = append([][]int32(nil), s.globalTID...)
	return &cp
}

// ownShard replaces shard sh with a mutable cowClone of it,
// materializing it from the mapped file first if needed.
func (s *ShardedStore) ownShard(sh int) {
	s.shards[sh] = s.shard(sh).cowClone()
}

// CloneAddTable implements CowIndex.
func (s *ShardedStore) CloneAddTable(t *table.Table) (Index, int32) {
	cp := s.cowClone()
	cp.ownShard(cp.shardFor(t.Name))
	return cp, cp.AddTable(t)
}

// CloneAddTablesBatch implements CowIndex.
func (s *ShardedStore) CloneAddTablesBatch(tables []*table.Table, workers int) (Index, []int32) {
	cp := s.cowClone()
	touched := make(map[int]struct{})
	for _, t := range tables {
		touched[cp.shardFor(t.Name)] = struct{}{}
	}
	for sh := range touched {
		cp.ownShard(sh)
	}
	return cp, cp.AddTablesBatch(tables, workers)
}

// CloneRemoveTable implements CowIndex.
func (s *ShardedStore) CloneRemoveTable(tid int32) (Index, error) {
	if tid < 0 || int(tid) >= len(s.refs) {
		return nil, berr.New(berr.CodeNotFound, "storage.remove", "no table with id %d", tid)
	}
	r := s.refs[tid]
	cp := s.cowClone()
	cp.ownShard(int(r.shard))
	if err := cp.RemoveTable(tid); err != nil {
		return nil, err
	}
	return cp, nil
}

// CloneCompact implements CowIndex.
func (s *ShardedStore) CloneCompact() (Index, int) {
	removed := s.Tombstones()
	if removed == 0 {
		return s, 0
	}
	live := make([]*table.Table, 0, len(s.refs)-removed)
	for g := range s.refs {
		r := s.refs[g]
		if sh := s.shard(int(r.shard)); sh.TableAlive(r.local) {
			live = append(live, sh.reconstructTable(r.local))
		}
	}
	cp := BuildSharded(s.layout, live, len(s.shards))
	cp.mono = s.mono
	return cp, removed
}
