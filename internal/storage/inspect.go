package storage

import (
	"os"

	"blend/internal/berr"
)

// SectionInfo describes one section of a v4 segment file.
type SectionInfo struct {
	Name  string
	Off   int64
	Bytes int64
	CRC   uint32
}

// ShardSegInfo describes one shard's footer directory entry.
type ShardSegInfo struct {
	Entries    int
	Tables     int
	Tombstones int
	Sections   [numSegSections]SectionInfo
}

// SegmentInfo is the decoded footer directory of a v4 index file, for
// operators (blend index -inspect). RawEntryBytes is what the entries
// would occupy in the uncompressed v1–v3 array encoding, the baseline for
// the compression ratio.
type SegmentInfo struct {
	FileBytes  int64
	Kind       string // "monolithic" or "sharded"
	Layout     Layout
	Tables     int
	Entries    int64
	Tombstones int
	Shards     []ShardSegInfo
	RefsBytes  int64
	FooterOff  int64
}

// EntryBytes sums the postings + super sections — the bytes holding the
// per-entry attribute data — across shards.
func (si *SegmentInfo) EntryBytes() int64 {
	var b int64
	for i := range si.Shards {
		b += si.Shards[i].Sections[secPostings].Bytes + si.Shards[i].Sections[secSuper].Bytes
	}
	return b
}

// RawEntryBytes is the size of the same entries in the uncompressed
// legacy array encoding (33 bytes each).
func (si *SegmentInfo) RawEntryBytes() int64 {
	return si.Entries * rawEntryBytes
}

// InspectFile reads a v4 index file's footer directory without
// materializing any shard. Legacy (v1–v3) files report a bad-index error
// naming their version, since they have no directory to inspect.
func InspectFile(path string) (*SegmentInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.inspect", err)
	}
	sf, err := parseSegFile(data)
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.inspect", err)
	}
	info := &SegmentInfo{
		FileBytes: int64(len(data)),
		Kind:      "sharded",
		Layout:    sf.layout,
		Tables:    sf.numTables,
		RefsBytes: sf.refsSec.n,
	}
	if sf.kind == persistKindMonolithic {
		info.Kind = "monolithic"
	}
	footerSize := int64(segFooterFixed + len(sf.shards)*segShardDirSize)
	info.FooterOff = int64(len(data)) - segTrailerSize - footerSize
	for i := range sf.shards {
		sh := &sf.shards[i]
		out := ShardSegInfo{Entries: sh.entries, Tables: sh.tables, Tombstones: sh.numDead}
		for j := 0; j < numSegSections; j++ {
			out.Sections[j] = SectionInfo{
				Name:  sectionName(j),
				Off:   sh.secs[j].off,
				Bytes: sh.secs[j].n,
				CRC:   sh.secs[j].crc,
			}
		}
		info.Entries += int64(sh.entries)
		info.Tombstones += sh.numDead
		info.Shards = append(info.Shards, out)
	}
	return info, nil
}
