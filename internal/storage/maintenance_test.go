package storage

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"blend/internal/table"
)

// Tests for the bulk write path and the table lifecycle: AddTablesBatch,
// RemoveTable tombstones, Compact, and the v3 snapshot that round-trips
// them (with v1/v2 files still loading).

// batchLake generates n small distinct tables for batch-ingest tests.
func batchLake(prefix string, n int) []*table.Table {
	out := make([]*table.Table, n)
	for i := range out {
		t := table.New(fmt.Sprintf("%s%02d", prefix, i), "Team", "Metric")
		t.MustAppendRow("HR", fmt.Sprintf("%d", 10+i))
		t.MustAppendRow(fmt.Sprintf("Unit%d", i), fmt.Sprintf("%d", 20+i))
		t.InferKinds()
		out[i] = t
	}
	return out
}

// storeTuples snapshots every live table's content through a Reader.
func storeTuples(r Reader) map[string][]entryTuple {
	out := make(map[string][]entryTuple)
	for tid := 0; tid < r.NumTables(); tid++ {
		if !r.TableAlive(int32(tid)) {
			continue
		}
		out[r.TableName(int32(tid))] = tableTuples(r, int32(tid))
	}
	return out
}

func TestAddTablesBatchMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, layout := range []Layout{ColumnStore, RowStore} {
			t.Run(fmt.Sprintf("%v/shards=%d", layout, shards), func(t *testing.T) {
				batch := batchLake("B", 9)
				seq := BuildSharded(layout, lakeFixture(), shards)
				bat := BuildSharded(layout, lakeFixture(), shards)
				var seqIDs []int32
				for _, tb := range batch {
					seqIDs = append(seqIDs, seq.AddTable(tb))
				}
				batIDs := bat.AddTablesBatch(batch, 4)
				if !reflect.DeepEqual(seqIDs, batIDs) {
					t.Fatalf("batch ids %v != sequential ids %v", batIDs, seqIDs)
				}
				if seq.NumEntries() != bat.NumEntries() {
					t.Fatalf("entries: batch %d, sequential %d", bat.NumEntries(), seq.NumEntries())
				}
				if !reflect.DeepEqual(storeTuples(seq), storeTuples(bat)) {
					t.Fatal("batch-built store content differs from sequential")
				}
				// Posting lists agree for a shared value.
				if seq.Frequency("HR") != bat.Frequency("HR") {
					t.Fatal("frequency mismatch after batch insert")
				}
			})
		}
	}
}

func TestRemoveTableHidesEveryReadSurface(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := BuildSharded(ColumnStore, widerLake(), shards)
			tid := s.TableIDByName("T2")
			if tid < 0 {
				t.Fatal("fixture table missing")
			}
			beforeFreq := s.Frequency("Firenze")
			if err := s.RemoveTable(tid); err != nil {
				t.Fatal(err)
			}
			if s.TableAlive(tid) {
				t.Fatal("removed table still alive")
			}
			if s.Tombstones() != 1 {
				t.Fatalf("tombstones = %d", s.Tombstones())
			}
			if s.TableName(tid) != "" {
				t.Fatal("removed table still resolves by id")
			}
			if s.TableIDByName("T2") != -1 {
				t.Fatal("removed table still resolves by name")
			}
			if lo, hi := s.TableEntries(tid); lo != hi {
				t.Fatal("removed table still has an entry range")
			}
			if s.ReconstructTable(tid) != nil {
				t.Fatal("removed table still reconstructs")
			}
			// "Firenze" appears once in T2: frequency and postings drop it.
			if got := s.Frequency("Firenze"); got != beforeFreq-1 {
				t.Fatalf("Frequency after remove = %d, want %d", got, beforeFreq-1)
			}
			for _, p := range s.Postings("Firenze") {
				if s.TableID(p) == tid {
					t.Fatal("postings still reference the removed table")
				}
			}
			s.ScanPostings("Firenze", func(stid, cid, rid int32) {
				if stid == tid {
					t.Fatal("scan still streams the removed table")
				}
			})
			// Double removal and out-of-range ids are typed errors.
			if err := s.RemoveTable(tid); err == nil {
				t.Fatal("double remove must fail")
			}
			if err := s.RemoveTable(9999); err == nil {
				t.Fatal("out-of-range remove must fail")
			}
		})
	}
}

func TestCompactReclaimsAndRenumbers(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, layout := range []Layout{ColumnStore, RowStore} {
			t.Run(fmt.Sprintf("%v/shards=%d", layout, shards), func(t *testing.T) {
				s := BuildSharded(layout, widerLake(), shards)
				totalBefore := s.NumTables()
				entriesBefore := s.NumEntries()
				victim := s.TableIDByName("T1")
				want := storeTuples(s) // snapshot, then forget the victim
				victimEntries := len(want["T1"])
				delete(want, "T1")
				if err := s.RemoveTable(victim); err != nil {
					t.Fatal(err)
				}
				if removed := s.Compact(); removed != 1 {
					t.Fatalf("Compact removed %d tables, want 1", removed)
				}
				if s.Tombstones() != 0 {
					t.Fatal("tombstones survive compaction")
				}
				if s.NumTables() != totalBefore-1 {
					t.Fatalf("NumTables = %d after compact", s.NumTables())
				}
				if s.NumEntries() != entriesBefore-victimEntries {
					t.Fatalf("NumEntries = %d after compact, want %d",
						s.NumEntries(), entriesBefore-victimEntries)
				}
				if s.NumShards() != shards {
					t.Fatal("compaction changed the shard count")
				}
				got := storeTuples(s)
				// Ids were renumbered, so compare per-name content with the
				// table-id field normalized out.
				if len(got) != len(want) {
					t.Fatalf("compacted store holds %d tables, want %d", len(got), len(want))
				}
				for name, wtuples := range want {
					gtuples := got[name]
					if len(gtuples) != len(wtuples) {
						t.Fatalf("table %q has %d entries after compact, want %d", name, len(gtuples), len(wtuples))
					}
					for i := range wtuples {
						w, g := wtuples[i], gtuples[i]
						w.tid, g.tid = 0, 0
						if w != g {
							t.Fatalf("table %q entry %d differs after compact: %+v vs %+v", name, i, g, w)
						}
					}
				}
				// Compacting a clean store is a no-op.
				if s.Compact() != 0 {
					t.Fatal("second compact must remove nothing")
				}
			})
		}
	}
}

func TestPersistRoundTripsTombstones(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var orig Index
			if shards == 1 {
				orig = Build(ColumnStore, widerLake())
			} else {
				orig = BuildSharded(ColumnStore, widerLake(), shards)
			}
			victim := orig.TableIDByName("W3")
			if err := orig.RemoveTable(victim); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Tombstones() != 1 {
				t.Fatalf("loaded tombstones = %d, want 1", loaded.Tombstones())
			}
			if loaded.TableAlive(victim) {
				t.Fatal("tombstone lost in round trip")
			}
			if loaded.TableIDByName("W3") != -1 {
				t.Fatal("removed table resolves after reload")
			}
			if !reflect.DeepEqual(storeTuples(orig), storeTuples(loaded)) {
				t.Fatal("live content differs after round trip")
			}
			// Compaction after reload fully reclaims.
			if loaded.Compact() != 1 {
				t.Fatal("post-load compact must reclaim the tombstone")
			}
			if loaded.TableIDByName("W2") < 0 {
				t.Fatal("live table lost after post-load compact")
			}
		})
	}
}

func TestLegacyV1AndV2FilesStillLoad(t *testing.T) {
	mono := Build(ColumnStore, lakeFixture())
	var v1 bytes.Buffer
	if err := mono.SaveLegacy(&v1, 1); err != nil {
		t.Fatal(err)
	}
	loaded1, err := Load(&v1)
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if _, ok := loaded1.(*Store); !ok {
		t.Fatalf("v1 file loaded as %T, want *Store", loaded1)
	}
	if loaded1.Tombstones() != 0 {
		t.Fatal("legacy file must load without tombstones")
	}
	if !reflect.DeepEqual(storeTuples(mono), storeTuples(loaded1)) {
		t.Fatal("v1 content differs")
	}

	sh := BuildSharded(ColumnStore, widerLake(), 4)
	var v2 bytes.Buffer
	if err := sh.SaveLegacy(&v2, 2); err != nil {
		t.Fatal(err)
	}
	loaded2, err := Load(&v2)
	if err != nil {
		t.Fatalf("v2 load: %v", err)
	}
	if loaded2.NumShards() != 4 {
		t.Fatalf("v2 file loaded with %d shards", loaded2.NumShards())
	}
	if !reflect.DeepEqual(storeTuples(sh), storeTuples(loaded2)) {
		t.Fatal("v2 content differs")
	}

	// Legacy writers refuse to drop tombstones silently.
	if err := sh.RemoveTable(sh.TableIDByName("W1")); err != nil {
		t.Fatal(err)
	}
	if err := sh.SaveLegacy(&bytes.Buffer{}, 2); err == nil {
		t.Fatal("legacy save with tombstones must fail")
	}
}

func TestV3RejectsCorruptTombstoneSection(t *testing.T) {
	s := Build(ColumnStore, lakeFixture())
	if err := s.RemoveTable(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveLegacy(&buf, 3); err != nil {
		t.Fatal(err)
	}
	// The tombstone list is the last 8 bytes (count u32 + one id u32):
	// point the dead id out of range.
	raw := buf.Bytes()
	copy(raw[len(raw)-4:], []byte{0xee, 0xee, 0xee, 0xee})
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt tombstone id must be rejected")
	}
}

func TestAddAfterRemoveKeepsIdsDisjoint(t *testing.T) {
	s := BuildSharded(ColumnStore, lakeFixture(), 2)
	if err := s.RemoveTable(s.TableIDByName("T1")); err != nil {
		t.Fatal(err)
	}
	ids := s.AddTablesBatch(batchLake("N", 3), 2)
	for _, id := range ids {
		if !s.TableAlive(id) {
			t.Fatalf("new table %d not alive", id)
		}
	}
	// The tombstoned slot is not reused before compaction.
	if s.NumTables() != 4+3 {
		t.Fatalf("NumTables = %d, want 7 (4 original + 3 new)", s.NumTables())
	}
	if s.Tombstones() != 1 {
		t.Fatal("tombstone lost by batch insert")
	}
}
