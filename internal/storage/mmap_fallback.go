//go:build !unix

package storage

import (
	"fmt"
	"io"
	"os"
)

// mmapFile on platforms without the unix mmap syscall falls back to
// reading the whole file into memory. Lazy shard materialization still
// applies (decode work is deferred), only the page-cache sharing is lost.
func mmapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("cannot map empty index file")
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	d, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return d, func() error { return nil }, nil
}
