//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The returned release function unmaps
// it; the caller may close f immediately (the mapping keeps the pages
// reachable). Reads fault pages in through the OS page cache, so repeated
// opens of a warm index cost no I/O.
func mmapFile(f *os.File, size int64) (data []byte, release func() error, err error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("cannot map empty index file")
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("index file of %d bytes exceeds address space", size)
	}
	d, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return d, func() error { return syscall.Munmap(d) }, nil
}
