package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"blend/internal/berr"
	"blend/internal/table"
)

// Binary persistence for the AllTables index. The format is a simple
// little-endian stream:
//
//	v1 (monolithic):
//	magic "BLND" | version=1 | payload
//
//	v2 (sharded):
//	magic "BLND" | version=2 | layout u32 | numShards u32
//	numTables u32 | per table: owning shard u32 (global id = position)
//	per shard: payload
//
//	payload:
//	layout u32
//	numTables u32 | per table: name, numRows u32, numCols u32, per col: name, kind u8
//	dict: numValues u32 | per value: string
//	numEntries u32 | arrays: valIdx, tableIDs, columnIDs, rowIDs (i32),
//	                 superLo, superHi (u64), quadrant (i8)
//
// Postings and table ranges are rebuilt on load (they are derivable), which
// keeps the on-disk footprint lean — part of what Table VIII measures. Load
// reads both versions, so v1 files written before sharding existed keep
// opening; Save writes v1 from a Store and v2 from a ShardedStore.

const (
	persistMagic          = "BLND"
	persistVersion        = 1
	persistVersionSharded = 2
)

// Save writes the monolithic store to w in the v1 format.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersion); err != nil {
		return err
	}
	if err := s.savePayload(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Save writes the sharded store to w in the v2 format, round-tripping the
// shard count and the global table directory.
func (s *ShardedStore) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err := writeU32(bw, persistVersionSharded); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(s.layout)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.shards))); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.refs))); err != nil {
		return err
	}
	for _, r := range s.refs {
		if err := writeU32(bw, uint32(r.shard)); err != nil {
			return err
		}
	}
	for _, sh := range s.shards {
		if err := sh.savePayload(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error { return saveFile(s, path) }

// SaveFile writes the sharded store to a file.
func (s *ShardedStore) SaveFile(path string) error { return saveFile(s, path) }

type saver interface {
	Save(w io.Writer) error
}

func saveFile(s saver, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeU32(bw *bufio.Writer, v uint32) error {
	return binary.Write(bw, binary.LittleEndian, v)
}

func writeStr(bw *bufio.Writer, v string) error {
	if err := writeU32(bw, uint32(len(v))); err != nil {
		return err
	}
	_, err := bw.WriteString(v)
	return err
}

// savePayload writes one store body (everything after magic and version).
func (s *Store) savePayload(bw *bufio.Writer) error {
	if err := writeU32(bw, uint32(s.layout)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.tables))); err != nil {
		return err
	}
	for _, m := range s.tables {
		if err := writeStr(bw, m.Name); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(m.NumRows)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(m.ColNames))); err != nil {
			return err
		}
		for c := range m.ColNames {
			if err := writeStr(bw, m.ColNames[c]); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(m.ColKinds[c])); err != nil {
				return err
			}
		}
	}
	if err := writeU32(bw, uint32(len(s.dict))); err != nil {
		return err
	}
	for _, v := range s.dict {
		if err := writeStr(bw, v); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(s.valIdx))); err != nil {
		return err
	}
	for _, arr := range [][]int32{s.valIdx, s.tableIDs, s.columnIDs, s.rowIDs} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.superLo); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, s.superHi); err != nil {
		return err
	}
	return binary.Write(bw, binary.LittleEndian, s.quadrant)
}

// All length- and count-prefixed reads allocate in bounded chunks:
// corrupted or truncated files then fail with an I/O error instead of
// attempting a multi-gigabyte allocation from an untrusted count.
const loadChunk = 1 << 16

func readU32(br *bufio.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(br, binary.LittleEndian, &v)
	return v, err
}

func readStr(br *bufio.Reader) (string, error) {
	n, err := readU32(br)
	if err != nil {
		return "", err
	}
	var sb []byte
	for remaining := int(n); remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		buf := make([]byte, c)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", fmt.Errorf("read string payload: %w", err)
		}
		sb = append(sb, buf...)
		remaining -= c
	}
	return string(sb), nil
}

func readI32s(br *bufio.Reader, n int) ([]int32, error) {
	var out []int32
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]int32, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

func readU64s(br *bufio.Reader, n int) ([]uint64, error) {
	var out []uint64
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]uint64, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

func readI8s(br *bufio.Reader, n int) ([]int8, error) {
	var out []int8
	for remaining := n; remaining > 0; {
		c := remaining
		if c > loadChunk {
			c = loadChunk
		}
		part := make([]int8, c)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, err
		}
		out = append(out, part...)
		remaining -= c
	}
	return out, nil
}

// Load reads an index previously written by Save — either version — and
// rebuilds its in-memory indexes. The concrete type of the result matches
// the file: *Store for v1, *ShardedStore for v2. Unreadable or corrupt
// inputs report typed bad-index errors.
func Load(r io.Reader) (Index, error) {
	idx, err := load(bufio.NewReader(r))
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.load", err)
	}
	return idx, nil
}

func load(br *bufio.Reader) (Index, error) {
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("read index magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("bad index magic %q", magic)
	}
	version, err := readU32(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case persistVersion:
		return loadPayload(br)
	case persistVersionSharded:
		return loadSharded(br)
	default:
		return nil, fmt.Errorf("unsupported index version %d", version)
	}
}

// loadSharded reads the v2 body: shard count, table directory, then one
// payload per shard.
func loadSharded(br *bufio.Reader) (*ShardedStore, error) {
	layoutRaw, err := readU32(br)
	if err != nil {
		return nil, err
	}
	numShards, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numShards == 0 || numShards > MaxShards {
		return nil, fmt.Errorf("implausible shard count %d", numShards)
	}
	numTables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s := &ShardedStore{
		layout:    Layout(layoutRaw),
		shards:    make([]*Store, numShards),
		globalTID: make([][]int32, numShards),
	}
	localCount := make([]int32, numShards)
	for g := 0; g < int(numTables); g++ {
		sh, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if sh >= numShards {
			return nil, fmt.Errorf("table %d assigned to shard %d of %d", g, sh, numShards)
		}
		s.refs = append(s.refs, shardRef{shard: int32(sh), local: localCount[sh]})
		s.globalTID[sh] = append(s.globalTID[sh], int32(g))
		localCount[sh]++
	}
	for i := range s.shards {
		sub, err := loadPayload(br)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if sub.layout != s.layout {
			return nil, fmt.Errorf("shard %d layout %v does not match index layout %v", i, sub.layout, s.layout)
		}
		if sub.NumTables() != int(localCount[i]) {
			return nil, fmt.Errorf("shard %d holds %d tables, directory says %d", i, sub.NumTables(), localCount[i])
		}
		s.shards[i] = sub
	}
	s.recomputeBase()
	return s, nil
}

// loadPayload reads one store body and rebuilds its derived indexes.
func loadPayload(br *bufio.Reader) (*Store, error) {
	layoutRaw, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s := &Store{layout: Layout(layoutRaw), dictIdx: make(map[string]int32)}

	numTables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	s.tables = make([]TableMeta, 0, minInt(int(numTables), 1<<16))
	for i := 0; i < int(numTables); i++ {
		var m TableMeta
		if m.Name, err = readStr(br); err != nil {
			return nil, err
		}
		nr, err := readU32(br)
		if err != nil {
			return nil, err
		}
		m.NumRows = int32(nr)
		nc, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for c := 0; c < int(nc); c++ {
			name, err := readStr(br)
			if err != nil {
				return nil, err
			}
			kb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			m.ColNames = append(m.ColNames, name)
			m.ColKinds = append(m.ColKinds, table.Kind(kb))
		}
		s.tables = append(s.tables, m)
	}

	numValues, err := readU32(br)
	if err != nil {
		return nil, err
	}
	dict := make([]string, 0, minInt(int(numValues), 1<<16))
	for i := 0; i < int(numValues); i++ {
		v, err := readStr(br)
		if err != nil {
			return nil, err
		}
		dict = append(dict, v)
		s.dictIdx[v] = int32(i)
	}
	s.dict = dict

	numEntries, err := readU32(br)
	if err != nil {
		return nil, err
	}
	n := int(numEntries)
	if s.valIdx, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.tableIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.columnIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.rowIDs, err = readI32s(br, n); err != nil {
		return nil, err
	}
	if s.superLo, err = readU64s(br, n); err != nil {
		return nil, err
	}
	if s.superHi, err = readU64s(br, n); err != nil {
		return nil, err
	}
	if s.quadrant, err = readI8s(br, n); err != nil {
		return nil, err
	}
	// Referential integrity: every entry must point into the dictionary
	// and a known table; a corrupt file must not produce a store that
	// panics later.
	for i := 0; i < n; i++ {
		if s.valIdx[i] < 0 || int(s.valIdx[i]) >= len(s.dict) {
			return nil, fmt.Errorf("entry %d references value %d outside dictionary", i, s.valIdx[i])
		}
		tid := s.tableIDs[i]
		if tid < 0 || int(tid) >= len(s.tables) {
			return nil, fmt.Errorf("entry %d references table %d outside catalog", i, tid)
		}
		meta := &s.tables[tid]
		if s.columnIDs[i] < 0 || int(s.columnIDs[i]) >= len(meta.ColNames) {
			return nil, fmt.Errorf("entry %d references column %d outside table %q", i, s.columnIDs[i], meta.Name)
		}
		if s.rowIDs[i] < 0 || s.rowIDs[i] >= meta.NumRows {
			return nil, fmt.Errorf("entry %d references row %d outside table %q", i, s.rowIDs[i], meta.Name)
		}
	}

	s.rebuildIndexes()
	if s.layout == RowStore {
		s.packRows()
	}
	return s, nil
}

// LoadFile reads an index (either version) from a file. A missing or
// unreadable file reports a typed bad-index error wrapping the underlying
// cause, so errors.Is(err, fs.ErrNotExist) still works.
func LoadFile(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, berr.Wrap(berr.CodeBadIndex, "storage.open", err)
	}
	defer f.Close()
	return Load(f)
}

// rebuildIndexes reconstructs the inverted index and the TableId ranges
// from the attribute arrays.
func (s *Store) rebuildIndexes() {
	s.postings = make([][]int32, len(s.dict))
	counts := make([]int32, len(s.dict))
	for _, vi := range s.valIdx {
		counts[vi]++
	}
	for vi, c := range counts {
		s.postings[vi] = make([]int32, 0, c)
	}
	for i, vi := range s.valIdx {
		s.postings[vi] = append(s.postings[vi], int32(i))
	}
	s.tableRange = make([][2]int32, len(s.tables))
	for i := range s.tableRange {
		s.tableRange[i] = [2]int32{int32(len(s.valIdx)), 0}
	}
	for i, tid := range s.tableIDs {
		r := &s.tableRange[tid]
		if int32(i) < r[0] {
			r[0] = int32(i)
		}
		if int32(i)+1 > r[1] {
			r[1] = int32(i) + 1
		}
	}
	// Tables with no entries get an empty range at 0.
	for i := range s.tableRange {
		if s.tableRange[i][0] > s.tableRange[i][1] {
			s.tableRange[i] = [2]int32{0, 0}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
